//! Joins of UCQs (JUCQ) and joins of USCQs (JUSCQ).
//!
//! Table 4: `q(x̄) ← UCQ1(x̄1) ∧ · · · ∧ UCQn(x̄n)`. These are the shapes
//! produced by cover-based reformulation (Definition 3): one UCQ per cover
//! fragment, joined on shared variables, projecting the original head.
//!
//! The SQL translation (§3) materializes each component with
//! `WITH SQLi AS (…)` and joins them under `SELECT DISTINCT`.

use std::collections::BTreeSet;
use std::fmt;

use obda_dllite::Vocabulary;

use crate::scq::USCQ;
use crate::term::{Term, VarId};
use crate::ucq::UCQ;

/// A join of UCQs. `head` is the original query head; every head variable
/// must be exported by at least one component.
#[derive(Clone, Debug, PartialEq)]
pub struct JUCQ {
    head: Vec<Term>,
    components: Vec<UCQ>,
}

impl JUCQ {
    pub fn new(head: Vec<Term>, components: Vec<UCQ>) -> Self {
        let exported: BTreeSet<VarId> = components
            .iter()
            .flat_map(|c| c.head().iter().filter_map(|t| t.as_var()))
            .collect();
        for t in &head {
            if let Term::Var(v) = t {
                assert!(
                    exported.contains(v),
                    "head variable {v:?} not exported by any component"
                );
            }
        }
        JUCQ { head, components }
    }

    pub fn head(&self) -> &[Term] {
        &self.head
    }

    pub fn components(&self) -> &[UCQ] {
        &self.components
    }

    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Join variables: variables exported by two or more components.
    pub fn join_vars(&self) -> BTreeSet<VarId> {
        let mut seen = BTreeSet::new();
        let mut joined = BTreeSet::new();
        for c in &self.components {
            let vars: BTreeSet<VarId> = c.head().iter().filter_map(|t| t.as_var()).collect();
            for v in vars {
                if !seen.insert(v) {
                    joined.insert(v);
                }
            }
        }
        joined
    }

    /// Total union terms across components (complexity measure).
    pub fn total_cqs(&self) -> usize {
        self.components.iter().map(UCQ::len).sum()
    }

    /// Total atoms across components.
    pub fn total_atoms(&self) -> usize {
        self.components.iter().map(UCQ::total_atoms).sum()
    }

    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        struct D<'a>(&'a JUCQ, &'a Vocabulary);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for (i, c) in self.0.components.iter().enumerate() {
                    writeln!(f, "COMPONENT {i}:")?;
                    writeln!(f, "{}", c.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, voc)
    }
}

/// A join of USCQs — the shape of generalized-cover reformulations when
/// fragments are rewritten into USCQs instead of UCQs.
#[derive(Clone, Debug, PartialEq)]
pub struct JUSCQ {
    head: Vec<Term>,
    components: Vec<USCQ>,
}

impl JUSCQ {
    pub fn new(head: Vec<Term>, components: Vec<USCQ>) -> Self {
        JUSCQ { head, components }
    }

    pub fn head(&self) -> &[Term] {
        &self.head
    }

    pub fn components(&self) -> &[USCQ] {
        &self.components
    }

    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    pub fn total_atoms(&self) -> usize {
        self.components.iter().map(USCQ::total_atoms).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::cq::CQ;
    use obda_dllite::{ConceptId, RoleId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn ucq_over(head: Vec<Term>, atoms: Vec<Atom>) -> UCQ {
        UCQ::single(CQ::new(head, atoms))
    }

    #[test]
    fn join_vars_are_shared_exports() {
        // Component 1 exports (x, y); component 2 exports (y).
        let c1 = ucq_over(vec![v(0), v(1)], vec![Atom::Role(RoleId(0), v(0), v(1))]);
        let c2 = ucq_over(vec![v(1)], vec![Atom::Role(RoleId(1), v(2), v(1))]);
        let j = JUCQ::new(vec![v(0)], vec![c1, c2]);
        let jv: Vec<VarId> = j.join_vars().into_iter().collect();
        assert_eq!(jv, vec![VarId(1)]);
        assert_eq!(j.num_components(), 2);
    }

    #[test]
    #[should_panic(expected = "not exported")]
    fn head_var_must_be_exported() {
        let c1 = ucq_over(vec![v(1)], vec![Atom::Concept(ConceptId(0), v(1))]);
        JUCQ::new(vec![v(0)], vec![c1]);
    }

    #[test]
    fn totals_aggregate_components() {
        let c1 = UCQ::from_cqs(
            vec![v(0)],
            [
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(0), v(0))]),
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(1), v(0))]),
            ],
        );
        let c2 = ucq_over(vec![v(0)], vec![Atom::Role(RoleId(0), v(0), v(1))]);
        let j = JUCQ::new(vec![v(0)], vec![c1, c2]);
        assert_eq!(j.total_cqs(), 3);
        assert_eq!(j.total_atoms(), 3);
    }
}
