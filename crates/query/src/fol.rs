//! The envelope type over all FOL query dialects of Table 4.

use crate::cq::CQ;
use crate::jucq::{JUCQ, JUSCQ};
use crate::scq::{SCQ, USCQ};
use crate::term::Term;
use crate::ucq::UCQ;

/// Any FOL query this workspace can evaluate or translate to SQL: the six
/// dialects of Table 4.
#[derive(Clone, Debug, PartialEq)]
pub enum FolQuery {
    Cq(CQ),
    Ucq(UCQ),
    Scq(SCQ),
    Uscq(USCQ),
    Jucq(JUCQ),
    Juscq(JUSCQ),
}

impl FolQuery {
    pub fn head(&self) -> &[Term] {
        match self {
            FolQuery::Cq(q) => q.head(),
            FolQuery::Ucq(q) => q.head(),
            FolQuery::Scq(q) => q.head(),
            FolQuery::Uscq(q) => q.head(),
            FolQuery::Jucq(q) => q.head(),
            FolQuery::Juscq(q) => q.head(),
        }
    }

    /// Dialect name as in Table 4.
    pub fn dialect(&self) -> &'static str {
        match self {
            FolQuery::Cq(_) => "CQ",
            FolQuery::Ucq(_) => "UCQ",
            FolQuery::Scq(_) => "SCQ",
            FolQuery::Uscq(_) => "USCQ",
            FolQuery::Jucq(_) => "JUCQ",
            FolQuery::Juscq(_) => "JUSCQ",
        }
    }

    /// Total number of atoms in the formula — a size measure that tracks
    /// the length of the SQL translation.
    pub fn total_atoms(&self) -> usize {
        match self {
            FolQuery::Cq(q) => q.num_atoms(),
            FolQuery::Ucq(q) => q.total_atoms(),
            FolQuery::Scq(q) => q.total_atoms(),
            FolQuery::Uscq(q) => q.total_atoms(),
            FolQuery::Jucq(q) => q.total_atoms(),
            FolQuery::Juscq(q) => q.total_atoms(),
        }
    }

    /// Number of union terms when flattened to a UCQ (the paper's
    /// complexity proxy), without performing the flattening.
    pub fn equivalent_cq_count(&self) -> usize {
        match self {
            FolQuery::Cq(_) => 1,
            FolQuery::Ucq(q) => q.len(),
            FolQuery::Scq(q) => q.equivalent_cq_count(),
            FolQuery::Uscq(q) => q.equivalent_cq_count(),
            FolQuery::Jucq(q) => q.components().iter().map(|c| c.len().max(1)).product(),
            FolQuery::Juscq(q) => q
                .components()
                .iter()
                .map(|c| c.equivalent_cq_count().max(1))
                .product(),
        }
    }
}

impl From<CQ> for FolQuery {
    fn from(q: CQ) -> Self {
        FolQuery::Cq(q)
    }
}

impl From<UCQ> for FolQuery {
    fn from(q: UCQ) -> Self {
        FolQuery::Ucq(q)
    }
}

impl From<JUCQ> for FolQuery {
    fn from(q: JUCQ) -> Self {
        FolQuery::Jucq(q)
    }
}

impl From<USCQ> for FolQuery {
    fn from(q: USCQ) -> Self {
        FolQuery::Uscq(q)
    }
}

impl From<JUSCQ> for FolQuery {
    fn from(q: JUSCQ) -> Self {
        FolQuery::Juscq(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::VarId;
    use obda_dllite::ConceptId;

    #[test]
    fn dialect_names_match_table4() {
        let cq = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(ConceptId(0), Term::Var(VarId(0)))],
        );
        assert_eq!(FolQuery::from(cq.clone()).dialect(), "CQ");
        assert_eq!(FolQuery::from(UCQ::single(cq.clone())).dialect(), "UCQ");
        assert_eq!(
            FolQuery::Jucq(JUCQ::new(vec![Term::Var(VarId(0))], vec![UCQ::single(cq)])).dialect(),
            "JUCQ"
        );
    }

    #[test]
    fn equivalent_cq_count_multiplies_components() {
        let c0 = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(ConceptId(0), Term::Var(VarId(0)))],
        );
        let c1 = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(ConceptId(1), Term::Var(VarId(0)))],
        );
        let u = UCQ::from_cqs(vec![Term::Var(VarId(0))], [c0, c1]);
        let j = JUCQ::new(vec![Term::Var(VarId(0))], vec![u.clone(), u]);
        assert_eq!(FolQuery::Jucq(j).equivalent_cq_count(), 4);
    }
}
