//! Reference evaluation of FOL queries over chased instances.
//!
//! This is the workspace's *oracle*: query answering via
//! `ans(q, ⟨T, A⟩) = q(chase(A, T))` restricted to all-constant tuples.
//! Property tests validate the reformulation route (PerfectRef + covers +
//! RDBMS) against it. It is a straightforward backtracking evaluator — not
//! the scalable engine (that is `obda-rdbms`).

use std::collections::{HashMap, HashSet};

use obda_dllite::{chase, ABox, ChaseInstance, ChaseTerm, IndividualId, TBox};

use crate::atom::Atom;
use crate::cq::CQ;
use crate::fol::FolQuery;
use crate::jucq::{JUCQ, JUSCQ};
use crate::scq::{Slot, SCQ, USCQ};
use crate::term::{Term, VarId};
use crate::ucq::UCQ;

/// A result tuple over chase terms.
pub type Row = Vec<ChaseTerm>;

/// Evaluate a CQ over a chase instance; returns the set of head-tuples
/// (which may contain nulls — callers filter for certain answers).
pub fn eval_cq(inst: &ChaseInstance, cq: &CQ) -> HashSet<Row> {
    let slots: Vec<Slot> = cq.atoms().iter().map(|a| Slot::single(*a)).collect();
    eval_slots(inst, &slots, cq.head())
}

/// Evaluate a UCQ (union of disjunct results).
pub fn eval_ucq(inst: &ChaseInstance, ucq: &UCQ) -> HashSet<Row> {
    let mut out = HashSet::new();
    for cq in ucq.cqs() {
        out.extend(eval_cq(inst, cq));
    }
    out
}

/// Evaluate an SCQ by backtracking over slots, trying each slot atom.
pub fn eval_scq(inst: &ChaseInstance, scq: &SCQ) -> HashSet<Row> {
    eval_slots(inst, scq.slots(), scq.head())
}

/// Evaluate a USCQ (union of SCQ results).
pub fn eval_uscq(inst: &ChaseInstance, uscq: &USCQ) -> HashSet<Row> {
    let mut out = HashSet::new();
    for scq in uscq.scqs() {
        out.extend(eval_scq(inst, scq));
    }
    out
}

/// Evaluate a JUCQ: evaluate each component UCQ over its own head, then
/// hash-join the component relations on shared variables and project the
/// JUCQ head.
pub fn eval_jucq(inst: &ChaseInstance, jucq: &JUCQ) -> HashSet<Row> {
    let components: Vec<(Vec<Term>, HashSet<Row>)> = jucq
        .components()
        .iter()
        .map(|c| (c.head().to_vec(), eval_ucq(inst, c)))
        .collect();
    join_components(components, jucq.head())
}

/// Evaluate a JUSCQ analogously.
pub fn eval_juscq(inst: &ChaseInstance, juscq: &JUSCQ) -> HashSet<Row> {
    let components: Vec<(Vec<Term>, HashSet<Row>)> = juscq
        .components()
        .iter()
        .map(|c| (c.head().to_vec(), eval_uscq(inst, c)))
        .collect();
    join_components(components, juscq.head())
}

/// Evaluate any dialect.
pub fn eval_fol(inst: &ChaseInstance, q: &FolQuery) -> HashSet<Row> {
    match q {
        FolQuery::Cq(q) => eval_cq(inst, q),
        FolQuery::Ucq(q) => eval_ucq(inst, q),
        FolQuery::Scq(q) => eval_scq(inst, q),
        FolQuery::Uscq(q) => eval_uscq(inst, q),
        FolQuery::Jucq(q) => eval_jucq(inst, q),
        FolQuery::Juscq(q) => eval_juscq(inst, q),
    }
}

/// Certain answers of a CQ against `⟨tbox, abox⟩`: evaluate over the chase
/// bounded at depth `|q| + 1` (sufficient by canonical-model locality) and
/// keep all-constant tuples.
pub fn certain_answers(tbox: &TBox, abox: &ABox, cq: &CQ) -> HashSet<Vec<IndividualId>> {
    let inst = chase(tbox, abox, cq.num_atoms() as u32 + 1);
    constants_only(eval_cq(&inst, cq))
}

/// Evaluate a FOL query over the *plain* ABox (no TBox) and keep constant
/// tuples — the right-hand side of the FOL-reducibility equation
/// `ans(q, ⟨T, A⟩) = ans(qFOL, ⟨∅, A⟩)`.
pub fn eval_over_abox(abox: &ABox, q: &FolQuery) -> HashSet<Vec<IndividualId>> {
    let inst = chase(&TBox::new(), abox, 0);
    constants_only(eval_fol(&inst, q))
}

/// Keep tuples made of constants only.
pub fn constants_only(rows: HashSet<Row>) -> HashSet<Vec<IndividualId>> {
    rows.into_iter()
        .filter_map(|row| {
            row.into_iter()
                .map(|t| match t {
                    ChaseTerm::Const(c) => Some(c),
                    ChaseTerm::Null(_) => None,
                })
                .collect::<Option<Vec<_>>>()
        })
        .collect()
}

// ---------------------------------------------------------------------
// internals
// ---------------------------------------------------------------------

type Assignment = HashMap<VarId, ChaseTerm>;

/// Backtracking evaluation of a conjunction of disjunctive slots.
fn eval_slots(inst: &ChaseInstance, slots: &[Slot], head: &[Term]) -> HashSet<Row> {
    // Order slots by estimated candidate count (cheapest first).
    let mut order: Vec<usize> = (0..slots.len()).collect();
    order.sort_by_key(|&i| slot_cardinality(inst, &slots[i]));
    let mut out = HashSet::new();
    let mut assign = Assignment::new();
    backtrack(inst, slots, &order, 0, &mut assign, head, &mut out);
    out
}

fn slot_cardinality(inst: &ChaseInstance, slot: &Slot) -> usize {
    slot.atoms()
        .iter()
        .map(|a| match a {
            Atom::Concept(c, _) => inst.concept_members(*c).len(),
            Atom::Role(r, _, _) => inst.role_pairs(*r).len(),
        })
        .sum()
}

fn backtrack(
    inst: &ChaseInstance,
    slots: &[Slot],
    order: &[usize],
    depth: usize,
    assign: &mut Assignment,
    head: &[Term],
    out: &mut HashSet<Row>,
) {
    if depth == order.len() {
        let row: Option<Row> = head
            .iter()
            .map(|t| match t {
                Term::Const(c) => Some(ChaseTerm::Const(*c)),
                Term::Var(v) => assign.get(v).copied(),
            })
            .collect();
        if let Some(row) = row {
            out.insert(row);
        }
        return;
    }
    let slot = &slots[order[depth]];
    for atom in slot.atoms() {
        match atom {
            Atom::Concept(c, t) => {
                for &member in inst.concept_members(*c) {
                    let mut trail = Vec::new();
                    if bind(*t, member, assign, &mut trail) {
                        backtrack(inst, slots, order, depth + 1, assign, head, out);
                    }
                    unwind(assign, trail);
                }
            }
            Atom::Role(r, t1, t2) => {
                for &(a, b) in inst.role_pairs(*r) {
                    let mut trail = Vec::new();
                    if bind(*t1, a, assign, &mut trail) && bind(*t2, b, assign, &mut trail) {
                        backtrack(inst, slots, order, depth + 1, assign, head, out);
                    }
                    unwind(assign, trail);
                }
            }
        }
    }
}

fn bind(t: Term, value: ChaseTerm, assign: &mut Assignment, trail: &mut Vec<VarId>) -> bool {
    match t {
        Term::Const(c) => value == ChaseTerm::Const(c),
        Term::Var(v) => match assign.get(&v) {
            Some(&prev) => prev == value,
            None => {
                assign.insert(v, value);
                trail.push(v);
                true
            }
        },
    }
}

fn unwind(assign: &mut Assignment, trail: Vec<VarId>) {
    for v in trail {
        assign.remove(&v);
    }
}

/// Sequential hash-join of component relations, projecting `head`.
fn join_components(components: Vec<(Vec<Term>, HashSet<Row>)>, head: &[Term]) -> HashSet<Row> {
    // Accumulated relation: variable layout + rows.
    let mut acc_vars: Vec<VarId> = Vec::new();
    let mut acc_rows: Vec<Row> = vec![Vec::new()]; // one empty row = identity
    for (comp_head, comp_rows) in components {
        let comp_vars: Vec<VarId> = comp_head.iter().filter_map(|t| t.as_var()).collect();
        // Positions of comp head terms to keep (vars not yet in acc).
        let mut new_vars: Vec<(usize, VarId)> = Vec::new();
        let mut join_pos: Vec<(usize, usize)> = Vec::new(); // (acc idx, comp idx)
        for (ci, t) in comp_head.iter().enumerate() {
            match t {
                Term::Var(v) => match acc_vars.iter().position(|w| w == v) {
                    Some(ai) => join_pos.push((ai, ci)),
                    None => {
                        if !new_vars.iter().any(|&(_, w)| w == *v) {
                            new_vars.push((ci, *v));
                        } else {
                            // Repeated var within one component head: must
                            // also match — treat as join against itself.
                            let first = new_vars.iter().find(|&&(_, w)| w == *v).unwrap().0;
                            join_pos.push((usize::MAX - first, ci)); // see below
                        }
                    }
                },
                Term::Const(_) => { /* constants don't join */ }
            }
        }
        let _ = comp_vars;
        // Constant head terms must equal the constant in every row — they
        // are produced as such by evaluation, so no check needed.

        // Filter comp rows for internal repeated-variable consistency.
        let internal: Vec<(usize, usize)> = join_pos
            .iter()
            .filter(|&&(ai, _)| ai > usize::MAX / 2)
            .map(|&(ai, ci)| (usize::MAX - ai, ci))
            .collect();
        let external: Vec<(usize, usize)> = join_pos
            .iter()
            .filter(|&&(ai, _)| ai <= usize::MAX / 2)
            .copied()
            .collect();
        let comp_rows: Vec<Row> = comp_rows
            .into_iter()
            .filter(|row| internal.iter().all(|&(p1, p2)| row[p1] == row[p2]))
            .collect();

        // Hash the component rows by join key.
        let mut index: HashMap<Vec<ChaseTerm>, Vec<&Row>> = HashMap::new();
        for row in &comp_rows {
            let key: Vec<ChaseTerm> = external.iter().map(|&(_, ci)| row[ci]).collect();
            index.entry(key).or_default().push(row);
        }
        let mut next_rows: Vec<Row> = Vec::new();
        for arow in &acc_rows {
            let key: Vec<ChaseTerm> = external.iter().map(|&(ai, _)| arow[ai]).collect();
            if let Some(matches) = index.get(&key) {
                for m in matches {
                    let mut combined = arow.clone();
                    for &(ci, _) in &new_vars {
                        combined.push(m[ci]);
                    }
                    next_rows.push(combined);
                }
            }
        }
        acc_vars.extend(new_vars.iter().map(|&(_, v)| v));
        acc_rows = next_rows;
        if acc_rows.is_empty() {
            break;
        }
    }
    // Project the head.
    let mut out = HashSet::new();
    'rows: for row in acc_rows {
        let mut projected = Vec::with_capacity(head.len());
        for t in head {
            match t {
                Term::Const(c) => projected.push(ChaseTerm::Const(*c)),
                Term::Var(v) => match acc_vars.iter().position(|w| w == v) {
                    Some(i) => projected.push(row[i]),
                    None => continue 'rows, // unexported head var: no answer
                },
            }
        }
        out.insert(projected);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{example1_abox, example1_tbox, ConceptId, Vocabulary};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// Example 3: q(x) ← PhDStudent(x) ∧ worksWith(y, x) answers {Damian}.
    #[test]
    fn example3_certain_answers() {
        let (mut voc, tbox) = example1_tbox();
        let abox = example1_abox(&mut voc);
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(phd, v(0)), Atom::Role(works, v(1), v(0))],
        );
        let ans = certain_answers(&tbox, &abox, &q);
        let damian = voc.find_individual("Damian").unwrap();
        assert_eq!(ans, HashSet::from([vec![damian]]));
        // Evaluating q against the ABox only yields no answer (paper
        // Example 3, last remark).
        let plain = eval_over_abox(&abox, &FolQuery::Cq(q));
        assert!(plain.is_empty());
    }

    #[test]
    fn ucq_unions_disjunct_answers() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let x = voc.individual("x");
        let y = voc.individual("y");
        let mut abox = ABox::new();
        abox.assert_concept(a, x);
        abox.assert_concept(b, y);
        let qa = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(a, v(0))]);
        let qb = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(b, v(0))]);
        let u = UCQ::from_cqs(vec![v(0)], [qa, qb]);
        let ans = eval_over_abox(&abox, &FolQuery::Ucq(u));
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn jucq_joins_components() {
        // r(x, y) joined with A(y) through a 2-component JUCQ.
        let mut voc = Vocabulary::new();
        let r = voc.role("r");
        let a = voc.concept("A");
        let i1 = voc.individual("i1");
        let i2 = voc.individual("i2");
        let i3 = voc.individual("i3");
        let mut abox = ABox::new();
        abox.assert_role(r, i1, i2);
        abox.assert_role(r, i1, i3);
        abox.assert_concept(a, i2);
        let c1 = UCQ::single(CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![Atom::Role(r, v(0), v(1))],
        ));
        let c2 = UCQ::single(CQ::with_var_head(
            vec![VarId(1)],
            vec![Atom::Concept(a, v(1))],
        ));
        let j = JUCQ::new(vec![v(0)], vec![c1, c2]);
        let ans = eval_over_abox(&abox, &FolQuery::Jucq(j));
        assert_eq!(ans, HashSet::from([vec![i1]]));
    }

    #[test]
    fn scq_slot_disjunction() {
        // (A(x) ∨ B(x)) as a single slot.
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let x = voc.individual("x");
        let y = voc.individual("y");
        let mut abox = ABox::new();
        abox.assert_concept(a, x);
        abox.assert_concept(b, y);
        let slot = Slot::new(vec![Atom::Concept(a, v(0)), Atom::Concept(b, v(0))]);
        let scq = SCQ::new(vec![v(0)], vec![slot]);
        let ans = eval_over_abox(&abox, &FolQuery::Scq(scq));
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn boolean_query_yields_empty_tuple() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let x = voc.individual("x");
        let mut abox = ABox::new();
        abox.assert_concept(a, x);
        let q = CQ::with_var_head(vec![], vec![Atom::Concept(a, v(0))]);
        let ans = eval_over_abox(&abox, &FolQuery::Cq(q));
        assert_eq!(ans, HashSet::from([vec![]]), "true is the empty tuple");
        let q2 = CQ::with_var_head(vec![], vec![Atom::Concept(ConceptId(99), v(0))]);
        let ans2 = eval_over_abox(&abox, &FolQuery::Cq(q2));
        assert!(ans2.is_empty(), "false is the empty set");
    }

    #[test]
    fn nulls_are_filtered_from_certain_answers() {
        // A ⊑ ∃r: q(x, y) ← r(x, y) has no certain answer for y (the
        // witness is a null), but q'(x) ← r(x, y) has x.
        let kbtext = "A <= exists r\nA(a)";
        let kb = obda_dllite::KnowledgeBase::parse(kbtext).unwrap();
        let r = kb.voc().find_role("r").unwrap();
        let q2 = CQ::with_var_head(vec![VarId(0), VarId(1)], vec![Atom::Role(r, v(0), v(1))]);
        let ans2 = certain_answers(kb.tbox(), kb.abox(), &q2);
        assert!(ans2.is_empty());
        let q1 = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(r, v(0), v(1))]);
        let ans1 = certain_answers(kb.tbox(), kb.abox(), &q1);
        assert_eq!(ans1.len(), 1);
    }

    #[test]
    fn constants_in_atoms_filter() {
        let mut voc = Vocabulary::new();
        let r = voc.role("r");
        let i1 = voc.individual("i1");
        let i2 = voc.individual("i2");
        let mut abox = ABox::new();
        abox.assert_role(r, i1, i2);
        abox.assert_role(r, i2, i2);
        let q = CQ::new(
            vec![Term::Var(VarId(0))],
            vec![Atom::Role(r, v(0), Term::Const(i2))],
        );
        let ans = eval_over_abox(&abox, &FolQuery::Cq(q));
        assert_eq!(ans.len(), 2);
        let q_fixed = CQ::new(
            vec![Term::Var(VarId(0))],
            vec![Atom::Role(r, Term::Const(i1), v(0))],
        );
        let ans = eval_over_abox(&abox, &FolQuery::Cq(q_fixed));
        assert_eq!(ans, HashSet::from([vec![i2]]));
    }

    use obda_dllite::ABox;
}
