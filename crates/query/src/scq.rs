//! Semi-conjunctive queries (SCQ) and unions thereof (USCQ).
//!
//! Table 4: an SCQ is a join of unions of single-atom CQs —
//! `q(x̄) ← (a¹₁ ∨ · · · ∨ a^k₁) ∧ · · · ∧ (a¹ₙ ∨ · · · ∨ a^kₙ)`.
//! We additionally require all atoms of one disjunctive *slot* to use the
//! same variable set, which keeps each slot translatable to a plain SQL
//! `UNION` of single-table selects (the factorization in
//! `obda-reform::uscq` only merges such atoms).

use std::collections::BTreeSet;
use std::fmt;

use obda_dllite::Vocabulary;

use crate::atom::Atom;
use crate::term::{Term, VarId};

/// One disjunctive slot of an SCQ: `a¹ ∨ · · · ∨ aᵏ`, all over the same
/// variable set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Slot {
    atoms: Vec<Atom>,
}

impl Slot {
    /// Build a slot; panics if the atoms do not share one variable set.
    pub fn new(atoms: Vec<Atom>) -> Self {
        assert!(!atoms.is_empty(), "slot needs at least one atom");
        let first = var_set(&atoms[0]);
        for a in &atoms[1..] {
            assert_eq!(var_set(a), first, "slot atoms must share one variable set");
        }
        Slot { atoms }
    }

    pub fn single(atom: Atom) -> Self {
        Slot { atoms: vec![atom] }
    }

    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The shared variable set of the slot.
    pub fn vars(&self) -> BTreeSet<VarId> {
        var_set(&self.atoms[0])
    }

    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Try to add an atom; fails (returning `false`) if variable sets
    /// differ or the atom is already present.
    pub fn try_push(&mut self, atom: Atom) -> bool {
        if var_set(&atom) != self.vars() || self.atoms.contains(&atom) {
            return false;
        }
        self.atoms.push(atom);
        true
    }
}

fn var_set(a: &Atom) -> BTreeSet<VarId> {
    a.vars().collect()
}

/// A semi-conjunctive query: a conjunction of slots.
#[derive(Clone, Debug, PartialEq)]
pub struct SCQ {
    head: Vec<Term>,
    slots: Vec<Slot>,
}

impl SCQ {
    pub fn new(head: Vec<Term>, slots: Vec<Slot>) -> Self {
        SCQ { head, slots }
    }

    /// The trivial SCQ of a CQ: one singleton slot per atom.
    pub fn from_cq(cq: &crate::cq::CQ) -> Self {
        SCQ {
            head: cq.head().to_vec(),
            slots: cq.atoms().iter().map(|a| Slot::single(*a)).collect(),
        }
    }

    pub fn head(&self) -> &[Term] {
        &self.head
    }

    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of CQs this SCQ is equivalent to (product of slot widths).
    pub fn equivalent_cq_count(&self) -> usize {
        self.slots.iter().map(Slot::len).product()
    }

    /// Total atom count.
    pub fn total_atoms(&self) -> usize {
        self.slots.iter().map(Slot::len).sum()
    }

    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        struct D<'a>(&'a SCQ, &'a Vocabulary);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for (i, slot) in self.0.slots.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ^ ")?;
                    }
                    write!(f, "(")?;
                    for (j, a) in slot.atoms.iter().enumerate() {
                        if j > 0 {
                            write!(f, " v ")?;
                        }
                        write!(f, "{}", a.display(self.1))?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
        D(self, voc)
    }
}

/// A union of SCQs.
#[derive(Clone, Debug, PartialEq)]
pub struct USCQ {
    head: Vec<Term>,
    scqs: Vec<SCQ>,
}

impl USCQ {
    /// Member SCQs must share the USCQ head *positionally* (same arity):
    /// like UCQ disjuncts, an SCQ may specialize the nominal head (e.g.
    /// `(x, x)` under a nominal `(x, y)` after a reduce step) — evaluation
    /// projects each SCQ's own head, so position `i` always carries the
    /// nominal variable `i`'s value.
    pub fn new(head: Vec<Term>, scqs: Vec<SCQ>) -> Self {
        for s in &scqs {
            assert_eq!(
                s.head().len(),
                head.len(),
                "all SCQs share the USCQ head arity"
            );
        }
        USCQ { head, scqs }
    }

    pub fn head(&self) -> &[Term] {
        &self.head
    }

    pub fn scqs(&self) -> &[SCQ] {
        &self.scqs
    }

    pub fn len(&self) -> usize {
        self.scqs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.scqs.is_empty()
    }

    /// Number of plain CQs this USCQ covers.
    pub fn equivalent_cq_count(&self) -> usize {
        self.scqs.iter().map(SCQ::equivalent_cq_count).sum()
    }

    pub fn total_atoms(&self) -> usize {
        self.scqs.iter().map(SCQ::total_atoms).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CQ;
    use obda_dllite::{ConceptId, RoleId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    #[test]
    fn slot_enforces_same_variable_set() {
        let a = Atom::Role(RoleId(0), v(0), v(1));
        let b = Atom::Role(RoleId(1), v(0), v(1));
        let mut slot = Slot::new(vec![a, b]);
        assert_eq!(slot.len(), 2);
        // r2(x, z) has a different variable set.
        assert!(!slot.try_push(Atom::Role(RoleId(2), v(0), v(2))));
        // Swapped positions keep the same *set* — allowed.
        assert!(slot.try_push(Atom::Role(RoleId(2), v(1), v(0))));
        // Duplicates rejected.
        assert!(!slot.try_push(a));
    }

    #[test]
    #[should_panic(expected = "share one variable set")]
    fn slot_constructor_panics_on_mismatch() {
        Slot::new(vec![
            Atom::Role(RoleId(0), v(0), v(1)),
            Atom::Concept(ConceptId(0), v(0)),
        ]);
    }

    #[test]
    fn equivalent_cq_count_is_product() {
        let slot1 = Slot::new(vec![
            Atom::Role(RoleId(0), v(0), v(1)),
            Atom::Role(RoleId(1), v(0), v(1)),
        ]);
        let slot2 = Slot::single(Atom::Concept(ConceptId(0), v(0)));
        let scq = SCQ::new(vec![v(0)], vec![slot1, slot2]);
        assert_eq!(scq.equivalent_cq_count(), 2);
        assert_eq!(scq.total_atoms(), 3);
        let uscq = USCQ::new(
            vec![v(0)],
            vec![
                scq.clone(),
                SCQ::new(
                    vec![v(0)],
                    vec![Slot::single(Atom::Concept(ConceptId(1), v(0)))],
                ),
            ],
        );
        assert_eq!(uscq.equivalent_cq_count(), 3);
    }

    #[test]
    fn from_cq_builds_singleton_slots() {
        let cq = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(0), v(1)),
            ],
        );
        let scq = SCQ::from_cq(&cq);
        assert_eq!(scq.num_slots(), 2);
        assert_eq!(scq.equivalent_cq_count(), 1);
    }
}
