//! Query atoms: `A(t)` over a concept or `R(t, t')` over a role.

use std::fmt;

use obda_dllite::{ConceptId, PredId, RoleId, Vocabulary};

use crate::term::{Subst, Term, VarId};

/// An atom of a conjunctive query (§2.2): `A(t)` or `R(t, t')` where `t`,
/// `t'` are variables or constants.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Atom {
    Concept(ConceptId, Term),
    Role(RoleId, Term, Term),
}

impl Atom {
    pub fn pred(&self) -> PredId {
        match self {
            Atom::Concept(c, _) => PredId::Concept(*c),
            Atom::Role(r, _, _) => PredId::Role(*r),
        }
    }

    /// Terms in position order.
    pub fn terms(&self) -> impl Iterator<Item = Term> + '_ {
        let (a, b) = match self {
            Atom::Concept(_, t) => (*t, None),
            Atom::Role(_, t1, t2) => (*t1, Some(*t2)),
        };
        std::iter::once(a).chain(b)
    }

    /// Variables (with repetition, in position order).
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms().filter_map(Term::as_var)
    }

    /// Apply a substitution to all terms.
    pub fn apply(&self, subst: &Subst) -> Atom {
        match self {
            Atom::Concept(c, t) => Atom::Concept(*c, subst.resolve(*t)),
            Atom::Role(r, t1, t2) => Atom::Role(*r, subst.resolve(*t1), subst.resolve(*t2)),
        }
    }

    /// Rewrite every variable through `f` (used for freshening/renaming).
    pub fn map_vars(&self, mut f: impl FnMut(VarId) -> Term) -> Atom {
        let map_term = |t: Term, f: &mut dyn FnMut(VarId) -> Term| match t {
            Term::Var(v) => f(v),
            c => c,
        };
        match self {
            Atom::Concept(c, t) => Atom::Concept(*c, map_term(*t, &mut f)),
            Atom::Role(r, t1, t2) => {
                let a = map_term(*t1, &mut f);
                let b = map_term(*t2, &mut f);
                Atom::Role(*r, a, b)
            }
        }
    }

    /// Do the two atoms share a variable (i.e. join)?
    pub fn shares_var(&self, other: &Atom) -> bool {
        self.vars().any(|v| other.vars().any(|w| w == v))
    }

    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Atom, &'a Vocabulary);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    Atom::Concept(c, t) => {
                        write!(f, "{}({})", self.1.concept_name(*c), fmt_term(*t, self.1))
                    }
                    Atom::Role(r, t1, t2) => write!(
                        f,
                        "{}({}, {})",
                        self.1.role_name(*r),
                        fmt_term(*t1, self.1),
                        fmt_term(*t2, self.1)
                    ),
                }
            }
        }
        D(self, voc)
    }
}

/// Render a term with individual names resolved.
pub fn fmt_term(t: Term, voc: &Vocabulary) -> String {
    match t {
        Term::Var(v) => format!("?{}", v.0),
        Term::Const(c) => voc.individual_name(c).to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::IndividualId;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    #[test]
    fn terms_and_vars() {
        let a = Atom::Role(RoleId(0), v(0), Term::Const(IndividualId(5)));
        assert_eq!(a.terms().count(), 2);
        let vars: Vec<VarId> = a.vars().collect();
        assert_eq!(vars, vec![VarId(0)]);
        let c = Atom::Concept(ConceptId(0), v(3));
        assert_eq!(c.terms().count(), 1);
    }

    #[test]
    fn apply_substitution() {
        let mut s = Subst::new();
        s.bind(VarId(0), v(1).as_var().map(Term::Var).unwrap());
        let a = Atom::Role(RoleId(0), v(0), v(2));
        assert_eq!(a.apply(&s), Atom::Role(RoleId(0), v(1), v(2)));
    }

    #[test]
    fn shares_var_detects_joins() {
        let a = Atom::Role(RoleId(0), v(0), v(1));
        let b = Atom::Concept(ConceptId(0), v(1));
        let c = Atom::Concept(ConceptId(0), v(2));
        assert!(a.shares_var(&b));
        assert!(!a.shares_var(&c));
        // Constants never connect atoms.
        let d = Atom::Concept(ConceptId(1), Term::Const(IndividualId(0)));
        let e = Atom::Concept(ConceptId(2), Term::Const(IndividualId(0)));
        assert!(!d.shares_var(&e));
    }

    #[test]
    fn map_vars_renames() {
        let a = Atom::Role(RoleId(0), v(0), v(1));
        let renamed = a.map_vars(|var| Term::Var(VarId(var.0 + 10)));
        assert_eq!(renamed, Atom::Role(RoleId(0), v(10), v(11)));
    }
}
