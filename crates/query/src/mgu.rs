//! Most general unifiers of query atoms.
//!
//! The *reduce* step of the CQ-to-UCQ technique (§2.2, Example 4)
//! specializes two atoms of a query into their mgu. Unification here is
//! first-order unification restricted to flat terms (variables and
//! constants) — no function symbols, so it always terminates in one pass
//! per position.

use crate::atom::Atom;
use crate::term::{Subst, Term, VarId};

/// Compute the most general unifier of two atoms, if any.
///
/// Returns a substitution `σ` with `a.apply(σ) == b.apply(σ)`. Atoms over
/// different predicates never unify. When a variable meets a variable, the
/// larger id is bound to the smaller so that unifiers are deterministic.
pub fn mgu(a: &Atom, b: &Atom) -> Option<Subst> {
    let pairs: Vec<(Term, Term)> = match (a, b) {
        (Atom::Concept(c1, t1), Atom::Concept(c2, t2)) if c1 == c2 => vec![(*t1, *t2)],
        (Atom::Role(r1, s1, o1), Atom::Role(r2, s2, o2)) if r1 == r2 => {
            vec![(*s1, *s2), (*o1, *o2)]
        }
        _ => return None,
    };
    let mut subst = Subst::new();
    for (x, y) in pairs {
        let rx = subst.resolve(x);
        let ry = subst.resolve(y);
        match (rx, ry) {
            (Term::Const(c1), Term::Const(c2)) => {
                if c1 != c2 {
                    return None;
                }
            }
            (Term::Var(v), t @ Term::Const(_)) | (t @ Term::Const(_), Term::Var(v)) => {
                subst.bind(v, t);
            }
            (Term::Var(v1), Term::Var(v2)) => {
                if v1 != v2 {
                    // Deterministic orientation: bind larger to smaller.
                    if v1.0 < v2.0 {
                        subst.bind(v2, Term::Var(v1));
                    } else {
                        subst.bind(v1, Term::Var(v2));
                    }
                }
            }
        }
    }
    Some(subst)
}

/// Unify, preferring to keep *head* variables as representatives.
///
/// The reduce step of PerfectRef must not rename head variables away: in
/// paper Example 7 the mgu of `supervisedBy(x, y)` and `supervisedBy(z, y)`
/// is taken to be `supervisedBy(x, y)` *because `x` is the head variable*.
/// `mgu_preferring` reorients variable-variable bindings so that variables
/// in `keep` survive whenever possible (two `keep` variables meeting still
/// unify, oriented by id).
pub fn mgu_preferring(a: &Atom, b: &Atom, keep: &[VarId]) -> Option<Subst> {
    let raw = mgu(a, b)?;
    // Group the unified variables into equivalence classes keyed by their
    // terminal representative under `raw`, then re-pick each class's
    // representative: a constant if present, otherwise the smallest kept
    // variable, otherwise the smallest variable. Rebinding whole classes
    // (rather than flipping individual edges) keeps the substitution
    // acyclic no matter how chains interleave.
    let mut classes: std::collections::HashMap<Term, Vec<VarId>> = std::collections::HashMap::new();
    for (v, _) in raw.iter() {
        let rep = raw.resolve(Term::Var(v));
        classes.entry(rep).or_default().push(v);
    }
    let mut oriented = Subst::new();
    for (rep, mut members) in classes {
        match rep {
            Term::Const(_) => {
                for v in members {
                    oriented.bind(v, rep);
                }
            }
            Term::Var(rv) => {
                members.push(rv);
                members.sort_unstable();
                members.dedup();
                let chosen = members
                    .iter()
                    .copied()
                    .filter(|m| keep.contains(m))
                    .min()
                    .unwrap_or(members[0]);
                for v in members {
                    if v != chosen {
                        oriented.bind(v, Term::Var(chosen));
                    }
                }
            }
        }
    }
    debug_assert_eq!(a.apply(&oriented), b.apply(&oriented));
    Some(oriented)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{ConceptId, IndividualId, RoleId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }
    fn c(i: u32) -> Term {
        Term::Const(IndividualId(i))
    }

    #[test]
    fn different_predicates_never_unify() {
        let a = Atom::Concept(ConceptId(0), v(0));
        let b = Atom::Concept(ConceptId(1), v(0));
        assert!(mgu(&a, &b).is_none());
        let r = Atom::Role(RoleId(0), v(0), v(1));
        let s = Atom::Role(RoleId(1), v(0), v(1));
        assert!(mgu(&r, &s).is_none());
        assert!(mgu(&a, &r).is_none());
    }

    #[test]
    fn var_var_unification_is_deterministic() {
        let a = Atom::Role(RoleId(0), v(0), v(2));
        let b = Atom::Role(RoleId(0), v(1), v(2));
        let s = mgu(&a, &b).unwrap();
        assert_eq!(a.apply(&s), b.apply(&s));
        // Larger id bound to smaller.
        assert_eq!(s.resolve(v(1)), v(0));
    }

    #[test]
    fn var_const_unification() {
        let a = Atom::Concept(ConceptId(0), v(0));
        let b = Atom::Concept(ConceptId(0), c(7));
        let s = mgu(&a, &b).unwrap();
        assert_eq!(s.resolve(v(0)), c(7));
    }

    #[test]
    fn const_clash_fails() {
        let a = Atom::Concept(ConceptId(0), c(1));
        let b = Atom::Concept(ConceptId(0), c(2));
        assert!(mgu(&a, &b).is_none());
    }

    #[test]
    fn chained_positions() {
        // r(x, x) vs r(y, c): x↦y then y↦c.
        let a = Atom::Role(RoleId(0), v(0), v(0));
        let b = Atom::Role(RoleId(0), v(1), c(3));
        let s = mgu(&a, &b).unwrap();
        assert_eq!(a.apply(&s), b.apply(&s));
        assert_eq!(s.resolve(v(0)), c(3));
        assert_eq!(s.resolve(v(1)), c(3));
    }

    #[test]
    fn example7_mgu_keeps_head_variable() {
        // supervisedBy(x, y) ∧ supervisedBy(z, y) with head x: the unifier
        // must keep x (bind z := x), yielding supervisedBy(x, y).
        let x = VarId(0);
        let y = VarId(1);
        let z = VarId(2);
        let a = Atom::Role(RoleId(0), Term::Var(x), Term::Var(y));
        let b = Atom::Role(RoleId(0), Term::Var(z), Term::Var(y));
        let s = mgu_preferring(&a, &b, &[x]).unwrap();
        assert_eq!(
            a.apply(&s),
            Atom::Role(RoleId(0), Term::Var(x), Term::Var(y))
        );
        assert_eq!(s.resolve(Term::Var(z)), Term::Var(x));
    }

    #[test]
    fn preferring_flips_even_when_id_order_disagrees() {
        // Head var has the *larger* id; plain mgu would eliminate it.
        let head = VarId(5);
        let other = VarId(1);
        let a = Atom::Concept(ConceptId(0), Term::Var(head));
        let b = Atom::Concept(ConceptId(0), Term::Var(other));
        let s = mgu_preferring(&a, &b, &[head]).unwrap();
        assert_eq!(s.resolve(Term::Var(other)), Term::Var(head));
    }

    #[test]
    fn identical_atoms_unify_with_empty_subst() {
        let a = Atom::Role(RoleId(0), v(0), v(1));
        let s = mgu(&a, &a).unwrap();
        assert!(s.is_empty());
    }
}
