//! # obda-query
//!
//! FOL query dialects and operations for the cover-based query answering
//! framework: the six dialects of the paper's Table 4 (CQ, SCQ, UCQ, USCQ,
//! JUCQ, JUSCQ), most-general unifiers, homomorphisms and containment, UCQ
//! minimization, canonical forms, a reference evaluator over chased
//! instances (the certain-answer oracle), and seeded random generators for
//! property tests.

pub mod atom;
pub mod canonical;
pub mod cq;
pub mod eval;
pub mod fol;
pub mod homomorphism;
pub mod jucq;
pub mod mgu;
pub mod minimize;
pub mod scq;
pub mod term;
pub mod testkit;
pub mod ucq;

pub use atom::Atom;
pub use canonical::{canonical_key, canonicalize, same_modulo_renaming, CanonKey};
pub use cq::{connected_subset, CQ};
pub use eval::{certain_answers, eval_fol, eval_over_abox};
pub use fol::FolQuery;
pub use homomorphism::{contained_in, contained_in_union, equivalent, homomorphism};
pub use jucq::{JUCQ, JUSCQ};
pub use mgu::{mgu, mgu_preferring};
pub use minimize::{cq_core, minimize_ucq};
pub use scq::{Slot, SCQ, USCQ};
pub use term::{Subst, Term, VarId};
pub use ucq::UCQ;
