//! Unions of conjunctive queries.

use std::collections::HashSet;
use std::fmt;

use obda_dllite::Vocabulary;

use crate::canonical::{canonical_key, CanonKey};
use crate::cq::CQ;
use crate::term::Term;

/// A UCQ: `q(x̄) ← CQ1(x̄) ∨ · · · ∨ CQn(x̄)` (Table 4). All disjuncts share
/// the same head. Disjuncts are deduplicated modulo existential-variable
/// renaming and atom order.
#[derive(Clone, Debug, PartialEq)]
pub struct UCQ {
    head: Vec<Term>,
    cqs: Vec<CQ>,
    keys: HashSet<CanonKey>,
}

impl UCQ {
    /// An empty union with the given head (unsatisfiable query).
    pub fn empty(head: Vec<Term>) -> Self {
        UCQ {
            head,
            cqs: Vec::new(),
            keys: HashSet::new(),
        }
    }

    /// Single-disjunct UCQ.
    pub fn single(cq: CQ) -> Self {
        let mut u = UCQ::empty(cq.head().to_vec());
        u.push(cq);
        u
    }

    /// Build from disjuncts; panics if heads disagree (programming error).
    pub fn from_cqs(head: Vec<Term>, cqs: impl IntoIterator<Item = CQ>) -> Self {
        let mut u = UCQ::empty(head);
        for cq in cqs {
            u.push(cq);
        }
        u
    }

    /// Add a disjunct; returns `true` if it was new modulo renaming.
    ///
    /// Disjunct heads must agree with the UCQ head *positionally* (same
    /// arity): a disjunct may specialize the nominal head — e.g. a reduce
    /// step unifying two answer variables yields head `(x, x)` under a
    /// nominal head `(x, y)` — and evaluation projects each disjunct's own
    /// head, so position `i` always carries the nominal variable `i`'s
    /// value.
    pub fn push(&mut self, cq: CQ) -> bool {
        assert_eq!(
            cq.head().len(),
            self.head.len(),
            "all disjuncts share the UCQ head arity"
        );
        let key = canonical_key(&cq);
        if self.keys.insert(key) {
            self.cqs.push(cq);
            true
        } else {
            false
        }
    }

    pub fn head(&self) -> &[Term] {
        &self.head
    }

    pub fn cqs(&self) -> &[CQ] {
        &self.cqs
    }

    /// Number of union terms — the paper's rough complexity measure for a
    /// reformulation (§6.1: "unions of 35 to 667 CQs").
    pub fn len(&self) -> usize {
        self.cqs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cqs.is_empty()
    }

    /// Total number of atoms across all disjuncts.
    pub fn total_atoms(&self) -> usize {
        self.cqs.iter().map(CQ::num_atoms).sum()
    }

    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        struct D<'a>(&'a UCQ, &'a Vocabulary);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for (i, cq) in self.0.cqs.iter().enumerate() {
                    if i > 0 {
                        writeln!(f, " UNION")?;
                    }
                    write!(f, "  {}", cq.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, voc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::VarId;
    use obda_dllite::{ConceptId, RoleId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    #[test]
    fn push_deduplicates_modulo_renaming() {
        let cq1 = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(1))]);
        let cq2 = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(5))]);
        let mut u = UCQ::single(cq1);
        assert!(!u.push(cq2), "renamed duplicate rejected");
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn distinct_disjuncts_accumulate() {
        let cq1 = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(0), v(0))]);
        let cq2 = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(1), v(0))]);
        let u = UCQ::from_cqs(vec![v(0)], [cq1, cq2]);
        assert_eq!(u.len(), 2);
        assert_eq!(u.total_atoms(), 2);
    }

    #[test]
    #[should_panic(expected = "share the UCQ head arity")]
    fn mismatched_head_arity_panics() {
        let cq1 = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(0), v(0))]);
        let cq2 = CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![Atom::Role(RoleId(0), v(0), v(1))],
        );
        let mut u = UCQ::single(cq1);
        u.push(cq2);
    }

    #[test]
    fn specialized_heads_are_accepted() {
        // A disjunct whose head unified two answer variables.
        let nominal = CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![Atom::Role(RoleId(0), v(0), v(1))],
        );
        let specialized = CQ::with_var_head(
            vec![VarId(0), VarId(0)],
            vec![Atom::Role(RoleId(0), v(0), v(0))],
        );
        let mut u = UCQ::single(nominal);
        assert!(u.push(specialized));
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn empty_ucq_is_unsatisfiable_marker() {
        let u = UCQ::empty(vec![v(0)]);
        assert!(u.is_empty());
        assert_eq!(u.len(), 0);
    }
}
