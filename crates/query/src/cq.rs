//! Conjunctive queries (select-project-join queries).
//!
//! `q(x̄) ← a1 ∧ · · · ∧ an` — §2.2 of the paper. The head is a vector of
//! terms: usually variables, but reformulation steps (most general unifiers
//! meeting constants) can specialize a head variable to a constant, so the
//! general form is kept.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use obda_dllite::Vocabulary;

use crate::atom::{fmt_term, Atom};
use crate::term::{Subst, Term, VarId};

/// A conjunctive query. Body atoms are kept as a duplicate-free vector in
/// insertion order.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CQ {
    head: Vec<Term>,
    atoms: Vec<Atom>,
}

impl CQ {
    /// Build a CQ; duplicate atoms are dropped (CQ bodies are sets).
    pub fn new(head: Vec<Term>, atoms: Vec<Atom>) -> Self {
        let mut seen = Vec::new();
        for a in atoms {
            if !seen.contains(&a) {
                seen.push(a);
            }
        }
        CQ { head, atoms: seen }
    }

    /// A CQ with an all-variable head.
    pub fn with_var_head(head: Vec<VarId>, atoms: Vec<Atom>) -> Self {
        Self::new(head.into_iter().map(Term::Var).collect(), atoms)
    }

    pub fn head(&self) -> &[Term] {
        &self.head
    }

    /// Head variables in position order (skipping constants).
    pub fn head_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.head.iter().filter_map(|t| t.as_var())
    }

    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// All variables of the query (body ∪ head), sorted.
    pub fn all_vars(&self) -> BTreeSet<VarId> {
        let mut s: BTreeSet<VarId> = self.atoms.iter().flat_map(|a| a.vars()).collect();
        s.extend(self.head_vars());
        s
    }

    /// Existential (non-head) variables, sorted.
    pub fn existential_vars(&self) -> BTreeSet<VarId> {
        let head: BTreeSet<VarId> = self.head_vars().collect();
        self.atoms
            .iter()
            .flat_map(|a| a.vars())
            .filter(|v| !head.contains(v))
            .collect()
    }

    /// Number of occurrences of each variable across body atom positions.
    pub fn var_occurrences(&self) -> HashMap<VarId, usize> {
        let mut m = HashMap::new();
        for a in &self.atoms {
            for v in a.vars() {
                *m.entry(v).or_insert(0) += 1;
            }
        }
        m
    }

    /// Is `v` *unbound* in the PerfectRef sense: an existential variable
    /// with a single occurrence in the body? Such a variable behaves like
    /// the anonymous `_` of the reformulation literature.
    pub fn is_unbound(&self, v: VarId) -> bool {
        if self.head_vars().any(|h| h == v) {
            return false;
        }
        self.var_occurrences().get(&v).copied().unwrap_or(0) == 1
    }

    /// First variable id strictly greater than every id in use.
    pub fn fresh_var(&self) -> VarId {
        let max = self
            .all_vars()
            .iter()
            .map(|v| v.0)
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        VarId(max)
    }

    /// Apply a substitution to body and head.
    pub fn apply(&self, subst: &Subst) -> CQ {
        let head = self.head.iter().map(|&t| subst.resolve(t)).collect();
        let atoms = self.atoms.iter().map(|a| a.apply(subst)).collect();
        CQ::new(head, atoms)
    }

    /// Rename every variable by adding `offset` (for renaming two queries
    /// apart before unification).
    pub fn shift_vars(&self, offset: u32) -> CQ {
        let head = self
            .head
            .iter()
            .map(|&t| match t {
                Term::Var(v) => Term::Var(VarId(v.0 + offset)),
                c => c,
            })
            .collect();
        let atoms = self
            .atoms
            .iter()
            .map(|a| a.map_vars(|v| Term::Var(VarId(v.0 + offset))))
            .collect();
        CQ::new(head, atoms)
    }

    /// Is the query connected (§2.2: queries without cartesian products)?
    /// Atoms are connected when they share a variable. Empty and
    /// single-atom queries are connected.
    pub fn is_connected(&self) -> bool {
        connected_subset(&self.atoms, &(0..self.atoms.len()).collect::<Vec<_>>())
    }

    /// Remove the atom at `idx`, keeping head and the rest.
    pub fn without_atom(&self, idx: usize) -> CQ {
        let mut atoms = self.atoms.clone();
        atoms.remove(idx);
        CQ {
            head: self.head.clone(),
            atoms,
        }
    }

    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        struct D<'a>(&'a CQ, &'a Vocabulary);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "q(")?;
                for (i, t) in self.0.head.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", fmt_term(*t, self.1))?;
                }
                write!(f, ") <- ")?;
                for (i, a) in self.0.atoms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ^ ")?;
                    }
                    write!(f, "{}", a.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, voc)
    }
}

/// Are the atoms at `indices` of `atoms` connected through shared
/// variables? (Union-find over the induced sub-hypergraph.)
pub fn connected_subset(atoms: &[Atom], indices: &[usize]) -> bool {
    if indices.len() <= 1 {
        return true;
    }
    let n = indices.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    // Map each variable to the first atom (within the subset) using it.
    let mut var_owner: HashMap<VarId, usize> = HashMap::new();
    for (pos, &idx) in indices.iter().enumerate() {
        for v in atoms[idx].vars() {
            match var_owner.get(&v) {
                Some(&owner) => {
                    let (a, b) = (find(&mut parent, owner), find(&mut parent, pos));
                    if a != b {
                        parent[a] = b;
                    }
                }
                None => {
                    var_owner.insert(v, pos);
                }
            }
        }
    }
    let root = find(&mut parent, 0);
    (1..n).all(|i| find(&mut parent, i) == root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{ConceptId, IndividualId, RoleId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// The query of Example 3: q(x) ← PhDStudent(x) ∧ worksWith(y, x).
    fn example3_cq() -> CQ {
        CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(1), v(0)),
            ],
        )
    }

    #[test]
    fn duplicate_atoms_collapse() {
        let a = Atom::Concept(ConceptId(0), v(0));
        let q = CQ::with_var_head(vec![VarId(0)], vec![a, a]);
        assert_eq!(q.num_atoms(), 1);
    }

    #[test]
    fn vars_and_existentials() {
        let q = example3_cq();
        let all: Vec<VarId> = q.all_vars().into_iter().collect();
        assert_eq!(all, vec![VarId(0), VarId(1)]);
        let ex: Vec<VarId> = q.existential_vars().into_iter().collect();
        assert_eq!(ex, vec![VarId(1)]);
    }

    #[test]
    fn unbound_variable_detection() {
        let q = example3_cq();
        assert!(q.is_unbound(VarId(1)), "y occurs once, not in head");
        assert!(!q.is_unbound(VarId(0)), "x is a head variable");
        // A variable occurring twice is bound even if existential.
        let q2 = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Role(RoleId(1), v(1), v(2)),
            ],
        );
        assert!(!q2.is_unbound(VarId(1)));
        assert!(q2.is_unbound(VarId(2)));
    }

    #[test]
    fn connectivity() {
        let q = example3_cq();
        assert!(q.is_connected());
        let disconnected = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Concept(ConceptId(1), v(1)),
            ],
        );
        assert!(!disconnected.is_connected());
        // Single atom and empty bodies are connected.
        assert!(CQ::with_var_head(vec![], vec![Atom::Concept(ConceptId(0), v(0))]).is_connected());
        assert!(CQ::with_var_head(vec![], vec![]).is_connected());
    }

    #[test]
    fn fresh_var_exceeds_all() {
        let q = example3_cq();
        assert_eq!(q.fresh_var(), VarId(2));
        let empty = CQ::with_var_head(vec![], vec![]);
        assert_eq!(empty.fresh_var(), VarId(0));
    }

    #[test]
    fn shift_vars_renames_consistently() {
        let q = example3_cq().shift_vars(10);
        let all: Vec<VarId> = q.all_vars().into_iter().collect();
        assert_eq!(all, vec![VarId(10), VarId(11)]);
        assert_eq!(q.head(), &[v(10)]);
    }

    #[test]
    fn apply_substitutes_head_and_body() {
        let q = example3_cq();
        let mut s = Subst::new();
        s.bind(VarId(0), Term::Const(IndividualId(9)));
        let q2 = q.apply(&s);
        assert_eq!(q2.head(), &[Term::Const(IndividualId(9))]);
        assert!(q2
            .atoms()
            .iter()
            .all(|a| a.terms().all(|t| t != Term::Var(VarId(0)))));
    }

    #[test]
    fn without_atom_drops_one() {
        let q = example3_cq();
        let q2 = q.without_atom(0);
        assert_eq!(q2.num_atoms(), 1);
        assert!(matches!(q2.atoms()[0], Atom::Role(..)));
    }
}
