//! Homomorphisms between conjunctive queries, and CQ/UCQ containment.
//!
//! `q1 ⊑ q2` (every answer of `q1` is an answer of `q2` over every
//! database) iff there is a homomorphism from `q2` into `q1` mapping head
//! to head positionally (Chandra–Merlin). Containment drives UCQ
//! minimization (§2.3: "minimizing qUCQ by eliminating disjuncts contained
//! in another").

use std::collections::HashMap;

use crate::atom::Atom;
use crate::cq::CQ;
use crate::term::{Term, VarId};

/// A variable assignment built during homomorphism search.
type Assignment = HashMap<VarId, Term>;

/// Find a homomorphism from `from` into `to`: a mapping `h` of `from`'s
/// variables to `to`'s terms such that every atom of `from` lands on an
/// atom of `to`, and `h(head(from)) == head(to)` positionally.
///
/// Returns the assignment if one exists.
pub fn homomorphism(from: &CQ, to: &CQ) -> Option<Assignment> {
    if from.head().len() != to.head().len() {
        return None;
    }
    let mut assign: Assignment = HashMap::new();
    // Seed with the head mapping.
    for (&ft, &tt) in from.head().iter().zip(to.head()) {
        match ft {
            Term::Const(c) => {
                if tt != Term::Const(c) {
                    return None;
                }
            }
            Term::Var(v) => match assign.get(&v) {
                Some(&prev) if prev != tt => return None,
                _ => {
                    assign.insert(v, tt);
                }
            },
        }
    }
    // Order atoms: most-constrained first (more already-assigned variables,
    // then rarer predicates in `to`).
    let mut pred_counts: HashMap<_, usize> = HashMap::new();
    for a in to.atoms() {
        *pred_counts.entry(a.pred()).or_insert(0) += 1;
    }
    let mut order: Vec<usize> = (0..from.atoms().len()).collect();
    order.sort_by_key(|&i| {
        let a = &from.atoms()[i];
        let assigned = a.vars().filter(|v| assign.contains_key(v)).count();
        let candidates = pred_counts.get(&a.pred()).copied().unwrap_or(0);
        (usize::MAX - assigned, candidates)
    });
    if search(from, to, &order, 0, &mut assign) {
        Some(assign)
    } else {
        None
    }
}

fn search(from: &CQ, to: &CQ, order: &[usize], depth: usize, assign: &mut Assignment) -> bool {
    if depth == order.len() {
        return true;
    }
    let atom = &from.atoms()[order[depth]];
    for target in to.atoms() {
        if target.pred() != atom.pred() {
            continue;
        }
        let mut trail: Vec<VarId> = Vec::new();
        if try_map_atom(atom, target, assign, &mut trail) {
            if search(from, to, order, depth + 1, assign) {
                return true;
            }
        }
        for v in trail {
            assign.remove(&v);
        }
    }
    false
}

/// Extend `assign` so that `atom` maps onto `target`; record new bindings
/// in `trail` for backtracking. Returns false (with partial trail) on
/// conflict.
fn try_map_atom(
    atom: &Atom,
    target: &Atom,
    assign: &mut Assignment,
    trail: &mut Vec<VarId>,
) -> bool {
    let pairs: Vec<(Term, Term)> = match (atom, target) {
        (Atom::Concept(_, t), Atom::Concept(_, u)) => vec![(*t, *u)],
        (Atom::Role(_, t1, t2), Atom::Role(_, u1, u2)) => vec![(*t1, *u1), (*t2, *u2)],
        _ => return false,
    };
    for (t, u) in pairs {
        match t {
            Term::Const(c) => {
                if u != Term::Const(c) {
                    return false;
                }
            }
            Term::Var(v) => match assign.get(&v) {
                Some(&prev) => {
                    if prev != u {
                        return false;
                    }
                }
                None => {
                    assign.insert(v, u);
                    trail.push(v);
                }
            },
        }
    }
    true
}

/// `q1 ⊑ q2`: is every answer of `q1` also an answer of `q2`, over every
/// database?
pub fn contained_in(q1: &CQ, q2: &CQ) -> bool {
    homomorphism(q2, q1).is_some()
}

/// `q1 ≡ q2`: mutual containment.
pub fn equivalent(q1: &CQ, q2: &CQ) -> bool {
    contained_in(q1, q2) && contained_in(q2, q1)
}

/// Is `cq` contained in the union of `disjuncts`? For plain CQs (no
/// interpreted predicates), containment in a union implies containment in a
/// single disjunct (Sagiv–Yannakakis), so this is a linear scan.
pub fn contained_in_union(cq: &CQ, disjuncts: &[CQ]) -> bool {
    disjuncts.iter().any(|d| contained_in(cq, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{ConceptId, IndividualId, RoleId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    #[test]
    fn specialization_is_contained() {
        // q2(x) ← worksWith(y, x) contains q1(x) ← supervisedBy… no —
        // same predicate case: q_sup(x) ← r(x, y) ∧ A(x) is contained in
        // q_gen(x) ← r(x, y).
        let q_gen = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(1))]);
        let q_spec = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Concept(ConceptId(0), v(0)),
            ],
        );
        assert!(contained_in(&q_spec, &q_gen));
        assert!(!contained_in(&q_gen, &q_spec));
    }

    #[test]
    fn table5_q9_contained_in_q10() {
        // q9(x) ← supervisedBy(x, x) is contained in
        // q10(x) ← supervisedBy(x, y) (paper Table 5 / §2.3: q1..q9 are all
        // contained in q10).
        let q9 = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(0))]);
        let q10 = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(1))]);
        assert!(contained_in(&q9, &q10));
        assert!(!contained_in(&q10, &q9));
    }

    #[test]
    fn head_positions_must_align() {
        // q(x, y) ← r(x, y) vs q(y, x) ← r(x, y): not equivalent.
        let a = CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![Atom::Role(RoleId(0), v(0), v(1))],
        );
        let b = CQ::with_var_head(
            vec![VarId(1), VarId(0)],
            vec![Atom::Role(RoleId(0), v(0), v(1))],
        );
        assert!(!contained_in(&a, &b));
        assert!(!contained_in(&b, &a));
        assert!(equivalent(&a, &a));
    }

    #[test]
    fn constants_must_match() {
        let qc = CQ::new(
            vec![Term::Var(VarId(0))],
            vec![Atom::Role(RoleId(0), v(0), Term::Const(IndividualId(5)))],
        );
        let qv = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(1))]);
        // Constant query is a specialization of the variable query.
        assert!(contained_in(&qc, &qv));
        assert!(!contained_in(&qv, &qc));
    }

    #[test]
    fn folding_two_atoms_onto_one() {
        // q_two(x) ← r(x, y) ∧ r(x, z) ≡ q_one(x) ← r(x, y): hom maps both
        // atoms onto the single one.
        let q_two = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Role(RoleId(0), v(0), v(2)),
            ],
        );
        let q_one = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(1))]);
        assert!(equivalent(&q_two, &q_one));
    }

    #[test]
    fn path_not_contained_in_cycle_query() {
        // q_cycle(x) ← r(x, x); q_path(x) ← r(x, y). cycle ⊑ path but not
        // conversely.
        let q_cycle = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(0))]);
        let q_path = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(1))]);
        assert!(contained_in(&q_cycle, &q_path));
        assert!(!contained_in(&q_path, &q_cycle));
    }

    #[test]
    fn union_containment_scans_disjuncts() {
        let q = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(0), v(0))]);
        let d1 = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(1), v(0))]);
        let d2 = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(0), v(0))]);
        assert!(contained_in_union(&q, &[d1.clone(), d2]));
        assert!(!contained_in_union(&q, &[d1]));
    }

    #[test]
    fn boolean_queries() {
        let q1 = CQ::with_var_head(vec![], vec![Atom::Role(RoleId(0), v(0), v(1))]);
        let q2 = CQ::with_var_head(vec![], vec![Atom::Role(RoleId(0), v(0), v(0))]);
        assert!(contained_in(&q2, &q1));
        assert!(!contained_in(&q1, &q2));
    }
}
