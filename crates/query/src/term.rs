//! Terms and substitutions for FOL queries.

use std::collections::HashMap;
use std::fmt;

use obda_dllite::IndividualId;

/// A query variable. Ids are local to a query; fresh variables are minted
/// by incrementing past the query's maximum id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

/// A term: a variable or a constant (individual).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    Var(VarId),
    Const(IndividualId),
}

impl Term {
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl From<VarId> for Term {
    fn from(v: VarId) -> Self {
        Term::Var(v)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "?{}", v.0),
            Term::Const(c) => write!(f, "{}", c),
        }
    }
}

/// A substitution `Var → Term` with transitive lookup (after composing
/// unifiers a variable may map to another mapped variable).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Subst {
    map: HashMap<VarId, Term>,
}

impl Subst {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `v := t`. An identity binding (`v := v`) is a no-op — storing
    /// it would make `resolve` cycle. Callers must ensure no longer cycles
    /// (`v` not reachable from `t`); with variable-to-variable bindings
    /// oriented consistently this holds by construction in the unifier.
    pub fn bind(&mut self, v: VarId, t: Term) {
        if Term::Var(v) == t {
            return;
        }
        self.map.insert(v, t);
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Resolve a term through the substitution until a fixpoint.
    pub fn resolve(&self, t: Term) -> Term {
        let mut cur = t;
        // Bounded walk to defend against accidental cycles in debug builds.
        for _ in 0..=self.map.len() {
            match cur {
                Term::Var(v) => match self.map.get(&v) {
                    Some(&next) => cur = next,
                    None => return cur,
                },
                Term::Const(_) => return cur,
            }
        }
        debug_assert!(false, "substitution cycle");
        cur
    }

    /// Iterate over raw bindings.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Term)> + '_ {
        self.map.iter().map(|(&v, &t)| (v, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_follows_chains() {
        let mut s = Subst::new();
        s.bind(VarId(0), Term::Var(VarId(1)));
        s.bind(VarId(1), Term::Const(IndividualId(7)));
        assert_eq!(s.resolve(Term::Var(VarId(0))), Term::Const(IndividualId(7)));
        assert_eq!(s.resolve(Term::Var(VarId(1))), Term::Const(IndividualId(7)));
        assert_eq!(s.resolve(Term::Var(VarId(2))), Term::Var(VarId(2)));
        assert_eq!(
            s.resolve(Term::Const(IndividualId(3))),
            Term::Const(IndividualId(3))
        );
    }

    #[test]
    fn term_accessors() {
        assert!(Term::Var(VarId(0)).is_var());
        assert!(Term::Const(IndividualId(0)).is_const());
        assert_eq!(Term::Var(VarId(3)).as_var(), Some(VarId(3)));
        assert_eq!(Term::Const(IndividualId(3)).as_var(), None);
    }
}
