//! Minimization of UCQs and CQ cores.
//!
//! §2.3: the exhaustive CQ-to-UCQ reformulation is highly redundant;
//! minimizing it "by eliminating disjuncts contained in another" yields the
//! minimal UCQ (e.g. Example 4's 10 disjuncts collapse to q1–q3 ∪ q10).

use crate::cq::CQ;
use crate::homomorphism::{contained_in, homomorphism};
use crate::ucq::UCQ;

/// Remove every disjunct contained in another disjunct.
///
/// Each disjunct is first replaced by its core (so `sB(x,z) ∧ sB(x,y)`
/// collapses to `sB(x,y)` — paper q8 vs q10), duplicates modulo renaming
/// are dropped, then containment pruning runs pairwise. Equivalent
/// disjuncts keep their first occurrence. The result is the *minimal UCQ*
/// of §2.3.
pub fn minimize_ucq(ucq: &UCQ) -> UCQ {
    // Core first, then order by ascending atom count: small disjuncts are
    // the likely absorbers, so testing them first kills large disjuncts
    // early and keeps the pairwise phase near-linear in practice.
    let mut cored_cqs: Vec<CQ> = ucq.cqs().iter().map(cq_core).collect();
    cored_cqs.sort_by_key(CQ::num_atoms);
    let cored = UCQ::from_cqs(ucq.head().to_vec(), cored_cqs);
    let cqs = cored.cqs();
    let n = cqs.len();
    let mut keep = vec![true; n];
    for i in 0..n {
        if !keep[i] {
            continue;
        }
        for j in 0..n {
            if i == j || !keep[j] || !keep[i] {
                continue;
            }
            if contained_in(&cqs[j], &cqs[i]) {
                // j redundant — unless they are equivalent and j comes
                // first, in which case drop i instead.
                if contained_in(&cqs[i], &cqs[j]) && j < i {
                    keep[i] = false;
                } else {
                    keep[j] = false;
                }
            }
        }
    }
    UCQ::from_cqs(
        cored.head().to_vec(),
        cqs.iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(cq, _)| cq.clone()),
    )
}

/// Compute the core of a CQ: repeatedly drop atoms whose removal preserves
/// equivalence. Since removing an atom only generalizes the query
/// (`q ⊑ q'` always holds), the check is a single homomorphism `q' → q`…
/// in the *other* direction: we need `q' ⊑ q`, i.e. a homomorphism from
/// `q` into `q'`.
pub fn cq_core(cq: &CQ) -> CQ {
    let mut current = cq.clone();
    loop {
        let mut reduced = None;
        for idx in 0..current.num_atoms() {
            let candidate = current.without_atom(idx);
            if homomorphism(&current, &candidate).is_some() {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(c) => current = c,
            None => return current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::homomorphism::equivalent;
    use crate::term::{Term, VarId};
    use obda_dllite::{ConceptId, RoleId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    #[test]
    fn contained_disjunct_is_dropped() {
        // q_spec(x) ← r(x,y) ∧ A(x) ⊑ q_gen(x) ← r(x,y).
        let q_gen = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(1))]);
        let q_spec = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Concept(ConceptId(0), v(0)),
            ],
        );
        let u = UCQ::from_cqs(vec![v(0)], [q_spec, q_gen.clone()]);
        let m = minimize_ucq(&u);
        assert_eq!(m.len(), 1);
        assert!(equivalent(&m.cqs()[0], &q_gen));
    }

    #[test]
    fn incomparable_disjuncts_survive() {
        let a = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(0), v(0))]);
        let b = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(1), v(0))]);
        let u = UCQ::from_cqs(vec![v(0)], [a, b]);
        assert_eq!(minimize_ucq(&u).len(), 2);
    }

    #[test]
    fn equivalent_disjuncts_keep_one() {
        // r(x,y) and r(x,z) are the same query (dedup catches this), but
        // r(x,y) vs r(x,y) ∧ r(x,z) are equivalent yet structurally
        // different — exactly one must survive.
        let one = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(1))]);
        let two = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Role(RoleId(0), v(0), v(2)),
            ],
        );
        let u = UCQ::from_cqs(vec![v(0)], [two, one]);
        assert_eq!(minimize_ucq(&u).len(), 1);
    }

    #[test]
    fn core_folds_redundant_atom() {
        // q(x) ← r(x,y) ∧ r(x,z): core is a single atom.
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Role(RoleId(0), v(0), v(2)),
            ],
        );
        let core = cq_core(&q);
        assert_eq!(core.num_atoms(), 1);
        assert!(equivalent(&core, &q));
    }

    #[test]
    fn core_of_minimal_query_is_identity() {
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Concept(ConceptId(0), v(1)),
            ],
        );
        let core = cq_core(&q);
        assert_eq!(core.num_atoms(), 2);
    }

    #[test]
    fn core_respects_head_variables() {
        // q(x, y) ← r(x,y) ∧ r(x,z): the r(x,z) atom folds onto r(x,y),
        // but r(x,y) cannot be dropped (it binds head var y).
        let q = CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Role(RoleId(0), v(0), v(2)),
            ],
        );
        let core = cq_core(&q);
        assert_eq!(core.num_atoms(), 1);
        assert_eq!(core.head(), &[v(0), v(1)]);
        assert!(core.atoms()[0].vars().any(|w| w == VarId(1)));
    }
}
