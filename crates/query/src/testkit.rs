//! Seeded random generators for KBs, ABoxes and queries.
//!
//! Used by property tests across the workspace (reformulation soundness /
//! completeness vs the chase oracle, cover equivalence, engine vs reference
//! evaluator). Everything is driven by a simple SplitMix64 PRNG so that the
//! crate needs no test-only dependencies and failures reproduce from a
//! printed seed.

use obda_dllite::{ABox, Axiom, BasicConcept, Role, TBox, Vocabulary};

use crate::atom::Atom;
use crate::cq::CQ;
use crate::fol::FolQuery;
use crate::jucq::{JUCQ, JUSCQ};
use crate::scq::{Slot, SCQ, USCQ};
use crate::term::{Term, VarId};
use crate::ucq::UCQ;

/// SplitMix64: tiny, high-quality, deterministic.
#[derive(Clone, Debug)]
pub struct Rng(pub u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Shape parameters for random KB generation.
#[derive(Clone, Debug)]
pub struct KbShape {
    pub num_concepts: usize,
    pub num_roles: usize,
    pub num_axioms: usize,
    pub num_individuals: usize,
    pub num_facts: usize,
    /// Probability that a generated axiom is existential on the RHS.
    pub existential_bias: f64,
}

impl Default for KbShape {
    fn default() -> Self {
        KbShape {
            num_concepts: 5,
            num_roles: 3,
            num_axioms: 8,
            num_individuals: 8,
            num_facts: 14,
            existential_bias: 0.3,
        }
    }
}

/// Generate a random positive-only DL-LiteR TBox (negation-free KBs are
/// always consistent, §2.1 — ideal for query-answering property tests).
pub fn random_tbox(rng: &mut Rng, shape: &KbShape) -> (Vocabulary, TBox) {
    let mut voc = Vocabulary::new();
    for i in 0..shape.num_concepts {
        voc.concept(&format!("C{i}"));
    }
    for i in 0..shape.num_roles {
        voc.role(&format!("r{i}"));
    }
    let mut tbox = TBox::new();
    for _ in 0..shape.num_axioms {
        let ax = random_axiom(rng, &voc, shape.existential_bias);
        tbox.add(ax);
    }
    (voc, tbox)
}

fn random_basic(rng: &mut Rng, voc: &Vocabulary) -> BasicConcept {
    if voc.num_roles() > 0 && rng.chance(0.4) {
        BasicConcept::Exists(random_role(rng, voc))
    } else {
        let c = rng.below(voc.num_concepts());
        BasicConcept::Atomic(obda_dllite::ConceptId(c as u32))
    }
}

fn random_role(rng: &mut Rng, voc: &Vocabulary) -> Role {
    let r = obda_dllite::RoleId(rng.below(voc.num_roles()) as u32);
    if rng.chance(0.3) {
        Role::inv(r)
    } else {
        Role::direct(r)
    }
}

fn random_axiom(rng: &mut Rng, voc: &Vocabulary, existential_bias: f64) -> Axiom {
    if voc.num_roles() > 0 && rng.chance(0.25) {
        // Role inclusion.
        Axiom::role(random_role(rng, voc), random_role(rng, voc))
    } else {
        let lhs = random_basic(rng, voc);
        let rhs = if voc.num_roles() > 0 && rng.chance(existential_bias) {
            BasicConcept::Exists(random_role(rng, voc))
        } else {
            random_basic(rng, voc)
        };
        Axiom::concept(lhs, rhs)
    }
}

/// Generate a random ABox over the vocabulary.
pub fn random_abox(rng: &mut Rng, voc: &mut Vocabulary, shape: &KbShape) -> ABox {
    for i in 0..shape.num_individuals {
        voc.individual(&format!("i{i}"));
    }
    let mut abox = ABox::new();
    for _ in 0..shape.num_facts {
        if voc.num_roles() > 0 && rng.chance(0.5) {
            let r = obda_dllite::RoleId(rng.below(voc.num_roles()) as u32);
            let a = obda_dllite::IndividualId(rng.below(shape.num_individuals) as u32);
            let b = obda_dllite::IndividualId(rng.below(shape.num_individuals) as u32);
            abox.assert_role(r, a, b);
        } else {
            let c = obda_dllite::ConceptId(rng.below(voc.num_concepts()) as u32);
            let a = obda_dllite::IndividualId(rng.below(shape.num_individuals) as u32);
            abox.assert_concept(c, a);
        }
    }
    abox
}

/// Generate a random [`obda_dllite::AboxDelta`] against an existing
/// ABox: a mix of insertions over known individuals, insertions
/// referencing **fresh** batch-interned individuals, duplicate
/// insertions (no-ops), deletions of existing facts, and deletions of
/// facts that were never asserted (no-ops) — every edge the incremental
/// apply path must survive. `tag` disambiguates fresh-individual names
/// across chained deltas of one scenario.
pub fn random_delta(
    rng: &mut Rng,
    voc: &Vocabulary,
    abox: &ABox,
    max_changes: usize,
    tag: usize,
) -> obda_dllite::AboxDelta {
    use obda_dllite::{AboxDelta, ConceptId, IndividualId, RoleId};
    let mut delta = AboxDelta::new();
    let mut num_inds = voc.num_individuals();
    let concepts = voc.num_concepts().max(1);
    let roles = voc.num_roles();
    let changes = 1 + rng.below(max_changes.max(1));
    for k in 0..changes {
        // A quarter of the batches grow the dictionary.
        if num_inds == 0 || rng.chance(0.25) {
            delta.new_individuals.push(format!("fresh{tag}_{k}"));
            num_inds += 1;
        }
        let ind = |rng: &mut Rng| IndividualId(rng.below(num_inds) as u32);
        match rng.below(4) {
            0 => {
                let c = ConceptId(rng.below(concepts) as u32);
                delta.insert_concepts.push((c, ind(rng)));
            }
            1 if roles > 0 => {
                let r = RoleId(rng.below(roles) as u32);
                delta.insert_roles.push((r, ind(rng), ind(rng)));
            }
            2 => {
                // Delete an existing fact when there is one; a random
                // (likely missing) one otherwise.
                let concept_facts = abox.concept_assertions();
                if !concept_facts.is_empty() && rng.chance(0.7) {
                    let &(c, i) = &concept_facts[rng.below(concept_facts.len())];
                    delta.delete_concepts.push((c, i));
                } else {
                    let c = ConceptId(rng.below(concepts) as u32);
                    delta.delete_concepts.push((c, ind(rng)));
                }
            }
            _ => {
                let role_facts = abox.role_assertions();
                if !role_facts.is_empty() && rng.chance(0.7) {
                    let &(r, a, b) = &role_facts[rng.below(role_facts.len())];
                    delta.delete_roles.push((r, a, b));
                } else if roles > 0 {
                    let r = RoleId(rng.below(roles) as u32);
                    delta.delete_roles.push((r, ind(rng), ind(rng)));
                }
            }
        }
    }
    // Occasionally duplicate an insertion verbatim (a same-batch no-op).
    if !delta.insert_concepts.is_empty() && rng.chance(0.3) {
        let dup = delta.insert_concepts[rng.below(delta.insert_concepts.len())];
        delta.insert_concepts.push(dup);
    }
    delta
}

/// Generate a random *connected* CQ with `num_atoms` atoms and up to
/// `max_head` head variables.
pub fn random_connected_cq(
    rng: &mut Rng,
    voc: &Vocabulary,
    num_atoms: usize,
    max_head: usize,
) -> CQ {
    assert!(num_atoms >= 1);
    let mut atoms: Vec<Atom> = Vec::with_capacity(num_atoms);
    let mut next_var = 0u32;
    let fresh = |next_var: &mut u32| {
        let v = VarId(*next_var);
        *next_var += 1;
        v
    };
    // Seed atom.
    let first_var = fresh(&mut next_var);
    atoms.push(random_atom_with(rng, voc, first_var, &mut next_var));
    // Each further atom reuses a variable from an existing atom, keeping
    // the query connected. Duplicate atoms would be collapsed by `CQ::new`
    // (set semantics), so retry until distinct.
    while atoms.len() < num_atoms {
        let existing: Vec<VarId> = atoms.iter().flat_map(|a| a.vars()).collect();
        let anchor = existing[rng.below(existing.len())];
        let atom = random_atom_with(rng, voc, anchor, &mut next_var);
        if !atoms.contains(&atom) {
            atoms.push(atom);
        }
    }
    // Head: a nonempty subset of the variables (≤ max_head).
    let mut vars: Vec<VarId> = atoms.iter().flat_map(|a| a.vars()).collect();
    vars.sort_unstable();
    vars.dedup();
    let head_len = 1 + rng.below(max_head.min(vars.len()));
    let mut head = Vec::with_capacity(head_len);
    for _ in 0..head_len {
        let v = vars[rng.below(vars.len())];
        if !head.contains(&v) {
            head.push(v);
        }
    }
    CQ::with_var_head(head, atoms)
}

// ---------------------------------------------------------------------
// Table-4 dialect generators (differential-harness inputs)
// ---------------------------------------------------------------------

/// Random connected CQ with an **exact** head arity — union arms must
/// agree with the nominal head positionally, so the free-arity
/// [`random_connected_cq`] doesn't fit there. Head variables may repeat
/// (legal, and exercises the projection path).
pub fn random_cq_with_head_arity(
    rng: &mut Rng,
    voc: &Vocabulary,
    num_atoms: usize,
    arity: usize,
) -> CQ {
    let base = random_connected_cq(rng, voc, num_atoms, arity.max(1));
    let vars: Vec<VarId> = base.all_vars().into_iter().collect();
    let head: Vec<VarId> = (0..arity).map(|_| vars[rng.below(vars.len())]).collect();
    CQ::with_var_head(head, base.atoms().to_vec())
}

/// Random UCQ: `1..=max_arms` connected CQs sharing one head arity.
pub fn random_ucq(rng: &mut Rng, voc: &Vocabulary, max_arms: usize, max_atoms: usize) -> UCQ {
    let arity = 1 + rng.below(2);
    let arms = 1 + rng.below(max_arms);
    let cqs: Vec<CQ> = (0..arms)
        .map(|_| {
            let atoms = 1 + rng.below(max_atoms);
            random_cq_with_head_arity(rng, voc, atoms, arity)
        })
        .collect();
    UCQ::from_cqs(cqs[0].head().to_vec(), cqs)
}

/// Widen a CQ's singleton slots into random disjunctions (same variable
/// set per slot, as `Slot` requires).
fn widen_slots(rng: &mut Rng, voc: &Vocabulary, cq: &CQ) -> Vec<Slot> {
    let mut slots: Vec<Slot> = cq.atoms().iter().map(|a| Slot::single(*a)).collect();
    for slot in &mut slots {
        while rng.chance(0.4) {
            let variant = variant_atom(rng, voc, &slot.atoms()[0]);
            slot.try_push(variant); // may reject duplicates — fine
        }
    }
    slots
}

/// An atom over the same variable set as `proto` but a fresh predicate
/// (and possibly flipped role positions).
fn variant_atom(rng: &mut Rng, voc: &Vocabulary, proto: &Atom) -> Atom {
    match proto {
        Atom::Concept(_, t) => Atom::Concept(
            obda_dllite::ConceptId(rng.below(voc.num_concepts()) as u32),
            *t,
        ),
        Atom::Role(_, t1, t2) => {
            let r = obda_dllite::RoleId(rng.below(voc.num_roles()) as u32);
            if rng.chance(0.5) {
                Atom::Role(r, *t1, *t2)
            } else {
                Atom::Role(r, *t2, *t1)
            }
        }
    }
}

/// Random SCQ with an exact head arity: a connected CQ whose slots are
/// widened into disjunctions.
pub fn random_scq_with_head_arity(
    rng: &mut Rng,
    voc: &Vocabulary,
    num_atoms: usize,
    arity: usize,
) -> SCQ {
    let cq = random_cq_with_head_arity(rng, voc, num_atoms, arity);
    let slots = widen_slots(rng, voc, &cq);
    SCQ::new(cq.head().to_vec(), slots)
}

/// Random SCQ (free head arity 1–2).
pub fn random_scq(rng: &mut Rng, voc: &Vocabulary, num_atoms: usize) -> SCQ {
    let arity = 1 + rng.below(2);
    random_scq_with_head_arity(rng, voc, num_atoms, arity)
}

/// Random USCQ: `1..=max_arms` SCQs sharing one head arity.
pub fn random_uscq(rng: &mut Rng, voc: &Vocabulary, max_arms: usize, max_atoms: usize) -> USCQ {
    let arity = 1 + rng.below(2);
    let arms = 1 + rng.below(max_arms);
    let scqs: Vec<SCQ> = (0..arms)
        .map(|_| {
            let atoms = 1 + rng.below(max_atoms);
            random_scq_with_head_arity(rng, voc, atoms, arity)
        })
        .collect();
    USCQ::new(scqs[0].head().to_vec(), scqs)
}

/// Random JUCQ: components are UCQs whose arms all contain `VarId(0)`
/// (the generator's seed variable), joined on it.
pub fn random_jucq(
    rng: &mut Rng,
    voc: &Vocabulary,
    max_components: usize,
    max_atoms: usize,
) -> JUCQ {
    let head = vec![Term::Var(VarId(0))];
    let n = 1 + rng.below(max_components);
    let components: Vec<UCQ> = (0..n)
        .map(|_| {
            let arms = 1 + rng.below(2);
            let cqs: Vec<CQ> = (0..arms)
                .map(|_| {
                    let atoms = 1 + rng.below(max_atoms);
                    let base = random_connected_cq(rng, voc, atoms, 1);
                    // Re-head on the seed variable, present in every base.
                    CQ::with_var_head(vec![VarId(0)], base.atoms().to_vec())
                })
                .collect();
            UCQ::from_cqs(head.clone(), cqs)
        })
        .collect();
    JUCQ::new(head, components)
}

/// Random JUSCQ: like [`random_jucq`] with widened (disjunctive) slots.
pub fn random_juscq(
    rng: &mut Rng,
    voc: &Vocabulary,
    max_components: usize,
    max_atoms: usize,
) -> JUSCQ {
    let head = vec![Term::Var(VarId(0))];
    let n = 1 + rng.below(max_components);
    let components: Vec<USCQ> = (0..n)
        .map(|_| {
            let arms = 1 + rng.below(2);
            let scqs: Vec<SCQ> = (0..arms)
                .map(|_| {
                    let atoms = 1 + rng.below(max_atoms);
                    let base = random_connected_cq(rng, voc, atoms, 1);
                    let cq = CQ::with_var_head(vec![VarId(0)], base.atoms().to_vec());
                    let slots = widen_slots(rng, voc, &cq);
                    SCQ::new(cq.head().to_vec(), slots)
                })
                .collect();
            USCQ::new(head.clone(), scqs)
        })
        .collect();
    JUSCQ::new(head, components)
}

/// A random query in **any** Table-4 dialect — the input shape of the
/// executor differential harness.
pub fn random_fol_query(rng: &mut Rng, voc: &Vocabulary, max_atoms: usize) -> FolQuery {
    let dialect = rng.below(6);
    let atoms = 1 + rng.below(max_atoms);
    match dialect {
        0 => FolQuery::Cq(random_connected_cq(rng, voc, atoms, 2)),
        1 => FolQuery::Ucq(random_ucq(rng, voc, 3, max_atoms)),
        2 => FolQuery::Scq(random_scq(rng, voc, atoms)),
        3 => FolQuery::Uscq(random_uscq(rng, voc, 2, max_atoms)),
        4 => FolQuery::Jucq(random_jucq(rng, voc, 2, max_atoms)),
        _ => FolQuery::Juscq(random_juscq(rng, voc, 2, max_atoms)),
    }
}

/// An atom guaranteed to use `anchor`; role atoms' other position may be
/// a fresh variable, the anchor again, or — when the vocabulary already
/// has individuals — a **constant** (real query loads mix constants in,
/// and constant-keyed access paths have their own planner/executor code
/// paths that differential tests must reach).
fn random_atom_with(rng: &mut Rng, voc: &Vocabulary, anchor: VarId, next_var: &mut u32) -> Atom {
    if voc.num_roles() > 0 && rng.chance(0.6) {
        let r = obda_dllite::RoleId(rng.below(voc.num_roles()) as u32);
        let other = if voc.num_individuals() > 0 && rng.chance(0.15) {
            Term::Const(obda_dllite::IndividualId(
                rng.below(voc.num_individuals()) as u32
            ))
        } else if rng.chance(0.8) {
            let v = VarId(*next_var);
            *next_var += 1;
            Term::Var(v)
        } else {
            Term::Var(anchor)
        };
        if rng.chance(0.5) {
            Atom::Role(r, Term::Var(anchor), other)
        } else {
            Atom::Role(r, other, Term::Var(anchor))
        }
    } else {
        let c = obda_dllite::ConceptId(rng.below(voc.num_concepts()) as u32);
        Atom::Concept(c, Term::Var(anchor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn generated_cqs_are_connected() {
        let shape = KbShape::default();
        for seed in 0..50 {
            let mut rng = Rng::new(seed);
            let (voc, _) = random_tbox(&mut rng, &shape);
            for n in 1..=6 {
                let cq = random_connected_cq(&mut rng, &voc, n, 2);
                assert_eq!(cq.num_atoms(), n, "seed {seed}");
                assert!(cq.is_connected(), "seed {seed}: {cq:?}");
                assert!(!cq.head().is_empty());
            }
        }
    }

    #[test]
    fn generated_dialects_are_well_formed() {
        let shape = KbShape::default();
        for seed in 0..30u64 {
            let mut rng = Rng::new(seed);
            let (voc, _) = random_tbox(&mut rng, &shape);
            for _ in 0..6 {
                match random_fol_query(&mut rng, &voc, 3) {
                    FolQuery::Cq(cq) => assert!(cq.num_atoms() >= 1),
                    FolQuery::Ucq(u) => {
                        assert!(!u.is_empty());
                        for cq in u.cqs() {
                            assert_eq!(cq.head().len(), u.head().len(), "seed {seed}");
                        }
                    }
                    FolQuery::Scq(s) => {
                        assert!(s.num_slots() >= 1);
                        assert!(s.equivalent_cq_count() >= 1);
                    }
                    FolQuery::Uscq(u) => {
                        assert!(!u.is_empty());
                        for s in u.scqs() {
                            assert_eq!(s.head().len(), u.head().len(), "seed {seed}");
                        }
                    }
                    FolQuery::Jucq(j) => {
                        assert!(j.num_components() >= 1);
                        for c in j.components() {
                            assert_eq!(c.head(), j.head(), "components join on the head");
                        }
                    }
                    FolQuery::Juscq(j) => assert!(j.num_components() >= 1),
                }
            }
        }
    }

    #[test]
    fn generated_tbox_is_positive_only() {
        let mut rng = Rng::new(7);
        let (_, tbox) = random_tbox(&mut rng, &KbShape::default());
        assert_eq!(tbox.num_negative(), 0);
    }

    #[test]
    fn generated_abox_respects_shape() {
        let mut rng = Rng::new(9);
        let shape = KbShape::default();
        let (mut voc, _) = random_tbox(&mut rng, &shape);
        let abox = random_abox(&mut rng, &mut voc, &shape);
        assert!(abox.len() <= shape.num_facts);
        assert!(abox.len() > 0);
    }
}
