//! Seeded random generators for KBs, ABoxes and queries.
//!
//! Used by property tests across the workspace (reformulation soundness /
//! completeness vs the chase oracle, cover equivalence, engine vs reference
//! evaluator). Everything is driven by a simple SplitMix64 PRNG so that the
//! crate needs no test-only dependencies and failures reproduce from a
//! printed seed.

use obda_dllite::{ABox, Axiom, BasicConcept, Role, TBox, Vocabulary};

use crate::atom::Atom;
use crate::cq::CQ;
use crate::term::{Term, VarId};

/// SplitMix64: tiny, high-quality, deterministic.
#[derive(Clone, Debug)]
pub struct Rng(pub u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Shape parameters for random KB generation.
#[derive(Clone, Debug)]
pub struct KbShape {
    pub num_concepts: usize,
    pub num_roles: usize,
    pub num_axioms: usize,
    pub num_individuals: usize,
    pub num_facts: usize,
    /// Probability that a generated axiom is existential on the RHS.
    pub existential_bias: f64,
}

impl Default for KbShape {
    fn default() -> Self {
        KbShape {
            num_concepts: 5,
            num_roles: 3,
            num_axioms: 8,
            num_individuals: 8,
            num_facts: 14,
            existential_bias: 0.3,
        }
    }
}

/// Generate a random positive-only DL-LiteR TBox (negation-free KBs are
/// always consistent, §2.1 — ideal for query-answering property tests).
pub fn random_tbox(rng: &mut Rng, shape: &KbShape) -> (Vocabulary, TBox) {
    let mut voc = Vocabulary::new();
    for i in 0..shape.num_concepts {
        voc.concept(&format!("C{i}"));
    }
    for i in 0..shape.num_roles {
        voc.role(&format!("r{i}"));
    }
    let mut tbox = TBox::new();
    for _ in 0..shape.num_axioms {
        let ax = random_axiom(rng, &voc, shape.existential_bias);
        tbox.add(ax);
    }
    (voc, tbox)
}

fn random_basic(rng: &mut Rng, voc: &Vocabulary) -> BasicConcept {
    if voc.num_roles() > 0 && rng.chance(0.4) {
        BasicConcept::Exists(random_role(rng, voc))
    } else {
        let c = rng.below(voc.num_concepts());
        BasicConcept::Atomic(obda_dllite::ConceptId(c as u32))
    }
}

fn random_role(rng: &mut Rng, voc: &Vocabulary) -> Role {
    let r = obda_dllite::RoleId(rng.below(voc.num_roles()) as u32);
    if rng.chance(0.3) {
        Role::inv(r)
    } else {
        Role::direct(r)
    }
}

fn random_axiom(rng: &mut Rng, voc: &Vocabulary, existential_bias: f64) -> Axiom {
    if voc.num_roles() > 0 && rng.chance(0.25) {
        // Role inclusion.
        Axiom::role(random_role(rng, voc), random_role(rng, voc))
    } else {
        let lhs = random_basic(rng, voc);
        let rhs = if voc.num_roles() > 0 && rng.chance(existential_bias) {
            BasicConcept::Exists(random_role(rng, voc))
        } else {
            random_basic(rng, voc)
        };
        Axiom::concept(lhs, rhs)
    }
}

/// Generate a random ABox over the vocabulary.
pub fn random_abox(rng: &mut Rng, voc: &mut Vocabulary, shape: &KbShape) -> ABox {
    for i in 0..shape.num_individuals {
        voc.individual(&format!("i{i}"));
    }
    let mut abox = ABox::new();
    for _ in 0..shape.num_facts {
        if voc.num_roles() > 0 && rng.chance(0.5) {
            let r = obda_dllite::RoleId(rng.below(voc.num_roles()) as u32);
            let a = obda_dllite::IndividualId(rng.below(shape.num_individuals) as u32);
            let b = obda_dllite::IndividualId(rng.below(shape.num_individuals) as u32);
            abox.assert_role(r, a, b);
        } else {
            let c = obda_dllite::ConceptId(rng.below(voc.num_concepts()) as u32);
            let a = obda_dllite::IndividualId(rng.below(shape.num_individuals) as u32);
            abox.assert_concept(c, a);
        }
    }
    abox
}

/// Generate a random *connected* CQ with `num_atoms` atoms and up to
/// `max_head` head variables.
pub fn random_connected_cq(
    rng: &mut Rng,
    voc: &Vocabulary,
    num_atoms: usize,
    max_head: usize,
) -> CQ {
    assert!(num_atoms >= 1);
    let mut atoms: Vec<Atom> = Vec::with_capacity(num_atoms);
    let mut next_var = 0u32;
    let fresh = |next_var: &mut u32| {
        let v = VarId(*next_var);
        *next_var += 1;
        v
    };
    // Seed atom.
    let first_var = fresh(&mut next_var);
    atoms.push(random_atom_with(rng, voc, first_var, &mut next_var));
    // Each further atom reuses a variable from an existing atom, keeping
    // the query connected. Duplicate atoms would be collapsed by `CQ::new`
    // (set semantics), so retry until distinct.
    while atoms.len() < num_atoms {
        let existing: Vec<VarId> = atoms.iter().flat_map(|a| a.vars()).collect();
        let anchor = existing[rng.below(existing.len())];
        let atom = random_atom_with(rng, voc, anchor, &mut next_var);
        if !atoms.contains(&atom) {
            atoms.push(atom);
        }
    }
    // Head: a nonempty subset of the variables (≤ max_head).
    let mut vars: Vec<VarId> = atoms.iter().flat_map(|a| a.vars()).collect();
    vars.sort_unstable();
    vars.dedup();
    let head_len = 1 + rng.below(max_head.min(vars.len()));
    let mut head = Vec::with_capacity(head_len);
    for _ in 0..head_len {
        let v = vars[rng.below(vars.len())];
        if !head.contains(&v) {
            head.push(v);
        }
    }
    CQ::with_var_head(head, atoms)
}

/// An atom guaranteed to use `anchor`; other positions may be fresh or
/// anchor again.
fn random_atom_with(rng: &mut Rng, voc: &Vocabulary, anchor: VarId, next_var: &mut u32) -> Atom {
    if voc.num_roles() > 0 && rng.chance(0.6) {
        let r = obda_dllite::RoleId(rng.below(voc.num_roles()) as u32);
        let other = if rng.chance(0.8) {
            let v = VarId(*next_var);
            *next_var += 1;
            v
        } else {
            anchor
        };
        if rng.chance(0.5) {
            Atom::Role(r, Term::Var(anchor), Term::Var(other))
        } else {
            Atom::Role(r, Term::Var(other), Term::Var(anchor))
        }
    } else {
        let c = obda_dllite::ConceptId(rng.below(voc.num_concepts()) as u32);
        Atom::Concept(c, Term::Var(anchor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn generated_cqs_are_connected() {
        let shape = KbShape::default();
        for seed in 0..50 {
            let mut rng = Rng::new(seed);
            let (voc, _) = random_tbox(&mut rng, &shape);
            for n in 1..=6 {
                let cq = random_connected_cq(&mut rng, &voc, n, 2);
                assert_eq!(cq.num_atoms(), n, "seed {seed}");
                assert!(cq.is_connected(), "seed {seed}: {cq:?}");
                assert!(!cq.head().is_empty());
            }
        }
    }

    #[test]
    fn generated_tbox_is_positive_only() {
        let mut rng = Rng::new(7);
        let (_, tbox) = random_tbox(&mut rng, &KbShape::default());
        assert_eq!(tbox.num_negative(), 0);
    }

    #[test]
    fn generated_abox_respects_shape() {
        let mut rng = Rng::new(9);
        let shape = KbShape::default();
        let (mut voc, _) = random_tbox(&mut rng, &shape);
        let abox = random_abox(&mut rng, &mut voc, &shape);
        assert!(abox.len() <= shape.num_facts);
        assert!(abox.len() > 0);
    }
}
