//! Canonical forms of conjunctive queries.
//!
//! The PerfectRef fixpoint (and every set of CQs in this workspace) needs
//! to deduplicate queries *modulo renaming of existential variables and
//! reordering of body atoms*. Head terms are fixed — all CQs produced while
//! reformulating one query share the same head — so only existential
//! variables are relabeled.
//!
//! The canonical key is the lexicographically smallest encoding of the atom
//! sequence over all atom orders, with existential variables numbered by
//! first appearance. A branch-and-bound search keeps this exact; queries in
//! this domain have ≤ ~12 atoms and very few ties, so the search is cheap.

use std::collections::HashMap;

use crate::atom::Atom;
use crate::cq::CQ;
use crate::term::{Term, VarId};

/// Encoded term: orders constants < head vars < existential vars, with
/// not-yet-numbered existentials comparing greatest (so chosen atoms prefer
/// already-seen variables — a standard canonical-labeling refinement).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
enum Code {
    Const(u32),
    Head(u32),
    Exist(u32),
    Fresh,
}

/// Encoded atom: predicate tag/id then position codes.
type AtomCode = (u8, u32, Code, Code);

/// The canonical key of a CQ: head encoding plus minimal atom encoding.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CanonKey {
    head: Vec<Code>,
    atoms: Vec<AtomCode>,
}

/// Compute the canonical key of `cq`.
pub fn canonical_key(cq: &CQ) -> CanonKey {
    canonical_key_and_order(cq).0
}

/// Rewrite `cq` into its canonical form: atoms in canonical order,
/// existential variables renumbered densely *after* the head variables.
/// Two CQs are equal modulo renaming iff their canonical forms are
/// structurally equal. Used by the USCQ factorizer to align disjuncts.
pub fn canonicalize(cq: &CQ) -> CQ {
    let (_, perm, exist_ids) = canonical_key_and_order(cq);
    // Head variables keep their ids; existential variables are packed after
    // the largest head id to avoid collisions.
    let base = cq
        .head_vars()
        .map(|v| v.0)
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    let rename = |v: VarId| -> Term {
        match exist_ids.get(&v) {
            Some(&e) => Term::Var(VarId(base + e)),
            None => Term::Var(v), // head var
        }
    };
    let atoms = perm
        .iter()
        .map(|&i| cq.atoms()[i].map_vars(rename))
        .collect();
    CQ::new(cq.head().to_vec(), atoms)
}

fn canonical_key_and_order(cq: &CQ) -> (CanonKey, Vec<usize>, HashMap<VarId, u32>) {
    // Head variables get stable numbers by first head occurrence.
    let mut head_ids: HashMap<VarId, u32> = HashMap::new();
    let mut head = Vec::with_capacity(cq.head().len());
    for &t in cq.head() {
        head.push(match t {
            Term::Const(c) => Code::Const(c.0),
            Term::Var(v) => {
                let next = head_ids.len() as u32;
                Code::Head(*head_ids.entry(v).or_insert(next))
            }
        });
    }

    let atoms = cq.atoms();
    let n = atoms.len();
    let mut best: Option<Vec<AtomCode>> = None;
    let mut best_perm: Vec<usize> = Vec::new();
    let mut best_exist: HashMap<VarId, u32> = HashMap::new();
    let mut state = Search {
        atoms,
        head_ids: &head_ids,
        used: vec![false; n],
        exist_ids: HashMap::new(),
        prefix: Vec::with_capacity(n),
        perm: Vec::with_capacity(n),
        best: &mut best,
        best_perm: &mut best_perm,
        best_exist: &mut best_exist,
    };
    state.run();
    (
        CanonKey {
            head,
            atoms: best.unwrap_or_default(),
        },
        best_perm,
        best_exist,
    )
}

/// Are two CQs identical up to existential-variable renaming and atom
/// order?
pub fn same_modulo_renaming(a: &CQ, b: &CQ) -> bool {
    a.num_atoms() == b.num_atoms() && canonical_key(a) == canonical_key(b)
}

struct Search<'a> {
    atoms: &'a [Atom],
    head_ids: &'a HashMap<VarId, u32>,
    used: Vec<bool>,
    exist_ids: HashMap<VarId, u32>,
    prefix: Vec<AtomCode>,
    perm: Vec<usize>,
    best: &'a mut Option<Vec<AtomCode>>,
    best_perm: &'a mut Vec<usize>,
    best_exist: &'a mut HashMap<VarId, u32>,
}

impl Search<'_> {
    fn encode_term(&self, t: Term) -> Code {
        match t {
            Term::Const(c) => Code::Const(c.0),
            Term::Var(v) => {
                if let Some(&h) = self.head_ids.get(&v) {
                    Code::Head(h)
                } else if let Some(&e) = self.exist_ids.get(&v) {
                    Code::Exist(e)
                } else {
                    Code::Fresh
                }
            }
        }
    }

    fn encode_atom(&self, a: &Atom) -> AtomCode {
        match a {
            Atom::Concept(c, t) => (0, c.0, self.encode_term(*t), Code::Const(0)),
            Atom::Role(r, t1, t2) => (1, r.0, self.encode_term(*t1), self.encode_term(*t2)),
        }
    }

    fn run(&mut self) {
        let n = self.atoms.len();
        if self.prefix.len() == n {
            let candidate = self.prefix.clone();
            // Fresh codes in the final encoding would mean un-numbered vars,
            // impossible: numbering happens as atoms are committed.
            match self.best {
                Some(b) if *b <= candidate => {}
                _ => {
                    *self.best = Some(candidate);
                    *self.best_perm = self.perm.clone();
                    *self.best_exist = self.exist_ids.clone();
                }
            }
            return;
        }
        // Prune: if the current prefix already exceeds the best at this
        // depth, stop. (Compare prefix against best's prefix.)
        if let Some(b) = self.best.as_ref() {
            let d = self.prefix.len();
            if self.prefix.as_slice() > &b[..d] {
                return;
            }
        }
        // Find minimal encoding among unused atoms.
        let mut min_code: Option<AtomCode> = None;
        for (i, a) in self.atoms.iter().enumerate() {
            if self.used[i] {
                continue;
            }
            let code = self.encode_atom(a);
            if min_code.as_ref().is_none_or(|m| code < *m) {
                min_code = Some(code);
            }
        }
        let min_code = min_code.expect("at least one unused atom");
        // Branch on every unused atom achieving the minimum.
        for i in 0..self.atoms.len() {
            if self.used[i] || self.encode_atom(&self.atoms[i]) != min_code {
                continue;
            }
            // Commit: number fresh existential vars by position order.
            let newly: Vec<VarId> = self.atoms[i]
                .vars()
                .filter(|v| !self.head_ids.contains_key(v) && !self.exist_ids.contains_key(v))
                .collect();
            for v in &newly {
                let next = self.exist_ids.len() as u32;
                self.exist_ids.entry(*v).or_insert(next);
            }
            // Re-encode with the numbering applied.
            let committed = self.encode_atom(&self.atoms[i]);
            self.used[i] = true;
            self.prefix.push(committed);
            self.perm.push(i);
            self.run();
            self.perm.pop();
            self.prefix.pop();
            self.used[i] = false;
            for v in newly {
                self.exist_ids.remove(&v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{ConceptId, IndividualId, RoleId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    #[test]
    fn renamed_existentials_are_equal() {
        // q(x) ← r(x, y) vs q(x) ← r(x, z).
        let a = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(1))]);
        let b = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(7))]);
        assert!(same_modulo_renaming(&a, &b));
    }

    #[test]
    fn atom_order_is_irrelevant() {
        let a1 = Atom::Concept(ConceptId(0), v(0));
        let a2 = Atom::Role(RoleId(0), v(1), v(0));
        let q1 = CQ::with_var_head(vec![VarId(0)], vec![a1, a2]);
        let q2 = CQ::with_var_head(vec![VarId(0)], vec![a2, a1]);
        assert!(same_modulo_renaming(&q1, &q2));
    }

    #[test]
    fn head_variables_are_rigid() {
        // q(x) ← A(x) differs from q(y) ← A(x): the second has an
        // existential body variable and a *different* head binding.
        let qa = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(0), v(0))]);
        let qb = CQ::with_var_head(vec![VarId(1)], vec![Atom::Concept(ConceptId(0), v(0))]);
        assert!(!same_modulo_renaming(&qa, &qb));
    }

    #[test]
    fn distinct_structures_differ() {
        // r(x, y) ∧ r(y, z) — a path — vs r(x, y) ∧ r(x, z) — a fork.
        let path = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Role(RoleId(0), v(1), v(2)),
            ],
        );
        let fork = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Role(RoleId(0), v(0), v(2)),
            ],
        );
        assert!(!same_modulo_renaming(&path, &fork));
    }

    #[test]
    fn shared_vs_distinct_existentials_differ() {
        // r(x, y) ∧ s(z, y) — join on y — vs r(x, y) ∧ s(z, w).
        let joined = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Role(RoleId(1), v(2), v(1)),
            ],
        );
        let apart = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Role(RoleId(1), v(2), v(3)),
            ],
        );
        assert!(!same_modulo_renaming(&joined, &apart));
    }

    #[test]
    fn constants_are_rigid() {
        let qa = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Role(RoleId(0), v(0), Term::Const(IndividualId(1)))],
        );
        let qb = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Role(RoleId(0), v(0), Term::Const(IndividualId(2)))],
        );
        assert!(!same_modulo_renaming(&qa, &qb));
    }

    #[test]
    fn symmetric_queries_canonicalize_with_ties() {
        // r(x, y) ∧ r(x, z) has an automorphism swapping y/z; both orders
        // must produce the same key.
        let q1 = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Role(RoleId(0), v(0), v(2)),
            ],
        );
        let q2 = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(2)),
                Atom::Role(RoleId(0), v(0), v(1)),
            ],
        );
        assert_eq!(canonical_key(&q1), canonical_key(&q2));
    }

    #[test]
    fn canonicalize_produces_equal_forms() {
        let a = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(5)),
                Atom::Concept(ConceptId(2), v(5)),
            ],
        );
        let b = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(2), v(9)),
                Atom::Role(RoleId(0), v(0), v(9)),
            ],
        );
        let ca = super::canonicalize(&a);
        let cb = super::canonicalize(&b);
        assert_eq!(ca, cb, "canonical forms are structurally equal");
        assert!(
            same_modulo_renaming(&ca, &a),
            "canonicalize preserves the query"
        );
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let q = CQ::with_var_head(
            vec![VarId(3)],
            vec![
                Atom::Role(RoleId(1), v(3), v(7)),
                Atom::Role(RoleId(0), v(7), v(4)),
                Atom::Concept(ConceptId(0), v(4)),
            ],
        );
        let c1 = super::canonicalize(&q);
        let c2 = super::canonicalize(&c1);
        assert_eq!(c1, c2);
    }

    /// The serving layer's plan cache keys on `canonical_key`, so the key
    /// must be invariant under exactly the transformations a client may
    /// apply to a repeated query: renaming head variables, renaming
    /// existential variables, and reordering body atoms — all at once.
    #[test]
    fn cache_key_invariance_under_combined_renaming_and_reordering() {
        let q = CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![
                Atom::Concept(ConceptId(3), v(0)),
                Atom::Role(RoleId(1), v(0), v(2)),
                Atom::Role(RoleId(0), v(2), v(1)),
                Atom::Concept(ConceptId(1), v(2)),
            ],
        );
        // Head vars 0,1 → 40,41; existential 2 → 77; atoms rotated and
        // partially swapped.
        let variant = CQ::with_var_head(
            vec![VarId(40), VarId(41)],
            vec![
                Atom::Role(RoleId(0), v(77), v(41)),
                Atom::Concept(ConceptId(1), v(77)),
                Atom::Concept(ConceptId(3), v(40)),
                Atom::Role(RoleId(1), v(40), v(77)),
            ],
        );
        assert_eq!(canonical_key(&q), canonical_key(&variant));
    }

    /// Queries that differ only in head-variable *order* must NOT share a
    /// key: the cache would otherwise serve column-permuted rows.
    #[test]
    fn cache_key_distinguishes_head_column_order() {
        let body = vec![Atom::Role(RoleId(0), v(0), v(1))];
        let xy = CQ::with_var_head(vec![VarId(0), VarId(1)], body.clone());
        let yx = CQ::with_var_head(vec![VarId(1), VarId(0)], body);
        assert_ne!(canonical_key(&xy), canonical_key(&yx));
    }

    /// A repeated head variable is not the same query as two distinct
    /// head variables (q(x,x) vs q(x,y) over the same body).
    #[test]
    fn cache_key_distinguishes_repeated_head_vars() {
        let body = vec![Atom::Role(RoleId(0), v(0), v(1))];
        let xx = CQ::with_var_head(vec![VarId(0), VarId(0)], body.clone());
        let xy = CQ::with_var_head(vec![VarId(0), VarId(1)], body);
        assert_ne!(canonical_key(&xx), canonical_key(&xy));
    }

    /// Duplicate atoms change the multiset encoding but not the query's
    /// semantics — the key treats them as distinct structures, which is
    /// safe for a cache (a miss, never a wrong hit).
    #[test]
    fn cache_key_is_deterministic_across_recomputation() {
        let q = CQ::with_var_head(
            vec![VarId(2)],
            vec![
                Atom::Role(RoleId(2), v(2), v(5)),
                Atom::Role(RoleId(2), v(5), v(2)),
                Atom::Concept(ConceptId(0), v(5)),
            ],
        );
        assert_eq!(canonical_key(&q), canonical_key(&q.clone()));
    }

    #[test]
    fn shift_invariance() {
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Concept(ConceptId(2), v(1)),
            ],
        );
        let shifted = CQ::with_var_head(
            vec![VarId(10)],
            vec![
                Atom::Role(RoleId(0), v(10), v(11)),
                Atom::Concept(ConceptId(2), v(11)),
            ],
        );
        assert!(same_modulo_renaming(&q, &shifted));
    }
}
