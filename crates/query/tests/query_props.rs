//! Property tests of the query-algebra primitives: unification,
//! homomorphisms, containment, canonicalization, cores.

use proptest::prelude::*;

use obda_query::testkit::{random_connected_cq, random_tbox, KbShape, Rng};
use obda_query::{
    canonical_key, canonicalize, contained_in, cq_core, equivalent, homomorphism, mgu,
    same_modulo_renaming, Subst, CQ,
};

fn cq_from(seed: u64, atoms: usize) -> CQ {
    let mut rng = Rng::new(seed);
    let (voc, _) = random_tbox(&mut rng, &KbShape::default());
    random_connected_cq(&mut rng, &voc, atoms, 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// mgu really unifies, and is stable under argument order.
    #[test]
    fn mgu_unifies(seed in 0u64..10_000) {
        let cq = cq_from(seed, 3);
        for a in cq.atoms() {
            for b in cq.atoms() {
                if let Some(sigma) = mgu(a, b) {
                    prop_assert_eq!(a.apply(&sigma), b.apply(&sigma));
                }
                prop_assert_eq!(mgu(a, b).is_some(), mgu(b, a).is_some());
            }
        }
    }

    /// Containment is reflexive; equivalence is symmetric.
    #[test]
    fn containment_reflexive(seed in 0u64..10_000, atoms in 1usize..5) {
        let cq = cq_from(seed, atoms);
        prop_assert!(contained_in(&cq, &cq));
        prop_assert!(equivalent(&cq, &cq));
    }

    /// Renaming variables never changes the canonical key; the canonical
    /// form is a fixpoint.
    #[test]
    fn canonicalization_invariance(seed in 0u64..10_000, atoms in 1usize..5, shift in 1u32..50) {
        let cq = cq_from(seed, atoms);
        let shifted = cq.shift_vars(shift);
        prop_assert_eq!(canonical_key(&cq), canonical_key(&shifted));
        prop_assert!(same_modulo_renaming(&cq, &shifted));
        let canon = canonicalize(&cq);
        prop_assert_eq!(&canonicalize(&canon), &canon, "idempotent");
        prop_assert!(same_modulo_renaming(&canon, &cq));
    }

    /// The core is equivalent to the query and no larger.
    #[test]
    fn core_is_equivalent_and_minimal(seed in 0u64..10_000, atoms in 1usize..5) {
        let cq = cq_from(seed, atoms);
        let core = cq_core(&cq);
        prop_assert!(core.num_atoms() <= cq.num_atoms());
        prop_assert!(equivalent(&core, &cq));
    }

    /// A homomorphism found by the search is a real homomorphism: every
    /// atom of `from` maps into `to` under the returned assignment.
    #[test]
    fn homomorphism_is_sound(seed in 0u64..10_000) {
        let from = cq_from(seed, 2);
        let to = cq_from(seed.wrapping_add(1), 3);
        if let Some(assign) = homomorphism(&from, &to) {
            let mut sigma = Subst::new();
            for (v, t) in &assign {
                sigma.bind(*v, *t);
            }
            for atom in from.atoms() {
                let image = atom.apply(&sigma);
                prop_assert!(
                    to.atoms().contains(&image),
                    "atom image {:?} missing from target",
                    image
                );
            }
        }
    }

    /// Substitution application is idempotent for fully-resolved
    /// substitutions produced by mgu.
    #[test]
    fn mgu_application_idempotent(seed in 0u64..10_000) {
        let cq = cq_from(seed, 3);
        let atoms = cq.atoms();
        if atoms.len() >= 2 {
            if let Some(sigma) = mgu(&atoms[0], &atoms[1]) {
                let once = cq.apply(&sigma);
                let twice = once.apply(&sigma);
                prop_assert_eq!(once, twice);
            }
        }
    }
}
