//! Crash recovery: replay `snapshot + WAL tail` to the exact pre-crash
//! state.
//!
//! The invariants recovery relies on:
//!
//! * the snapshot holds generation `g₀` exactly (it is written atomically
//!   via temp-file + rename);
//! * WAL record `k` (1-based) transforms generation `base + k - 1` into
//!   `base + k`, where `base` is the WAL header's base generation;
//! * applying a batch is deterministic: interning the batch's new
//!   individual names and then [`obda_dllite::ABox::apply`]ing its
//!   changes from a given state always yields the same state.
//!
//! Normally `base == g₀` and every record replays. After a crash *during
//! compaction* — between the snapshot rename and the WAL reset — the WAL
//! still starts at the pre-compaction base, so its first `g₀ - base`
//! records are already folded into the snapshot; they are skipped by
//! generation arithmetic. A WAL from the future (`base > g₀`) cannot be
//! produced by any crash ordering and is reported as corruption.

use std::path::Path;

use obda_dllite::{ABox, TBox, Vocabulary};

use super::wal::{read_wal, TailStatus};
use super::{snapshot::read_snapshot, StoreError, SNAPSHOT_FILE, WAL_FILE};

/// The state a store directory recovers to.
pub struct RecoveredKb {
    pub voc: Vocabulary,
    pub tbox: TBox,
    pub abox: ABox,
    /// Generation after replay: `snapshot_generation + wal_batches`.
    pub generation: u64,
    /// Generation the snapshot file holds.
    pub snapshot_generation: u64,
    /// WAL batches replayed on top of the snapshot (stale pre-compaction
    /// records excluded).
    pub wal_batches: u64,
    /// Whether the WAL ended in a torn record (crash mid-append). The
    /// torn suffix was never acknowledged and is dropped.
    pub torn_tail: bool,
    /// Byte length of the WAL's valid prefix (where a torn tail gets
    /// truncated).
    pub wal_valid_len: u64,
    /// The WAL header's base generation. Differs from
    /// `snapshot_generation` exactly when a compaction was interrupted
    /// between its snapshot rename and its WAL reset — the log is then
    /// (partly or wholly) superseded and must be rebuilt before further
    /// appends ([`super::DurableStore::open`] does so).
    pub wal_base: u64,
}

/// Recover the KB from a store directory: read and validate the
/// snapshot, scan the WAL, skip already-folded records, replay the rest.
/// Read-only — truncating a torn tail is the caller's move (see
/// [`super::DurableStore::open`]).
pub fn recover(dir: &Path) -> Result<RecoveredKb, StoreError> {
    let (mut voc, tbox, mut abox, snapshot_generation) = read_snapshot(&dir.join(SNAPSHOT_FILE))?;
    let wal_path = dir.join(WAL_FILE);
    let (base, batches, tail) = read_wal(&wal_path)?;
    if base > snapshot_generation {
        return Err(StoreError::Corrupt {
            file: wal_path.display().to_string(),
            detail: format!(
                "WAL base generation {base} is ahead of snapshot generation \
                 {snapshot_generation}"
            ),
        });
    }
    // Records 1..=stale are already folded into the snapshot. A
    // snapshot *ahead* of the whole log (stale > record count) is the
    // footprint of an interrupted reload-path compaction — the reload
    // itself writes no WAL record, so the renamed snapshot can be more
    // than `count` generations past the base; every logged record is
    // superseded and the snapshot alone is the complete state.
    let stale = ((snapshot_generation - base) as usize).min(batches.len());
    let mut replayed = 0u64;
    for delta in &batches[stale..] {
        for name in &delta.new_individuals {
            voc.individual(name);
        }
        abox.apply(delta);
        replayed += 1;
    }
    let (torn_tail, wal_valid_len) = match tail {
        TailStatus::Clean => (
            false,
            std::fs::metadata(&wal_path)
                .map_err(super::io_at(&wal_path))?
                .len(),
        ),
        TailStatus::Torn { valid_len } => (true, valid_len),
    };
    Ok(RecoveredKb {
        voc,
        tbox,
        abox,
        generation: snapshot_generation + replayed,
        snapshot_generation,
        wal_batches: replayed,
        torn_tail,
        wal_valid_len,
        wal_base: base,
    })
}

#[cfg(test)]
mod tests {
    use super::super::{snapshot::write_snapshot, wal::WalWriter, DurableStore};
    use super::*;
    use obda_dllite::{example7_tbox, AboxDelta};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("obda-recover-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fixture() -> (Vocabulary, TBox, ABox) {
        let (mut voc, tbox) = example7_tbox();
        let abox = obda_dllite::example1_abox(&mut voc);
        (voc, tbox, abox)
    }

    #[test]
    fn snapshot_plus_wal_replays_to_pre_crash_state() {
        let dir = tmp_dir("replay");
        let (voc, tbox, abox) = fixture();
        let mut store = DurableStore::create(&dir, &voc, &tbox, &abox, 0).unwrap();

        // Live path: two batches, one interning a fresh individual.
        let mut live_voc = voc.clone();
        let mut live_abox = abox.clone();
        let phd = live_voc.find_concept("PhDStudent").unwrap();
        let works = live_voc.find_role("worksWith").unwrap();
        let ioana = live_voc.find_individual("Ioana").unwrap();
        // The id "Garcia" will receive when the batch interns it: the
        // next dense individual id.
        let garcia = obda_dllite::IndividualId(live_voc.num_individuals() as u32);
        let d1 = AboxDelta {
            new_individuals: vec!["Garcia".to_owned()],
            ..AboxDelta::new()
        }
        .insert_concept(phd, garcia)
        .insert_role(works, garcia, ioana);
        for name in &d1.new_individuals {
            live_voc.individual(name);
        }
        assert_eq!(live_voc.find_individual("Garcia"), Some(garcia));
        store.append(&d1).unwrap();
        live_abox.apply(&d1);

        let d2 = AboxDelta::new().delete_role(
            live_voc.find_role("supervisedBy").unwrap(),
            live_voc.find_individual("Damian").unwrap(),
            ioana,
        );
        store.append(&d2).unwrap();
        live_abox.apply(&d2);
        drop(store); // "crash": the process goes away, files stay

        let kb = recover(&dir).unwrap();
        assert_eq!(kb.generation, 2);
        assert_eq!(kb.snapshot_generation, 0);
        assert_eq!(kb.wal_batches, 2);
        assert!(!kb.torn_tail);
        assert_eq!(kb.voc, live_voc);
        assert_eq!(kb.abox, live_abox);
        assert_eq!(kb.tbox.axioms(), tbox.axioms());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_prefix_after_interrupted_compaction_is_skipped() {
        let dir = tmp_dir("stale");
        let (voc, tbox, abox) = fixture();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let damian = voc.find_individual("Damian").unwrap();
        let francois = voc.find_individual("Francois").unwrap();

        // WAL at base 0 with two batches...
        let mut wal = WalWriter::create(&dir.join(super::WAL_FILE), 0).unwrap();
        let d1 = AboxDelta::new().insert_concept(phd, damian);
        let d2 = AboxDelta::new().insert_concept(phd, francois);
        wal.append_batch(&d1).unwrap();
        wal.append_batch(&d2).unwrap();
        drop(wal);

        // ...but the snapshot was already compacted through d1 (gen 1):
        // the crash hit between the snapshot rename and the WAL reset.
        let mut folded = abox.clone();
        folded.apply(&d1);
        write_snapshot(&dir.join(super::SNAPSHOT_FILE), &voc, &tbox, &folded, 1).unwrap();

        let kb = recover(&dir).unwrap();
        assert_eq!(kb.generation, 2, "d1 folded + d2 replayed");
        assert_eq!(kb.wal_batches, 1, "only d2 replays");
        let mut want = folded.clone();
        want.apply(&d2);
        assert_eq!(kb.abox, want);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_ahead_of_entire_wal_recovers_and_accepts_appends() {
        // An interrupted *reload-path* compaction: the reload writes no
        // WAL record, so the renamed snapshot's generation can exceed
        // base + record-count. The snapshot alone is the complete state;
        // open() must rebuild the stale log before appending, or the
        // skip arithmetic would swallow the next batch on replay.
        let dir = tmp_dir("superseded");
        let (voc, tbox, abox) = fixture();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let damian = voc.find_individual("Damian").unwrap();
        let francois = voc.find_individual("Francois").unwrap();

        let mut wal = WalWriter::create(&dir.join(super::WAL_FILE), 0).unwrap();
        wal.append_batch(&AboxDelta::new().insert_concept(phd, damian))
            .unwrap();
        drop(wal);
        // Reload published generation 3 (2 reloads past the one logged
        // batch) and crashed after the snapshot rename.
        let mut reloaded = abox.clone();
        reloaded.assert_concept(phd, francois);
        write_snapshot(&dir.join(super::SNAPSHOT_FILE), &voc, &tbox, &reloaded, 3).unwrap();

        let kb = recover(&dir).unwrap();
        assert_eq!(kb.generation, 3);
        assert_eq!(kb.wal_batches, 0, "every logged record is superseded");
        assert_eq!(kb.abox, reloaded, "the snapshot alone is the state");

        let (kb, mut store) = DurableStore::open(&dir).unwrap();
        assert_eq!(store.base_generation(), 3, "stale WAL was rebuilt");
        let d = AboxDelta::new().insert_concept(phd, damian);
        store.append(&d).unwrap();
        drop(store);
        let after = recover(&dir).unwrap();
        assert_eq!(after.generation, 4, "the append survives recovery");
        let mut want = kb.abox.clone();
        want.apply(&d);
        assert_eq!(after.abox, want);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_from_the_future_is_corruption() {
        let dir = tmp_dir("future");
        let (voc, tbox, abox) = fixture();
        write_snapshot(&dir.join(super::SNAPSHOT_FILE), &voc, &tbox, &abox, 1).unwrap();
        drop(WalWriter::create(&dir.join(super::WAL_FILE), 5).unwrap());
        assert!(matches!(recover(&dir), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_truncates_torn_tail_and_resumes_appending() {
        let dir = tmp_dir("resume");
        let (voc, tbox, abox) = fixture();
        let mut store = DurableStore::create(&dir, &voc, &tbox, &abox, 0).unwrap();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let damian = voc.find_individual("Damian").unwrap();
        let francois = voc.find_individual("Francois").unwrap();
        let d1 = AboxDelta::new().insert_concept(phd, damian);
        store.append(&d1).unwrap();
        store
            .append(&AboxDelta::new().insert_concept(phd, francois))
            .unwrap();
        drop(store);

        // Tear the last record.
        let wal_path = dir.join(super::WAL_FILE);
        let len = std::fs::metadata(&wal_path).unwrap().len();
        super::super::wal::truncate_to(&wal_path, len - 5).unwrap();

        let (kb, mut store) = DurableStore::open(&dir).unwrap();
        assert_eq!(kb.generation, 1, "torn batch 2 dropped");
        let mut want = abox.clone();
        want.apply(&d1);
        assert_eq!(kb.abox, want);
        assert_eq!(store.generation(), 1);

        // The truncated log accepts new batches on the clean boundary.
        let d3 = AboxDelta::new().insert_concept(phd, francois);
        store.append(&d3).unwrap();
        drop(store);
        let kb = recover(&dir).unwrap();
        assert_eq!(kb.generation, 2);
        want.apply(&d3);
        assert_eq!(kb.abox, want);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_compaction_poisons_the_store() {
        let dir = tmp_dir("poison");
        let (voc, tbox, abox) = fixture();
        let mut store = DurableStore::create(&dir, &voc, &tbox, &abox, 0).unwrap();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let damian = voc.find_individual("Damian").unwrap();
        let d = AboxDelta::new().insert_concept(phd, damian);
        store.append(&d).unwrap();

        // Make compaction fail: the directory vanishes under the store.
        std::fs::remove_dir_all(&dir).unwrap();
        let mut live = abox.clone();
        live.apply(&d);
        assert!(store.compact(&voc, &tbox, &live, 1).is_err());

        // The store must now refuse appends — logging a delta against a
        // base the files cannot reconstruct would corrupt recovery.
        match store.append(&d) {
            Err(crate::store::StoreError::Poisoned { .. }) => {}
            other => panic!("expected Poisoned, got {other:?}"),
        }
    }

    #[test]
    fn compaction_folds_wal_into_snapshot() {
        let dir = tmp_dir("compact");
        let (voc, tbox, abox) = fixture();
        let mut store = DurableStore::create(&dir, &voc, &tbox, &abox, 0).unwrap();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let damian = voc.find_individual("Damian").unwrap();
        let mut live = abox.clone();
        let d = AboxDelta::new().insert_concept(phd, damian);
        store.append(&d).unwrap();
        live.apply(&d);
        store.compact(&voc, &tbox, &live, 1).unwrap();
        assert_eq!(store.base_generation(), 1);
        assert_eq!(store.wal_batches(), 0);
        drop(store);
        let kb = recover(&dir).unwrap();
        assert_eq!(kb.generation, 1);
        assert_eq!(kb.snapshot_generation, 1, "WAL folded into the snapshot");
        assert_eq!(kb.abox, live);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
