//! The append-only write-ahead log of committed transactions.
//!
//! File layout (format v2):
//!
//! ```text
//! magic    8 bytes  "OBDAWAL\x01"
//! version  u32      FORMAT_VERSION
//! basegen  u64      generation of the snapshot this log extends
//! records  *        [len: u32][group payload: len bytes][fnv1a64: u64]
//! ```
//!
//! Each record is one **commit group**: the [`AboxDelta`]s of one or
//! more transactions fsynced together by the group-commit leader. The
//! group payload is `[ntxn: u32]` followed, per transaction, by
//! `[len: u32][delta payload]`. Every transaction in a group counts as
//! its own generation: a log whose records hold `k₁, k₂, …` transactions
//! carries the state from `basegen` to `basegen + Σkᵢ`.
//!
//! Records are appended with a single `write_all` and flushed to the OS,
//! so a killed *writer process* can lose at most a suffix of the final
//! record — a **torn tail**. [`read_wal`] detects a tear by length
//! (fewer bytes than the prefix promises) or by checksum, reports every
//! record before it, and recovery truncates the file at the last good
//! boundary. A tear inside a group record drops the **whole group**:
//! none of its transactions were acknowledged (the leader acks only
//! after the record is durable), so atomic all-or-nothing loss of the
//! group is exactly the contract. A record that fails validation is
//! never followed by trusted data: the scan stops there by design (the
//! same discipline RDBMS redo logs use — data past the first bad record
//! was never acknowledged).

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use obda_dllite::{AboxDelta, ConceptId, IndividualId, RoleId};

use super::{fnv1a64, io_at, put_str, put_u32, put_u64, Reader, StoreError, FORMAT_VERSION};

const MAGIC: &[u8; 8] = b"OBDAWAL\x01";
const HEADER_LEN: u64 = 8 + 4 + 8;

/// The largest count or byte length a WAL record field can carry — its
/// length prefixes are `u32`.
pub const MAX_FIELD_LEN: usize = u32::MAX as usize;

/// Check that one field length fits the record format's `u32` prefix.
/// Split out (rather than inlined into [`validate_batch`]) so the
/// boundary is unit-testable without allocating a >4G-entry vector.
fn field_len(what: &'static str, len: usize) -> Result<u32, StoreError> {
    u32::try_from(len).map_err(|_| StoreError::BatchTooLarge {
        what,
        len,
        limit: MAX_FIELD_LEN,
    })
}

/// Reject a batch any of whose length fields would overflow the record
/// format **before** encoding. The unchecked `delta.*.len() as u32`
/// casts this replaces would wrap a >4G-entry batch to a small count and
/// emit a record whose checksum matches its truncated payload — corrupt
/// data that recovery would happily trust.
pub fn validate_batch(delta: &AboxDelta) -> Result<(), StoreError> {
    field_len("new_individuals", delta.new_individuals.len())?;
    for name in &delta.new_individuals {
        field_len("individual name", name.len())?;
    }
    field_len("insert_concepts", delta.insert_concepts.len())?;
    field_len("delete_concepts", delta.delete_concepts.len())?;
    field_len("insert_roles", delta.insert_roles.len())?;
    field_len("delete_roles", delta.delete_roles.len())?;
    Ok(())
}

/// Serialize one delta (one transaction's slice of a group payload).
/// Callers must have passed [`validate_batch`] — the casts below are
/// exact after it.
pub fn encode_delta(delta: &AboxDelta) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, delta.new_individuals.len() as u32);
    for name in &delta.new_individuals {
        put_str(&mut out, name);
    }
    put_u32(&mut out, delta.insert_concepts.len() as u32);
    for &(c, i) in &delta.insert_concepts {
        put_u32(&mut out, c.0);
        put_u32(&mut out, i.0);
    }
    put_u32(&mut out, delta.delete_concepts.len() as u32);
    for &(c, i) in &delta.delete_concepts {
        put_u32(&mut out, c.0);
        put_u32(&mut out, i.0);
    }
    put_u32(&mut out, delta.insert_roles.len() as u32);
    for &(r, a, b) in &delta.insert_roles {
        put_u32(&mut out, r.0);
        put_u32(&mut out, a.0);
        put_u32(&mut out, b.0);
    }
    put_u32(&mut out, delta.delete_roles.len() as u32);
    for &(r, a, b) in &delta.delete_roles {
        put_u32(&mut out, r.0);
        put_u32(&mut out, a.0);
        put_u32(&mut out, b.0);
    }
    out
}

/// Decode one delta payload.
pub fn decode_delta(bytes: &[u8], file: &str) -> Result<AboxDelta, StoreError> {
    let mut r = Reader::new(bytes, file);
    let mut delta = AboxDelta::new();
    for _ in 0..r.count(4)? {
        delta.new_individuals.push(r.str()?);
    }
    for _ in 0..r.count(8)? {
        let c = ConceptId(r.u32()?);
        let i = IndividualId(r.u32()?);
        delta.insert_concepts.push((c, i));
    }
    for _ in 0..r.count(8)? {
        let c = ConceptId(r.u32()?);
        let i = IndividualId(r.u32()?);
        delta.delete_concepts.push((c, i));
    }
    for _ in 0..r.count(12)? {
        let role = RoleId(r.u32()?);
        let a = IndividualId(r.u32()?);
        let b = IndividualId(r.u32()?);
        delta.insert_roles.push((role, a, b));
    }
    for _ in 0..r.count(12)? {
        let role = RoleId(r.u32()?);
        let a = IndividualId(r.u32()?);
        let b = IndividualId(r.u32()?);
        delta.delete_roles.push((role, a, b));
    }
    r.expect_finished()?;
    Ok(delta)
}

/// Serialize one commit group (the WAL record payload): `[ntxn]` then
/// per transaction `[len][delta]`. Callers must have validated every
/// delta via [`validate_batch`].
pub fn encode_group(deltas: &[AboxDelta]) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::new();
    put_u32(
        &mut out,
        field_len("group transaction count", deltas.len())?,
    );
    for delta in deltas {
        let payload = encode_delta(delta);
        put_u32(&mut out, field_len("transaction payload", payload.len())?);
        out.extend_from_slice(&payload);
    }
    Ok(out)
}

/// Decode one commit-group payload into its per-transaction deltas.
pub fn decode_group(bytes: &[u8], file: &str) -> Result<Vec<AboxDelta>, StoreError> {
    let mut r = Reader::new(bytes, file);
    let ntxn = r.count(4)?;
    let mut deltas = Vec::with_capacity(ntxn);
    for _ in 0..ntxn {
        let len = r.u32()? as usize;
        deltas.push(decode_delta(r.take(len)?, file)?);
    }
    r.expect_finished()?;
    Ok(deltas)
}

/// The state of a WAL file's tail after a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// Every byte belongs to a valid record.
    Clean,
    /// The file ends in a torn (incomplete or checksum-failing) record;
    /// `valid_len` is the offset of the last good record boundary.
    Torn { valid_len: u64 },
}

/// Scan a WAL file: returns the base generation, every durable
/// transaction delta in commit order (group records flattened), and the
/// tail status. Header-level damage (bad magic, short header) is a hard
/// [`StoreError::Corrupt`] — a torn tail can only exist past the header,
/// because the header is written in one flush at creation time.
pub fn read_wal(path: &Path) -> Result<(u64, Vec<AboxDelta>, TailStatus), StoreError> {
    let bytes = std::fs::read(path).map_err(io_at(path))?;
    let file = path.display().to_string();
    if bytes.len() < HEADER_LEN as usize {
        return Err(StoreError::Corrupt {
            file,
            detail: format!("{} bytes is too short for a WAL header", bytes.len()),
        });
    }
    let mut r = Reader::new(&bytes[..HEADER_LEN as usize], &file);
    if r.take(MAGIC.len())? != MAGIC {
        return Err(StoreError::Corrupt {
            file,
            detail: "bad magic".to_owned(),
        });
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::BadVersion {
            file,
            found: version,
        });
    }
    let base_generation = r.u64()?;

    let mut batches = Vec::new();
    let mut offset = HEADER_LEN as usize;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            return Ok((base_generation, batches, TailStatus::Clean));
        }
        if remaining < 4 {
            return Ok((
                base_generation,
                batches,
                TailStatus::Torn {
                    valid_len: offset as u64,
                },
            ));
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        if remaining < 4 + len + 8 {
            return Ok((
                base_generation,
                batches,
                TailStatus::Torn {
                    valid_len: offset as u64,
                },
            ));
        }
        let payload = &bytes[offset + 4..offset + 4 + len];
        let stored = u64::from_le_bytes(
            bytes[offset + 4 + len..offset + 4 + len + 8]
                .try_into()
                .unwrap(),
        );
        if fnv1a64(payload) != stored {
            return Ok((
                base_generation,
                batches,
                TailStatus::Torn {
                    valid_len: offset as u64,
                },
            ));
        }
        // A checksummed payload that fails to *decode* is not a torn
        // write (the bytes arrived intact): it is real corruption or a
        // writer bug, and silently dropping it would lose acknowledged
        // data.
        batches.extend(decode_group(payload, &file)?);
        offset += 4 + len + 8;
    }
}

/// Truncate a WAL file to `len` bytes (drops a torn tail).
pub fn truncate_to(path: &Path, len: u64) -> Result<(), StoreError> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(io_at(path))?;
    file.set_len(len).map_err(io_at(path))?;
    file.sync_all().map_err(io_at(path))?;
    Ok(())
}

/// The appending half: owns the open file handle.
///
/// Tracks the byte length of the last fully flushed record boundary so
/// a *failed* append (e.g. `ENOSPC` mid-record) can truncate the
/// partial bytes away before anything else is written. Without that, a
/// retried-and-acknowledged batch would sit *after* garbage, and the
/// next recovery — which stops at the first bad record — would silently
/// drop it. If even the truncation fails, the writer marks itself
/// broken and refuses all further appends.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// Bytes of complete, flushed records (including the header).
    good_len: u64,
    /// Set when a failed append could not be rolled back.
    broken: Option<String>,
}

impl WalWriter {
    /// Create (or overwrite) an empty WAL extending a generation-`base`
    /// snapshot.
    pub fn create(path: &Path, base_generation: u64) -> Result<Self, StoreError> {
        Self::create_with(path, base_generation, &[])
    }

    /// Create (or overwrite) a WAL extending a generation-`base` snapshot
    /// and already containing `deltas` — one singleton group record per
    /// transaction. Crash-atomic: header and records are written to a
    /// temp file, fsynced, and renamed into place, so `path` always
    /// holds either the complete old log or the complete new one — never
    /// a zero-length or half-written file (a kill mid-rebuild must not
    /// make the store unopenable). This is how a fuzzy checkpoint
    /// rebuilds the log tail that outlived its snapshot.
    pub fn create_with(
        path: &Path,
        base_generation: u64,
        deltas: &[AboxDelta],
    ) -> Result<Self, StoreError> {
        let mut bytes = Vec::with_capacity(HEADER_LEN as usize);
        bytes.extend_from_slice(MAGIC);
        put_u32(&mut bytes, FORMAT_VERSION);
        put_u64(&mut bytes, base_generation);
        for delta in deltas {
            validate_batch(delta)?;
            frame_record(&mut bytes, &encode_group(std::slice::from_ref(delta))?)?;
        }
        let tmp = path.with_extension("tmp");
        let mut file = File::create(&tmp).map_err(io_at(&tmp))?;
        file.write_all(&bytes).map_err(io_at(&tmp))?;
        file.flush().map_err(io_at(&tmp))?;
        file.sync_all().map_err(io_at(&tmp))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(io_at(&tmp))?;
        Self::open_append(path)
    }

    /// Open a validated WAL for appending (recovery truncates torn tails
    /// first, so the file ends on a record boundary).
    pub fn open_append(path: &Path) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(io_at(path))?;
        let good_len = file.metadata().map_err(io_at(path))?.len();
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            good_len,
            broken: None,
        })
    }

    /// Append one single-transaction group record. See
    /// [`WalWriter::append_group`].
    pub fn append_batch(&mut self, delta: &AboxDelta) -> Result<u64, StoreError> {
        self.append_group(std::slice::from_ref(delta))
    }

    /// Append one commit group: a single `write_all` of the framed
    /// record, then a flush to the OS. A crash mid-call leaves at most a
    /// torn tail (dropping the whole — unacknowledged — group); a
    /// *failure* mid-call rolls the file back to the last good boundary
    /// (see the type docs) so later appends never land after garbage.
    /// Returns the framed record size in bytes (feeds the WAL byte
    /// counters of the metrics registry).
    pub fn append_group(&mut self, deltas: &[AboxDelta]) -> Result<u64, StoreError> {
        if let Some(detail) = &self.broken {
            return Err(StoreError::Corrupt {
                file: self.path.display().to_string(),
                detail: format!("writer is broken by an unrollable failed append: {detail}"),
            });
        }
        for delta in deltas {
            validate_batch(delta)?;
        }
        let mut record = Vec::new();
        frame_record(&mut record, &encode_group(deltas)?)?;
        match self
            .file
            .write_all(&record)
            .and_then(|()| self.file.flush())
        {
            Ok(()) => {
                self.good_len += record.len() as u64;
                Ok(record.len() as u64)
            }
            Err(e) => {
                if let Err(trunc) = self.file.set_len(self.good_len) {
                    self.broken = Some(format!("append failed ({e}), rollback failed ({trunc})"));
                }
                Err(io_at(&self.path)(e))
            }
        }
    }

    /// `fsync`: power-loss durability for everything appended so far.
    /// The group-commit leader calls this once per group — the latency
    /// amortization that motivates batching commits at all.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data().map_err(io_at(&self.path))?;
        Ok(())
    }

    /// [`WalWriter::append_group`] + [`WalWriter::sync`], with the
    /// stronger guarantee that on `Err` the file does *not* contain the
    /// group: a failed fsync rolls the record back out (or marks the
    /// writer broken if even that fails), so the commit path never
    /// reports "failed" for a group a later recovery would replay.
    pub fn append_group_durable(&mut self, deltas: &[AboxDelta]) -> Result<u64, StoreError> {
        let before = self.good_len;
        let bytes = self.append_group(deltas)?;
        if let Err(e) = self.sync() {
            match self.file.set_len(before) {
                Ok(()) => self.good_len = before,
                Err(trunc) => {
                    self.broken = Some(format!("fsync failed ({e}), rollback failed ({trunc})"));
                }
            }
            return Err(e);
        }
        Ok(bytes)
    }
}

/// Frame one record — `[len][payload][checksum]` — onto `out`. The
/// *total* payload can overflow the record's length prefix even when
/// every field count fits (many long names), hence the check here.
fn frame_record(out: &mut Vec<u8>, payload: &[u8]) -> Result<(), StoreError> {
    put_u32(out, field_len("record payload", payload.len())?);
    out.extend_from_slice(payload);
    put_u64(out, fnv1a64(payload));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmp_wal(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("obda-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.wal"))
    }

    fn sample_delta(k: u32) -> AboxDelta {
        let mut d = AboxDelta::new();
        if k % 3 == 0 {
            d.new_individuals.push(format!("fresh{k}"));
        }
        d.insert_concepts.push((ConceptId(k), IndividualId(k + 1)));
        if k % 2 == 0 {
            d.insert_roles
                .push((RoleId(k), IndividualId(k), IndividualId(k + 2)));
        } else {
            d.delete_concepts.push((ConceptId(k), IndividualId(0)));
            d.delete_roles
                .push((RoleId(0), IndividualId(k), IndividualId(k)));
        }
        d
    }

    /// Framed byte length of one single-transaction group record.
    fn singleton_record_len(d: &AboxDelta) -> u64 {
        let mut rec = Vec::new();
        frame_record(&mut rec, &encode_group(std::slice::from_ref(d)).unwrap()).unwrap();
        rec.len() as u64
    }

    #[test]
    fn append_and_read_roundtrip() {
        let path = tmp_wal("roundtrip");
        let mut w = WalWriter::create(&path, 5).unwrap();
        let deltas: Vec<AboxDelta> = (0..7).map(sample_delta).collect();
        for d in &deltas {
            w.append_batch(d).unwrap();
        }
        drop(w);
        let (base, got, tail) = read_wal(&path).unwrap();
        assert_eq!(base, 5);
        assert_eq!(got, deltas);
        assert_eq!(tail, TailStatus::Clean);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_record_flattens_to_per_transaction_deltas() {
        let path = tmp_wal("group");
        let mut w = WalWriter::create(&path, 0).unwrap();
        let group: Vec<AboxDelta> = (0..3).map(sample_delta).collect();
        w.append_group(&group).unwrap();
        w.append_batch(&sample_delta(9)).unwrap();
        drop(w);
        let (_, got, tail) = read_wal(&path).unwrap();
        assert_eq!(got.len(), 4, "3 grouped txns + 1 singleton");
        assert_eq!(&got[..3], &group[..]);
        assert_eq!(got[3], sample_delta(9));
        assert_eq!(tail, TailStatus::Clean);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_inside_a_group_record_drops_the_whole_group() {
        let path = tmp_wal("torn-group");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append_batch(&sample_delta(1)).unwrap();
        let boundary = std::fs::metadata(&path).unwrap().len();
        w.append_group(&(2..6).map(sample_delta).collect::<Vec<_>>())
            .unwrap();
        drop(w);
        let full = std::fs::metadata(&path).unwrap().len();
        // Chop inside the group record, deep enough that several of its
        // transactions are byte-complete — they must still all vanish:
        // none were acknowledged, the group is atomic.
        truncate_to(&path, full - 3).unwrap();
        let (_, got, tail) = read_wal(&path).unwrap();
        assert_eq!(got, vec![sample_delta(1)], "whole torn group dropped");
        assert_eq!(
            tail,
            TailStatus::Torn {
                valid_len: boundary
            }
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_with_seeds_the_log_tail() {
        let path = tmp_wal("seeded");
        let tail: Vec<AboxDelta> = (3..6).map(sample_delta).collect();
        let mut w = WalWriter::create_with(&path, 7, &tail).unwrap();
        w.append_batch(&sample_delta(9)).unwrap();
        drop(w);
        let (base, got, status) = read_wal(&path).unwrap();
        assert_eq!(base, 7);
        assert_eq!(got.len(), 4);
        assert_eq!(&got[..3], &tail[..]);
        assert_eq!(got[3], sample_delta(9));
        assert_eq!(status, TailStatus::Clean);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_group_roundtrips() {
        // An empty transaction (generation bump with no facts) must
        // survive the group codec: `apply_batch(&AboxDelta::new())` is a
        // documented way to force a generation bump.
        let bytes = encode_group(std::slice::from_ref(&AboxDelta::new())).unwrap();
        let back = decode_group(&bytes, "mem").unwrap();
        assert_eq!(back, vec![AboxDelta::new()]);
    }

    #[test]
    fn reopened_wal_appends_after_existing_records() {
        let path = tmp_wal("reopen");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append_batch(&sample_delta(1)).unwrap();
        drop(w);
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append_batch(&sample_delta(2)).unwrap();
        drop(w);
        let (_, got, tail) = read_wal(&path).unwrap();
        assert_eq!(got, vec![sample_delta(1), sample_delta(2)]);
        assert_eq!(tail, TailStatus::Clean);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn io_errors_name_the_offending_file() {
        let missing = tmp_wal("does-not-exist");
        let _ = std::fs::remove_file(&missing);
        match read_wal(&missing) {
            Err(StoreError::Io { path, .. }) => {
                assert!(path.contains("does-not-exist"), "path was {path}");
            }
            other => panic!("expected Io with a path, got {other:?}"),
        }
        match WalWriter::open_append(&missing) {
            Err(e @ StoreError::Io { .. }) => {
                assert!(e.to_string().contains("does-not-exist"), "{e}");
            }
            Err(other) => panic!("expected Io with a path, got {other:?}"),
            Ok(_) => panic!("opening a missing WAL must fail"),
        }
    }

    proptest! {
        /// Chopping a WAL at *any* byte inside the final record recovers
        /// every earlier batch and reports a torn tail at the right
        /// boundary; garbage appended past clean records behaves the
        /// same.
        #[test]
        fn torn_tail_recovers_all_prior_batches(cut in 1u64..200, n in 1u32..6) {
            let path = tmp_wal(&format!("torn-{cut}-{n}"));
            let mut w = WalWriter::create(&path, 0).unwrap();
            let deltas: Vec<AboxDelta> = (0..n).map(sample_delta).collect();
            for d in &deltas {
                w.append_batch(d).unwrap();
            }
            drop(w);
            let full = std::fs::metadata(&path).unwrap().len();
            let (_, all, _) = read_wal(&path).unwrap();
            prop_assert_eq!(all.len(), n as usize);

            // Compute the boundary of the last record by re-framing it.
            let last_record_len = singleton_record_len(&deltas[n as usize - 1]);
            let boundary = full - last_record_len;
            // Cut somewhere strictly inside the final record.
            let cut_at = boundary + 1 + (cut % (last_record_len - 1));
            truncate_to(&path, cut_at).unwrap();

            let (_, got, tail) = read_wal(&path).unwrap();
            prop_assert_eq!(got.len(), n as usize - 1, "all but the torn batch");
            prop_assert_eq!(&got[..], &deltas[..n as usize - 1]);
            prop_assert_eq!(tail, TailStatus::Torn { valid_len: boundary });

            // Recovery truncates and appends cleanly on the boundary.
            truncate_to(&path, boundary).unwrap();
            let mut w = WalWriter::open_append(&path).unwrap();
            w.append_batch(&sample_delta(99)).unwrap();
            drop(w);
            let (_, after, tail) = read_wal(&path).unwrap();
            prop_assert_eq!(tail, TailStatus::Clean);
            prop_assert_eq!(after.len(), n as usize);
            prop_assert_eq!(after.last().unwrap(), &sample_delta(99));
            std::fs::remove_file(&path).unwrap();
        }

        /// Delta payload encoding round-trips for arbitrary shapes.
        #[test]
        fn delta_codec_roundtrip(seed in 0u32..10_000) {
            let d = sample_delta(seed);
            let bytes = encode_delta(&d);
            let back = decode_delta(&bytes, "mem").unwrap();
            prop_assert_eq!(d, back);
        }

        /// Group payloads round-trip for arbitrary group sizes,
        /// including empty member deltas.
        #[test]
        fn group_codec_roundtrip(seed in 0u32..10_000, n in 0usize..5) {
            let mut group: Vec<AboxDelta> = (0..n as u32).map(|k| sample_delta(seed + k)).collect();
            group.push(AboxDelta::new());
            let bytes = encode_group(&group).unwrap();
            let back = decode_group(&bytes, "mem").unwrap();
            prop_assert_eq!(group, back);
        }
    }

    /// The boundary of the `u32` length prefix, tested on the checked
    /// helper itself: materializing a >4G-entry batch would need tens of
    /// gigabytes, but the overflow decision is pure arithmetic.
    #[test]
    fn field_length_boundary_is_exact() {
        assert_eq!(field_len("x", 0).unwrap(), 0);
        assert_eq!(field_len("x", MAX_FIELD_LEN).unwrap(), u32::MAX);
        let err = field_len("insert_concepts", MAX_FIELD_LEN + 1).unwrap_err();
        match err {
            StoreError::BatchTooLarge { what, len, limit } => {
                assert_eq!(what, "insert_concepts");
                assert_eq!(len, MAX_FIELD_LEN + 1);
                assert_eq!(limit, MAX_FIELD_LEN);
            }
            other => panic!("expected BatchTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn validate_batch_accepts_ordinary_deltas() {
        for k in 0..8 {
            validate_batch(&sample_delta(k)).unwrap();
        }
    }

    #[test]
    fn batch_too_large_formats_a_useful_message() {
        let msg = StoreError::BatchTooLarge {
            what: "insert_roles",
            len: MAX_FIELD_LEN + 7,
            limit: MAX_FIELD_LEN,
        }
        .to_string();
        assert!(msg.contains("insert_roles"), "{msg}");
        assert!(msg.contains("rejected"), "{msg}");
    }

    #[test]
    fn bitflip_in_final_record_is_a_torn_tail() {
        let path = tmp_wal("bitflip");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append_batch(&sample_delta(1)).unwrap();
        w.append_batch(&sample_delta(2)).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40; // inside the last record's checksum/payload
        std::fs::write(&path, &bytes).unwrap();
        let (_, got, tail) = read_wal(&path).unwrap();
        assert_eq!(got, vec![sample_delta(1)]);
        assert!(matches!(tail, TailStatus::Torn { .. }));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_damage_is_hard_corruption() {
        let path = tmp_wal("header");
        let w = WalWriter::create(&path, 0).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::Corrupt { .. })));
        std::fs::remove_file(&path).unwrap();
    }
}
