//! The append-only write-ahead log of [`AboxDelta`] batches.
//!
//! File layout:
//!
//! ```text
//! magic    8 bytes  "OBDAWAL\x01"
//! version  u32      FORMAT_VERSION
//! basegen  u64      generation of the snapshot this log extends
//! records  *        [len: u32][payload: len bytes][fnv1a64(payload): u64]
//! ```
//!
//! One record per [`AboxDelta`] batch; applying record `k` (1-based)
//! to the base snapshot produces generation `basegen + k`. Records are
//! appended with a single `write_all` and flushed to the OS, so a killed
//! *writer process* can lose at most a suffix of the final record — a
//! **torn tail**. [`read_wal`] detects a tear by length (fewer bytes than
//! the prefix promises) or by checksum, reports every record before it,
//! and recovery truncates the file at the last good boundary. A record
//! that fails validation is never followed by trusted data: the scan
//! stops there by design (the same discipline RDBMS redo logs use — data
//! past the first bad record was never acknowledged).

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use obda_dllite::{AboxDelta, ConceptId, IndividualId, RoleId};

use super::{fnv1a64, put_str, put_u32, put_u64, Reader, StoreError, FORMAT_VERSION};

const MAGIC: &[u8; 8] = b"OBDAWAL\x01";
const HEADER_LEN: u64 = 8 + 4 + 8;

/// The largest count or byte length a WAL record field can carry — its
/// length prefixes are `u32`.
pub const MAX_FIELD_LEN: usize = u32::MAX as usize;

/// Check that one field length fits the record format's `u32` prefix.
/// Split out (rather than inlined into [`validate_batch`]) so the
/// boundary is unit-testable without allocating a >4G-entry vector.
fn field_len(what: &'static str, len: usize) -> Result<u32, StoreError> {
    u32::try_from(len).map_err(|_| StoreError::BatchTooLarge {
        what,
        len,
        limit: MAX_FIELD_LEN,
    })
}

/// Reject a batch any of whose length fields would overflow the record
/// format **before** encoding. The unchecked `delta.*.len() as u32`
/// casts this replaces would wrap a >4G-entry batch to a small count and
/// emit a record whose checksum matches its truncated payload — corrupt
/// data that recovery would happily trust.
pub fn validate_batch(delta: &AboxDelta) -> Result<(), StoreError> {
    field_len("new_individuals", delta.new_individuals.len())?;
    for name in &delta.new_individuals {
        field_len("individual name", name.len())?;
    }
    field_len("insert_concepts", delta.insert_concepts.len())?;
    field_len("delete_concepts", delta.delete_concepts.len())?;
    field_len("insert_roles", delta.insert_roles.len())?;
    field_len("delete_roles", delta.delete_roles.len())?;
    Ok(())
}

/// Serialize one delta batch (the WAL record payload). Callers must have
/// passed [`validate_batch`] — the casts below are exact after it.
pub fn encode_delta(delta: &AboxDelta) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, delta.new_individuals.len() as u32);
    for name in &delta.new_individuals {
        put_str(&mut out, name);
    }
    put_u32(&mut out, delta.insert_concepts.len() as u32);
    for &(c, i) in &delta.insert_concepts {
        put_u32(&mut out, c.0);
        put_u32(&mut out, i.0);
    }
    put_u32(&mut out, delta.delete_concepts.len() as u32);
    for &(c, i) in &delta.delete_concepts {
        put_u32(&mut out, c.0);
        put_u32(&mut out, i.0);
    }
    put_u32(&mut out, delta.insert_roles.len() as u32);
    for &(r, a, b) in &delta.insert_roles {
        put_u32(&mut out, r.0);
        put_u32(&mut out, a.0);
        put_u32(&mut out, b.0);
    }
    put_u32(&mut out, delta.delete_roles.len() as u32);
    for &(r, a, b) in &delta.delete_roles {
        put_u32(&mut out, r.0);
        put_u32(&mut out, a.0);
        put_u32(&mut out, b.0);
    }
    out
}

/// Decode one delta batch payload.
pub fn decode_delta(bytes: &[u8], file: &str) -> Result<AboxDelta, StoreError> {
    let mut r = Reader::new(bytes, file);
    let mut delta = AboxDelta::new();
    for _ in 0..r.count(4)? {
        delta.new_individuals.push(r.str()?);
    }
    for _ in 0..r.count(8)? {
        let c = ConceptId(r.u32()?);
        let i = IndividualId(r.u32()?);
        delta.insert_concepts.push((c, i));
    }
    for _ in 0..r.count(8)? {
        let c = ConceptId(r.u32()?);
        let i = IndividualId(r.u32()?);
        delta.delete_concepts.push((c, i));
    }
    for _ in 0..r.count(12)? {
        let role = RoleId(r.u32()?);
        let a = IndividualId(r.u32()?);
        let b = IndividualId(r.u32()?);
        delta.insert_roles.push((role, a, b));
    }
    for _ in 0..r.count(12)? {
        let role = RoleId(r.u32()?);
        let a = IndividualId(r.u32()?);
        let b = IndividualId(r.u32()?);
        delta.delete_roles.push((role, a, b));
    }
    r.expect_finished()?;
    Ok(delta)
}

/// The state of a WAL file's tail after a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// Every byte belongs to a valid record.
    Clean,
    /// The file ends in a torn (incomplete or checksum-failing) record;
    /// `valid_len` is the offset of the last good record boundary.
    Torn { valid_len: u64 },
}

/// Scan a WAL file: returns the base generation, every valid batch in
/// append order, and the tail status. Header-level damage (bad magic,
/// short header) is a hard [`StoreError::Corrupt`] — a torn tail can only
/// exist past the header, because the header is written in one flush at
/// creation time.
pub fn read_wal(path: &Path) -> Result<(u64, Vec<AboxDelta>, TailStatus), StoreError> {
    let bytes = std::fs::read(path)?;
    let file = path.display().to_string();
    if bytes.len() < HEADER_LEN as usize {
        return Err(StoreError::Corrupt {
            file,
            detail: format!("{} bytes is too short for a WAL header", bytes.len()),
        });
    }
    let mut r = Reader::new(&bytes[..HEADER_LEN as usize], &file);
    if r.take(MAGIC.len())? != MAGIC {
        return Err(StoreError::Corrupt {
            file,
            detail: "bad magic".to_owned(),
        });
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::BadVersion {
            file,
            found: version,
        });
    }
    let base_generation = r.u64()?;

    let mut batches = Vec::new();
    let mut offset = HEADER_LEN as usize;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            return Ok((base_generation, batches, TailStatus::Clean));
        }
        if remaining < 4 {
            return Ok((
                base_generation,
                batches,
                TailStatus::Torn {
                    valid_len: offset as u64,
                },
            ));
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        if remaining < 4 + len + 8 {
            return Ok((
                base_generation,
                batches,
                TailStatus::Torn {
                    valid_len: offset as u64,
                },
            ));
        }
        let payload = &bytes[offset + 4..offset + 4 + len];
        let stored = u64::from_le_bytes(
            bytes[offset + 4 + len..offset + 4 + len + 8]
                .try_into()
                .unwrap(),
        );
        if fnv1a64(payload) != stored {
            return Ok((
                base_generation,
                batches,
                TailStatus::Torn {
                    valid_len: offset as u64,
                },
            ));
        }
        // A checksummed payload that fails to *decode* is not a torn
        // write (the bytes arrived intact): it is real corruption or a
        // writer bug, and silently dropping it would lose acknowledged
        // data.
        batches.push(decode_delta(payload, &file)?);
        offset += 4 + len + 8;
    }
}

/// Truncate a WAL file to `len` bytes (drops a torn tail).
pub fn truncate_to(path: &Path, len: u64) -> Result<(), StoreError> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_all()?;
    Ok(())
}

/// The appending half: owns the open file handle.
///
/// Tracks the byte length of the last fully flushed record boundary so
/// a *failed* append (e.g. `ENOSPC` mid-record) can truncate the
/// partial bytes away before anything else is written. Without that, a
/// retried-and-acknowledged batch would sit *after* garbage, and the
/// next recovery — which stops at the first bad record — would silently
/// drop it. If even the truncation fails, the writer marks itself
/// broken and refuses all further appends.
pub struct WalWriter {
    file: File,
    /// Bytes of complete, flushed records (including the header).
    good_len: u64,
    /// Set when a failed append could not be rolled back.
    broken: Option<String>,
}

impl WalWriter {
    /// Create (or overwrite) a WAL extending a generation-`base`
    /// snapshot. Crash-atomic: the header is written to a temp file and
    /// renamed into place, so `path` always holds either the complete
    /// old log or a complete new header — never a zero-length or
    /// half-written file (a kill mid-reset must not make the store
    /// unopenable).
    pub fn create(path: &Path, base_generation: u64) -> Result<Self, StoreError> {
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        put_u32(&mut header, FORMAT_VERSION);
        put_u64(&mut header, base_generation);
        let tmp = path.with_extension("tmp");
        let mut file = File::create(&tmp)?;
        file.write_all(&header)?;
        file.flush()?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        Self::open_append(path)
    }

    /// Open a validated WAL for appending (recovery truncates torn tails
    /// first, so the file ends on a record boundary).
    pub fn open_append(path: &Path) -> Result<Self, StoreError> {
        let file = OpenOptions::new().append(true).open(path)?;
        let good_len = file.metadata()?.len();
        Ok(WalWriter {
            file,
            good_len,
            broken: None,
        })
    }

    /// Append one batch: a single `write_all` of the framed record, then
    /// a flush to the OS. A crash mid-call leaves at most a torn tail; a
    /// *failure* mid-call rolls the file back to the last good boundary
    /// (see the type docs) so later appends never land after garbage.
    pub fn append_batch(&mut self, delta: &AboxDelta) -> Result<(), StoreError> {
        if let Some(detail) = &self.broken {
            return Err(StoreError::Corrupt {
                file: "wal".to_owned(),
                detail: format!("writer is broken by an unrollable failed append: {detail}"),
            });
        }
        validate_batch(delta)?;
        let payload = encode_delta(delta);
        // The *total* payload can overflow the record's length prefix
        // even when every field count fits (many long names).
        let payload_len = field_len("record payload", payload.len())?;
        let mut record = Vec::with_capacity(4 + payload.len() + 8);
        put_u32(&mut record, payload_len);
        record.extend_from_slice(&payload);
        put_u64(&mut record, fnv1a64(&payload));
        match self
            .file
            .write_all(&record)
            .and_then(|()| self.file.flush())
        {
            Ok(()) => {
                self.good_len += record.len() as u64;
                Ok(())
            }
            Err(e) => {
                if let Err(trunc) = self.file.set_len(self.good_len) {
                    self.broken = Some(format!("append failed ({e}), rollback failed ({trunc})"));
                }
                Err(e.into())
            }
        }
    }

    /// `fsync`: power-loss durability for everything appended so far.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmp_wal(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("obda-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.wal"))
    }

    fn sample_delta(k: u32) -> AboxDelta {
        let mut d = AboxDelta::new();
        if k % 3 == 0 {
            d.new_individuals.push(format!("fresh{k}"));
        }
        d.insert_concepts.push((ConceptId(k), IndividualId(k + 1)));
        if k % 2 == 0 {
            d.insert_roles
                .push((RoleId(k), IndividualId(k), IndividualId(k + 2)));
        } else {
            d.delete_concepts.push((ConceptId(k), IndividualId(0)));
            d.delete_roles
                .push((RoleId(0), IndividualId(k), IndividualId(k)));
        }
        d
    }

    #[test]
    fn append_and_read_roundtrip() {
        let path = tmp_wal("roundtrip");
        let mut w = WalWriter::create(&path, 5).unwrap();
        let deltas: Vec<AboxDelta> = (0..7).map(sample_delta).collect();
        for d in &deltas {
            w.append_batch(d).unwrap();
        }
        drop(w);
        let (base, got, tail) = read_wal(&path).unwrap();
        assert_eq!(base, 5);
        assert_eq!(got, deltas);
        assert_eq!(tail, TailStatus::Clean);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopened_wal_appends_after_existing_records() {
        let path = tmp_wal("reopen");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append_batch(&sample_delta(1)).unwrap();
        drop(w);
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append_batch(&sample_delta(2)).unwrap();
        drop(w);
        let (_, got, tail) = read_wal(&path).unwrap();
        assert_eq!(got, vec![sample_delta(1), sample_delta(2)]);
        assert_eq!(tail, TailStatus::Clean);
        std::fs::remove_file(&path).unwrap();
    }

    proptest! {
        /// Chopping a WAL at *any* byte inside the final record recovers
        /// every earlier batch and reports a torn tail at the right
        /// boundary; garbage appended past clean records behaves the
        /// same.
        #[test]
        fn torn_tail_recovers_all_prior_batches(cut in 1u64..200, n in 1u32..6) {
            let path = tmp_wal(&format!("torn-{cut}-{n}"));
            let mut w = WalWriter::create(&path, 0).unwrap();
            let deltas: Vec<AboxDelta> = (0..n).map(sample_delta).collect();
            for d in &deltas {
                w.append_batch(d).unwrap();
            }
            drop(w);
            let full = std::fs::metadata(&path).unwrap().len();
            let (_, all, _) = read_wal(&path).unwrap();
            prop_assert_eq!(all.len(), n as usize);

            // Compute the boundary of the last record by re-encoding it.
            let last_record_len = (4 + encode_delta(&deltas[n as usize - 1]).len() + 8) as u64;
            let boundary = full - last_record_len;
            // Cut somewhere strictly inside the final record.
            let cut_at = boundary + 1 + (cut % (last_record_len - 1));
            truncate_to(&path, cut_at).unwrap();

            let (_, got, tail) = read_wal(&path).unwrap();
            prop_assert_eq!(got.len(), n as usize - 1, "all but the torn batch");
            prop_assert_eq!(&got[..], &deltas[..n as usize - 1]);
            prop_assert_eq!(tail, TailStatus::Torn { valid_len: boundary });

            // Recovery truncates and appends cleanly on the boundary.
            truncate_to(&path, boundary).unwrap();
            let mut w = WalWriter::open_append(&path).unwrap();
            w.append_batch(&sample_delta(99)).unwrap();
            drop(w);
            let (_, after, tail) = read_wal(&path).unwrap();
            prop_assert_eq!(tail, TailStatus::Clean);
            prop_assert_eq!(after.len(), n as usize);
            prop_assert_eq!(after.last().unwrap(), &sample_delta(99));
            std::fs::remove_file(&path).unwrap();
        }

        /// Delta payload encoding round-trips for arbitrary shapes.
        #[test]
        fn delta_codec_roundtrip(seed in 0u32..10_000) {
            let d = sample_delta(seed);
            let bytes = encode_delta(&d);
            let back = decode_delta(&bytes, "mem").unwrap();
            prop_assert_eq!(d, back);
        }
    }

    /// The boundary of the `u32` length prefix, tested on the checked
    /// helper itself: materializing a >4G-entry batch would need tens of
    /// gigabytes, but the overflow decision is pure arithmetic.
    #[test]
    fn field_length_boundary_is_exact() {
        assert_eq!(field_len("x", 0).unwrap(), 0);
        assert_eq!(field_len("x", MAX_FIELD_LEN).unwrap(), u32::MAX);
        let err = field_len("insert_concepts", MAX_FIELD_LEN + 1).unwrap_err();
        match err {
            StoreError::BatchTooLarge { what, len, limit } => {
                assert_eq!(what, "insert_concepts");
                assert_eq!(len, MAX_FIELD_LEN + 1);
                assert_eq!(limit, MAX_FIELD_LEN);
            }
            other => panic!("expected BatchTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn validate_batch_accepts_ordinary_deltas() {
        for k in 0..8 {
            validate_batch(&sample_delta(k)).unwrap();
        }
    }

    #[test]
    fn batch_too_large_formats_a_useful_message() {
        let msg = StoreError::BatchTooLarge {
            what: "insert_roles",
            len: MAX_FIELD_LEN + 7,
            limit: MAX_FIELD_LEN,
        }
        .to_string();
        assert!(msg.contains("insert_roles"), "{msg}");
        assert!(msg.contains("rejected"), "{msg}");
    }

    #[test]
    fn bitflip_in_final_record_is_a_torn_tail() {
        let path = tmp_wal("bitflip");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append_batch(&sample_delta(1)).unwrap();
        w.append_batch(&sample_delta(2)).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40; // inside the last record's checksum/payload
        std::fs::write(&path, &bytes).unwrap();
        let (_, got, tail) = read_wal(&path).unwrap();
        assert_eq!(got, vec![sample_delta(1)]);
        assert!(matches!(tail, TailStatus::Torn { .. }));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_damage_is_hard_corruption() {
        let path = tmp_wal("header");
        let w = WalWriter::create(&path, 0).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::Corrupt { .. })));
        std::fs::remove_file(&path).unwrap();
    }
}
