//! The versioned binary snapshot: one KB generation on disk.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8 bytes  "OBDASNP\x01"
//! version  u32      FORMAT_VERSION
//! gen      u64      snapshot generation
//! vocab    3 name tables (concepts, roles, individuals):
//!            count u32, then per name: len u32 + UTF-8 bytes
//!            (names in dense-id order — the interned id tables)
//! tbox     count u32, then per axiom: tag u8 + lhs + rhs
//!            (tag 0/1 = concept inclusion pos/neg, 2/3 = role)
//! abox     concept count u32 + (concept u32, ind u32) pairs,
//!          role count u32 + (role u32, subj u32, obj u32) triples
//!            (in assertion order)
//! check    u64      fnv1a64 over everything above
//! ```
//!
//! Encoding is **canonical**: every section is written in a
//! deterministic order (dense-id order for names, insertion order for
//! axioms and facts), so `encode(decode(bytes)) == bytes` — the
//! byte-identity property the persistence suite asserts.

use std::path::Path;

use obda_dllite::{
    ABox, Axiom, BasicConcept, ConceptId, IndividualId, Role, RoleId, TBox, Vocabulary,
};

use super::{
    fnv1a64, io_at, put_str, put_u32, put_u64, sync_dir, Reader, StoreError, FORMAT_VERSION,
};

const MAGIC: &[u8; 8] = b"OBDASNP\x01";

/// Serialize one KB generation to bytes (see the module docs for the
/// layout).
pub fn encode_snapshot(voc: &Vocabulary, tbox: &TBox, abox: &ABox, generation: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u64(&mut out, generation);

    // Vocabulary: the three interned id tables in dense-id order.
    put_u32(&mut out, voc.num_concepts() as u32);
    for c in voc.concept_ids() {
        put_str(&mut out, voc.concept_name(c));
    }
    put_u32(&mut out, voc.num_roles() as u32);
    for r in voc.role_ids() {
        put_str(&mut out, voc.role_name(r));
    }
    put_u32(&mut out, voc.num_individuals() as u32);
    for i in voc.individual_ids() {
        put_str(&mut out, voc.individual_name(i));
    }

    // TBox: normalized axioms in insertion order.
    put_u32(&mut out, tbox.axioms().len() as u32);
    for ax in tbox.axioms() {
        match *ax {
            Axiom::Concept(ci) => {
                out.push(if ci.negated { 1 } else { 0 });
                put_basic_concept(&mut out, ci.lhs);
                put_basic_concept(&mut out, ci.rhs);
            }
            Axiom::Role(ri) => {
                out.push(if ri.negated { 3 } else { 2 });
                put_role(&mut out, ri.lhs);
                put_role(&mut out, ri.rhs);
            }
        }
    }

    // ABox: fact vectors in assertion order.
    put_u32(&mut out, abox.concept_assertions().len() as u32);
    for &(c, i) in abox.concept_assertions() {
        put_u32(&mut out, c.0);
        put_u32(&mut out, i.0);
    }
    put_u32(&mut out, abox.role_assertions().len() as u32);
    for &(r, a, b) in abox.role_assertions() {
        put_u32(&mut out, r.0);
        put_u32(&mut out, a.0);
        put_u32(&mut out, b.0);
    }

    let check = fnv1a64(&out);
    put_u64(&mut out, check);
    out
}

fn put_basic_concept(out: &mut Vec<u8>, bc: BasicConcept) {
    match bc {
        BasicConcept::Atomic(c) => {
            out.push(0);
            put_u32(out, c.0);
        }
        BasicConcept::Exists(r) => {
            out.push(if r.inverse { 2 } else { 1 });
            put_u32(out, r.name.0);
        }
    }
}

fn put_role(out: &mut Vec<u8>, r: Role) {
    out.push(u8::from(r.inverse));
    put_u32(out, r.name.0);
}

/// Decode a snapshot produced by [`encode_snapshot`], validating magic,
/// version and checksum.
pub fn decode_snapshot(
    bytes: &[u8],
    file: &str,
) -> Result<(Vocabulary, TBox, ABox, u64), StoreError> {
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 {
        return Err(StoreError::Corrupt {
            file: file.to_owned(),
            detail: format!("{} bytes is too short for a snapshot", bytes.len()),
        });
    }
    let (body, check_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(check_bytes.try_into().unwrap());
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(StoreError::Corrupt {
            file: file.to_owned(),
            detail: format!("checksum mismatch: stored {stored:#x}, computed {computed:#x}"),
        });
    }

    let mut r = Reader::new(body, file);
    if r.take(MAGIC.len())? != MAGIC {
        return Err(StoreError::Corrupt {
            file: file.to_owned(),
            detail: "bad magic".to_owned(),
        });
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::BadVersion {
            file: file.to_owned(),
            found: version,
        });
    }
    let generation = r.u64()?;

    let mut voc = Vocabulary::new();
    for _ in 0..r.count(4)? {
        voc.concept(&r.str()?);
    }
    for _ in 0..r.count(4)? {
        voc.role(&r.str()?);
    }
    for _ in 0..r.count(4)? {
        voc.individual(&r.str()?);
    }

    let mut tbox = TBox::new();
    for _ in 0..r.count(11)? {
        let tag = r.take(1)?[0];
        let axiom = match tag {
            0 | 1 => {
                let lhs = read_basic_concept(&mut r)?;
                let rhs = read_basic_concept(&mut r)?;
                if tag == 1 {
                    Axiom::concept_neg(lhs, rhs)
                } else {
                    Axiom::concept(lhs, rhs)
                }
            }
            2 | 3 => {
                let lhs = read_role(&mut r)?;
                let rhs = read_role(&mut r)?;
                if tag == 3 {
                    Axiom::role_neg(lhs, rhs)
                } else {
                    Axiom::role(lhs, rhs)
                }
            }
            t => {
                return Err(StoreError::Corrupt {
                    file: file.to_owned(),
                    detail: format!("unknown axiom tag {t}"),
                })
            }
        };
        tbox.add(axiom);
    }

    let mut abox = ABox::new();
    for _ in 0..r.count(8)? {
        let c = ConceptId(r.u32()?);
        let i = IndividualId(r.u32()?);
        abox.assert_concept(c, i);
    }
    for _ in 0..r.count(12)? {
        let role = RoleId(r.u32()?);
        let a = IndividualId(r.u32()?);
        let b = IndividualId(r.u32()?);
        abox.assert_role(role, a, b);
    }
    r.expect_finished()?;
    Ok((voc, tbox, abox, generation))
}

fn read_basic_concept(r: &mut Reader<'_>) -> Result<BasicConcept, StoreError> {
    let tag = r.take(1)?[0];
    let id = r.u32()?;
    Ok(match tag {
        0 => BasicConcept::Atomic(ConceptId(id)),
        1 => BasicConcept::Exists(Role::direct(RoleId(id))),
        2 => BasicConcept::Exists(Role::inv(RoleId(id))),
        t => {
            return Err(StoreError::Corrupt {
                file: "snapshot".to_owned(),
                detail: format!("unknown basic-concept tag {t}"),
            })
        }
    })
}

fn read_role(r: &mut Reader<'_>) -> Result<Role, StoreError> {
    let inverse = r.take(1)?[0] != 0;
    let name = RoleId(r.u32()?);
    Ok(if inverse {
        Role::inv(name)
    } else {
        Role::direct(name)
    })
}

/// Write a snapshot file. Crash-atomic and durable: the bytes go to a
/// temp file, are `fsync`ed, and are renamed over `path` (with a
/// best-effort directory sync), so `path` always holds either the old
/// complete snapshot or the new one — never a torn write. Durability
/// before the rename matters most at compaction, which destroys the WAL
/// that could otherwise replay the folded history.
pub fn write_snapshot(
    path: &Path,
    voc: &Vocabulary,
    tbox: &TBox,
    abox: &ABox,
    generation: u64,
) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    write_snapshot_to(&tmp, voc, tbox, abox, generation)?;
    std::fs::rename(&tmp, path).map_err(io_at(&tmp))?;
    // Persist the rename itself (the directory entry); best-effort.
    if let Some(dir) = path.parent() {
        sync_dir(dir);
    }
    Ok(())
}

/// Write snapshot bytes to exactly `path` (fsynced, **no** rename).
/// The staging half of a fuzzy checkpoint: the serving layer calls this
/// with no store lock held, then hands the staged file to
/// [`super::DurableStore::install_checkpoint`] for atomic adoption.
pub fn write_snapshot_to(
    path: &Path,
    voc: &Vocabulary,
    tbox: &TBox,
    abox: &ABox,
    generation: u64,
) -> Result<(), StoreError> {
    let mut file = std::fs::File::create(path).map_err(io_at(path))?;
    std::io::Write::write_all(&mut file, &encode_snapshot(voc, tbox, abox, generation))
        .map_err(io_at(path))?;
    file.sync_all().map_err(io_at(path))?;
    Ok(())
}

/// Read and decode a snapshot file.
pub fn read_snapshot(path: &Path) -> Result<(Vocabulary, TBox, ABox, u64), StoreError> {
    let bytes = std::fs::read(path).map_err(io_at(path))?;
    decode_snapshot(&bytes, &path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::example7_tbox;

    fn fixture() -> (Vocabulary, TBox, ABox) {
        let (mut voc, tbox) = example7_tbox();
        let abox = obda_dllite::example1_abox(&mut voc);
        (voc, tbox, abox)
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let (voc, tbox, abox) = fixture();
        let bytes = encode_snapshot(&voc, &tbox, &abox, 42);
        let (voc2, tbox2, abox2, gen) = decode_snapshot(&bytes, "mem").unwrap();
        assert_eq!(gen, 42);
        assert_eq!(voc, voc2);
        assert_eq!(abox, abox2);
        assert_eq!(tbox.axioms(), tbox2.axioms());
        let reencoded = encode_snapshot(&voc2, &tbox2, &abox2, gen);
        assert_eq!(bytes, reencoded, "canonical encoding");
    }

    #[test]
    fn empty_kb_roundtrips() {
        let bytes = encode_snapshot(&Vocabulary::new(), &TBox::new(), &ABox::new(), 0);
        let (voc, tbox, abox, gen) = decode_snapshot(&bytes, "mem").unwrap();
        assert_eq!(gen, 0);
        assert_eq!(voc.num_preds(), 0);
        assert!(tbox.is_empty());
        assert!(abox.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let (voc, tbox, abox) = fixture();
        let good = encode_snapshot(&voc, &tbox, &abox, 7);
        // Flip one byte anywhere in the body.
        for pos in [9, good.len() / 2, good.len() - 9] {
            let mut bad = good.clone();
            bad[pos] ^= 0xff;
            assert!(
                matches!(
                    decode_snapshot(&bad, "mem"),
                    Err(StoreError::Corrupt { .. })
                ),
                "flip at {pos} must fail the checksum"
            );
        }
        // Truncation too.
        assert!(decode_snapshot(&good[..good.len() - 1], "mem").is_err());
    }

    #[test]
    fn future_version_is_refused() {
        let (voc, tbox, abox) = fixture();
        let mut bytes = encode_snapshot(&voc, &tbox, &abox, 7);
        // Patch the version field (bytes 8..12) and refresh the checksum.
        bytes[8] = 99;
        let body_len = bytes.len() - 8;
        let check = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&check.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&bytes, "mem"),
            Err(StoreError::BadVersion { found: 99, .. })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let (voc, tbox, abox) = fixture();
        let dir = std::env::temp_dir().join(format!("obda-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.bin");
        write_snapshot(&path, &voc, &tbox, &abox, 3).unwrap();
        let (voc2, _, abox2, gen) = read_snapshot(&path).unwrap();
        assert_eq!((gen, voc2, abox2), (3, voc, abox));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
