//! The durable ABox store: binary snapshots + an append-only WAL.
//!
//! The paper delegates reformulated-query evaluation to an RDBMS — and a
//! real RDBMS owns a *durable* extensional store whose statistics drive
//! planning and whose contents change under it. This module gives the
//! serving layer that substrate:
//!
//! * [`snapshot`] — a versioned **binary snapshot** of one KB generation:
//!   the [`obda_dllite::Vocabulary`] (all three interned id tables), the
//!   TBox axioms, and the ABox fact vectors, length-prefixed and guarded
//!   by an FNV-1a checksum. Serialization is canonical: decoding a
//!   snapshot and re-encoding it reproduces the bytes exactly.
//! * [`wal`] — an **append-only write-ahead log** of [`AboxDelta`]
//!   batches. Each record is `[len: u32][payload][fnv64(payload): u64]`;
//!   a torn final record (crash mid-append) is detected by length or
//!   checksum, tolerated, and truncated on recovery.
//! * [`mod@recover`] — crash recovery: replay `snapshot + WAL tail`, skipping
//!   batches the snapshot already contains (a crash between compaction's
//!   snapshot rename and WAL reset leaves such a stale prefix), arriving
//!   at the exact pre-crash vocabulary, ABox and generation.
//!
//! [`DurableStore`] ties the three together for the serving layer
//! (`Server::open` / `Server::apply_batch`): create, append one batch per
//! generation, and periodically **compact** — fold the WAL into a fresh
//! snapshot (written to a temp file and atomically renamed) and reset the
//! log.
//!
//! Durability contract: appends are flushed to the OS on every batch, so
//! the log survives a killed *process* (the failure CI injects). Surviving
//! a killed *machine* additionally needs [`WalWriter::sync`] per batch
//! (an `fsync`), which callers can opt into when the write rate warrants
//! the latency.

pub mod recover;
pub mod snapshot;
pub mod wal;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use obda_dllite::{ABox, AboxDelta, TBox, Vocabulary};

pub use recover::{recover, RecoveredKb};
pub use snapshot::{
    decode_snapshot, encode_snapshot, read_snapshot, write_snapshot, write_snapshot_to,
};
pub use wal::{read_wal, TailStatus, WalWriter};

/// Store format version (bumped on any incompatible layout change).
/// v2: WAL records are *group-commit* records — one framed record holds
/// the deltas of one or more transactions fsynced together.
pub const FORMAT_VERSION: u32 = 2;

/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.bin";

/// Fuzzy-checkpoint staging file: the new snapshot is written here with
/// no store lock held, then atomically installed.
pub const CKPT_FILE: &str = "snapshot.ckpt";

/// Errors surfaced by the durable store.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level I/O failure, tagged with the file (or directory) the
    /// operation touched — a bare error kind is useless when a store
    /// directory holds a snapshot, a WAL, and their temp siblings.
    Io { path: String, source: io::Error },
    /// A file failed structural validation (bad magic, checksum mismatch,
    /// impossible lengths) somewhere other than a tolerated torn tail.
    Corrupt { file: String, detail: String },
    /// The file was written by an incompatible format version.
    BadVersion { file: String, found: u32 },
    /// A prior compaction failed, leaving the on-disk snapshot/WAL pair
    /// behind the in-memory state — further appends would log deltas
    /// against a base the files cannot reconstruct. The store refuses
    /// them; reopen (or re-create) the store directory to resume.
    Poisoned { detail: String },
    /// A batch (or one of its fields) exceeds what the WAL record format
    /// can represent — its length fields are `u32`. Rejected *before*
    /// encoding: the old unchecked `as u32` cast would silently truncate
    /// the count and write a corrupt-but-checksummed record that
    /// recovery would trust.
    BatchTooLarge {
        what: &'static str,
        len: usize,
        limit: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store I/O error on {path}: {source}")
            }
            StoreError::Corrupt { file, detail } => {
                write!(f, "corrupt store file {file}: {detail}")
            }
            StoreError::BadVersion { file, found } => write!(
                f,
                "store file {file} has format version {found}, expected {FORMAT_VERSION}"
            ),
            StoreError::Poisoned { detail } => write!(
                f,
                "store is poisoned by a failed compaction ({detail}); reopen to resume"
            ),
            StoreError::BatchTooLarge { what, len, limit } => write!(
                f,
                "batch rejected: {what} has {len} entries/bytes, the WAL record \
                 format caps it at {limit}"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Adapter for `map_err`: tag an [`io::Error`] with the path the failed
/// operation was aimed at. Every store I/O site goes through this, so
/// a failed open/append/rename always names which of snapshot/WAL/tmp
/// was involved.
pub(crate) fn io_at(path: &Path) -> impl Fn(io::Error) -> StoreError + '_ {
    move |source| StoreError::Io {
        path: path.display().to_string(),
        source,
    }
}

/// A handle on one store directory: the current snapshot plus the WAL
/// being appended to. One writer at a time (the serving layer serializes
/// writers behind its writer lock).
pub struct DurableStore {
    dir: PathBuf,
    wal: WalWriter,
    /// Generation the current snapshot file holds.
    base_generation: u64,
    /// Batches appended to the WAL since that snapshot.
    wal_batches: u64,
    /// Set when a compaction failed partway: the on-disk pair may no
    /// longer be a prefix of the in-memory state, so appends must stop
    /// (see [`StoreError::Poisoned`]).
    poisoned: Option<String>,
}

impl DurableStore {
    /// Initialize a store directory with a generation-`generation`
    /// snapshot of the KB and an empty WAL. Creates the directory if
    /// needed; any existing store files are overwritten.
    pub fn create(
        dir: &Path,
        voc: &Vocabulary,
        tbox: &TBox,
        abox: &ABox,
        generation: u64,
    ) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir).map_err(io_at(dir))?;
        write_snapshot(&dir.join(SNAPSHOT_FILE), voc, tbox, abox, generation)?;
        let wal = WalWriter::create(&dir.join(WAL_FILE), generation)?;
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            wal,
            base_generation: generation,
            wal_batches: 0,
            poisoned: None,
        })
    }

    /// Open an existing store: run [`recover()`], truncate any torn WAL
    /// tail, and return the recovered KB together with a store handle
    /// positioned to append the next batch.
    ///
    /// If the WAL's base generation trails the snapshot's — the
    /// footprint of a compaction interrupted between its snapshot
    /// rename and its WAL reset — the stale log cannot safely absorb
    /// appends (recovery's skip arithmetic would mis-count them), so
    /// the store is re-compacted to a clean snapshot + empty WAL pair
    /// at the recovered generation before the handle is returned.
    pub fn open(dir: &Path) -> Result<(RecoveredKb, Self), StoreError> {
        let kb = recover(dir)?;
        let wal_path = dir.join(WAL_FILE);
        if kb.torn_tail {
            // Drop the torn bytes so the next append starts on a clean
            // record boundary.
            wal::truncate_to(&wal_path, kb.wal_valid_len)?;
        }
        let wal = WalWriter::open_append(&wal_path)?;
        let mut store = DurableStore {
            dir: dir.to_path_buf(),
            wal,
            base_generation: kb.snapshot_generation,
            wal_batches: kb.wal_batches,
            poisoned: None,
        };
        if kb.wal_base != kb.snapshot_generation {
            store.compact(&kb.voc, &kb.tbox, &kb.abox, kb.generation)?;
        }
        // The KB moves out by value — the store handle keeps only
        // bookkeeping counters, so recovery materializes exactly one
        // copy of the ABox.
        Ok((kb, store))
    }

    /// Append one batch to the WAL (flushed to the OS before returning).
    /// Must be called *before* the batch is applied in memory — the
    /// write-ahead discipline recovery relies on. Refused once the store
    /// is poisoned by a failed compaction: the files no longer describe
    /// the state the delta applies to, so logging it would make recovery
    /// silently reconstruct wrong data.
    pub fn append(&mut self, delta: &AboxDelta) -> Result<u64, StoreError> {
        self.append_group(std::slice::from_ref(delta))
    }

    /// Append one **commit group** — the deltas of `deltas.len()`
    /// transactions framed as a single WAL record, so the group-commit
    /// leader pays one record (and one [`DurableStore::sync`]) for the
    /// whole queue. Each delta still counts as its own generation;
    /// recovery replays them in order. Empty groups are a no-op. Returns
    /// the framed record size in bytes (0 for an empty group).
    pub fn append_group(&mut self, deltas: &[AboxDelta]) -> Result<u64, StoreError> {
        if let Some(detail) = &self.poisoned {
            return Err(StoreError::Poisoned {
                detail: detail.clone(),
            });
        }
        if deltas.is_empty() {
            return Ok(0);
        }
        let bytes = self.wal.append_group(deltas)?;
        self.wal_batches += deltas.len() as u64;
        Ok(bytes)
    }

    /// [`DurableStore::append_group`] + `fsync`, with the stronger
    /// guarantee that on `Err` the WAL file does *not* contain the
    /// group: a failed fsync rolls the record back out (or marks the
    /// writer broken if even that fails), so the commit path never
    /// reports "failed" for a group a later recovery would replay.
    pub fn append_group_durable(&mut self, deltas: &[AboxDelta]) -> Result<u64, StoreError> {
        if let Some(detail) = &self.poisoned {
            return Err(StoreError::Poisoned {
                detail: detail.clone(),
            });
        }
        if deltas.is_empty() {
            return Ok(0);
        }
        let bytes = self.wal.append_group_durable(deltas)?;
        self.wal_batches += deltas.len() as u64;
        Ok(bytes)
    }

    /// Fold the WAL into a fresh snapshot of the current KB state: write
    /// the snapshot to a temp file, atomically rename it over the old
    /// one, then reset the WAL. A crash between the rename and the reset
    /// leaves a WAL whose batches the snapshot already contains; recovery
    /// detects the overlap by generation arithmetic and skips them.
    ///
    /// On failure the store is **poisoned**: the on-disk pair may now
    /// trail the in-memory state the caller continues to serve, and any
    /// further append would log a delta against a base the files cannot
    /// reconstruct — so subsequent [`DurableStore::append`] calls return
    /// [`StoreError::Poisoned`]. A later *successful* compaction clears
    /// the poison: it rewrites snapshot + WAL wholesale from the current
    /// in-memory state, restoring on-disk consistency (so a transient
    /// failure — disk briefly full — is not a permanent write outage).
    pub fn compact(
        &mut self,
        voc: &Vocabulary,
        tbox: &TBox,
        abox: &ABox,
        generation: u64,
    ) -> Result<(), StoreError> {
        match self.try_compact(voc, tbox, abox, generation) {
            Ok(()) => {
                self.poisoned = None;
                Ok(())
            }
            Err(e) => {
                self.poisoned = Some(e.to_string());
                Err(e)
            }
        }
    }

    fn try_compact(
        &mut self,
        voc: &Vocabulary,
        tbox: &TBox,
        abox: &ABox,
        generation: u64,
    ) -> Result<(), StoreError> {
        // `write_snapshot` is atomic (tmp + fsync + rename), so the old
        // WAL — the only other copy of the folded history — is destroyed
        // only after the new snapshot is durably on disk.
        write_snapshot(&self.dir.join(SNAPSHOT_FILE), voc, tbox, abox, generation)?;
        self.wal = WalWriter::create(&self.dir.join(WAL_FILE), generation)?;
        self.base_generation = generation;
        self.wal_batches = 0;
        Ok(())
    }

    /// Where a fuzzy checkpoint stages its snapshot
    /// ([`snapshot::write_snapshot_to`] writes here with **no store lock
    /// held** — the fuzzy part), before [`DurableStore::install_checkpoint`]
    /// atomically adopts it.
    pub fn checkpoint_file(&self) -> PathBuf {
        self.dir.join(CKPT_FILE)
    }

    /// Install a staged fuzzy checkpoint: atomically rename the staged
    /// snapshot (which holds generation `generation`) over the live one,
    /// then rebuild the WAL keeping only the transactions *past* that
    /// generation — appends that landed while the snapshot was being
    /// written off-lock are preserved, which is what makes the checkpoint
    /// fuzzy rather than stop-the-world.
    ///
    /// The kept tail is computed from the WAL **file**, not from memory:
    /// a commit group can be durable but not yet applied when the
    /// checkpoint generation was pinned, and dropping it would lose
    /// acknowledged transactions. Poison semantics match
    /// [`DurableStore::compact`]: failure poisons the store, a later
    /// success clears it. A crash between the rename and the WAL rebuild
    /// leaves the stale-prefix footprint recovery already skips.
    pub fn install_checkpoint(&mut self, generation: u64) -> Result<(), StoreError> {
        match self.try_install_checkpoint(generation) {
            Ok(()) => {
                self.poisoned = None;
                Ok(())
            }
            Err(e) => {
                self.poisoned = Some(e.to_string());
                Err(e)
            }
        }
    }

    fn try_install_checkpoint(&mut self, generation: u64) -> Result<(), StoreError> {
        // A concurrent compaction (bulk reload) may have superseded this
        // checkpoint while its snapshot was being written off-lock;
        // installing the older state would regress the store. Discard
        // the staged file instead — superseded checkpoints are no-ops.
        if generation < self.base_generation {
            let _ = std::fs::remove_file(self.checkpoint_file());
            return Ok(());
        }
        let wal_path = self.dir.join(WAL_FILE);
        let (base, batches, _tail) = read_wal(&wal_path)?;
        let folded = (generation.saturating_sub(base) as usize).min(batches.len());
        let keep = &batches[folded..];
        // Snapshot first: until the WAL is rebuilt the directory shows
        // the interrupted-compaction footprint (snapshot ahead of the
        // WAL base) that recovery's skip arithmetic already handles.
        let ckpt = self.checkpoint_file();
        std::fs::rename(&ckpt, self.dir.join(SNAPSHOT_FILE)).map_err(io_at(&ckpt))?;
        sync_dir(&self.dir);
        self.wal = WalWriter::create_with(&wal_path, generation, keep)?;
        self.base_generation = generation;
        self.wal_batches = keep.len() as u64;
        Ok(())
    }

    /// `fsync` the WAL (power-loss durability for everything appended so
    /// far).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()?;
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Generation held by the snapshot file.
    pub fn base_generation(&self) -> u64 {
        self.base_generation
    }

    /// Batches in the WAL since the last snapshot (the compaction
    /// trigger's input).
    pub fn wal_batches(&self) -> u64 {
        self.wal_batches
    }

    /// The generation the store represents: snapshot + WAL tail.
    pub fn generation(&self) -> u64 {
        self.base_generation + self.wal_batches
    }
}

/// Best-effort directory-entry durability after a rename. Not all
/// platforms allow opening a directory for sync.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

// ---------------------------------------------------------------------
// Shared binary codec primitives (little-endian, length-prefixed).
// ---------------------------------------------------------------------

/// FNV-1a 64-bit — the record/file checksum. Not cryptographic; it
/// detects torn writes and bit rot, which is the job of a WAL checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A checked little-endian reader over a byte slice.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    file: &'a str,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8], file: &'a str) -> Self {
        Reader { buf, pos: 0, file }
    }

    fn corrupt(&self, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            file: self.file.to_owned(),
            detail: format!("at byte {}: {}", self.pos, detail.into()),
        }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.buf.len() - self.pos < n {
            return Err(self.corrupt(format!(
                "need {n} bytes, {} remain",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("string is not valid UTF-8"))
    }

    /// A count prefix, sanity-bounded by what could possibly fit in the
    /// remaining bytes (each element occupies at least `min_elem_bytes`),
    /// so corrupt counts fail fast instead of attempting huge allocations.
    pub(crate) fn count(&mut self, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(self.corrupt(format!(
                "count {n} cannot fit in {remaining} remaining bytes"
            )));
        }
        Ok(n)
    }

    pub(crate) fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub(crate) fn expect_finished(&self) -> Result<(), StoreError> {
        if self.finished() {
            Ok(())
        } else {
            Err(self.corrupt(format!("{} trailing bytes", self.buf.len() - self.pos)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Reference values of FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn reader_roundtrip_and_bounds() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX);
        put_str(&mut buf, "hello");
        let mut r = Reader::new(&buf, "test");
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.str().unwrap(), "hello");
        r.expect_finished().unwrap();
        assert!(r.u32().is_err(), "reading past the end is an error");
    }

    #[test]
    fn absurd_counts_are_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX); // claims 4 billion elements
        let mut r = Reader::new(&buf, "test");
        assert!(matches!(r.count(8), Err(StoreError::Corrupt { .. })));
    }
}
