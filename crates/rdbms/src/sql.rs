//! SQL text generation for all dialects and layouts.
//!
//! The engine executes `FolQuery` values directly, but the SQL translation
//! is still generated for every statement because its *size* is
//! operationally significant: DB2 rejects statements beyond ~2 MB, which
//! is exactly how the Figure-3 failures arise ("The statement is too long
//! or too complex. Current SQL statement size is 2,247,118"). On the
//! DB2RDF layout every atom compiles to a candidate-column `CASE` over the
//! DPH/RPH tables (the layout hashes predicates into `k` column pairs), so
//! reformulations multiply in length — §6.3's observation that the RDF
//! layout plus ontology-based reformulation "yields queries too large for
//! evaluation".
//!
//! JUCQs compile to the `WITH sqlN AS (…) SELECT DISTINCT …` shape of §3.

use std::fmt::Write as _;

use obda_dllite::Vocabulary;
use obda_query::{Atom, FolQuery, Slot, Term, VarId, CQ, JUCQ, JUSCQ, SCQ, UCQ, USCQ};

use crate::layout::dph::DPH_COLUMNS;
use crate::layout::LayoutKind;

/// Name snapshot for SQL rendering (decouples the engine from the
/// `Vocabulary`'s lifetime).
#[derive(Debug, Clone, Default)]
pub struct SqlNames {
    concepts: Vec<String>,
    roles: Vec<String>,
}

impl SqlNames {
    pub fn from_vocabulary(voc: &Vocabulary) -> Self {
        SqlNames {
            concepts: voc
                .concept_ids()
                .map(|c| voc.concept_name(c).to_owned())
                .collect(),
            roles: voc
                .role_ids()
                .map(|r| voc.role_name(r).to_owned())
                .collect(),
        }
    }

    /// Concept names in id order (`c_<name>` is concept `i`'s table).
    pub fn concept_names(&self) -> &[String] {
        &self.concepts
    }

    /// Role names in id order (`r_<name>` is role `i`'s table).
    pub fn role_names(&self) -> &[String] {
        &self.roles
    }

    fn concept(&self, id: u32) -> String {
        self.concepts
            .get(id as usize)
            .map(|n| format!("c_{n}"))
            .unwrap_or_else(|| format!("c_{id}"))
    }

    fn role(&self, id: u32) -> String {
        self.roles
            .get(id as usize)
            .map(|n| format!("r_{n}"))
            .unwrap_or_else(|| format!("r_{id}"))
    }
}

/// SQL generator for one layout.
#[derive(Debug, Clone)]
pub struct SqlGenerator {
    names: SqlNames,
    layout: LayoutKind,
}

impl SqlGenerator {
    pub fn new(names: SqlNames, layout: LayoutKind) -> Self {
        SqlGenerator { names, layout }
    }

    /// The name snapshot this generator renders with (the `sqlexec`
    /// backend resolves `c_<name>` / `r_<name>` table references
    /// through it).
    pub fn names(&self) -> &SqlNames {
        &self.names
    }

    pub fn layout(&self) -> LayoutKind {
        self.layout
    }

    /// Render any dialect to SQL.
    pub fn generate(&self, q: &FolQuery) -> String {
        match q {
            FolQuery::Cq(cq) => self.cq_sql(cq),
            FolQuery::Ucq(ucq) => self.ucq_sql(ucq),
            FolQuery::Scq(scq) => self.scq_sql(scq),
            FolQuery::Uscq(uscq) => self.uscq_sql(uscq),
            FolQuery::Jucq(jucq) => self.jucq_sql(jucq),
            FolQuery::Juscq(juscq) => self.juscq_sql(juscq),
        }
    }

    // -- leaf table expressions ----------------------------------------

    /// The FROM-clause source of one atom: plain table (simple layout),
    /// predicate-filtered triple table, or the DPH candidate-column CASE.
    fn atom_source(&self, atom: &Atom, alias: &str) -> (String, String, Option<String>) {
        // Returns (source text, subject column, object column).
        match self.layout {
            LayoutKind::Simple => match atom {
                Atom::Concept(c, _) => (
                    format!("{} {alias}", self.names.concept(c.0)),
                    "x".into(),
                    None,
                ),
                Atom::Role(r, _, _) => (
                    format!("{} {alias}", self.names.role(r.0)),
                    "s".into(),
                    Some("o".into()),
                ),
            },
            LayoutKind::Triple => match atom {
                Atom::Concept(c, _) => (
                    format!(
                        "(SELECT subj AS x FROM triples WHERE pred = {}) {alias}",
                        c.0 * 2
                    ),
                    "x".into(),
                    None,
                ),
                Atom::Role(r, _, _) => (
                    format!(
                        "(SELECT subj AS s, obj AS o FROM triples WHERE pred = {}) {alias}",
                        r.0 * 2 + 1
                    ),
                    "s".into(),
                    Some("o".into()),
                ),
            },
            LayoutKind::Dph => match atom {
                Atom::Concept(c, _) => (dph_concept_source(c.0, alias), "x".into(), None),
                Atom::Role(r, _, _) => (dph_role_source(r.0, alias), "s".into(), Some("o".into())),
            },
        }
    }

    // -- dialect renderers ----------------------------------------------

    fn cq_sql(&self, cq: &CQ) -> String {
        self.conjunction_sql(
            &cq.atoms()
                .iter()
                .map(|a| Slot::single(*a))
                .collect::<Vec<_>>(),
            cq.head(),
        )
    }

    fn scq_sql(&self, scq: &SCQ) -> String {
        self.conjunction_sql(scq.slots(), scq.head())
    }

    /// Conjunction of (possibly disjunctive) slots. Disjunctive slots are
    /// inlined as UNION subqueries exposing canonical column names.
    fn conjunction_sql(&self, slots: &[Slot], head: &[Term]) -> String {
        let mut from: Vec<String> = Vec::new();
        let mut wheres: Vec<String> = Vec::new();
        // var → (alias, column) of first binding.
        let mut var_site: Vec<(VarId, String)> = Vec::new();
        for (i, slot) in slots.iter().enumerate() {
            let alias = format!("t{i}");
            if slot.len() == 1 {
                let (source, subj_col, obj_col) = self.atom_source(&slot.atoms()[0], &alias);
                from.push(source);
                let atom = &slot.atoms()[0];
                let cols: Vec<&str> = match atom {
                    Atom::Concept(..) => vec![subj_col.as_str()],
                    Atom::Role(..) => {
                        vec![subj_col.as_str(), obj_col.as_deref().unwrap_or("o")]
                    }
                };
                for (t, col) in atom.terms().zip(cols) {
                    let site = format!("{alias}.{col}");
                    match t {
                        Term::Const(k) => wheres.push(format!("{site} = {}", k.0)),
                        Term::Var(v) => match var_site.iter().find(|(w, _)| *w == v) {
                            Some((_, first)) => wheres.push(format!("{site} = {first}")),
                            None => var_site.push((v, site)),
                        },
                    }
                }
            } else {
                // Disjunctive slots expose one canonical column per
                // shared variable (`v<id>`); constants and repeated
                // variables are constrained inside each union arm, so the
                // outer query binds by *variable* — the executor keys
                // slot extensions the same way (arms may list the shared
                // variables in different positional orders).
                from.push(self.slot_union_source(slot, &alias));
                for v in slot_var_order(slot) {
                    let site = format!("{alias}.v{}", v.0);
                    match var_site.iter().find(|(w, _)| *w == v) {
                        Some((_, first)) => wheres.push(format!("{site} = {first}")),
                        None => var_site.push((v, site)),
                    }
                }
            }
        }
        let select: Vec<String> = head
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                Term::Const(k) => format!("{} AS h{i}", k.0),
                Term::Var(v) => {
                    let site = var_site
                        .iter()
                        .find(|(w, _)| w == v)
                        .map(|(_, s)| s.clone())
                        .unwrap_or_else(|| "NULL".into());
                    format!("{site} AS h{i}")
                }
            })
            .collect();
        let mut sql = String::new();
        let _ = write!(
            sql,
            "SELECT DISTINCT {}",
            if select.is_empty() {
                "1 AS t".to_owned()
            } else {
                select.join(", ")
            },
        );
        // An empty body (no slots) is the always-true conjunction: a
        // FROM-less SELECT over the implicit single row, like the
        // executor's empty-tuple result.
        if !from.is_empty() {
            let _ = write!(sql, " FROM {}", from.join(", "));
        }
        if !wheres.is_empty() {
            let _ = write!(sql, " WHERE {}", wheres.join(" AND "));
        }
        sql
    }

    /// A disjunctive slot as an inline UNION exposing one aligned column
    /// per shared variable (`v<id>`, in [`slot_var_order`]). Each arm
    /// projects its own term positions onto those variable columns and
    /// applies its own constant / repeated-variable constraints, so arms
    /// with flipped argument order (`r(x,y) ∨ r2(y,x)`) or private
    /// constants stay semantically aligned — running the generated SQL
    /// (the `sqlexec` backend) is what surfaced the earlier positional
    /// form as wrong.
    fn slot_union_source(&self, slot: &Slot, alias: &str) -> String {
        let order = slot_var_order(slot);
        let arms: Vec<String> = slot
            .atoms()
            .iter()
            .map(|a| {
                let (src, s, o) = self.atom_source(a, "u");
                let cols: Vec<String> = match a {
                    Atom::Concept(..) => vec![format!("u.{s}")],
                    Atom::Role(..) => vec![
                        format!("u.{s}"),
                        format!("u.{}", o.as_deref().unwrap_or("o")),
                    ],
                };
                // First column of each variable, plus arm-local
                // constraints (constants, repeated variables).
                let mut bound: Vec<(VarId, usize)> = Vec::new();
                let mut constraints: Vec<String> = Vec::new();
                for (i, t) in a.terms().enumerate() {
                    match t {
                        Term::Const(k) => constraints.push(format!("{} = {}", cols[i], k.0)),
                        Term::Var(v) => match bound.iter().find(|(w, _)| *w == v) {
                            Some((_, first)) => {
                                constraints.push(format!("{} = {}", cols[i], cols[*first]))
                            }
                            None => bound.push((v, i)),
                        },
                    }
                }
                // A fully-ground slot (empty shared variable set, e.g.
                // `C(a) ∨ D(a)`) exposes only an existence marker.
                let sel: Vec<String> = if order.is_empty() {
                    vec!["1 AS t".to_owned()]
                } else {
                    order
                        .iter()
                        .map(|v| {
                            let (_, i) = bound
                                .iter()
                                .find(|(w, _)| w == v)
                                .expect("slot atoms share one variable set");
                            format!("{} AS v{}", cols[*i], v.0)
                        })
                        .collect()
                };
                let mut arm = format!("SELECT {} FROM {src}", sel.join(", "));
                if !constraints.is_empty() {
                    let _ = write!(arm, " WHERE {}", constraints.join(" AND "));
                }
                arm
            })
            .collect();
        format!("({}) {alias}", arms.join(" UNION "))
    }

    fn ucq_sql(&self, ucq: &UCQ) -> String {
        ucq.cqs()
            .iter()
            .map(|cq| self.cq_sql(cq))
            .collect::<Vec<_>>()
            .join("\nUNION\n")
    }

    fn uscq_sql(&self, uscq: &USCQ) -> String {
        uscq.scqs()
            .iter()
            .map(|scq| self.scq_sql(scq))
            .collect::<Vec<_>>()
            .join("\nUNION\n")
    }

    /// The WITH … AS form of §3.
    fn jucq_sql(&self, jucq: &JUCQ) -> String {
        let heads: Vec<Vec<Term>> = jucq
            .components()
            .iter()
            .map(|c| c.head().to_vec())
            .collect();
        let bodies: Vec<String> = jucq.components().iter().map(|c| self.ucq_sql(c)).collect();
        self.with_join_sql(jucq.head(), &heads, &bodies)
    }

    fn juscq_sql(&self, juscq: &JUSCQ) -> String {
        let heads: Vec<Vec<Term>> = juscq
            .components()
            .iter()
            .map(|c| c.head().to_vec())
            .collect();
        let bodies: Vec<String> = juscq
            .components()
            .iter()
            .map(|c| self.uscq_sql(c))
            .collect();
        self.with_join_sql(juscq.head(), &heads, &bodies)
    }

    fn with_join_sql(&self, head: &[Term], comp_heads: &[Vec<Term>], bodies: &[String]) -> String {
        let mut sql = String::from("WITH ");
        for (i, body) in bodies.iter().enumerate() {
            if i > 0 {
                sql.push_str(", ");
            }
            let _ = write!(sql, "sql{i} AS (\n{body}\n)");
        }
        // Join conditions on shared head variables; projection of head.
        let mut var_site: Vec<(VarId, String)> = Vec::new();
        let mut conds: Vec<String> = Vec::new();
        for (i, chead) in comp_heads.iter().enumerate() {
            for (j, t) in chead.iter().enumerate() {
                if let Term::Var(v) = t {
                    let site = format!("sql{i}.h{j}");
                    match var_site.iter().find(|(w, _)| w == v) {
                        Some((_, first)) => conds.push(format!("{site} = {first}")),
                        None => var_site.push((*v, site)),
                    }
                }
            }
        }
        let select: Vec<String> = head
            .iter()
            .map(|t| match t {
                Term::Const(k) => format!("{}", k.0),
                Term::Var(v) => var_site
                    .iter()
                    .find(|(w, _)| w == v)
                    .map(|(_, s)| s.clone())
                    .unwrap_or_else(|| "NULL".into()),
            })
            .collect();
        let from: Vec<String> = (0..bodies.len()).map(|i| format!("sql{i}")).collect();
        let _ = write!(
            sql,
            "\nSELECT DISTINCT {}",
            if select.is_empty() {
                "1".to_owned()
            } else {
                select.join(", ")
            },
        );
        if !from.is_empty() {
            let _ = write!(sql, " FROM {}", from.join(", "));
        }
        if !conds.is_empty() {
            let _ = write!(sql, " WHERE {}", conds.join(" AND "));
        }
        sql
    }
}

/// Canonical column order of a disjunctive slot: the shared variables in
/// the *first* atom's positional order, deduplicated — the same order the
/// executor appends a slot's new variables in.
fn slot_var_order(slot: &Slot) -> Vec<VarId> {
    let mut order = Vec::new();
    for v in slot.atoms()[0].vars() {
        if !order.contains(&v) {
            order.push(v);
        }
    }
    order
}

/// DPH source of a concept atom: CASE over all candidate (pred, val)
/// columns checking the type marker.
fn dph_concept_source(concept: u32, alias: &str) -> String {
    let code = concept * 2;
    let mut preds = Vec::with_capacity(DPH_COLUMNS);
    for k in 0..DPH_COLUMNS {
        preds.push(format!("pred{k} = {code}"));
    }
    format!(
        "(SELECT entity AS x FROM dph WHERE {}) {alias}",
        preds.join(" OR ")
    )
}

/// DPH source of a role atom, following the DB2RDF translation shape \[9\]:
/// per candidate column, resolve the value either inline or — when the
/// column's multi-value flag is set — through the spill/VALUES-table
/// indirection. This per-atom block is what multiplies reformulated SQL
/// into the megabytes (§6.3's "statement too long" failures).
fn dph_role_source(role: u32, alias: &str) -> String {
    let code = role * 2 + 1;
    let mut cases = Vec::with_capacity(DPH_COLUMNS);
    let mut preds = Vec::with_capacity(DPH_COLUMNS);
    for k in 0..DPH_COLUMNS {
        cases.push(format!(
            "WHEN pred{k} = {code} THEN CASE WHEN multi{k} = 1 THEN \
             (SELECT mv.val FROM dph_values mv WHERE mv.key = dph.val{k} AND mv.pred = {code}) \
             ELSE val{k} END"
        ));
        preds.push(format!("pred{k} = {code}"));
    }
    format!(
        "(SELECT entity AS s, CASE {} ELSE NULL END AS o FROM dph WHERE {}) {alias}",
        cases.join(" "),
        preds.join(" OR ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{ConceptId, RoleId};

    fn names() -> SqlNames {
        let mut voc = Vocabulary::new();
        voc.concept("PhDStudent");
        voc.role("worksWith");
        voc.role("supervisedBy");
        SqlNames::from_vocabulary(&voc)
    }

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn sample_cq() -> CQ {
        CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(0), v(1)),
            ],
        )
    }

    #[test]
    fn simple_layout_cq_sql() {
        let g = SqlGenerator::new(names(), LayoutKind::Simple);
        let sql = g.generate(&FolQuery::Cq(sample_cq()));
        assert!(sql.starts_with("SELECT DISTINCT"));
        assert!(sql.contains("c_PhDStudent t0"));
        assert!(sql.contains("r_worksWith t1"));
        assert!(sql.contains("t1.s = t0.x"), "join condition: {sql}");
    }

    #[test]
    fn jucq_uses_with_clause() {
        let g = SqlGenerator::new(names(), LayoutKind::Simple);
        let comp1 = UCQ::single(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(ConceptId(0), v(0))],
        ));
        let comp2 = UCQ::single(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Role(RoleId(0), v(0), v(1))],
        ));
        let jucq = JUCQ::new(vec![v(0)], vec![comp1, comp2]);
        let sql = g.generate(&FolQuery::Jucq(jucq));
        assert!(sql.starts_with("WITH sql0 AS ("));
        assert!(sql.contains("sql1 AS ("));
        assert!(sql.contains("SELECT DISTINCT sql0.h0 FROM sql0, sql1"));
        assert!(sql.contains("sql1.h0 = sql0.h0"));
    }

    #[test]
    fn dph_sql_is_much_longer() {
        let simple = SqlGenerator::new(names(), LayoutKind::Simple);
        let dph = SqlGenerator::new(names(), LayoutKind::Dph);
        let q = FolQuery::Cq(sample_cq());
        let s1 = simple.generate(&q);
        let s2 = dph.generate(&q);
        assert!(
            s2.len() > 4 * s1.len(),
            "DPH CASE blowup: {} vs {}",
            s2.len(),
            s1.len()
        );
        assert!(s2.contains("CASE WHEN pred0"));
    }

    #[test]
    fn ucq_arms_joined_by_union() {
        let g = SqlGenerator::new(names(), LayoutKind::Simple);
        let u = UCQ::from_cqs(
            vec![v(0)],
            [
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(0), v(0))]),
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(1), v(0), v(1))]),
            ],
        );
        let sql = g.generate(&FolQuery::Ucq(u));
        assert_eq!(sql.matches("\nUNION\n").count(), 1);
    }

    #[test]
    fn constants_become_literals() {
        let g = SqlGenerator::new(names(), LayoutKind::Simple);
        let q = CQ::new(
            vec![v(0)],
            vec![Atom::Role(
                RoleId(0),
                v(0),
                Term::Const(obda_dllite::IndividualId(42)),
            )],
        );
        let sql = g.generate(&FolQuery::Cq(q));
        assert!(sql.contains("t0.o = 42"));
    }

    #[test]
    fn boolean_query_selects_marker() {
        let g = SqlGenerator::new(names(), LayoutKind::Simple);
        let q = CQ::with_var_head(vec![], vec![Atom::Concept(ConceptId(0), v(0))]);
        let sql = g.generate(&FolQuery::Cq(q));
        assert!(sql.contains("SELECT DISTINCT 1 AS t"));
    }

    #[test]
    fn triple_layout_filters_by_pred() {
        let g = SqlGenerator::new(names(), LayoutKind::Triple);
        let sql = g.generate(&FolQuery::Cq(sample_cq()));
        assert!(sql.contains("FROM triples WHERE pred ="));
    }
}
