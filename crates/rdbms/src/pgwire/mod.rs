//! A PostgreSQL wire-protocol (v3) front end over the serving layer.
//!
//! This module puts a socket in front of [`crate::server::Server`]: any
//! client that can speak the Postgres protocol — `psql`, a JDBC driver,
//! or the bundled [`WireClient`] — can connect, pick an execution
//! backend per session (`backend=native|sql` as a startup parameter),
//! and run statements in the wire query language (see [`query`]) against
//! generation-tagged snapshots with the canonical plan cache underneath.
//!
//! Layering, bottom-up:
//!
//! * [`framing`] — length-validated frame reader/writer; nothing above
//!   it touches raw lengths, so no message can trigger an oversized
//!   allocation or a panic;
//! * [`messages`] — typed backend-message constructors and checked
//!   frontend-message decoders;
//! * [`query`] — the `SELECT ?x WHERE Concept(?x), role(?x, c)` wire
//!   query language, parsed against a snapshot's vocabulary;
//! * [`session`] — startup negotiation and the per-connection command
//!   loop (simple protocol plus the Parse/Bind/Describe/Execute/Close/
//!   Sync extended subset), with per-statement panic containment;
//! * [`listener`] — accept loop, thread-per-session, admission control
//!   (`53300`) and graceful drain (`57P01`);
//! * [`client`] — a minimal blocking client for tests and harnesses.
//!
//! ## Robustness contract
//!
//! The front end never panics on peer input: malformed frames and
//! bodies are typed errors answered with `ErrorResponse` (SQLSTATE
//! `08P01`) before closing that one connection. A statement that
//! panics mid-execution (chaos `PANIC`, or a real bug) is contained by
//! `catch_unwind`, reported as `XX000`, and closes only its own
//! session — the serving layer's locks recover from poisoning, so
//! concurrent sessions keep answering. The malformed-protocol fuzz in
//! `tests/failure_injection.rs` and the chaos tests in `tests/pgwire.rs`
//! hold these properties under fire.

pub mod client;
pub mod framing;
pub mod listener;
pub mod messages;
pub mod query;
pub mod session;

pub use client::{ClientError, QueryResult, WireClient};
pub use framing::{FrameError, MAX_MESSAGE_LEN, MAX_STARTUP_LEN};
pub use listener::{PgConfig, PgListener};
pub use query::{parse_statement, split_statements, ParseWireError, ShowTopic, WireStatement};
pub use session::{SessionEnd, SERVER_VERSION};
