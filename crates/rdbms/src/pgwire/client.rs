//! A minimal blocking wire client, used by the integration tests, the
//! soak harness, and the server binary's `--check` self-smoke.
//!
//! This is deliberately *not* a general PostgreSQL driver: it speaks
//! exactly the subset the front end emits, decodes everything as text,
//! and surfaces server errors as typed [`ClientError::Server`] values
//! carrying the SQLSTATE — which is what the tests assert on.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use super::framing::{MAX_MESSAGE_LEN, PROTOCOL_VERSION};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// The server closed the stream where a message was expected.
    Closed,
    /// The server sent bytes this client cannot decode.
    Protocol(String),
    /// The server answered with an `ErrorResponse`.
    Server {
        sqlstate: String,
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Protocol(d) => write!(f, "client cannot decode server bytes: {d}"),
            ClientError::Server { sqlstate, message } => {
                write!(f, "server error {sqlstate}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One statement's decoded result.
#[derive(Debug, Default, Clone)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// The CommandComplete tag, e.g. `SELECT 3`.
    pub tag: String,
}

/// A connected, authenticated session.
pub struct WireClient {
    stream: TcpStream,
    /// ParameterStatus values announced at startup (server_version, …).
    pub parameters: Vec<(String, String)>,
}

impl WireClient {
    /// Connect and complete the startup handshake. `params` are startup
    /// parameters beyond `user` (e.g. `("backend", "sql")`).
    pub fn connect(
        addr: &std::net::SocketAddr,
        params: &[(&str, &str)],
    ) -> Result<WireClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Self::handshake(stream, params)
    }

    /// Like [`WireClient::connect`] with a connect timeout, for tests
    /// that race the listener.
    pub fn connect_timeout(
        addr: &std::net::SocketAddr,
        timeout: Duration,
        params: &[(&str, &str)],
    ) -> Result<WireClient, ClientError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        Self::handshake(stream, params)
    }

    fn handshake(
        mut stream: TcpStream,
        params: &[(&str, &str)],
    ) -> Result<WireClient, ClientError> {
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(30))).ok();

        let mut body = Vec::new();
        body.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
        for (k, v) in std::iter::once(&("user", "obda")).chain(params.iter()) {
            body.extend_from_slice(k.as_bytes());
            body.push(0);
            body.extend_from_slice(v.as_bytes());
            body.push(0);
        }
        body.push(0);
        let len = (body.len() + 4) as i32;
        stream.write_all(&len.to_be_bytes())?;
        stream.write_all(&body)?;

        let mut client = WireClient {
            stream,
            parameters: Vec::new(),
        };
        // Drain until ReadyForQuery, collecting ParameterStatus.
        loop {
            let (tag, body) = client.read_message()?;
            match tag {
                b'R' => {
                    let code = be_i32(&body, 0)?;
                    if code != 0 {
                        return Err(ClientError::Protocol(format!(
                            "unsupported authentication request {code}"
                        )));
                    }
                }
                b'S' => {
                    let mut parts = body.split(|&b| b == 0);
                    let name = utf8(parts.next().unwrap_or_default())?;
                    let value = utf8(parts.next().unwrap_or_default())?;
                    client.parameters.push((name, value));
                }
                b'K' => {} // BackendKeyData: cancellation unsupported, ignore.
                b'Z' => return Ok(client),
                b'E' => return Err(decode_error(&body)),
                b'N' => {} // NoticeResponse
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected startup message '{}'",
                        other.escape_ascii()
                    )))
                }
            }
        }
    }

    /// Run a simple-protocol query buffer; returns one [`QueryResult`]
    /// per completed statement. If the server reports an error, results
    /// of earlier statements in the buffer are discarded and the error
    /// is returned (after draining to ReadyForQuery, so the connection
    /// stays usable).
    pub fn simple_query(&mut self, text: &str) -> Result<Vec<QueryResult>, ClientError> {
        let mut frame = Vec::with_capacity(text.len() + 6);
        frame.push(b'Q');
        frame.extend_from_slice(&((text.len() + 5) as i32).to_be_bytes());
        frame.extend_from_slice(text.as_bytes());
        frame.push(0);
        self.stream.write_all(&frame)?;

        let mut results = Vec::new();
        let mut current = QueryResult::default();
        let mut error: Option<ClientError> = None;
        loop {
            let (tag, body) = self.read_message()?;
            match tag {
                b'T' => current.columns = decode_row_description(&body)?,
                b'D' => current.rows.push(decode_data_row(&body)?),
                b'C' => {
                    current.tag = cstr_at(&body, 0)?;
                    results.push(std::mem::take(&mut current));
                }
                b'I' => {} // EmptyQueryResponse
                b'E' => {
                    if error.is_none() {
                        error = Some(decode_error(&body));
                    }
                }
                b'N' => {}
                b'Z' => {
                    return match error {
                        Some(e) => Err(e),
                        None => Ok(results),
                    };
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected message '{}' in simple-query response",
                        other.escape_ascii()
                    )))
                }
            }
        }
    }

    /// Extended protocol: Parse + Bind + Describe(portal) + Execute +
    /// Sync for a single statement, returning its result.
    pub fn extended_query(&mut self, text: &str) -> Result<QueryResult, ClientError> {
        let mut buf = Vec::new();
        // Parse: unnamed statement, no parameter types.
        frame(&mut buf, b'P', |b| {
            b.push(0); // statement name ""
            b.extend_from_slice(text.as_bytes());
            b.push(0);
            b.extend_from_slice(&0i16.to_be_bytes());
        });
        // Bind: unnamed portal <- unnamed statement, no formats/params.
        frame(&mut buf, b'B', |b| {
            b.push(0);
            b.push(0);
            b.extend_from_slice(&0i16.to_be_bytes());
            b.extend_from_slice(&0i16.to_be_bytes());
            b.extend_from_slice(&0i16.to_be_bytes());
        });
        // Describe the unnamed portal.
        frame(&mut buf, b'D', |b| {
            b.push(b'P');
            b.push(0);
        });
        // Execute the unnamed portal, no row limit.
        frame(&mut buf, b'E', |b| {
            b.push(0);
            b.extend_from_slice(&0i32.to_be_bytes());
        });
        frame(&mut buf, b'S', |_| {});
        self.stream.write_all(&buf)?;

        let mut result = QueryResult::default();
        let mut error: Option<ClientError> = None;
        loop {
            let (tag, body) = self.read_message()?;
            match tag {
                b'1' | b'2' | b'3' | b'n' | b't' => {}
                b'T' => result.columns = decode_row_description(&body)?,
                b'D' => result.rows.push(decode_data_row(&body)?),
                b'C' => result.tag = cstr_at(&body, 0)?,
                b'E' => {
                    if error.is_none() {
                        error = Some(decode_error(&body));
                    }
                }
                b'N' => {}
                b'Z' => {
                    return match error {
                        Some(e) => Err(e),
                        None => Ok(result),
                    };
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected message '{}' in extended-query response",
                        other.escape_ascii()
                    )))
                }
            }
        }
    }

    /// Send Terminate and close.
    pub fn terminate(mut self) {
        let _ = self.stream.write_all(&[b'X', 0, 0, 0, 4]);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// Raw access for protocol-abuse tests: send arbitrary bytes.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Raw access for protocol-abuse tests: read the next message.
    ///
    /// The declared length is validated *before* the body-size
    /// subtraction or any allocation, mirroring the server-side framing
    /// rules: below the 4-byte minimum (including negative — the field is
    /// signed on the wire) or above [`MAX_MESSAGE_LEN`] is a typed
    /// [`ClientError::Protocol`], never an underflow panic or an
    /// allocation-of-death.
    pub fn read_message(&mut self) -> Result<(u8, Vec<u8>), ClientError> {
        let mut header = [0u8; 5];
        read_full(&mut self.stream, &mut header)?;
        let tag = header[0];
        let len = i32::from_be_bytes(header[1..5].try_into().unwrap());
        if len < 4 || len as usize > MAX_MESSAGE_LEN {
            return Err(ClientError::Protocol(format!(
                "server message '{}' declares {len} bytes (valid: 4..={MAX_MESSAGE_LEN})",
                tag.escape_ascii()
            )));
        }
        let mut body = vec![0u8; len as usize - 4];
        read_full(&mut self.stream, &mut body)?;
        Ok((tag, body))
    }
}

fn frame(buf: &mut Vec<u8>, tag: u8, fill: impl FnOnce(&mut Vec<u8>)) {
    buf.push(tag);
    let at = buf.len();
    buf.extend_from_slice(&[0, 0, 0, 0]);
    fill(buf);
    let len = (buf.len() - at) as i32;
    buf[at..at + 4].copy_from_slice(&len.to_be_bytes());
}

fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), ClientError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(ClientError::Closed),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

fn be_i32(body: &[u8], at: usize) -> Result<i32, ClientError> {
    body.get(at..at + 4)
        .map(|s| i32::from_be_bytes(s.try_into().unwrap()))
        .ok_or_else(|| ClientError::Protocol("truncated i32".into()))
}

fn be_i16(body: &[u8], at: usize) -> Result<i16, ClientError> {
    body.get(at..at + 2)
        .map(|s| i16::from_be_bytes(s.try_into().unwrap()))
        .ok_or_else(|| ClientError::Protocol("truncated i16".into()))
}

fn utf8(bytes: &[u8]) -> Result<String, ClientError> {
    String::from_utf8(bytes.to_vec())
        .map_err(|_| ClientError::Protocol("non-UTF-8 string from server".into()))
}

fn cstr_at(body: &[u8], at: usize) -> Result<String, ClientError> {
    let rest = body
        .get(at..)
        .ok_or_else(|| ClientError::Protocol("truncated string".into()))?;
    let nul = rest
        .iter()
        .position(|&b| b == 0)
        .ok_or_else(|| ClientError::Protocol("unterminated string from server".into()))?;
    utf8(&rest[..nul])
}

fn decode_row_description(body: &[u8]) -> Result<Vec<String>, ClientError> {
    let ncols = be_i16(body, 0)?;
    let mut columns = Vec::with_capacity(ncols.max(0) as usize);
    let mut at = 2;
    for _ in 0..ncols {
        let name = cstr_at(body, at)?;
        at += name.len() + 1 + 18; // name NUL + 6 fixed fields (18 bytes)
        columns.push(name);
    }
    Ok(columns)
}

fn decode_data_row(body: &[u8]) -> Result<Vec<String>, ClientError> {
    let ncols = be_i16(body, 0)?;
    let mut row = Vec::with_capacity(ncols.max(0) as usize);
    let mut at = 2;
    for _ in 0..ncols {
        let len = be_i32(body, at)?;
        at += 4;
        if len < 0 {
            row.push(String::new());
        } else {
            let bytes = body
                .get(at..at + len as usize)
                .ok_or_else(|| ClientError::Protocol("truncated DataRow value".into()))?;
            row.push(utf8(bytes)?);
            at += len as usize;
        }
    }
    Ok(row)
}

fn decode_error(body: &[u8]) -> ClientError {
    let mut sqlstate = String::new();
    let mut message = String::new();
    let mut at = 0;
    while let Some(&field) = body.get(at) {
        if field == 0 {
            break;
        }
        at += 1;
        let Ok(value) = cstr_at(body, at) else { break };
        at += value.len() + 1;
        match field {
            b'C' => sqlstate = value,
            b'M' => message = value,
            _ => {}
        }
    }
    ClientError::Server { sqlstate, message }
}
