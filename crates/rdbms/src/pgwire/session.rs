//! One wire session: startup negotiation, then the command loop.
//!
//! A session is one OS thread driving one [`TcpStream`] against one
//! shared [`Server`]. The isolation contract:
//!
//! * every *statement* pins its own [`EngineSnapshot`] — a reload that
//!   publishes mid-session affects only statements parsed after it;
//! * `BEGIN` opens a snapshot-isolated [`Txn`]: statements until
//!   `COMMIT`/`ROLLBACK` read the transaction's pinned generation plus
//!   its own buffered writes, and commit rides the group-commit WAL
//!   with first-committer-wins validation (a conflict is SQLSTATE
//!   `40001`). Any error inside an open transaction aborts it: only
//!   `COMMIT`/`ROLLBACK` are then accepted (`25P02` otherwise), and
//!   `COMMIT` of an aborted transaction rolls back, as in PostgreSQL.
//!   `INSERT`/`DELETE` outside a transaction autocommit as a one-shot
//!   transaction each;
//! * every statement executes under `catch_unwind`, so a panic (from a
//!   bug or from the chaos `PANIC` statement) is converted into an
//!   `ErrorResponse` with SQLSTATE `XX000` and *this* connection closes —
//!   nothing is shared mutably with other sessions, so they keep
//!   answering (the server's locks recover from poisoning; see
//!   [`Server`]'s poison-recovery notes);
//! * a malformed frame gets a final `ErrorResponse` (`08P01`) and the
//!   connection closes — the stream's framing can no longer be trusted;
//! * when shutdown is requested, an idle session is told `57P01` and
//!   closed; a statement already executing finishes on its pinned
//!   snapshot first.

use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

use obda_dllite::IndividualId;

use super::framing::{
    read_message, read_startup, FrameError, OutBuf, CANCEL_REQUEST, GSSENC_REQUEST,
    PROTOCOL_VERSION, SSL_REQUEST,
};
use super::messages as msg;
use super::query::{
    parse_statement, split_statements, FactAtom, ParseWireError, ShowTopic, WireStatement,
};
use crate::engine::EngineError;
use crate::observe::{truncate_query, QueryTrace, StageSpans};
use crate::server::{AnalyzedQuery, EngineSnapshot, Server, ServerError};
use crate::sqlexec::Backend;
use crate::txn::Txn;

use std::collections::HashMap;

/// The version string reported to clients; the "obda" suffix makes it
/// obvious in `psql` that this is not a real PostgreSQL.
pub const SERVER_VERSION: &str = "16.0 (obda)";

/// Per-session configuration handed over by the listener.
pub struct SessionConfig {
    /// Backend used when the client does not pass `backend=` at startup.
    pub default_backend: Backend,
    /// Whether the chaos `PANIC` statement is honored.
    pub allow_chaos: bool,
    /// Process-unique id reported in `BackendKeyData`.
    pub session_id: i32,
}

/// A prepared statement retained across Parse/Bind/Execute. The wire
/// text is re-parsed against each Execute's pinned snapshot, so a
/// prepared statement transparently follows reloads — and plan caching
/// happens where it always does, in the server's canonical plan cache
/// (generation- and backend-keyed), which the re-parsed CQ hits.
struct Prepared {
    text: String,
}

/// A portal is just a bound reference to a prepared statement (our
/// statements take no parameters, so binding adds nothing).
struct Portal {
    statement: String,
}

/// Why the command loop ended. Used by the listener for logging only.
#[derive(Debug, PartialEq, Eq)]
pub enum SessionEnd {
    /// Client sent Terminate or closed the stream cleanly.
    Finished,
    /// The server is shutting down.
    Shutdown,
    /// The peer broke the protocol; an error was sent where possible.
    ProtocolError,
    /// A statement panicked; the error was reported and the stream closed.
    Panicked,
    /// I/O failure or mid-message disconnect.
    Io,
}

/// Serve one accepted connection to completion. `stop` is the listener's
/// shutdown flag. Never panics outward: statement panics are contained
/// per-statement, and everything else is typed.
pub fn run_session(
    server: &Server,
    mut stream: TcpStream,
    stop: &AtomicBool,
    cfg: &SessionConfig,
) -> SessionEnd {
    let _ = stream.set_read_timeout(Some(super::framing::POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut out = OutBuf::new();

    let backend = match negotiate_startup(&mut stream, stop, cfg, &mut out) {
        Ok(Some(b)) => b,
        Ok(None) => return SessionEnd::Finished,
        Err(end) => return end,
    };

    let mut session = Session {
        server,
        backend,
        allow_chaos: cfg.allow_chaos,
        prepared: HashMap::new(),
        portals: HashMap::new(),
        txn: None,
        txn_failed: false,
    };
    session.command_loop(&mut stream, stop, &mut out)
}

/// Startup negotiation: answer SSL/GSSENC probes with `'N'`, then accept
/// a version-3 StartupMessage, resolve the `backend=` parameter, and send
/// the auth-ok burst. `Ok(None)` = the peer left before starting.
fn negotiate_startup(
    stream: &mut TcpStream,
    stop: &AtomicBool,
    cfg: &SessionConfig,
    out: &mut OutBuf,
) -> Result<Option<Backend>, SessionEnd> {
    // A client may probe SSL and GSSENC before the real startup packet.
    for _ in 0..3 {
        let (code, body) = match read_startup(stream, stop) {
            Ok(Some(x)) => x,
            Ok(None) => return Ok(None),
            Err(e) => return Err(report_frame_error(stream, out, e)),
        };
        match code {
            SSL_REQUEST | GSSENC_REQUEST => {
                out.raw_byte(b'N');
                if out.flush_to(stream).is_err() {
                    return Err(SessionEnd::Io);
                }
            }
            CANCEL_REQUEST => {
                // Query cancellation is not supported; the protocol says
                // to just close the cancel connection.
                return Ok(None);
            }
            PROTOCOL_VERSION => {
                let params = match msg::decode_startup_params(&body) {
                    Ok(p) => p,
                    Err(e) => return Err(report_frame_error(stream, out, e)),
                };
                let mut backend = cfg.default_backend;
                for (key, value) in &params {
                    if key == "backend" {
                        backend = match value.as_str() {
                            "native" => Backend::Native,
                            "sql" => Backend::Sql,
                            other => {
                                send_error_and_close(
                                    stream,
                                    out,
                                    msg::SQLSTATE_INVALID_PARAMETER,
                                    &format!(
                                        "startup parameter backend={other} \
                                         (expected 'native' or 'sql')"
                                    ),
                                );
                                return Err(SessionEnd::ProtocolError);
                            }
                        };
                    }
                }
                msg::authentication_ok(out);
                msg::parameter_status(out, "server_version", SERVER_VERSION);
                msg::parameter_status(out, "server_encoding", "UTF8");
                msg::parameter_status(out, "client_encoding", "UTF8");
                msg::parameter_status(out, "backend", backend.name());
                msg::backend_key_data(out, cfg.session_id, 0);
                msg::ready_for_query(out, b'I');
                if out.flush_to(stream).is_err() {
                    return Err(SessionEnd::Io);
                }
                return Ok(Some(backend));
            }
            other => {
                send_error_and_close(
                    stream,
                    out,
                    msg::SQLSTATE_NOT_SUPPORTED,
                    &format!("unsupported protocol version/request code {other}"),
                );
                return Err(SessionEnd::ProtocolError);
            }
        }
    }
    send_error_and_close(
        stream,
        out,
        msg::SQLSTATE_PROTOCOL_VIOLATION,
        "too many pre-startup negotiation requests",
    );
    Err(SessionEnd::ProtocolError)
}

fn report_frame_error(stream: &mut TcpStream, out: &mut OutBuf, e: FrameError) -> SessionEnd {
    match e {
        FrameError::Malformed(detail) => {
            send_error_and_close(stream, out, msg::SQLSTATE_PROTOCOL_VIOLATION, &detail);
            SessionEnd::ProtocolError
        }
        FrameError::Shutdown => {
            send_error_and_close(
                stream,
                out,
                msg::SQLSTATE_ADMIN_SHUTDOWN,
                "server is shutting down",
            );
            SessionEnd::Shutdown
        }
        FrameError::Disconnected | FrameError::Io(_) => SessionEnd::Io,
    }
}

fn send_error_and_close(stream: &mut TcpStream, out: &mut OutBuf, sqlstate: &str, message: &str) {
    msg::error_response(out, sqlstate, message);
    let _ = out.flush_to(stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// A statement's outcome, ready to encode: column names plus text rows.
struct Rendered {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    tag: String,
}

/// What executing one statement can produce.
enum ExecError {
    /// Client-facing error; the session continues (simple protocol) or
    /// enters the skip-until-Sync state (extended protocol).
    Wire {
        sqlstate: &'static str,
        message: String,
    },
    /// The statement panicked; report and close the connection.
    Panicked(String),
}

impl From<ParseWireError> for ExecError {
    fn from(e: ParseWireError) -> Self {
        ExecError::Wire {
            sqlstate: msg::SQLSTATE_SYNTAX_ERROR,
            message: e.0,
        }
    }
}

impl From<EngineError> for ExecError {
    fn from(e: EngineError) -> Self {
        let sqlstate = match e {
            EngineError::StatementTooLong { .. } => msg::SQLSTATE_STATEMENT_TOO_COMPLEX,
            EngineError::Sql(_) => msg::SQLSTATE_INTERNAL_ERROR,
        };
        ExecError::Wire {
            sqlstate,
            message: e.to_string(),
        }
    }
}

struct Session<'a> {
    server: &'a Server,
    backend: Backend,
    allow_chaos: bool,
    prepared: HashMap<String, Prepared>,
    portals: HashMap<String, Portal>,
    /// The open transaction, if any. `Txn` borrows the same server the
    /// session does, so it lives here directly; dropping the session
    /// (client disconnect, panic, shutdown) rolls it back.
    txn: Option<Txn<'a>>,
    /// An error occurred inside the open transaction: only
    /// `COMMIT`/`ROLLBACK` are accepted until it ends.
    txn_failed: bool,
}

impl Session<'_> {
    fn command_loop(
        &mut self,
        stream: &mut TcpStream,
        stop: &AtomicBool,
        out: &mut OutBuf,
    ) -> SessionEnd {
        // Extended-protocol error discipline: after an error, ignore
        // everything until Sync.
        let mut skip_until_sync = false;
        loop {
            let (tag, body) = match read_message(stream, stop) {
                Ok(Some(x)) => x,
                Ok(None) => return SessionEnd::Finished,
                Err(e) => return report_frame_error(stream, out, e),
            };
            if skip_until_sync && tag != b'S' && tag != b'X' {
                continue;
            }
            if tag == b'Q' {
                // Simple protocol: completed-statement responses stay
                // queued, an error (if any) is appended after them, and
                // ReadyForQuery always closes the cycle.
                match self.on_simple_query(&body, out) {
                    Ok(()) => {}
                    Err(ExecError::Wire { sqlstate, message }) => {
                        self.fail_open_txn();
                        msg::error_response(out, sqlstate, &message);
                    }
                    Err(ExecError::Panicked(detail)) => {
                        send_error_and_close(
                            stream,
                            out,
                            msg::SQLSTATE_INTERNAL_ERROR,
                            &format!("statement panicked: {detail}"),
                        );
                        return SessionEnd::Panicked;
                    }
                }
                msg::ready_for_query(out, self.txn_status());
                if out.flush_to(stream).is_err() {
                    return SessionEnd::Io;
                }
                continue;
            }
            let result = match tag {
                b'P' => self.on_parse(&body, out),
                b'B' => self.on_bind(&body, out),
                b'D' => self.on_describe(&body, out),
                b'E' => self.on_execute(&body, out),
                b'C' => self.on_close(&body, out),
                b'S' => {
                    skip_until_sync = false;
                    msg::ready_for_query(out, self.txn_status());
                    Ok(())
                }
                b'H' => Ok(()), // Flush: we flush after every message anyway.
                b'X' => return SessionEnd::Finished,
                other => {
                    send_error_and_close(
                        stream,
                        out,
                        msg::SQLSTATE_PROTOCOL_VIOLATION,
                        &format!("unexpected frontend message '{}'", other.escape_ascii()),
                    );
                    return SessionEnd::ProtocolError;
                }
            };
            match result {
                Ok(()) => {
                    if out.flush_to(stream).is_err() {
                        return SessionEnd::Io;
                    }
                }
                Err(ExecError::Wire { sqlstate, message }) => {
                    self.fail_open_txn();
                    msg::error_response(out, sqlstate, &message);
                    skip_until_sync = true;
                    if out.flush_to(stream).is_err() {
                        return SessionEnd::Io;
                    }
                }
                Err(ExecError::Panicked(detail)) => {
                    send_error_and_close(
                        stream,
                        out,
                        msg::SQLSTATE_INTERNAL_ERROR,
                        &format!("statement panicked: {detail}"),
                    );
                    return SessionEnd::Panicked;
                }
            }
        }
    }

    /// Simple protocol: split on `;`, run statements in order, stop at
    /// the first error (remaining statements in the buffer are skipped,
    /// as in PostgreSQL). Responses for completed statements stay queued;
    /// the error (if any) is appended by the caller before ReadyForQuery.
    fn on_simple_query(&mut self, body: &[u8], out: &mut OutBuf) -> Result<(), ExecError> {
        let text = match msg::decode_query(body) {
            Ok(t) => t,
            Err(e) => {
                return Err(ExecError::Wire {
                    sqlstate: msg::SQLSTATE_PROTOCOL_VIOLATION,
                    message: e.to_string(),
                })
            }
        };
        let statements = split_statements(&text);
        if statements.is_empty() {
            msg::empty_query_response(out);
            return Ok(());
        }
        for stmt_text in statements {
            let rendered = self.execute_text(stmt_text)?;
            // Row-less statements (SET) get just a CommandComplete,
            // matching PostgreSQL.
            if rendered.columns.is_empty() {
                msg::command_complete(out, &rendered.tag);
                continue;
            }
            msg::row_description(out, &rendered.columns);
            for row in &rendered.rows {
                let vals: Vec<Option<&str>> = row.iter().map(|s| Some(s.as_str())).collect();
                msg::data_row(out, &vals);
            }
            msg::command_complete(out, &rendered.tag);
        }
        Ok(())
    }

    fn on_parse(&mut self, body: &[u8], out: &mut OutBuf) -> Result<(), ExecError> {
        let parse = msg::decode_parse(body).map_err(frame_to_exec)?;
        // Validate eagerly against the current session view so Parse
        // errors surface at Parse time, like PostgreSQL's.
        let snap = self.session_view();
        let statements = split_statements(&parse.query);
        if statements.len() != 1 {
            return Err(ExecError::Wire {
                sqlstate: msg::SQLSTATE_SYNTAX_ERROR,
                message: "Parse takes exactly one statement".into(),
            });
        }
        parse_statement(statements[0], snap.vocabulary())?;
        self.prepared.insert(
            parse.statement,
            Prepared {
                text: statements[0].to_string(),
            },
        );
        msg::parse_complete(out);
        Ok(())
    }

    fn on_bind(&mut self, body: &[u8], out: &mut OutBuf) -> Result<(), ExecError> {
        let bind = msg::decode_bind(body).map_err(frame_to_exec)?;
        if !self.prepared.contains_key(&bind.statement) {
            return Err(ExecError::Wire {
                sqlstate: msg::SQLSTATE_SYNTAX_ERROR,
                message: format!("prepared statement \"{}\" does not exist", bind.statement),
            });
        }
        if bind.nparams != 0 {
            return Err(ExecError::Wire {
                sqlstate: msg::SQLSTATE_NOT_SUPPORTED,
                message: "wire statements take no parameters".into(),
            });
        }
        self.portals.insert(
            bind.portal,
            Portal {
                statement: bind.statement,
            },
        );
        msg::bind_complete(out);
        Ok(())
    }

    fn on_describe(&mut self, body: &[u8], out: &mut OutBuf) -> Result<(), ExecError> {
        let target = msg::decode_target(body, "Describe").map_err(frame_to_exec)?;
        let text = self.resolve_target(&target)?;
        let snap = self.session_view();
        let stmt = parse_statement(&text, snap.vocabulary())?;
        if target.kind == b'S' {
            msg::parameter_description(out);
        }
        match describe_columns(&stmt) {
            Some(columns) => msg::row_description(out, &columns),
            None => msg::no_data(out),
        }
        Ok(())
    }

    fn on_execute(&mut self, body: &[u8], out: &mut OutBuf) -> Result<(), ExecError> {
        let exec = msg::decode_execute(body).map_err(frame_to_exec)?;
        let portal = self
            .portals
            .get(&exec.portal)
            .ok_or_else(|| ExecError::Wire {
                sqlstate: msg::SQLSTATE_SYNTAX_ERROR,
                message: format!("portal \"{}\" does not exist", exec.portal),
            })?;
        let text = self
            .prepared
            .get(&portal.statement)
            .map(|p| p.text.clone())
            .ok_or_else(|| ExecError::Wire {
                sqlstate: msg::SQLSTATE_SYNTAX_ERROR,
                message: format!("prepared statement \"{}\" does not exist", portal.statement),
            })?;
        let rendered = self.execute_text(&text)?;
        // Execute does not send RowDescription (Describe does).
        for row in &rendered.rows {
            let vals: Vec<Option<&str>> = row.iter().map(|s| Some(s.as_str())).collect();
            msg::data_row(out, &vals);
        }
        msg::command_complete(out, &rendered.tag);
        Ok(())
    }

    fn on_close(&mut self, body: &[u8], out: &mut OutBuf) -> Result<(), ExecError> {
        let target = msg::decode_target(body, "Close").map_err(frame_to_exec)?;
        // Closing a nonexistent target is not an error (per protocol).
        if target.kind == b'S' {
            self.prepared.remove(&target.name);
            self.portals.retain(|_, p| p.statement != target.name);
        } else {
            self.portals.remove(&target.name);
        }
        msg::close_complete(out);
        Ok(())
    }

    fn resolve_target(&self, target: &msg::TargetMsg) -> Result<String, ExecError> {
        let stmt_name = if target.kind == b'P' {
            &self
                .portals
                .get(&target.name)
                .ok_or_else(|| ExecError::Wire {
                    sqlstate: msg::SQLSTATE_SYNTAX_ERROR,
                    message: format!("portal \"{}\" does not exist", target.name),
                })?
                .statement
        } else {
            &target.name
        };
        self.prepared
            .get(stmt_name)
            .map(|p| p.text.clone())
            .ok_or_else(|| ExecError::Wire {
                sqlstate: msg::SQLSTATE_SYNTAX_ERROR,
                message: format!("prepared statement \"{stmt_name}\" does not exist"),
            })
    }

    /// `'I'` idle, `'T'` in an open transaction, `'E'` failed.
    fn txn_status(&self) -> u8 {
        match (&self.txn, self.txn_failed) {
            (None, _) => b'I',
            (Some(_), false) => b'T',
            (Some(_), true) => b'E',
        }
    }

    /// After an error: an open transaction becomes failed.
    fn fail_open_txn(&mut self) {
        if self.txn.is_some() {
            self.txn_failed = true;
        }
    }

    /// The snapshot statements parse and render against: the open
    /// transaction's view (pinned generation + buffered writes + new
    /// names) when one exists, the current published snapshot otherwise.
    fn session_view(&mut self) -> Arc<EngineSnapshot> {
        match &mut self.txn {
            Some(txn) => txn.view(),
            None => self.server.snapshot(),
        }
    }

    /// Parse and execute one statement text: pin a snapshot (the open
    /// transaction's view, if any), resolve names against its
    /// vocabulary, run under `catch_unwind`.
    fn execute_text(&mut self, text: &str) -> Result<Rendered, ExecError> {
        // Failed-transaction discipline: nothing but COMMIT/ROLLBACK is
        // even parsed until the transaction block ends.
        if self.txn_failed {
            let first = text
                .trim()
                .split_whitespace()
                .next()
                .unwrap_or("")
                .to_ascii_uppercase();
            if !matches!(first.as_str(), "COMMIT" | "END" | "ROLLBACK" | "ABORT") {
                return Err(ExecError::Wire {
                    sqlstate: msg::SQLSTATE_IN_FAILED_TRANSACTION,
                    message: "current transaction is aborted, \
                              commands ignored until end of transaction block"
                        .into(),
                });
            }
        }
        let statement_started = Instant::now();
        let snap = self.session_view();
        let parse_started = Instant::now();
        let stmt = parse_statement(text, snap.vocabulary())?;
        let parse_span = parse_started.elapsed();
        match stmt {
            WireStatement::Set => Ok(tag_only("SET")),
            WireStatement::Show(topic) => Ok(self.run_show(topic, &snap)),
            WireStatement::Begin => self.run_begin(),
            WireStatement::Commit => self.run_commit(),
            WireStatement::Rollback => self.run_rollback(),
            WireStatement::Mutate { insert, facts } => self.run_mutate(insert, &facts),
            WireStatement::Panic => {
                if !self.allow_chaos {
                    return Err(ExecError::Wire {
                        sqlstate: msg::SQLSTATE_NOT_SUPPORTED,
                        message: "PANIC is disabled (start the listener with chaos enabled)".into(),
                    });
                }
                let r = catch_unwind(|| panic!("chaos PANIC statement"));
                debug_assert!(r.is_err());
                Err(ExecError::Panicked("chaos PANIC statement".into()))
            }
            WireStatement::Select { head_names, cq } => {
                let backend = self.backend;
                let outcome = match &mut self.txn {
                    Some(txn) => {
                        let result = catch_unwind(AssertUnwindSafe(|| txn.query_as(&cq, backend)));
                        match result {
                            Ok(r) => r.map_err(ExecError::from)?,
                            Err(payload) => return Err(ExecError::Panicked(panic_detail(payload))),
                        }
                    }
                    None => {
                        let server = self.server;
                        let snap_ref = &snap;
                        let result = catch_unwind(AssertUnwindSafe(move || {
                            server.query_on_as(snap_ref, &cq, backend)
                        }));
                        match result {
                            Ok(r) => r.map_err(ExecError::from)?,
                            Err(payload) => return Err(ExecError::Panicked(panic_detail(payload))),
                        }
                    }
                };
                let serialize_started = Instant::now();
                let rendered = render_select(&head_names, &outcome.outcome.rows, &snap);
                let mut spans = outcome.spans;
                spans.parse = parse_span;
                spans.serialize = serialize_started.elapsed();
                self.record_statement_trace(
                    text,
                    backend,
                    outcome.cache_hit,
                    outcome.generation,
                    outcome.outcome.rows.len() as u64,
                    spans,
                    statement_started,
                );
                Ok(rendered)
            }
            WireStatement::ExplainAnalyze { cq } => {
                // In-transaction views share the pinned generation with
                // other sessions' cache entries, so their compilations
                // must stay out of the plan cache — and an EXPLAIN whose
                // plan is *not* the cached one would be lying. Refuse.
                if self.txn.is_some() {
                    return Err(ExecError::Wire {
                        sqlstate: msg::SQLSTATE_NOT_SUPPORTED,
                        message: "EXPLAIN ANALYZE inside a transaction block is not supported"
                            .into(),
                    });
                }
                let backend = self.backend;
                let server = self.server;
                let snap_ref = &snap;
                let result = catch_unwind(AssertUnwindSafe(move || {
                    server.explain_analyze(snap_ref, &cq, backend)
                }));
                let analyzed = match result {
                    Ok(r) => r.map_err(ExecError::from)?,
                    Err(payload) => return Err(ExecError::Panicked(panic_detail(payload))),
                };
                let serialize_started = Instant::now();
                let rendered = render_explain(&analyzed);
                let mut spans = analyzed.spans;
                spans.parse = parse_span;
                spans.serialize = serialize_started.elapsed();
                self.record_statement_trace(
                    text,
                    backend,
                    analyzed.cache_hit,
                    analyzed.generation,
                    analyzed.outcome.rows.len() as u64,
                    spans,
                    statement_started,
                );
                Ok(rendered)
            }
        }
    }

    /// Complete one query statement's trace: stamp id and end-to-end
    /// total and hand it to the registry (stage totals, slow-query ring,
    /// stderr slow log).
    #[allow(clippy::too_many_arguments)]
    fn record_statement_trace(
        &self,
        text: &str,
        backend: Backend,
        cache_hit: bool,
        generation: u64,
        rows: u64,
        spans: StageSpans,
        statement_started: Instant,
    ) {
        let observe = self.server.observe();
        if !observe.is_enabled() {
            return;
        }
        observe.record_trace(QueryTrace {
            id: observe.next_trace_id(),
            query: truncate_query(text),
            backend,
            cache_hit,
            generation,
            rows,
            spans,
            total: statement_started.elapsed(),
        });
    }

    fn run_begin(&mut self) -> Result<Rendered, ExecError> {
        if self.txn.is_some() {
            // Stricter than PostgreSQL's warning: a typed error (which
            // also aborts the open transaction, per the session rule).
            return Err(ExecError::Wire {
                sqlstate: msg::SQLSTATE_ACTIVE_TRANSACTION,
                message: "there is already a transaction in progress".into(),
            });
        }
        self.txn = Some(self.server.begin());
        Ok(tag_only("BEGIN"))
    }

    fn run_commit(&mut self) -> Result<Rendered, ExecError> {
        match self.txn.take() {
            None => Err(ExecError::Wire {
                sqlstate: msg::SQLSTATE_NO_ACTIVE_TRANSACTION,
                message: "there is no transaction in progress".into(),
            }),
            Some(txn) if self.txn_failed => {
                // COMMIT of an aborted transaction rolls back, with the
                // ROLLBACK tag telling the client what really happened.
                self.txn_failed = false;
                txn.rollback();
                Ok(tag_only("ROLLBACK"))
            }
            Some(txn) => match txn.commit() {
                Ok(_generation) => Ok(tag_only("COMMIT")),
                Err(e @ ServerError::Conflict { .. }) => Err(ExecError::Wire {
                    sqlstate: msg::SQLSTATE_SERIALIZATION_FAILURE,
                    message: e.to_string(),
                }),
                Err(e) => Err(ExecError::Wire {
                    sqlstate: msg::SQLSTATE_INTERNAL_ERROR,
                    message: e.to_string(),
                }),
            },
        }
    }

    fn run_rollback(&mut self) -> Result<Rendered, ExecError> {
        match self.txn.take() {
            None => Err(ExecError::Wire {
                sqlstate: msg::SQLSTATE_NO_ACTIVE_TRANSACTION,
                message: "there is no transaction in progress".into(),
            }),
            Some(txn) => {
                self.txn_failed = false;
                txn.rollback();
                Ok(tag_only("ROLLBACK"))
            }
        }
    }

    /// `INSERT`/`DELETE`: buffer into the open transaction, or run as a
    /// one-shot autocommit transaction. `DELETE` of a fact naming an
    /// unknown individual is a no-op for that fact (there is nothing to
    /// retract), and the tag's row count reports only applied facts.
    fn run_mutate(&mut self, insert: bool, facts: &[FactAtom]) -> Result<Rendered, ExecError> {
        let tag_word = if insert { "INSERT 0" } else { "DELETE" };
        let applied = match &mut self.txn {
            Some(txn) => apply_facts(txn, insert, facts),
            None => {
                let mut txn = self.server.begin();
                let applied = apply_facts(&mut txn, insert, facts);
                match txn.commit() {
                    Ok(_generation) => applied,
                    Err(e @ ServerError::Conflict { .. }) => {
                        return Err(ExecError::Wire {
                            sqlstate: msg::SQLSTATE_SERIALIZATION_FAILURE,
                            message: e.to_string(),
                        })
                    }
                    Err(e) => {
                        return Err(ExecError::Wire {
                            sqlstate: msg::SQLSTATE_INTERNAL_ERROR,
                            message: e.to_string(),
                        })
                    }
                }
            }
        };
        Ok(tag_only(&format!("{tag_word} {applied}")))
    }

    fn run_show(&self, topic: ShowTopic, snap: &EngineSnapshot) -> Rendered {
        if topic == ShowTopic::Metrics {
            return self.run_show_metrics(snap);
        }
        if topic == ShowTopic::SlowQueries {
            return run_show_slow_queries(self.server);
        }
        if topic == ShowTopic::Transaction {
            let (status, pending, new_names, generation) = match &self.txn {
                Some(txn) => (
                    if self.txn_failed { "failed" } else { "open" },
                    txn.pending_ops(),
                    txn.new_names(),
                    txn.begin_generation(),
                ),
                None => ("idle", 0, 0, snap.generation()),
            };
            return Rendered {
                columns: vec![
                    "transaction_status".into(),
                    "pending_ops".into(),
                    "new_names".into(),
                    "pinned_generation".into(),
                ],
                rows: vec![vec![
                    status.to_string(),
                    pending.to_string(),
                    new_names.to_string(),
                    generation.to_string(),
                ]],
                tag: "SELECT 1".into(),
            };
        }
        let (name, value) = match topic {
            ShowTopic::Generation => ("generation", snap.generation().to_string()),
            ShowTopic::Backend => ("backend", self.backend.name().to_string()),
            ShowTopic::ServerVersion => ("server_version", SERVER_VERSION.to_string()),
            ShowTopic::Cache => {
                let s = self.server.cache_stats();
                (
                    "cache",
                    format!(
                        "hits={} misses={} entries={} invalidated={}",
                        s.hits, s.misses, s.entries, s.invalidated
                    ),
                )
            }
            ShowTopic::Transaction | ShowTopic::Metrics | ShowTopic::SlowQueries => {
                unreachable!("handled above")
            }
        };
        Rendered {
            columns: vec![name.to_string()],
            rows: vec![vec![value]],
            tag: "SELECT 1".into(),
        }
    }

    /// `SHOW metrics`: the whole registry (plus the serving layer's
    /// cache/txn counters) as `metric | value` rows — the wire-level
    /// twin of the Prometheus endpoint.
    fn run_show_metrics(&self, snap: &EngineSnapshot) -> Rendered {
        let observe = self.server.observe();
        let cache = self.server.cache_stats();
        let txn = self.server.txn_stats();
        let (predicted, measured) = observe.cost_totals();
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut push = |name: &str, value: String| rows.push(vec![name.to_string(), value]);
        for backend in [Backend::Native, Backend::Sql] {
            push(
                &format!("queries_total.{}", backend.name()),
                observe.queries_total(backend).to_string(),
            );
            let hist = observe.latency(backend);
            push(
                &format!("query_latency_p50_us.{}", backend.name()),
                hist.quantile(50.0).as_micros().to_string(),
            );
            push(
                &format!("query_latency_p99_us.{}", backend.name()),
                hist.quantile(99.0).as_micros().to_string(),
            );
        }
        push(
            "query_errors_total",
            observe.query_errors_total().to_string(),
        );
        push(
            "query_rows_total",
            observe.rows_returned_total().to_string(),
        );
        push("plan_cache_hits", cache.hits.to_string());
        push("plan_cache_misses", cache.misses.to_string());
        push("plan_cache_entries", cache.entries.to_string());
        push("plan_cache_invalidated", cache.invalidated.to_string());
        push("txn_commits", txn.committed.to_string());
        push("txn_conflicts", txn.conflicts.to_string());
        push("txn_commit_groups", txn.commit_groups.to_string());
        push("txn_active", txn.active.to_string());
        push("wal_appends", observe.wal_appends_total().to_string());
        push("wal_fsyncs", observe.wal_fsyncs_total().to_string());
        push("wal_bytes", observe.wal_bytes_total().to_string());
        push("checkpoints", observe.checkpoints_total().to_string());
        push(
            "checkpoint_micros",
            observe.checkpoint_micros_total().to_string(),
        );
        push(
            "connections_admitted",
            observe.connections_admitted_total().to_string(),
        );
        push(
            "connections_rejected",
            observe.connections_rejected_total().to_string(),
        );
        push(
            "panics_recovered",
            observe.panics_recovered_total().to_string(),
        );
        push("cost_predicted_units", format!("{predicted:.1}"));
        push("cost_measured_units", format!("{measured:.1}"));
        if predicted > 0.0 {
            push(
                "cost_accuracy_ratio",
                format!("{:.3}", measured / predicted),
            );
        }
        push("generation", snap.generation().to_string());
        let n = rows.len();
        Rendered {
            columns: vec!["metric".into(), "value".into()],
            rows,
            tag: format!("SELECT {n}"),
        }
    }
}

/// Column labels of a `SHOW slow_queries` result, in row order.
const SLOW_QUERY_COLUMNS: [&str; 13] = [
    "trace_id",
    "total_us",
    "parse_us",
    "reformulate_us",
    "plan_us",
    "sqlgen_us",
    "execute_us",
    "serialize_us",
    "backend",
    "cache_hit",
    "generation",
    "rows",
    "query",
];

/// `SHOW slow_queries`: the retained slowest traces, slowest first.
fn run_show_slow_queries(server: &Server) -> Rendered {
    let traces = server.observe().slow_queries();
    let rows: Vec<Vec<String>> = traces
        .iter()
        .map(|t| {
            vec![
                t.id.to_string(),
                t.total.as_micros().to_string(),
                t.spans.parse.as_micros().to_string(),
                t.spans.reformulate.as_micros().to_string(),
                t.spans.plan.as_micros().to_string(),
                t.spans.sqlgen.as_micros().to_string(),
                t.spans.execute.as_micros().to_string(),
                t.spans.serialize.as_micros().to_string(),
                t.backend.name().to_string(),
                if t.cache_hit { "t" } else { "f" }.to_string(),
                t.generation.to_string(),
                t.rows.to_string(),
                t.query.clone(),
            ]
        })
        .collect();
    let n = rows.len();
    Rendered {
        columns: SLOW_QUERY_COLUMNS.iter().map(|c| c.to_string()).collect(),
        rows,
        tag: format!("SELECT {n}"),
    }
}

/// Render an [`AnalyzedQuery`] as `QUERY PLAN` text lines: the plan's
/// predicted per-step costs next to the executor's measured work — the
/// cost-model accuracy loop, inspectable from any pg client.
fn render_explain(analyzed: &AnalyzedQuery) -> Rendered {
    let metrics = &analyzed.outcome.metrics;
    let mut lines: Vec<String> = Vec::new();
    lines.push(format!(
        "strategy={} backend={} cache_hit={} generation={}",
        analyzed.explain.strategy.name(),
        analyzed.backend.name(),
        analyzed.cache_hit,
        analyzed.generation,
    ));
    if let Some(p) = &analyzed.pruned {
        lines.push(format!(
            "constraints: arms_pruned={} (empty={} subsumed={}) kept={}",
            p.total_pruned(),
            p.empty_pruned,
            p.subsumed_pruned,
            p.kept,
        ));
    }
    lines.push(format!(
        "predicted: total_cost={:.1}",
        analyzed.explain.total_cost
    ));
    lines.push(format!(
        "measured: work_units={:.1} rows={} wall_us={}",
        metrics.work_units(),
        analyzed.outcome.rows.len(),
        metrics.wall.as_micros(),
    ));
    if analyzed.explain.total_cost.is_finite() && analyzed.explain.total_cost > 0.0 {
        lines.push(format!(
            "accuracy: measured/predicted={:.3}",
            metrics.work_units() / analyzed.explain.total_cost
        ));
    }
    // Per-arm annotation only when the executor attributed arm deltas
    // that line up with the plan's conjunctions (top-level unions; a
    // plain CQ or a JUCQ reports statement totals only).
    let arm_metrics = &analyzed.outcome.arm_metrics;
    let annotate_arms = arm_metrics.len() == analyzed.explain.arms.len();
    for (i, arm) in analyzed.explain.arms.iter().enumerate() {
        lines.push(format!("{}:", arm.label));
        for step in &arm.plan.steps {
            lines.push(format!(
                "  [slot{} {} cost={:.1} rows={:.1}]",
                step.slot,
                step.op.name(),
                step.est_cost,
                step.est_rows,
            ));
        }
        lines.push(format!("  predicted: cost={:.1}", arm.plan.est_cost()));
        if annotate_arms {
            let m = &arm_metrics[i];
            lines.push(format!(
                "  measured: work_units={:.1} rows={} wall_us={}",
                m.work_units(),
                m.output,
                m.wall.as_micros(),
            ));
        }
    }
    let n = lines.len();
    Rendered {
        columns: vec!["QUERY PLAN".into()],
        rows: lines.into_iter().map(|l| vec![l]).collect(),
        tag: format!("EXPLAIN {n}"),
    }
}

/// A row-less result carrying only a CommandComplete tag.
fn tag_only(tag: &str) -> Rendered {
    Rendered {
        columns: Vec::new(),
        rows: Vec::new(),
        tag: tag.to_string(),
    }
}

/// Apply ground facts to a transaction's working set, returning how many
/// were applied. Inserts intern unknown individuals transaction-locally;
/// deletes of facts naming unknown individuals are skipped.
fn apply_facts(txn: &mut Txn<'_>, insert: bool, facts: &[FactAtom]) -> usize {
    let mut applied = 0;
    for fact in facts {
        match fact {
            FactAtom::Concept(c, name) => {
                if insert {
                    let a = txn.individual(name);
                    txn.insert_concept(*c, a);
                    applied += 1;
                } else if let Some(a) = txn.find_individual(name) {
                    txn.retract_concept(*c, a);
                    applied += 1;
                }
            }
            FactAtom::Role(r, a_name, b_name) => {
                if insert {
                    let a = txn.individual(a_name);
                    let b = txn.individual(b_name);
                    txn.insert_role(*r, a, b);
                    applied += 1;
                } else if let (Some(a), Some(b)) =
                    (txn.find_individual(a_name), txn.find_individual(b_name))
                {
                    txn.retract_role(*r, a, b);
                    applied += 1;
                }
            }
        }
    }
    applied
}

fn frame_to_exec(e: FrameError) -> ExecError {
    ExecError::Wire {
        sqlstate: msg::SQLSTATE_PROTOCOL_VIOLATION,
        message: e.to_string(),
    }
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Column names a statement will produce, or `None` for row-less ones.
fn describe_columns(stmt: &WireStatement) -> Option<Vec<String>> {
    match stmt {
        WireStatement::Select { head_names, .. } => Some(head_names.clone()),
        WireStatement::ExplainAnalyze { .. } => Some(vec!["QUERY PLAN".to_string()]),
        WireStatement::Show(ShowTopic::Transaction) => Some(vec![
            "transaction_status".to_string(),
            "pending_ops".to_string(),
            "new_names".to_string(),
            "pinned_generation".to_string(),
        ]),
        WireStatement::Show(ShowTopic::Metrics) => {
            Some(vec!["metric".to_string(), "value".to_string()])
        }
        WireStatement::Show(ShowTopic::SlowQueries) => {
            Some(SLOW_QUERY_COLUMNS.iter().map(|c| c.to_string()).collect())
        }
        WireStatement::Show(topic) => Some(vec![match topic {
            ShowTopic::Generation => "generation",
            ShowTopic::Cache => "cache",
            ShowTopic::Backend => "backend",
            ShowTopic::ServerVersion => "server_version",
            ShowTopic::Transaction | ShowTopic::Metrics | ShowTopic::SlowQueries => {
                unreachable!("handled above")
            }
        }
        .to_string()]),
        WireStatement::Set
        | WireStatement::Panic
        | WireStatement::Begin
        | WireStatement::Commit
        | WireStatement::Rollback
        | WireStatement::Mutate { .. } => None,
    }
}

/// Render result rows to wire text. A boolean query (empty head) renders
/// as a single `t`/`f` row under the `answer` column.
fn render_select(head_names: &[String], rows: &[Vec<u32>], snap: &Arc<EngineSnapshot>) -> Rendered {
    let voc = snap.vocabulary();
    if head_names.len() == 1 && head_names[0] == "answer" {
        let yes = !rows.is_empty();
        return Rendered {
            columns: vec!["answer".into()],
            rows: vec![vec![if yes { "t" } else { "f" }.into()]],
            tag: "SELECT 1".into(),
        };
    }
    let mut text_rows = Vec::with_capacity(rows.len());
    for row in rows {
        text_rows.push(
            row.iter()
                .map(|&v| voc.individual_name(IndividualId(v)).to_string())
                .collect(),
        );
    }
    let n = text_rows.len();
    Rendered {
        columns: head_names.to_vec(),
        rows: text_rows,
        tag: format!("SELECT {n}"),
    }
}
