//! The accepting front end: a TCP listener spawning one session thread
//! per connection, with admission control and graceful shutdown.
//!
//! Threading model: the paper's serving regime (many readers over a
//! shared snapshot, §6.4's amortized planning) maps naturally onto an
//! OS thread per connection — queries clone the snapshot `Arc` and run
//! lock-free, so the listener needs no work-stealing machinery, only a
//! bound on how many sessions may exist at once. Beyond that bound a
//! connection is still *accepted* (so the client gets a proper answer),
//! told `53300 too_many_connections` in response to its startup packet,
//! and closed — admission control with a typed refusal, not a SYN queue
//! timeout.
//!
//! Shutdown is cooperative: [`PgListener::shutdown`] flips a shared
//! flag; the accept loop stops accepting, idle sessions are told
//! `57P01 admin_shutdown` at their next frame boundary, and statements
//! already executing finish on their pinned snapshots (the frame reader
//! grants mid-message grace). `shutdown` then joins every thread, so
//! when it returns no session thread survives.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use super::framing::{read_startup, OutBuf, GSSENC_REQUEST, SSL_REQUEST};
use super::messages as msg;
use super::session::{run_session, SessionConfig, SessionEnd};
use crate::server::Server;
use crate::sqlexec::Backend;

/// Listener configuration.
#[derive(Clone, Debug)]
pub struct PgConfig {
    /// Sessions allowed at once; further connections get `53300`.
    pub max_connections: usize,
    /// Backend for sessions that do not pass `backend=` at startup.
    pub default_backend: Backend,
    /// Honor the chaos `PANIC` statement (test/soak harnesses only).
    pub allow_chaos: bool,
}

impl Default for PgConfig {
    fn default() -> Self {
        PgConfig {
            max_connections: 64,
            default_backend: Backend::Native,
            allow_chaos: false,
        }
    }
}

/// Handle to a running wire listener. Dropping the handle does *not*
/// stop the server — call [`PgListener::shutdown`].
pub struct PgListener {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<SessionEnd>>>>,
}

impl PgListener {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start accepting connections against `server`.
    pub fn bind(addr: &str, server: Arc<Server>, config: PgConfig) -> std::io::Result<PgListener> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let stop = Arc::new(AtomicBool::new(false));
        let sessions: Arc<Mutex<Vec<std::thread::JoinHandle<SessionEnd>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));
        let next_id = Arc::new(AtomicI32::new(1));

        let accept_stop = stop.clone();
        let accept_sessions = sessions.clone();
        let accept_thread = std::thread::Builder::new()
            .name("pgwire-accept".into())
            .spawn(move || {
                accept_loop(
                    listener,
                    server,
                    config,
                    accept_stop,
                    accept_sessions,
                    active,
                    next_id,
                )
            })?;

        Ok(PgListener {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            sessions,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Request shutdown and wait for the accept loop and every session
    /// thread to finish. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let handles = {
            let mut guard = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for PgListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    server: Arc<Server>,
    config: PgConfig,
    stop: Arc<AtomicBool>,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<SessionEnd>>>>,
    active: Arc<AtomicUsize>,
    next_id: Arc<AtomicI32>,
) {
    while !stop.load(Ordering::Relaxed) {
        let (stream, _peer) = match listener.accept() {
            Ok(x) => x,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };

        // Admission control: reserve a slot before spawning. The
        // refusal still reads the startup packet so the client gets a
        // protocol-correct ErrorResponse rather than a slammed door.
        let prev = active.fetch_add(1, Ordering::SeqCst);
        if prev >= config.max_connections {
            active.fetch_sub(1, Ordering::SeqCst);
            server.observe().record_rejection();
            let stop2 = stop.clone();
            let _ = std::thread::Builder::new()
                .name("pgwire-reject".into())
                .spawn(move || reject_saturated(stream, &stop2));
            continue;
        }
        server.observe().record_admission();

        let server2 = server.clone();
        let stop2 = stop.clone();
        let active2 = active.clone();
        let cfg = SessionConfig {
            default_backend: config.default_backend,
            allow_chaos: config.allow_chaos,
            session_id: next_id.fetch_add(1, Ordering::Relaxed),
        };
        let spawn = std::thread::Builder::new()
            .name(format!("pgwire-session-{}", cfg.session_id))
            .spawn(move || {
                // Decrement on every exit path, including panics the
                // session failed to contain (none are expected).
                struct Slot(Arc<AtomicUsize>);
                impl Drop for Slot {
                    fn drop(&mut self) {
                        self.0.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                let _slot = Slot(active2);
                let end = run_session(&server2, stream, &stop2, &cfg);
                if end == SessionEnd::Panicked {
                    server2.observe().record_panic_recovered();
                }
                end
            });
        match spawn {
            Ok(handle) => {
                let mut guard = sessions.lock().unwrap_or_else(|e| e.into_inner());
                // Reap finished sessions so the handle list stays small
                // on long-lived listeners.
                guard.retain(|h| !h.is_finished());
                guard.push(handle);
            }
            Err(_) => {
                active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Complete just enough protocol with an over-limit client to deliver
/// `53300 too_many_connections`, then close.
fn reject_saturated(mut stream: TcpStream, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(super::framing::POLL_INTERVAL));
    let mut out = OutBuf::new();
    // Answer at most a couple of SSL/GSSENC probes, then the startup
    // packet itself, with the refusal.
    for _ in 0..3 {
        match read_startup(&mut stream, stop) {
            Ok(Some((code, _body))) if code == SSL_REQUEST || code == GSSENC_REQUEST => {
                out.raw_byte(b'N');
                if out.flush_to(&mut stream).is_err() {
                    return;
                }
            }
            Ok(Some(_)) => break,
            _ => return,
        }
    }
    msg::error_response(
        &mut out,
        msg::SQLSTATE_TOO_MANY_CONNECTIONS,
        "too many connections; the server is at its session limit",
    );
    let _ = out.flush_to(&mut stream);
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
