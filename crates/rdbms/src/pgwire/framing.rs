//! Byte-level framing of the PostgreSQL wire protocol (v3).
//!
//! Two frame shapes exist on the wire:
//!
//! * the **startup packet** — `[len: i32][code: i32][body]`, no tag byte
//!   (the very first frame of a connection; `code` is either the
//!   protocol version or one of the special request codes);
//! * **typed messages** — `[tag: u8][len: i32][body]`, where `len`
//!   counts itself but not the tag. Both directions use this shape after
//!   startup.
//!
//! Every length field read off the wire is validated *before* any
//! allocation: a declared length below the 4-byte minimum or above
//! [`MAX_MESSAGE_LEN`] is a protocol violation ([`FrameError::Malformed`]),
//! not an allocation request — a malicious or broken client cannot make
//! the server reserve gigabytes. A peer that disconnects mid-message
//! surfaces [`FrameError::Disconnected`]; a disconnect **on** a message
//! boundary is a clean end of stream (`Ok(None)`). None of these paths
//! can panic — the malformed-protocol fuzz suite drives each one.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Hard cap on a typed message's declared length (bytes, including the
/// length field itself). Far above any legitimate statement, far below
/// an allocation-of-death.
pub const MAX_MESSAGE_LEN: usize = 16 * 1024 * 1024;

/// Hard cap on the startup packet (PostgreSQL itself enforces 10000).
pub const MAX_STARTUP_LEN: usize = 10_000;

/// The protocol version this front end speaks: 3.0.
pub const PROTOCOL_VERSION: u32 = 196_608;
/// `SSLRequest` magic code — answered with a single `'N'` (no TLS).
pub const SSL_REQUEST: u32 = 80_877_103;
/// `GSSENCRequest` magic code — answered with a single `'N'`.
pub const GSSENC_REQUEST: u32 = 80_877_104;
/// `CancelRequest` magic code — acknowledged by closing the connection.
pub const CANCEL_REQUEST: u32 = 80_877_102;

/// Read-side timeout used while polling for the next frame; short so the
/// session loop can observe the shutdown flag between frames.
pub const POLL_INTERVAL: Duration = Duration::from_millis(50);
/// How long a *mid-message* read may keep stalling after shutdown was
/// requested before the connection is abandoned.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(2);

/// Frame-level failures. `Malformed` means the stream can no longer be
/// trusted (the reader has lost the frame boundaries) — the session must
/// answer with a final `ErrorResponse` and close.
#[derive(Debug)]
pub enum FrameError {
    Io(std::io::Error),
    /// The peer violated the framing rules; human-readable detail.
    Malformed(String),
    /// The peer vanished in the middle of a frame.
    Disconnected,
    /// The server is shutting down and the peer was idle on a frame
    /// boundary (or stalled past the grace period).
    Shutdown,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "wire I/O error: {e}"),
            FrameError::Malformed(d) => write!(f, "malformed protocol message: {d}"),
            FrameError::Disconnected => write!(f, "peer disconnected mid-message"),
            FrameError::Shutdown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Fill `buf` from the stream, tolerating read timeouts. `stop` is
/// polled on every timeout: once it returns true, a read stalled on a
/// frame *boundary* (nothing consumed yet) aborts immediately with
/// [`FrameError::Shutdown`], while a mid-frame read gets [`SHUTDOWN_GRACE`]
/// to finish before the connection is abandoned.
fn read_exact_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    at_boundary: bool,
) -> Result<usize, FrameError> {
    let mut filled = 0;
    let mut stalled = Duration::ZERO;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(0)
                } else {
                    Err(FrameError::Disconnected)
                }
            }
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if stop.load(Ordering::Relaxed) {
                    if at_boundary && filled == 0 {
                        return Err(FrameError::Shutdown);
                    }
                    stalled += POLL_INTERVAL;
                    if stalled >= SHUTDOWN_GRACE {
                        return Err(FrameError::Shutdown);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

/// Read the startup packet: returns `(code, body)` where `body` is the
/// bytes after the 8-byte prelude. `Ok(None)` = the peer connected and
/// left without sending anything.
pub fn read_startup(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> Result<Option<(u32, Vec<u8>)>, FrameError> {
    let mut prelude = [0u8; 8];
    if read_exact_polling(stream, &mut prelude, stop, true)? == 0 {
        return Ok(None);
    }
    let len = i32::from_be_bytes(prelude[0..4].try_into().unwrap());
    let code = u32::from_be_bytes(prelude[4..8].try_into().unwrap());
    if len < 8 || len as usize > MAX_STARTUP_LEN {
        return Err(FrameError::Malformed(format!(
            "startup packet declares {len} bytes (allowed: 8..={MAX_STARTUP_LEN})"
        )));
    }
    let mut body = vec![0u8; len as usize - 8];
    if !body.is_empty() && read_exact_polling(stream, &mut body, stop, false)? == 0 {
        return Err(FrameError::Disconnected);
    }
    Ok(Some((code, body)))
}

/// Read one typed message: `Ok(Some((tag, body)))`, or `Ok(None)` if the
/// peer closed the stream cleanly on a message boundary.
pub fn read_message(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
    let mut header = [0u8; 5];
    if read_exact_polling(stream, &mut header, stop, true)? == 0 {
        return Ok(None);
    }
    let tag = header[0];
    let len = i32::from_be_bytes(header[1..5].try_into().unwrap());
    if len < 4 || len as usize > MAX_MESSAGE_LEN {
        return Err(FrameError::Malformed(format!(
            "message '{}' declares {len} bytes (allowed: 4..={MAX_MESSAGE_LEN})",
            tag.escape_ascii()
        )));
    }
    let mut body = vec![0u8; len as usize - 4];
    if !body.is_empty() && read_exact_polling(stream, &mut body, stop, false)? == 0 {
        return Err(FrameError::Disconnected);
    }
    Ok(Some((tag, body)))
}

/// Builder for outbound backend messages: frames are accumulated and
/// flushed in one `write_all`, so a response (e.g. RowDescription +
/// DataRows + CommandComplete + ReadyForQuery) reaches the client as one
/// syscall where it fits the buffer.
#[derive(Default)]
pub struct OutBuf {
    buf: Vec<u8>,
    /// Offset of the current frame's length field (set by `begin`).
    frame_start: usize,
}

impl OutBuf {
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a typed frame; every appender below writes into it until
    /// [`OutBuf::end`] patches the length.
    pub fn begin(&mut self, tag: u8) -> &mut Self {
        self.buf.push(tag);
        self.frame_start = self.buf.len();
        self.buf.extend_from_slice(&[0, 0, 0, 0]);
        self
    }

    pub fn end(&mut self) -> &mut Self {
        let len = (self.buf.len() - self.frame_start) as i32;
        self.buf[self.frame_start..self.frame_start + 4].copy_from_slice(&len.to_be_bytes());
        self
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn i16(&mut self, v: i16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub fn i32(&mut self, v: i32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// NUL-terminated string (the protocol's `String` type).
    pub fn cstr(&mut self, s: &str) -> &mut Self {
        self.buf.extend_from_slice(s.as_bytes());
        self.buf.push(0);
        self
    }

    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(b);
        self
    }

    /// A raw single byte *outside* any frame (the one-byte `'N'` answer
    /// to SSLRequest predates the typed-message framing).
    pub fn raw_byte(&mut self, b: u8) -> &mut Self {
        self.buf.push(b);
        self
    }

    pub fn flush_to(&mut self, stream: &mut TcpStream) -> std::io::Result<()> {
        stream.write_all(&self.buf)?;
        stream.flush()?;
        self.buf.clear();
        Ok(())
    }
}

/// Checked big-endian reader over a frontend message body. Every read is
/// bounds-checked; running past the end or failing UTF-8 is a
/// [`FrameError::Malformed`], never a panic.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Malformed(format!(
                "truncated body: {what} needs {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self, what: &str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn i16(&mut self, what: &str) -> Result<i16, FrameError> {
        Ok(i16::from_be_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    pub fn i32(&mut self, what: &str) -> Result<i32, FrameError> {
        Ok(i32::from_be_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// NUL-terminated UTF-8 string.
    pub fn cstr(&mut self, what: &str) -> Result<&'a str, FrameError> {
        let rest = &self.buf[self.pos..];
        let nul = rest.iter().position(|&b| b == 0).ok_or_else(|| {
            FrameError::Malformed(format!("{what}: unterminated string in message body"))
        })?;
        let s = std::str::from_utf8(&rest[..nul])
            .map_err(|_| FrameError::Malformed(format!("{what}: string is not UTF-8")))?;
        self.pos += nul + 1;
        Ok(s)
    }

    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], FrameError> {
        self.take(n, what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbuf_patches_frame_lengths() {
        let mut out = OutBuf::new();
        out.begin(b'Z').u8(b'I').end();
        assert_eq!(out.buf, vec![b'Z', 0, 0, 0, 5, b'I']);
    }

    #[test]
    fn cursor_rejects_overruns_and_bad_utf8() {
        let mut c = Cursor::new(&[0, 1]);
        assert!(matches!(c.i32("x"), Err(FrameError::Malformed(_))));
        let mut c = Cursor::new(b"abc"); // no NUL
        assert!(matches!(c.cstr("s"), Err(FrameError::Malformed(_))));
        let mut c = Cursor::new(&[0xff, 0xfe, 0x00]);
        assert!(matches!(c.cstr("s"), Err(FrameError::Malformed(_))));
        let mut c = Cursor::new(b"ok\0rest");
        assert_eq!(c.cstr("s").unwrap(), "ok");
        assert_eq!(c.remaining(), 4);
    }
}
