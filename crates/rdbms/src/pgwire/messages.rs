//! Typed PostgreSQL backend messages and frontend-message decoders.
//!
//! The constructors append complete frames to an [`OutBuf`]; the decoders
//! parse frontend bodies with the checked [`Cursor`] so a malformed body
//! is a typed error, never a panic. Only the slice of the protocol this
//! front end speaks is covered — enough for `psql`-style simple queries
//! and the Parse/Bind/Describe/Execute/Close/Sync extended subset.

use super::framing::{Cursor, FrameError, OutBuf};

/// The only column type we emit: everything is rendered as `TEXT`
/// (OID 25), which every driver can decode.
pub const TEXT_OID: i32 = 25;

// ---------------------------------------------------------------------------
// SQLSTATE codes used by this front end.
// ---------------------------------------------------------------------------

/// `too_many_connections` — admission control rejected the session.
pub const SQLSTATE_TOO_MANY_CONNECTIONS: &str = "53300";
/// `admin_shutdown` — the server is draining for shutdown.
pub const SQLSTATE_ADMIN_SHUTDOWN: &str = "57P01";
/// `statement_too_complex` — the engine refused an oversized statement.
pub const SQLSTATE_STATEMENT_TOO_COMPLEX: &str = "54001";
/// `syntax_error` — the wire query text did not parse or resolve.
pub const SQLSTATE_SYNTAX_ERROR: &str = "42601";
/// `protocol_violation` — the peer broke the framing or message rules.
pub const SQLSTATE_PROTOCOL_VIOLATION: &str = "08P01";
/// `internal_error` — a panic or other unexpected failure was contained.
pub const SQLSTATE_INTERNAL_ERROR: &str = "XX000";
/// `invalid_parameter_value` — bad startup parameter (e.g. `backend=`).
pub const SQLSTATE_INVALID_PARAMETER: &str = "22023";
/// `feature_not_supported` — a protocol feature outside our subset.
pub const SQLSTATE_NOT_SUPPORTED: &str = "0A000";
/// `cannot_connect_now` — server still starting or otherwise refusing.
pub const SQLSTATE_CANNOT_CONNECT_NOW: &str = "57P03";
/// `no_active_sql_transaction` — `COMMIT`/`ROLLBACK` with no transaction
/// open.
pub const SQLSTATE_NO_ACTIVE_TRANSACTION: &str = "25P01";
/// `in_failed_sql_transaction` — a statement other than `COMMIT` or
/// `ROLLBACK` inside an aborted transaction.
pub const SQLSTATE_IN_FAILED_TRANSACTION: &str = "25P02";
/// `active_sql_transaction` — `BEGIN` while a transaction is already
/// open.
pub const SQLSTATE_ACTIVE_TRANSACTION: &str = "25001";
/// `serialization_failure` — first-committer-wins aborted the commit;
/// the client should retry the whole transaction.
pub const SQLSTATE_SERIALIZATION_FAILURE: &str = "40001";

// ---------------------------------------------------------------------------
// Backend message constructors.
// ---------------------------------------------------------------------------

pub fn authentication_ok(out: &mut OutBuf) {
    out.begin(b'R').i32(0).end();
}

pub fn parameter_status(out: &mut OutBuf, name: &str, value: &str) {
    out.begin(b'S').cstr(name).cstr(value).end();
}

pub fn backend_key_data(out: &mut OutBuf, pid: i32, secret: i32) {
    out.begin(b'K').i32(pid).i32(secret).end();
}

/// `ReadyForQuery` with the session's transaction status: `'I'` idle,
/// `'T'` in an open transaction, `'E'` in a failed transaction awaiting
/// `ROLLBACK`.
pub fn ready_for_query(out: &mut OutBuf, status: u8) {
    debug_assert!(matches!(status, b'I' | b'T' | b'E'));
    out.begin(b'Z').u8(status).end();
}

/// `RowDescription`: every column is a TEXT attribute with no table
/// origin (`table_oid` 0, `attnum` 0) in the text format.
pub fn row_description(out: &mut OutBuf, columns: &[String]) {
    out.begin(b'T').i16(columns.len() as i16);
    for name in columns {
        out.cstr(name)
            .i32(0) // table oid: not from a table
            .i16(0) // attribute number
            .i32(TEXT_OID)
            .i16(-1) // typlen: variable
            .i32(-1) // typmod: none
            .i16(0); // format: text
    }
    out.end();
}

/// `DataRow` in text format; `None` encodes SQL NULL (length -1).
pub fn data_row(out: &mut OutBuf, values: &[Option<&str>]) {
    out.begin(b'D').i16(values.len() as i16);
    for v in values {
        match v {
            Some(s) => {
                out.i32(s.len() as i32).bytes(s.as_bytes());
            }
            None => {
                out.i32(-1);
            }
        }
    }
    out.end();
}

pub fn command_complete(out: &mut OutBuf, tag: &str) {
    out.begin(b'C').cstr(tag).end();
}

pub fn empty_query_response(out: &mut OutBuf) {
    out.begin(b'I').end();
}

/// `ErrorResponse` with severity `ERROR`, the given SQLSTATE, and a
/// human-readable message.
pub fn error_response(out: &mut OutBuf, sqlstate: &str, message: &str) {
    out.begin(b'E')
        .u8(b'S')
        .cstr("ERROR")
        .u8(b'V')
        .cstr("ERROR")
        .u8(b'C')
        .cstr(sqlstate)
        .u8(b'M')
        .cstr(message)
        .u8(0)
        .end();
}

/// `NoticeResponse` — same field layout as an error, severity `NOTICE`.
pub fn notice_response(out: &mut OutBuf, message: &str) {
    out.begin(b'N')
        .u8(b'S')
        .cstr("NOTICE")
        .u8(b'V')
        .cstr("NOTICE")
        .u8(b'C')
        .cstr("00000")
        .u8(b'M')
        .cstr(message)
        .u8(0)
        .end();
}

pub fn parse_complete(out: &mut OutBuf) {
    out.begin(b'1').end();
}

pub fn bind_complete(out: &mut OutBuf) {
    out.begin(b'2').end();
}

pub fn close_complete(out: &mut OutBuf) {
    out.begin(b'3').end();
}

pub fn no_data(out: &mut OutBuf) {
    out.begin(b'n').end();
}

/// `ParameterDescription` — our statements take no parameters, so the
/// count is always zero.
pub fn parameter_description(out: &mut OutBuf) {
    out.begin(b't').i16(0).end();
}

// ---------------------------------------------------------------------------
// Frontend message decoders (extended protocol subset).
// ---------------------------------------------------------------------------

/// Decoded `Parse` message. Declared parameter-type OIDs are read and
/// validated but ignored (we accept only zero parameters at Bind time).
pub struct ParseMsg {
    pub statement: String,
    pub query: String,
}

pub fn decode_parse(body: &[u8]) -> Result<ParseMsg, FrameError> {
    let mut c = Cursor::new(body);
    let statement = c.cstr("Parse.statement")?.to_string();
    let query = c.cstr("Parse.query")?.to_string();
    let nparams = c.i16("Parse.nparams")?;
    if nparams < 0 {
        return Err(FrameError::Malformed(format!(
            "Parse declares {nparams} parameter types"
        )));
    }
    for i in 0..nparams {
        c.i32(&format!("Parse.param_type[{i}]"))?;
    }
    Ok(ParseMsg { statement, query })
}

/// Decoded `Bind` message. Parameter values are decoded (and counted)
/// so the cursor stays aligned, but the session rejects any statement
/// bound with parameters — the wire query language has no placeholders.
pub struct BindMsg {
    pub portal: String,
    pub statement: String,
    pub nparams: i16,
}

pub fn decode_bind(body: &[u8]) -> Result<BindMsg, FrameError> {
    let mut c = Cursor::new(body);
    let portal = c.cstr("Bind.portal")?.to_string();
    let statement = c.cstr("Bind.statement")?.to_string();
    let nformats = c.i16("Bind.nformats")?;
    if nformats < 0 {
        return Err(FrameError::Malformed(format!(
            "Bind declares {nformats} parameter formats"
        )));
    }
    for i in 0..nformats {
        c.i16(&format!("Bind.format[{i}]"))?;
    }
    let nparams = c.i16("Bind.nparams")?;
    if nparams < 0 {
        return Err(FrameError::Malformed(format!(
            "Bind declares {nparams} parameters"
        )));
    }
    for i in 0..nparams {
        let len = c.i32(&format!("Bind.param_len[{i}]"))?;
        if len > 0 {
            c.bytes(len as usize, &format!("Bind.param[{i}]"))?;
        } else if len < -1 {
            return Err(FrameError::Malformed(format!(
                "Bind parameter {i} declares length {len}"
            )));
        }
    }
    let nresult = c.i16("Bind.nresult_formats")?;
    if nresult < 0 {
        return Err(FrameError::Malformed(format!(
            "Bind declares {nresult} result formats"
        )));
    }
    for i in 0..nresult {
        let fmt = c.i16(&format!("Bind.result_format[{i}]"))?;
        if fmt != 0 {
            return Err(FrameError::Malformed(format!(
                "result format {fmt} requested; only text (0) is supported"
            )));
        }
    }
    Ok(BindMsg {
        portal,
        statement,
        nparams,
    })
}

/// Decoded `Describe` / `Close` message: a kind byte (`'S'` statement or
/// `'P'` portal) plus a name.
pub struct TargetMsg {
    pub kind: u8,
    pub name: String,
}

pub fn decode_target(body: &[u8], what: &str) -> Result<TargetMsg, FrameError> {
    let mut c = Cursor::new(body);
    let kind = c.u8(&format!("{what}.kind"))?;
    if kind != b'S' && kind != b'P' {
        return Err(FrameError::Malformed(format!(
            "{what} kind must be 'S' or 'P', got '{}'",
            kind.escape_ascii()
        )));
    }
    let name = c.cstr(&format!("{what}.name"))?.to_string();
    Ok(TargetMsg { kind, name })
}

/// Decoded `Execute` message (row limit is read and ignored — all our
/// result sets are delivered whole).
pub struct ExecuteMsg {
    pub portal: String,
}

pub fn decode_execute(body: &[u8]) -> Result<ExecuteMsg, FrameError> {
    let mut c = Cursor::new(body);
    let portal = c.cstr("Execute.portal")?.to_string();
    c.i32("Execute.max_rows")?;
    Ok(ExecuteMsg { portal })
}

/// Decoded `Query` (simple protocol) body: a single NUL-terminated string.
pub fn decode_query(body: &[u8]) -> Result<String, FrameError> {
    let mut c = Cursor::new(body);
    Ok(c.cstr("Query.text")?.to_string())
}

/// Split the startup body (`key\0value\0...\0`) into parameter pairs.
pub fn decode_startup_params(body: &[u8]) -> Result<Vec<(String, String)>, FrameError> {
    let mut c = Cursor::new(body);
    let mut params = Vec::new();
    loop {
        if c.remaining() <= 1 {
            break;
        }
        let key = c.cstr("startup.key")?.to_string();
        if key.is_empty() {
            break;
        }
        let value = c.cstr("startup.value")?.to_string();
        params.push((key, value));
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_bind_round_trip() {
        // Parse: "stmt\0" "SELECT 1\0" nparams=1 oid=25
        let mut body = Vec::new();
        body.extend_from_slice(b"stmt\0SELECT 1\0");
        body.extend_from_slice(&1i16.to_be_bytes());
        body.extend_from_slice(&25i32.to_be_bytes());
        let p = decode_parse(&body).unwrap();
        assert_eq!(p.statement, "stmt");
        assert_eq!(p.query, "SELECT 1");

        // Bind: portal "" statement "stmt", no formats, one NULL param,
        // no result formats.
        let mut body = Vec::new();
        body.extend_from_slice(b"\0stmt\0");
        body.extend_from_slice(&0i16.to_be_bytes());
        body.extend_from_slice(&1i16.to_be_bytes());
        body.extend_from_slice(&(-1i32).to_be_bytes());
        body.extend_from_slice(&0i16.to_be_bytes());
        let b = decode_bind(&body).unwrap();
        assert_eq!(b.statement, "stmt");
        assert_eq!(b.nparams, 1);
    }

    #[test]
    fn truncated_bodies_are_typed_errors() {
        assert!(decode_parse(b"name\0no-nparams\0").is_err());
        assert!(decode_bind(b"\0stmt\0").is_err());
        assert!(decode_execute(b"portal-without-nul").is_err());
        assert!(decode_target(b"X\0", "Describe").is_err());
    }

    #[test]
    fn startup_params_split_cleanly() {
        let body = b"user\0alice\0backend\0sql\0\0";
        let params = decode_startup_params(body).unwrap();
        assert_eq!(
            params,
            vec![
                ("user".into(), "alice".into()),
                ("backend".into(), "sql".into())
            ]
        );
    }
}
