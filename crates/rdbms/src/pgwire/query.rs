//! The wire query language: the small statement surface a socket client
//! can speak, parsed against a snapshot's [`Vocabulary`].
//!
//! Grammar (case-insensitive keywords, whitespace-insensitive):
//!
//! ```text
//! statement := select | ask | explain | show | set | panic | txn | mutate
//! select    := SELECT head WHERE body
//! ask       := ASK WHERE body
//! explain   := EXPLAIN ANALYZE ( select | ask )
//! head      := ?var ( , ?var )*
//! body      := atom ( , atom )*
//! atom      := Name ( term )            -- concept atom
//!            | Name ( term , term )     -- role atom
//! term      := ?var | Individual        -- bare identifier = constant
//! show      := SHOW ( generation | cache | backend | server_version
//!                   | transaction | metrics | slow_queries )
//! set       := SET ...                  -- accepted and ignored
//! panic     := PANIC                    -- chaos statement, gated
//! txn       := BEGIN | COMMIT | ROLLBACK   -- optional TRANSACTION/WORK
//! mutate    := INSERT fact ( , fact )*  -- buffered in the transaction
//!            | DELETE fact ( , fact )*
//! fact      := Name ( Individual )          -- ground concept fact
//!            | Name ( Individual , Individual )  -- ground role fact
//! ```
//!
//! Predicate names resolve by arity: one argument looks up a concept,
//! two arguments a role. Constants in *queries* resolve in the
//! snapshot's interned individuals — an unknown name is a parse-time
//! error (SQLSTATE 42601 at the session layer), not an empty result, so
//! typos are loud. Constants in `INSERT` facts stay *names*: an unknown
//! individual there is new data, interned transaction-locally by the
//! session and globally at commit.

use obda_dllite::{ConceptId, RoleId, Vocabulary};
use obda_query::{Atom, Term, VarId, CQ};
use std::collections::HashMap;

/// A parsed wire statement, ready for the session to execute.
#[derive(Debug)]
pub enum WireStatement {
    /// `SELECT ?x, ?y WHERE ...` or `ASK WHERE ...` — the head names are
    /// the wire column labels (`?x` → `x`; ASK gets a single `answer`).
    Select { head_names: Vec<String>, cq: CQ },
    /// `EXPLAIN ANALYZE SELECT ...` — run the query and return its
    /// priced plan annotated with the measured execution, one text line
    /// per `QUERY PLAN` row (the PostgreSQL convention).
    ExplainAnalyze { cq: CQ },
    /// `SHOW <topic>` — answered from server state, no query execution.
    Show(ShowTopic),
    /// `SET ...` — accepted as a no-op so JDBC/psql session setup works.
    Set,
    /// `PANIC` — deliberately panics inside the executing session; only
    /// honored when the listener enables chaos testing.
    Panic,
    /// `BEGIN [TRANSACTION|WORK]` — open a snapshot-isolated transaction.
    Begin,
    /// `COMMIT [TRANSACTION|WORK]` — commit the open transaction.
    Commit,
    /// `ROLLBACK [TRANSACTION|WORK]` — discard the open transaction.
    Rollback,
    /// `INSERT fact, ...` / `DELETE fact, ...` — ground fact writes,
    /// buffered in the session's transaction (or an implicit one-shot
    /// transaction in autocommit).
    Mutate { insert: bool, facts: Vec<FactAtom> },
}

/// One ground fact in an `INSERT`/`DELETE` statement. Predicates resolve
/// at parse time (writes never invent concepts or roles over the wire);
/// individuals stay names so inserts can introduce new ones.
#[derive(Clone, Debug)]
pub enum FactAtom {
    Concept(ConceptId, String),
    Role(RoleId, String, String),
}

/// Topics a `SHOW` statement can ask about.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShowTopic {
    Generation,
    Cache,
    Backend,
    ServerVersion,
    /// The session's transaction state: status, buffered write count,
    /// new-name count, pinned generation.
    Transaction,
    /// The server metrics registry, one `name | value` row per counter.
    Metrics,
    /// The slow-query ring: the N slowest statement traces, slowest
    /// first, with per-stage spans.
    SlowQueries,
}

/// A statement that failed to parse or resolve; the message is shipped
/// to the client verbatim in an `ErrorResponse`.
#[derive(Debug)]
pub struct ParseWireError(pub String);

impl std::fmt::Display for ParseWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseWireError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseWireError> {
    Err(ParseWireError(msg.into()))
}

/// Split a simple-query buffer into statements on `;`, dropping empties.
pub fn split_statements(text: &str) -> Vec<&str> {
    text.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '\''
}

/// Tokenize into identifiers, `?var` references, and single-char
/// punctuation (`(`, `)`, `,`).
fn tokenize(text: &str) -> Result<Vec<Token<'_>>, ParseWireError> {
    let mut tokens = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '?' {
            chars.next();
            let start = i + c.len_utf8();
            let mut end = start;
            while let Some(&(j, d)) = chars.peek() {
                if is_ident_char(d) {
                    end = j + d.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            if end == start {
                return err("'?' must be followed by a variable name");
            }
            tokens.push(Token::Var(&text[start..end]));
        } else if c == '(' || c == ')' || c == ',' {
            chars.next();
            tokens.push(Token::Punct(c));
        } else if is_ident_char(c) {
            let start = i;
            let mut end = i + c.len_utf8();
            chars.next();
            while let Some(&(j, d)) = chars.peek() {
                if is_ident_char(d) {
                    end = j + d.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            tokens.push(Token::Ident(&text[start..end]));
        } else {
            return err(format!("unexpected character '{c}' in statement"));
        }
    }
    Ok(tokens)
}

enum Token<'a> {
    Ident(&'a str),
    Var(&'a str),
    Punct(char),
}

/// Parse one statement against `voc`. The vocabulary is only read —
/// unknown predicate or individual names are errors, never interned.
pub fn parse_statement(text: &str, voc: &Vocabulary) -> Result<WireStatement, ParseWireError> {
    let trimmed = text.trim();
    let first = trimmed
        .split_whitespace()
        .next()
        .ok_or_else(|| ParseWireError("empty statement".into()))?;
    match first.to_ascii_uppercase().as_str() {
        "SELECT" => parse_query(&trimmed[first.len()..], false, voc),
        "ASK" => parse_query(&trimmed[first.len()..], true, voc),
        "EXPLAIN" => parse_explain(&trimmed[first.len()..], voc),
        "SHOW" => parse_show(&trimmed[first.len()..]),
        "SET" => Ok(WireStatement::Set),
        "PANIC" => Ok(WireStatement::Panic),
        "BEGIN" => parse_txn_control(&trimmed[first.len()..], WireStatement::Begin, "BEGIN"),
        "START" => {
            // `START TRANSACTION` is the SQL-standard spelling of BEGIN.
            let rest = trimmed[first.len()..].trim();
            if rest.eq_ignore_ascii_case("TRANSACTION") {
                Ok(WireStatement::Begin)
            } else {
                err("expected TRANSACTION after START")
            }
        }
        "COMMIT" | "END" => {
            parse_txn_control(&trimmed[first.len()..], WireStatement::Commit, "COMMIT")
        }
        "ROLLBACK" | "ABORT" => {
            parse_txn_control(&trimmed[first.len()..], WireStatement::Rollback, "ROLLBACK")
        }
        "INSERT" => parse_mutate(&trimmed[first.len()..], true, voc),
        "DELETE" => parse_mutate(&trimmed[first.len()..], false, voc),
        other => err(format!(
            "unknown statement '{other}' (expected SELECT, ASK, EXPLAIN, INSERT, \
             DELETE, BEGIN, COMMIT, ROLLBACK, SHOW, SET, or PANIC)"
        )),
    }
}

/// `EXPLAIN ANALYZE <select|ask>`: plain `EXPLAIN` (estimate without
/// running) is deliberately not offered — the cost model's predictions
/// are only interesting next to the measured run.
fn parse_explain(rest: &str, voc: &Vocabulary) -> Result<WireStatement, ParseWireError> {
    let rest = rest.trim();
    let first = rest.split_whitespace().next().unwrap_or("");
    if !first.eq_ignore_ascii_case("ANALYZE") {
        return err("expected ANALYZE after EXPLAIN (only EXPLAIN ANALYZE is supported)");
    }
    let rest = rest[first.len()..].trim();
    let verb = rest.split_whitespace().next().unwrap_or("");
    let parsed = match verb.to_ascii_uppercase().as_str() {
        "SELECT" => parse_query(&rest[verb.len()..], false, voc)?,
        "ASK" => parse_query(&rest[verb.len()..], true, voc)?,
        _ => return err("expected SELECT or ASK after EXPLAIN ANALYZE"),
    };
    match parsed {
        WireStatement::Select { cq, .. } => Ok(WireStatement::ExplainAnalyze { cq }),
        _ => err("expected SELECT or ASK after EXPLAIN ANALYZE"),
    }
}

/// `BEGIN`/`COMMIT`/`ROLLBACK` with an optional `TRANSACTION`/`WORK`
/// noise word, nothing else.
fn parse_txn_control(
    rest: &str,
    stmt: WireStatement,
    kw: &str,
) -> Result<WireStatement, ParseWireError> {
    let rest = rest.trim();
    if rest.is_empty()
        || rest.eq_ignore_ascii_case("TRANSACTION")
        || rest.eq_ignore_ascii_case("WORK")
    {
        Ok(stmt)
    } else {
        err(format!("unexpected tokens after {kw}: '{rest}'"))
    }
}

/// `INSERT`/`DELETE` body: comma-separated ground facts. Predicates must
/// exist (by arity); individual arguments are kept as names — `INSERT`
/// may introduce new individuals, which the session interns in its
/// transaction's working set.
fn parse_mutate(
    rest: &str,
    insert: bool,
    voc: &Vocabulary,
) -> Result<WireStatement, ParseWireError> {
    let verb = if insert { "INSERT" } else { "DELETE" };
    let tokens = tokenize(rest)?;
    let mut facts = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let name = match &tokens[pos] {
            Token::Ident(n) => *n,
            _ => return err(format!("expected a predicate name after {verb}")),
        };
        pos += 1;
        if !matches!(tokens.get(pos), Some(Token::Punct('('))) {
            return err(format!("expected '(' after predicate '{name}'"));
        }
        pos += 1;
        let mut args: Vec<String> = Vec::new();
        loop {
            match tokens.get(pos) {
                Some(Token::Ident(ind)) => args.push((*ind).to_string()),
                Some(Token::Var(v)) => {
                    return err(format!("{verb} facts must be ground: '?{v}' is a variable"))
                }
                _ => return err(format!("expected an individual inside '{name}(...)'")),
            }
            pos += 1;
            match tokens.get(pos) {
                Some(Token::Punct(',')) => pos += 1,
                Some(Token::Punct(')')) => {
                    pos += 1;
                    break;
                }
                _ => return err(format!("expected ',' or ')' inside '{name}(...)'")),
            }
        }
        let fact = match args.len() {
            1 => {
                let cid = voc
                    .find_concept(name)
                    .ok_or_else(|| ParseWireError(format!("unknown concept '{name}'")))?;
                FactAtom::Concept(cid, args.pop().unwrap())
            }
            2 => {
                let rid = voc
                    .find_role(name)
                    .ok_or_else(|| ParseWireError(format!("unknown role '{name}'")))?;
                let b = args.pop().unwrap();
                let a = args.pop().unwrap();
                FactAtom::Role(rid, a, b)
            }
            n => {
                return err(format!(
                    "predicate '{name}' has {n} arguments (1 or 2 allowed)"
                ))
            }
        };
        facts.push(fact);
        if matches!(tokens.get(pos), Some(Token::Punct(','))) {
            pos += 1;
            if pos == tokens.len() {
                return err(format!("trailing ',' in {verb} statement"));
            }
        }
    }
    if facts.is_empty() {
        return err(format!("{verb} needs at least one fact"));
    }
    Ok(WireStatement::Mutate { insert, facts })
}

fn parse_show(rest: &str) -> Result<WireStatement, ParseWireError> {
    let topic = match rest.trim().to_ascii_lowercase().as_str() {
        "generation" => ShowTopic::Generation,
        "cache" => ShowTopic::Cache,
        "backend" => ShowTopic::Backend,
        "server_version" => ShowTopic::ServerVersion,
        "transaction" => ShowTopic::Transaction,
        "metrics" => ShowTopic::Metrics,
        "slow_queries" => ShowTopic::SlowQueries,
        other => {
            return err(format!(
                "unknown SHOW topic '{other}' (expected generation, cache, backend, \
                 server_version, transaction, metrics, or slow_queries)"
            ))
        }
    };
    Ok(WireStatement::Show(topic))
}

fn parse_query(
    rest: &str,
    is_ask: bool,
    voc: &Vocabulary,
) -> Result<WireStatement, ParseWireError> {
    // Split on the WHERE keyword (case-insensitive, word boundary).
    let upper = rest.to_ascii_uppercase();
    let where_pos = find_keyword(&upper, "WHERE")
        .ok_or_else(|| ParseWireError("expected WHERE before the query body".into()))?;
    let (head_text, body_text) = (&rest[..where_pos], &rest[where_pos + "WHERE".len()..]);

    // Head: `?x, ?y` for SELECT; must be empty for ASK.
    let mut head_names: Vec<String> = Vec::new();
    let mut vars: HashMap<String, VarId> = HashMap::new();
    let head_tokens = tokenize(head_text)?;
    if is_ask {
        if !head_tokens.is_empty() {
            return err("ASK takes no head variables");
        }
    } else {
        let mut expect_var = true;
        for t in &head_tokens {
            match t {
                Token::Var(name) if expect_var => {
                    if vars.contains_key(*name) {
                        return err(format!("head variable ?{name} repeated"));
                    }
                    let id = VarId(vars.len() as u32);
                    vars.insert((*name).to_string(), id);
                    head_names.push((*name).to_string());
                    expect_var = false;
                }
                Token::Punct(',') if !expect_var => expect_var = true,
                _ => return err("head must be a comma-separated list of ?variables"),
            }
        }
        if head_names.is_empty() || expect_var {
            return err("SELECT needs at least one head ?variable");
        }
    }
    let head: Vec<VarId> = head_names.iter().map(|n| vars[n]).collect();

    // Body: `Name(term)` / `Name(term, term)`, comma-separated.
    let tokens = tokenize(body_text)?;
    let mut atoms = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let name = match &tokens[pos] {
            Token::Ident(n) => *n,
            _ => return err("expected a predicate name in the query body"),
        };
        pos += 1;
        if !matches!(tokens.get(pos), Some(Token::Punct('('))) {
            return err(format!("expected '(' after predicate '{name}'"));
        }
        pos += 1;
        let mut terms = Vec::new();
        loop {
            let term = match tokens.get(pos) {
                Some(Token::Var(v)) => {
                    let next = VarId(vars.len() as u32);
                    let id = *vars.entry((*v).to_string()).or_insert(next);
                    Term::Var(id)
                }
                Some(Token::Ident(ind)) => {
                    let id = voc
                        .find_individual(ind)
                        .ok_or_else(|| ParseWireError(format!("unknown individual '{ind}'")))?;
                    Term::Const(id)
                }
                _ => return err(format!("expected a term inside '{name}(...)'")),
            };
            terms.push(term);
            pos += 1;
            match tokens.get(pos) {
                Some(Token::Punct(',')) => pos += 1,
                Some(Token::Punct(')')) => {
                    pos += 1;
                    break;
                }
                _ => return err(format!("expected ',' or ')' inside '{name}(...)'")),
            }
        }
        let atom = match terms.len() {
            1 => {
                let cid = voc
                    .find_concept(name)
                    .ok_or_else(|| ParseWireError(format!("unknown concept '{name}'")))?;
                Atom::Concept(cid, terms[0].clone())
            }
            2 => {
                let rid = voc
                    .find_role(name)
                    .ok_or_else(|| ParseWireError(format!("unknown role '{name}'")))?;
                Atom::Role(rid, terms[0].clone(), terms[1].clone())
            }
            n => {
                return err(format!(
                    "predicate '{name}' has {n} arguments (1 or 2 allowed)"
                ))
            }
        };
        atoms.push(atom);
        if matches!(tokens.get(pos), Some(Token::Punct(','))) {
            pos += 1;
            if pos == tokens.len() {
                return err("trailing ',' in query body");
            }
        }
    }
    if atoms.is_empty() {
        return err("query body has no atoms");
    }

    // Every head variable must occur in the body (safety).
    for (name, id) in vars.iter() {
        if head.contains(id) {
            let occurs = atoms.iter().any(|a| match a {
                Atom::Concept(_, t) => t == &Term::Var(*id),
                Atom::Role(_, s, o) => s == &Term::Var(*id) || o == &Term::Var(*id),
            });
            if !occurs {
                return err(format!("head variable ?{name} does not occur in the body"));
            }
        }
    }

    let cq = CQ::with_var_head(head, atoms);
    let head_names = if is_ask {
        vec!["answer".to_string()]
    } else {
        head_names
    };
    Ok(WireStatement::Select { head_names, cq })
}

/// Find `kw` as a standalone word in an already-uppercased string.
fn find_keyword(upper: &str, kw: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = upper[from..].find(kw) {
        let at = from + rel;
        let before_ok = at == 0
            || !upper[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + kw.len();
        let after_ok = after == upper.len()
            || !upper[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + kw.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voc() -> Vocabulary {
        let mut v = Vocabulary::default();
        v.concept("Student");
        v.role("advisor");
        v.individual("alice");
        v
    }

    #[test]
    fn select_parses_concepts_roles_and_constants() {
        let v = voc();
        let stmt = parse_statement("SELECT ?x WHERE Student(?x), advisor(?x, alice)", &v).unwrap();
        match stmt {
            WireStatement::Select { head_names, cq } => {
                assert_eq!(head_names, vec!["x"]);
                assert_eq!(cq.head().len(), 1);
                assert_eq!(cq.atoms().len(), 2);
            }
            _ => panic!("expected Select"),
        }
    }

    #[test]
    fn ask_is_boolean_with_answer_column() {
        let v = voc();
        let stmt = parse_statement("ask where Student(alice)", &v).unwrap();
        match stmt {
            WireStatement::Select { head_names, cq } => {
                assert_eq!(head_names, vec!["answer"]);
                assert!(cq.is_boolean());
            }
            _ => panic!("expected Select"),
        }
    }

    #[test]
    fn errors_are_specific() {
        let v = voc();
        for (text, needle) in [
            ("SELECT ?x WHERE Nope(?x)", "unknown concept"),
            ("SELECT ?x WHERE advisor(?x, bob)", "unknown individual"),
            ("SELECT ?x WHERE advisor(?x)", "unknown concept"),
            ("SELECT ?x WHERE Student(?y)", "does not occur"),
            ("SELECT ?x WHERE", "no atoms"),
            ("SELECT WHERE Student(?x)", "at least one head"),
            ("FROB ?x", "unknown statement"),
            ("SELECT ?x WHERE Student(?x,", "expected"),
        ] {
            let e = parse_statement(text, &v).unwrap_err();
            assert!(
                e.0.contains(needle),
                "{text:?} gave {:?}, wanted substring {needle:?}",
                e.0
            );
        }
    }

    #[test]
    fn show_set_panic_statements() {
        let v = voc();
        assert!(matches!(
            parse_statement("SHOW generation", &v).unwrap(),
            WireStatement::Show(ShowTopic::Generation)
        ));
        assert!(matches!(
            parse_statement("set search_path = public", &v).unwrap(),
            WireStatement::Set
        ));
        assert!(matches!(
            parse_statement("PANIC", &v).unwrap(),
            WireStatement::Panic
        ));
        assert!(parse_statement("SHOW nonsense", &v).is_err());
    }

    #[test]
    fn txn_control_statements_parse() {
        let v = voc();
        for (text, want) in [
            ("BEGIN", "Begin"),
            ("begin transaction", "Begin"),
            ("BEGIN WORK", "Begin"),
            ("START TRANSACTION", "Begin"),
            ("COMMIT", "Commit"),
            ("end work", "Commit"),
            ("ROLLBACK", "Rollback"),
            ("abort transaction", "Rollback"),
        ] {
            let got = match parse_statement(text, &v).unwrap() {
                WireStatement::Begin => "Begin",
                WireStatement::Commit => "Commit",
                WireStatement::Rollback => "Rollback",
                other => panic!("{text:?} parsed to {other:?}"),
            };
            assert_eq!(got, want, "{text:?}");
        }
        assert!(parse_statement("BEGIN nonsense", &v).is_err());
        assert!(parse_statement("START", &v).is_err());
        assert!(parse_statement("COMMIT twice please", &v).is_err());
    }

    #[test]
    fn mutate_statements_keep_individuals_as_names() {
        let v = voc();
        // "bob" is unknown to the vocabulary — legal in INSERT.
        let stmt = parse_statement("INSERT Student(bob), advisor(bob, alice)", &v).unwrap();
        match stmt {
            WireStatement::Mutate { insert, facts } => {
                assert!(insert);
                assert_eq!(facts.len(), 2);
                match &facts[0] {
                    FactAtom::Concept(_, name) => assert_eq!(name, "bob"),
                    other => panic!("expected concept fact, got {other:?}"),
                }
                match &facts[1] {
                    FactAtom::Role(_, a, b) => {
                        assert_eq!(a, "bob");
                        assert_eq!(b, "alice");
                    }
                    other => panic!("expected role fact, got {other:?}"),
                }
            }
            other => panic!("expected Mutate, got {other:?}"),
        }
        assert!(matches!(
            parse_statement("DELETE Student(alice)", &v).unwrap(),
            WireStatement::Mutate { insert: false, .. }
        ));
        // Predicates must exist; facts must be ground.
        for (text, needle) in [
            ("INSERT Nope(bob)", "unknown concept"),
            ("INSERT knows(a, b)", "unknown role"),
            ("INSERT Student(?x)", "must be ground"),
            ("INSERT", "at least one fact"),
            ("DELETE Student(a, b, c)", "3 arguments"),
        ] {
            let e = parse_statement(text, &v).unwrap_err();
            assert!(e.0.contains(needle), "{text:?} gave {:?}", e.0);
        }
    }

    #[test]
    fn show_transaction_parses() {
        let v = voc();
        assert!(matches!(
            parse_statement("SHOW transaction", &v).unwrap(),
            WireStatement::Show(ShowTopic::Transaction)
        ));
    }

    #[test]
    fn statements_split_on_semicolons() {
        assert_eq!(
            split_statements(" SHOW backend ; ; SET a = b ;"),
            vec!["SHOW backend", "SET a = b"]
        );
        assert!(split_statements("  ;; ").is_empty());
    }
}
