//! The concurrent query-serving layer: shared snapshots, a canonical
//! plan cache, and intra-query parallelism.
//!
//! The paper's pipeline — PerfectRef, GDL cover search, cost-chosen
//! physical planning — is priced per call, and §6.4 observes that *most
//! of GDL's running time is spent estimating costs*: the expensive part
//! of answering is not executing the chosen plan but choosing it. A
//! serving deployment sees the same query shapes repeatedly against a
//! slowly-changing KB, which is exactly the regime where that per-call
//! cost can be amortized away. [`Server`] does three things about it:
//!
//! * **Shared snapshots** — an [`EngineSnapshot`] bundles the immutable
//!   [`Engine`] (storage + `CatalogStats` + profile), the TBox, and the
//!   predicate dependencies behind one `Arc`, tagged with a
//!   **generation** counter. Queries clone the `Arc` (no lock held while
//!   running), so any number of OS threads evaluate concurrently against
//!   one loaded KB, and a reload swaps the `Arc` without disturbing
//!   in-flight queries (snapshot isolation).
//! * **Canonical plan cache** — reformulation + planning results are
//!   cached under `(generation, canonical_key(q))`. The canonical key is
//!   invariant under head-variable renaming and body-atom reordering
//!   (`obda_query::canonical_key`), so syntactic variants of one query
//!   share an entry. A hit skips PerfectRef, cover search, cost
//!   estimation, and `plan_conjunction` entirely and replays the stored
//!   [`PreparedPlans`] — precisely the §6.4-dominant work.
//! * **Intra-query parallelism** — with `threads > 1` the arms of a
//!   UCQ/USCQ (or the components of a JUCQ/JUSCQ) fan out across scoped
//!   worker threads with per-thread meters, merged deterministically in
//!   arm order so the arm-sums-equal-totals metering invariant survives
//!   parallel execution (see [`crate::executor::execute_parallel`]).
//!
//! Staleness is impossible by construction: the cache key embeds the
//! snapshot generation, every write path ([`Server::apply_batch`],
//! [`Server::reload_abox`], [`Server::reload_kb`]) bumps it before
//! publishing the new snapshot, and each query reads its snapshot
//! *first* and then looks up the cache with that snapshot's generation —
//! a cached plan can only ever be paired with the data it was planned
//! against.
//!
//! ## Durability and incremental updates
//!
//! A server optionally sits on a [`DurableStore`] directory
//! ([`Server::create_durable`] / [`Server::open`]). The data-change
//! paths then differ in mechanism but not in visibility semantics:
//!
//! * [`Server::apply_batch`] — the incremental path: the batch is
//!   appended to the WAL *first*, then applied **in place** to a
//!   copy-on-write clone of the current engine (tables, indexes and
//!   statistics maintained under the delta — no rebuild), and published
//!   as generation `g+1`. Cost: O(|tables| memcpy + |δ|), vs. the full
//!   reload's O(|tables| rebuild + statistics pass).
//! * [`Server::reload_abox`] / [`Server::reload_kb`] — the bulk path:
//!   storage and statistics rebuilt from scratch; on a durable server
//!   this is also a compaction point (fresh snapshot, WAL reset).

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, RwLock, TryLockError};
use std::time::Instant;

use obda_core::{choose_reformulation_constrained, PruneStats, Strategy};
use obda_dllite::{
    ABox, AboxDelta, ConceptId, ConstraintSet, Dependencies, IndividualId, RoleId, TBox,
    TBoxClosure, Vocabulary, WorkingSet,
};
use obda_query::{canonical_key, CanonKey, FolQuery, CQ};

use crate::engine::{Engine, EngineError, EvalOptions, ExplainPlan, QueryOutcome};
use crate::estimators::ExplainEstimator;
use crate::executor::PreparedPlans;
use crate::fxhash::FxHashMap;
use crate::layout::LayoutKind;
use crate::observe::{MetricsRegistry, StageSpans};
use crate::planner::{ExecMode, JoinStrategy};
use crate::profile::EngineProfile;
use crate::sqlexec::Backend;
use crate::store::{write_snapshot_to, DurableStore, StoreError};

/// Errors surfaced by the serving layer's session-facing API.
///
/// The taxonomy exists so one misbehaving session can never take the
/// server down: a panic in a worker thread used to poison the shared
/// locks and turn every later call into a cascading panic. Reader paths
/// (snapshot access, the plan cache) now *recover* a poisoned guard —
/// their protected state is a single `Arc` swap or a generation-keyed
/// map, both consistent at every intermediate step — while writer paths
/// refuse to touch possibly half-mutated master state and surface
/// [`ServerError::Poisoned`] instead.
#[derive(Debug)]
pub enum ServerError {
    /// A prior mutator panicked while holding the writer lock; the
    /// master vocabulary/ABox may be half-mutated, so further writes are
    /// refused. Reads are unaffected (they see only published
    /// snapshots). Rebuild the server (e.g. [`Server::open`]) to resume
    /// writing.
    Poisoned,
    /// The durable store rejected or failed the operation.
    Store(StoreError),
    /// Query compilation or execution failed.
    Engine(EngineError),
    /// First-committer-wins: another transaction committed (or staged) a
    /// write to an overlapping fact key after this transaction pinned
    /// its snapshot. Nothing was applied; re-run the transaction against
    /// a fresh snapshot.
    Conflict {
        /// The generation the conflicting write committed in.
        committed_in: u64,
    },
    /// The group-commit record containing this transaction failed to
    /// reach the WAL; nothing from the group was applied, so retrying
    /// the transaction is safe.
    CommitFailed { detail: String },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Poisoned => write!(
                f,
                "server writer state is poisoned by a panicked mutation; \
                 reads still serve the last published snapshot"
            ),
            ServerError::Store(e) => write!(f, "{e}"),
            ServerError::Engine(e) => write!(f, "{e}"),
            ServerError::Conflict { committed_in } => write!(
                f,
                "could not serialize access due to a concurrent fact write \
                 (committed in generation {committed_in}); retry the transaction"
            ),
            ServerError::CommitFailed { detail } => {
                write!(f, "group commit failed, transaction not applied: {detail}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<StoreError> for ServerError {
    fn from(e: StoreError) -> Self {
        ServerError::Store(e)
    }
}

impl From<EngineError> for ServerError {
    fn from(e: EngineError) -> Self {
        ServerError::Engine(e)
    }
}

/// Serving-layer configuration (fixed at construction).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    pub layout: LayoutKind,
    pub profile: EngineProfile,
    pub join_strategy: JoinStrategy,
    /// Native-pipeline execution mode: vectorized columnar batches (the
    /// default) or the classic row-at-a-time pipeline. Cached plans are
    /// prepared under this mode and replay it.
    pub exec_mode: ExecMode,
    /// Which execution engine answers queries: the native planned
    /// executor, or the SQL-delegation path (generate → parse → execute
    /// via `crate::sqlexec`). With [`Backend::Sql`] the cached
    /// compilation stores the SQL text, so warm queries skip
    /// reformulation *and* SQL generation and go straight to parse +
    /// execute.
    pub backend: Backend,
    /// Which reformulation the miss path computes (the paper's strategy
    /// surface; [`Strategy::Gdl`] is the headline cost-driven search).
    pub reform_strategy: Strategy,
    /// Worker threads fanning union arms per query (1 = sequential).
    pub threads: usize,
    /// Plan-cache toggle — `false` re-runs the full pipeline on every
    /// call (the differential harness runs both ways and compares).
    pub cache_plans: bool,
    /// On a durable server: fold the WAL into a fresh snapshot after
    /// this many logged transactions (`0` = only on explicit
    /// [`Server::checkpoint`] / reload). Ignored without a store.
    pub compact_every: u64,
    /// On a durable server: `fsync` every group-commit record before
    /// acknowledging its transactions — durability against machine
    /// crashes, not just process death. Off by default, matching the
    /// store's flush-on-append contract (the per-group fsync is the
    /// dominant commit cost on real disks).
    pub sync_commits: bool,
    /// Constraint-driven reformulation pruning: mine ABox completeness
    /// constraints per snapshot generation and drop provably-empty and
    /// data-subsumed union arms before SQL generation (Hovland et al.,
    /// arXiv 1605.04263). Answers are unchanged — the differential
    /// harness runs both settings and compares — but oversized
    /// statements (the §6.3 DPH failure mode) shrink to servable ones.
    /// Constraints are cached on the [`EngineSnapshot`], so every write
    /// path invalidates them with the same generation swap that
    /// invalidates plans.
    pub use_constraints: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            layout: LayoutKind::Simple,
            profile: EngineProfile::pg_like(),
            join_strategy: JoinStrategy::CostChosen,
            exec_mode: ExecMode::default(),
            backend: Backend::Native,
            reform_strategy: Strategy::Gdl { time_budget: None },
            threads: 1,
            cache_plans: true,
            compact_every: 256,
            sync_commits: false,
            use_constraints: true,
        }
    }
}

/// One immutable generation of the loaded KB: engine (storage + stats +
/// profile), TBox, and predicate dependencies. `Send + Sync`; shared
/// behind `Arc` so readers never block writers and vice versa.
pub struct EngineSnapshot {
    pub(crate) engine: Engine,
    pub(crate) tbox: TBox,
    pub(crate) deps: Dependencies,
    /// The vocabulary frozen at publish time. Interning only appends, so
    /// every id reachable from this generation's data resolves here —
    /// the wire front end uses it to parse predicate/individual names in
    /// queries and to render result rows as names.
    pub(crate) voc: Arc<Vocabulary>,
    pub(crate) generation: u64,
    /// ABox completeness constraints mined lazily from *this*
    /// generation's storage, used to prune reformulations. The cell
    /// lives on the snapshot itself, so invalidation is structural:
    /// every write path — bulk reload, `apply_batch`, committed
    /// transactions — publishes a fresh snapshot with a fresh (empty)
    /// cell, and a constraint mined from generation `g` can never be
    /// consulted by a query compiled against generation `g+1`. This is
    /// the same lifetime discipline as the plan cache, whose keys embed
    /// the generation.
    pub(crate) constraints: OnceLock<Arc<ConstraintSet>>,
}

impl EngineSnapshot {
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    pub fn tbox(&self) -> &TBox {
        &self.tbox
    }

    /// The vocabulary this generation's ids resolve against.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.voc
    }

    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The completeness constraints of this generation's data, mined on
    /// first use and shared by every subsequent compilation against the
    /// generation (cheap `Arc` clone).
    pub fn constraints(&self) -> Arc<ConstraintSet> {
        self.constraints
            .get_or_init(|| {
                let closure = TBoxClosure::compute(&self.tbox);
                let extents = self.engine.extract_extents(&self.voc);
                Arc::new(ConstraintSet::mine(&closure, &extents))
            })
            .clone()
    }
}

/// A cached compilation: the chosen FOL reformulation, its stored
/// physical plans, and the SQL translation size (so the hot path skips
/// SQL text generation too). Under [`Backend::Sql`] the translation
/// *text* itself is kept — the SQL backend's input — so a cache hit
/// skips reformulation, planning, and SQL generation alike.
pub struct CompiledQuery {
    pub fol: FolQuery,
    pub plans: PreparedPlans,
    pub sql_bytes: usize,
    /// The SQL translation, retained when the serving backend executes
    /// SQL (`None` under the native backend, which needs only the size).
    pub sql: Option<String>,
    /// Wall-clock spans of the cold compilation stages (reformulate /
    /// plan / sqlgen). A cache hit does not replay this work, so its
    /// [`ServerOutcome::spans`] report these stages as zero.
    pub spans: StageSpans,
    /// Constraint-pruning statistics, when the server compiled with
    /// [`ServerConfig::use_constraints`] (None otherwise). Cached with
    /// the plan: the pruned shape *is* the cached shape.
    pub pruned: Option<PruneStats>,
}

/// The answer to one served query.
pub struct ServerOutcome {
    pub outcome: QueryOutcome,
    /// Whether the plan cache supplied the compilation.
    pub cache_hit: bool,
    /// The snapshot generation the query ran against.
    pub generation: u64,
    /// Per-stage spans of this call: the compile stages (zero on a
    /// cache hit — the work was skipped, which is the point of the
    /// cache) and `execute` = the engine's measured wall clock.
    pub spans: StageSpans,
}

/// One `EXPLAIN ANALYZE` result: the priced plan the compilation chose
/// and the measured outcome of actually running it — predicted cost and
/// observed work side by side, per union arm where the executor
/// attributes them.
pub struct AnalyzedQuery {
    /// The operator-annotated plan with per-step cost/row estimates —
    /// the same deterministic `plan_conjunction` the executor followed.
    pub explain: ExplainPlan,
    /// The measured execution: rows, work counters, per-arm deltas.
    pub outcome: QueryOutcome,
    pub cache_hit: bool,
    pub generation: u64,
    pub backend: Backend,
    /// Per-stage spans of this call (see [`ServerOutcome::spans`]).
    pub spans: StageSpans,
    /// Constraint-pruning statistics of the compilation this analysis
    /// replayed (None when pruning was disabled).
    pub pruned: Option<PruneStats>,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
    /// Stale entries dropped by reloads so far.
    pub invalidated: u64,
}

/// Point-in-time transaction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Transactions (including one-shot `apply_batch` calls) committed.
    pub committed: u64,
    /// Commits refused by first-committer-wins validation.
    pub conflicts: u64,
    /// WAL group-commit records written. At most `committed` — lower
    /// under concurrency, where one record carries a whole group.
    pub commit_groups: u64,
    /// Currently open transactions.
    pub active: usize,
}

/// One transaction staged for group commit: its flattened delta (all
/// provisional ids already resolved to final interned ids), the
/// generation it will publish as, and the slot its committer waits on.
struct StagedTxn {
    delta: AboxDelta,
    generation: u64,
    slot: Arc<CommitSlot>,
}

/// Rendezvous between a staged transaction and the group-commit leader
/// that eventually makes it durable (or fails the whole group).
pub(crate) struct CommitSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

enum SlotState {
    /// Still queued behind the next group-commit leader.
    Queued,
    /// Durably logged and published at this generation.
    Committed(u64),
    /// The group's WAL append failed; nothing was applied.
    Failed(String),
}

impl CommitSlot {
    fn new() -> Self {
        CommitSlot {
            state: Mutex::new(SlotState::Queued),
            ready: Condvar::new(),
        }
    }

    fn resolve(&self, result: Result<u64, String>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *state = match result {
            Ok(generation) => SlotState::Committed(generation),
            Err(detail) => SlotState::Failed(detail),
        };
        self.ready.notify_all();
    }

    fn poll(&self) -> Option<Result<u64, String>> {
        match &*self.state.lock().unwrap_or_else(|e| e.into_inner()) {
            SlotState::Queued => None,
            SlotState::Committed(generation) => Some(Ok(*generation)),
            SlotState::Failed(detail) => Some(Err(detail.clone())),
        }
    }

    /// Block briefly until resolved (or a timeout — the caller re-polls
    /// and may become the next leader itself, so a missed wakeup can
    /// only cost one timeout, never a hang).
    fn wait_brief(&self) {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(*state, SlotState::Queued) {
            drop(
                self.ready
                    .wait_timeout(state, std::time::Duration::from_millis(10)),
            );
        }
    }
}

/// The authoritative writer-side state: the master vocabulary and ABox
/// every commit applies to, plus the group-commit staging area. Guarded
/// by one mutex held only *briefly* — staging a transaction, or the
/// leader's apply phase — never across a WAL write or fsync, which is
/// what lets commits group under concurrency. Readers never touch it:
/// they see only published [`EngineSnapshot`]s.
struct WriterState {
    voc: Vocabulary,
    abox: ABox,
    /// Generation of the last *published* snapshot; `voc`/`abox` are
    /// exactly that generation's state.
    applied_generation: u64,
    /// Generation assigned to the most recently *staged* transaction;
    /// equals `applied_generation` whenever the queue is empty.
    staged_generation: u64,
    /// Predicted interned ids for individual names that are staged but
    /// not yet applied. The next prediction is always
    /// `voc.num_individuals() + pending_names.len()`; the leader interns
    /// in staging order, so every prediction lands on its id.
    pending_names: HashMap<String, IndividualId>,
    /// Transactions staged and awaiting the next group-commit leader.
    queue: Vec<StagedTxn>,
    /// Fact keys written by recently staged/committed transactions →
    /// the generation that wrote them. The first-committer-wins check
    /// consults these; pruned after every group down to the oldest open
    /// transaction's begin generation.
    recent_concepts: HashMap<(ConceptId, IndividualId), u64>,
    recent_roles: HashMap<(RoleId, IndividualId, IndividualId), u64>,
}

/// The concurrent serving layer over one knowledge base. See the module
/// docs for the architecture; thread-safety contract: every method takes
/// `&self`, and the whole struct is `Send + Sync`.
pub struct Server {
    config: ServerConfig,
    snapshot: RwLock<Arc<EngineSnapshot>>,
    /// Serializes access to the master state and the staging queue. Held
    /// briefly (stage / apply / clone) — never across a WAL write or
    /// fsync — while the `snapshot` write lock is held only for the
    /// `Arc` swap, so queries keep serving the old generation while a
    /// group commits.
    writer: Mutex<WriterState>,
    /// The durable store under its own lock, so the group-commit
    /// leader's WAL write never blocks staging (which takes only
    /// `writer`). Lock discipline: only paths serialized under
    /// `commit_leader` (the leader's durability+apply phases, the
    /// reload publish) ever hold `store` and `writer` together, so the
    /// two orders they nest in cannot deadlock; every other path takes
    /// at most one of the two at a time.
    store: Mutex<Option<DurableStore>>,
    /// Group-commit leader election: the first committer to acquire
    /// this drains the staged queue and commits it as ONE WAL record;
    /// the rest wait on their slots. Reloads take it (blocking) to
    /// flush the queue before replacing the KB.
    commit_leader: Mutex<()>,
    /// At most one fuzzy checkpoint runs at a time.
    ckpt: Mutex<()>,
    /// Open transactions: id → begin generation. The minimum begin
    /// generation bounds how far the conflict registry may be pruned.
    active_txns: Mutex<HashMap<u64, u64>>,
    txn_counter: AtomicU64,
    txn_commits: AtomicU64,
    txn_conflicts: AtomicU64,
    commit_groups: AtomicU64,
    /// Keyed by (generation, backend, canonical query): a session served
    /// under [`Backend::Sql`] needs the SQL text a native compilation
    /// does not carry (and vice versa for stored plans), so the two
    /// backends cache independent entries for the same query.
    cache: Mutex<FxHashMap<(u64, Backend, CanonKey), Arc<CompiledQuery>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    /// The server-wide metrics registry every layer reports through;
    /// `Arc` so the metrics endpoint and wire sessions can share it.
    observe: Arc<MetricsRegistry>,
}

/// Compile-time thread-safety contract: snapshots cross worker threads
/// and the server is shared by reference from every client thread.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineSnapshot>();
    assert_send_sync::<Server>();
    assert_send_sync::<CompiledQuery>();
};

impl Server {
    /// Load generation 0 from a KB (in-memory only — nothing persisted).
    pub fn new(voc: Vocabulary, tbox: TBox, abox: &ABox, config: ServerConfig) -> Self {
        Self::with_store(voc, tbox, abox.clone(), config, None, 0)
    }

    /// Initialize a durable store directory with a generation-0 snapshot
    /// of the KB and an empty WAL, and serve from it. Subsequent
    /// [`Server::apply_batch`] calls are write-ahead logged;
    /// [`Server::open`] brings the server back after a crash or restart.
    pub fn create_durable(
        dir: &Path,
        voc: Vocabulary,
        tbox: TBox,
        abox: &ABox,
        config: ServerConfig,
    ) -> Result<Self, StoreError> {
        let store = DurableStore::create(dir, &voc, &tbox, abox, 0)?;
        Ok(Self::with_store(
            voc,
            tbox,
            abox.clone(),
            config,
            Some(store),
            0,
        ))
    }

    /// The recovery constructor: replay `snapshot + WAL tail` from a
    /// store directory — a torn final record (crash mid-append) is
    /// tolerated and truncated — and serve the recovered KB at the exact
    /// pre-crash generation. The TBox rides in the snapshot, so the
    /// directory is self-contained.
    pub fn open(dir: &Path, config: ServerConfig) -> Result<Self, StoreError> {
        let (kb, store) = DurableStore::open(dir)?;
        Ok(Self::with_store(
            kb.voc,
            kb.tbox,
            kb.abox,
            config,
            Some(store),
            kb.generation,
        ))
    }

    fn with_store(
        voc: Vocabulary,
        tbox: TBox,
        abox: ABox,
        config: ServerConfig,
        store: Option<DurableStore>,
        generation: u64,
    ) -> Self {
        let deps = Dependencies::compute(&voc, &tbox);
        let snapshot = Self::build_snapshot(&voc, &config, tbox, deps, &abox, generation);
        Server {
            config,
            snapshot: RwLock::new(Arc::new(snapshot)),
            writer: Mutex::new(WriterState {
                voc,
                abox,
                applied_generation: generation,
                staged_generation: generation,
                pending_names: HashMap::new(),
                queue: Vec::new(),
                recent_concepts: HashMap::new(),
                recent_roles: HashMap::new(),
            }),
            store: Mutex::new(store),
            commit_leader: Mutex::new(()),
            ckpt: Mutex::new(()),
            active_txns: Mutex::new(HashMap::new()),
            txn_counter: AtomicU64::new(0),
            txn_commits: AtomicU64::new(0),
            txn_conflicts: AtomicU64::new(0),
            commit_groups: AtomicU64::new(0),
            cache: Mutex::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            observe: Arc::new(MetricsRegistry::new()),
        }
    }

    fn build_snapshot(
        voc: &Vocabulary,
        config: &ServerConfig,
        tbox: TBox,
        deps: Dependencies,
        abox: &ABox,
        generation: u64,
    ) -> EngineSnapshot {
        let engine = Engine::load(abox, voc, config.layout, config.profile.clone())
            .with_join_strategy(config.join_strategy)
            .with_exec_mode(config.exec_mode)
            .with_backend(config.backend);
        EngineSnapshot {
            engine,
            tbox,
            deps,
            voc: Arc::new(voc.clone()),
            generation,
            constraints: OnceLock::new(),
        }
    }

    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The server-wide metrics registry (counters, latency histograms,
    /// the slow-query ring). Shared: clone the `Arc` to hand it to a
    /// metrics endpoint or a monitoring thread.
    pub fn observe(&self) -> &Arc<MetricsRegistry> {
        &self.observe
    }

    /// Read the published snapshot `Arc`, recovering a poisoned guard.
    ///
    /// Poison recovery is sound here because the protected value is a
    /// single `Arc`: the only write is one pointer-sized assignment in
    /// [`Server::swap_snapshot`], so there is no intermediate state a
    /// panicking thread could have left behind — the `Arc` always points
    /// at a fully built snapshot. Without recovery, one panicked session
    /// would cascade into a panic in every other session (the bug this
    /// replaces).
    fn read_snapshot(&self) -> Arc<EngineSnapshot> {
        self.snapshot
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Lock the plan cache, recovering a poisoned guard. Sound because
    /// every cache state is servable: entries are keyed by generation,
    /// lookups only match the reader's own generation, and a
    /// half-finished purge merely leaves unreachable stale entries
    /// (dropped again by the next purge) — never wrong answers.
    #[allow(clippy::type_complexity)]
    fn lock_cache(
        &self,
    ) -> MutexGuard<'_, FxHashMap<(u64, Backend, CanonKey), Arc<CompiledQuery>>> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Lock the writer state. A poisoned writer mutex is *not*
    /// recoverable: the panicking mutator may have interned names,
    /// applied half an ABox batch, or advanced the store — recovering
    /// the guard could commit a later batch on top of that torn state.
    /// Writers get a typed error; readers never touch this lock.
    fn lock_writer(&self) -> Result<MutexGuard<'_, WriterState>, ServerError> {
        self.writer.lock().map_err(|_| ServerError::Poisoned)
    }

    /// Lock the durable store, recovering a poisoned guard. Sound
    /// because [`DurableStore`] tracks its own failure state: a
    /// half-finished operation either rolled itself back (WAL appends)
    /// or poisoned the store, which then refuses further use with a
    /// typed error.
    fn lock_store(&self) -> MutexGuard<'_, Option<DurableStore>> {
        self.store.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_leader(&self) -> MutexGuard<'_, ()> {
        self.commit_leader.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn try_lock_leader(&self) -> Option<MutexGuard<'_, ()>> {
        match self.commit_leader.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub(crate) fn lock_active(&self) -> MutexGuard<'_, HashMap<u64, u64>> {
        self.active_txns.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The current snapshot (cheap `Arc` clone; callers keep the KB
    /// generation they started with even across concurrent reloads).
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.read_snapshot()
    }

    /// Answer one conjunctive query: compile (or fetch the cached
    /// compilation of) its reformulation, then evaluate it against the
    /// current snapshot under the configured parallelism.
    pub fn query(&self, cq: &CQ) -> Result<ServerOutcome, EngineError> {
        self.query_on(&self.snapshot(), cq)
    }

    /// [`Server::query`] pinned to an explicit snapshot — lets a caller
    /// issue several queries against one consistent KB generation.
    pub fn query_on(
        &self,
        snap: &Arc<EngineSnapshot>,
        cq: &CQ,
    ) -> Result<ServerOutcome, EngineError> {
        self.query_on_as(snap, cq, self.config.backend)
    }

    /// [`Server::query_on`] under an explicit execution backend — the
    /// wire front end's per-session `Backend::Native|Sql` selection
    /// (chosen by a startup parameter) lands here. Compilations are
    /// cached per backend (the key embeds it), so two sessions on
    /// different backends warm independent entries and neither ever
    /// replays an artifact the other backend produced.
    pub fn query_on_as(
        &self,
        snap: &Arc<EngineSnapshot>,
        cq: &CQ,
        backend: Backend,
    ) -> Result<ServerOutcome, EngineError> {
        let (compiled, cache_hit) = self.compile(snap, cq, backend);
        let opts = EvalOptions {
            strategy: None,
            prepared: Some(&compiled.plans),
            threads: self.config.threads,
            sql_bytes: Some(compiled.sql_bytes),
            sql_text: compiled.sql.as_deref(),
            backend: Some(backend),
            mode: None,
        };
        let outcome = match snap.engine.evaluate_opts(&compiled.fol, &opts) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.observe.record_query_error();
                return Err(e);
            }
        };
        let spans = self.record_served(&compiled, cache_hit, backend, &outcome);
        Ok(ServerOutcome {
            outcome,
            cache_hit,
            generation: snap.generation,
            spans,
        })
    }

    /// Shared post-execution bookkeeping of every served query: assemble
    /// the call's [`StageSpans`] (compile stages zero on a cache hit —
    /// the work was skipped), feed the registry's per-backend counters
    /// and latency histogram, and accumulate one predicted-vs-measured
    /// cost-model accuracy sample when the plan carries estimates.
    fn record_served(
        &self,
        compiled: &CompiledQuery,
        cache_hit: bool,
        backend: Backend,
        outcome: &QueryOutcome,
    ) -> StageSpans {
        let mut spans = if cache_hit {
            StageSpans::default()
        } else {
            compiled.spans
        };
        spans.execute = outcome.metrics.wall;
        self.observe
            .record_query(backend, spans.total(), outcome.rows.len() as u64);
        if !compiled.plans.plans.is_empty() {
            let predicted: f64 = compiled.plans.plans.iter().map(|p| p.est_cost()).sum();
            self.observe
                .record_cost_sample(predicted, outcome.metrics.work_units());
        }
        spans
    }

    /// Fetch or compute the compilation of `cq` for `snap`'s generation
    /// under `backend`.
    fn compile(
        &self,
        snap: &EngineSnapshot,
        cq: &CQ,
        backend: Backend,
    ) -> (Arc<CompiledQuery>, bool) {
        if !self.config.cache_plans {
            return (Arc::new(self.compile_cold(snap, cq, backend)), false);
        }
        let key = (snap.generation, backend, canonical_key(cq));
        if let Some(hit) = self.lock_cache().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (hit, true);
        }
        // Compile outside the lock: reformulation dominates (§6.4), and
        // concurrent misses on the same key are idempotent (last insert
        // wins; both compute the same deterministic compilation).
        let compiled = Arc::new(self.compile_cold(snap, cq, backend));
        self.misses.fetch_add(1, Ordering::Relaxed);
        {
            let mut cache = self.lock_cache();
            // A reload may have published a newer generation (and purged
            // the old one) while we compiled; inserting the old-gen entry
            // now would leave an unservable key alive until the next
            // reload. The generation is re-read *inside* the cache lock:
            // `publish` swaps the snapshot before it purges under this
            // same lock, so either our insert precedes the purge (and is
            // dropped by it) or this check sees the new generation.
            let current = self
                .snapshot
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .generation;
            if snap.generation >= current {
                cache.insert(key, compiled.clone());
            }
        }
        (compiled, false)
    }

    /// The full per-call pipeline: reformulate under the configured
    /// strategy (cost estimates answered by the snapshot engine's
    /// `explain`), then plan every conjunction and size the SQL.
    fn compile_cold(&self, snap: &EngineSnapshot, cq: &CQ, backend: Backend) -> CompiledQuery {
        let mut spans = StageSpans::default();
        let stage_started = Instant::now();
        let estimator = ExplainEstimator::new(&snap.engine);
        let constraints = self.config.use_constraints.then(|| snap.constraints());
        let chosen = choose_reformulation_constrained(
            cq,
            &snap.tbox,
            &snap.deps,
            &estimator,
            &self.config.reform_strategy,
            constraints.as_deref(),
        );
        if let Some(stats) = &chosen.pruned {
            self.observe
                .record_pruned_arms(stats.empty_pruned, stats.subsumed_pruned);
        }
        spans.reformulate = stage_started.elapsed();
        let stage_started = Instant::now();
        // Native plans are meaningless to the SQL backend (its
        // evaluate path never reads them); the SQL text is meaningless
        // to the native one — each backend caches only what it replays.
        let plans = match backend {
            Backend::Native => snap.engine.prepare(&chosen.fol),
            Backend::Sql => PreparedPlans {
                strategy: self.config.join_strategy,
                mode: self.config.exec_mode,
                plans: Vec::new(),
            },
        };
        spans.plan = stage_started.elapsed();
        let stage_started = Instant::now();
        let sql = snap.engine.sql_for(&chosen.fol);
        let sql_bytes = sql.len();
        spans.sqlgen = stage_started.elapsed();
        // Don't pin text that can never execute: a statement over the
        // profile's size limit is rejected from its *length* alone
        // (§6.3), so the cache keeps only `sql_bytes` for it.
        let within_limit = snap
            .engine
            .profile()
            .max_statement_bytes
            .is_none_or(|limit| sql_bytes <= limit);
        let sql = (matches!(backend, Backend::Sql) && within_limit).then_some(sql);
        CompiledQuery {
            fol: chosen.fol,
            plans,
            sql_bytes,
            sql,
            spans,
            pruned: chosen.pruned,
        }
    }

    /// Apply one [`AboxDelta`] batch as a **one-shot transaction**: the
    /// batch is staged, rides the next group-commit WAL record, and is
    /// published as its own snapshot generation. Semantics:
    ///
    /// 1. **stage** — under a brief writer lock the batch gets the next
    ///    generation and queues behind the group-commit leader. The
    ///    batch's ids are taken verbatim — a caller predicting ids for
    ///    its `new_individuals` assumes no concurrent writer interns
    ///    names between its prediction and this call (the single-writer
    ///    contract this path has always had; [`Server::begin`]
    ///    transactions get provisional-id remapping instead). No
    ///    conflict check is performed — a raw batch is an upsert;
    /// 2. **log** — the leader drains the queue and appends ONE
    ///    group-commit record for every staged transaction, flushing
    ///    (and with [`ServerConfig::sync_commits`], fsyncing) once for
    ///    the whole group. A failed append fails the *entire* group
    ///    with nothing applied — callers can treat `Err` as "retry
    ///    safely";
    /// 3. **apply + publish** — the leader interns names, folds each
    ///    delta into the master ABox and a copy-on-write engine clone
    ///    (tables, indexes and statistics maintained in place — no
    ///    rebuild), and publishes the group's last generation as one
    ///    snapshot, dropping stale plan-cache entries;
    /// 4. if the WAL has accumulated `compact_every` transactions, a
    ///    fuzzy checkpoint folds it into a fresh snapshot. A checkpoint
    ///    failure never revokes the commit: it poisons the store so the
    ///    *next* append reports the condition.
    ///
    /// `Ok(generation)` means the batch **committed** (logged and
    /// published). An empty batch still commits and bumps the
    /// generation. In-flight queries keep the snapshot they started
    /// with (snapshot isolation).
    pub fn apply_batch(&self, delta: &AboxDelta) -> Result<u64, ServerError> {
        let slot = {
            let mut writer = self.lock_writer()?;
            Self::enqueue(&mut writer, delta.clone())
        };
        self.commit_wait(&slot)
    }

    /// Predict interning for `delta`'s new names, record its fact keys
    /// in the conflict registry, assign it the next staged generation,
    /// and queue it for the next group-commit leader. Caller holds the
    /// writer lock.
    fn enqueue(writer: &mut WriterState, delta: AboxDelta) -> Arc<CommitSlot> {
        for name in &delta.new_individuals {
            if writer.voc.find_individual(name).is_none()
                && !writer.pending_names.contains_key(name)
            {
                let id = IndividualId(
                    (writer.voc.num_individuals() + writer.pending_names.len()) as u32,
                );
                writer.pending_names.insert(name.clone(), id);
            }
        }
        writer.staged_generation += 1;
        let generation = writer.staged_generation;
        for &(c, a) in delta.insert_concepts.iter().chain(&delta.delete_concepts) {
            writer.recent_concepts.insert((c, a), generation);
        }
        for &(r, a, b) in delta.insert_roles.iter().chain(&delta.delete_roles) {
            writer.recent_roles.insert((r, a, b), generation);
        }
        let slot = Arc::new(CommitSlot::new());
        writer.queue.push(StagedTxn {
            delta,
            generation,
            slot: Arc::clone(&slot),
        });
        slot
    }

    /// Validate and stage a transaction's working set: resolve its
    /// provisional individual ids to final interned ids, run the
    /// first-committer-wins check against the conflict registry, and —
    /// only if it passes — record the predictions and queue the
    /// flattened delta. A conflict abort leaves no trace.
    pub(crate) fn stage_txn(
        &self,
        ws: &WorkingSet,
        begin_generation: u64,
    ) -> Result<Arc<CommitSlot>, ServerError> {
        let mut writer = self.lock_writer()?;
        let writer = &mut *writer;
        // Resolve provisional ids against the current master vocabulary
        // and the staged-but-unapplied predictions, *without* recording
        // anything yet.
        let mut resolved = Vec::with_capacity(ws.new_individuals().len());
        let mut fresh: Vec<(String, IndividualId)> = Vec::new();
        for name in ws.new_individuals() {
            let known = writer
                .voc
                .find_individual(name)
                .or_else(|| writer.pending_names.get(name).copied());
            let id = known.unwrap_or_else(|| {
                let id = IndividualId(
                    (writer.voc.num_individuals() + writer.pending_names.len() + fresh.len())
                        as u32,
                );
                fresh.push((name.clone(), id));
                id
            });
            resolved.push(id);
        }
        let base = ws.base_individuals() as u32;
        let delta = ws.delta_with(|id| {
            if id.0 >= base {
                resolved[(id.0 - base) as usize]
            } else {
                id
            }
        });
        // First-committer-wins: any overlapping fact key written by a
        // transaction that committed (or staged) after this one pinned
        // its snapshot aborts it. Keys at or before the begin
        // generation were *visible* to this transaction — no conflict.
        let conflicting = delta
            .insert_concepts
            .iter()
            .chain(&delta.delete_concepts)
            .filter_map(|key| writer.recent_concepts.get(key))
            .chain(
                delta
                    .insert_roles
                    .iter()
                    .chain(&delta.delete_roles)
                    .filter_map(|key| writer.recent_roles.get(key)),
            )
            .copied()
            .filter(|&g| g > begin_generation)
            .max();
        if let Some(committed_in) = conflicting {
            self.txn_conflicts.fetch_add(1, Ordering::Relaxed);
            return Err(ServerError::Conflict { committed_in });
        }
        for (name, id) in fresh {
            writer.pending_names.insert(name, id);
        }
        Ok(Self::enqueue(writer, delta))
    }

    /// Drive a staged transaction to its outcome: become the
    /// group-commit leader if the seat is free, otherwise wait on the
    /// slot until some leader resolves it.
    pub(crate) fn commit_wait(&self, slot: &CommitSlot) -> Result<u64, ServerError> {
        loop {
            match slot.poll() {
                Some(Ok(generation)) => {
                    self.txn_commits.fetch_add(1, Ordering::Relaxed);
                    self.maybe_auto_checkpoint();
                    return Ok(generation);
                }
                Some(Err(detail)) => return Err(ServerError::CommitFailed { detail }),
                None => {}
            }
            if let Some(_leader) = self.try_lock_leader() {
                self.run_leader()?;
            } else {
                slot.wait_brief();
            }
        }
    }

    /// Commit everything currently staged as ONE WAL group record,
    /// apply it to the master state, publish a single snapshot for the
    /// group, and wake its committers. Caller must hold `commit_leader`.
    fn run_leader(&self) -> Result<(), ServerError> {
        let group: Vec<StagedTxn> = std::mem::take(&mut self.lock_writer()?.queue);
        if group.is_empty() {
            return Ok(());
        }
        let mut deltas = Vec::with_capacity(group.len());
        let mut slots = Vec::with_capacity(group.len());
        for txn in group {
            deltas.push(txn.delta);
            slots.push((txn.generation, txn.slot));
        }

        // Durability first (write-ahead): one record, one flush/fsync
        // for the whole group. The writer lock is NOT held here, so
        // later transactions keep staging behind this group.
        let logged = {
            let mut store = self.lock_store();
            match store.as_mut() {
                Some(store) if self.config.sync_commits => store.append_group_durable(&deltas),
                Some(store) => store.append_group(&deltas),
                None => Ok(0),
            }
        };
        let wal_bytes = match logged {
            Ok(bytes) => bytes,
            Err(e) => {
                self.fail_group(slots, &e);
                return Ok(());
            }
        };
        self.commit_groups.fetch_add(1, Ordering::Relaxed);
        if wal_bytes > 0 {
            self.observe
                .record_wal_append(wal_bytes, self.config.sync_commits);
        }

        // Apply phase: intern names (consuming their staged
        // predictions — in staging order, so every prediction lands on
        // its id), fold each delta into the master ABox and one engine
        // clone, and publish the group's last generation as ONE
        // snapshot.
        let mut writer = self.lock_writer()?;
        let cur = self.read_snapshot();
        debug_assert_eq!(cur.generation, writer.applied_generation);
        let interned_before = writer.voc.num_individuals();
        let mut engine = cur.engine.clone();
        for delta in &deltas {
            for name in &delta.new_individuals {
                writer.voc.individual(name);
                writer.pending_names.remove(name);
            }
            let effective = writer.abox.apply(delta);
            engine.apply_delta(&effective);
        }
        let generation = slots.last().map(|(g, _)| *g).unwrap_or(cur.generation);
        writer.applied_generation = generation;
        // The snapshot vocabulary is frozen per generation; reuse the
        // current one unless this group interned new individuals.
        let voc = if writer.voc.num_individuals() > interned_before {
            Arc::new(writer.voc.clone())
        } else {
            cur.voc.clone()
        };
        let next = Arc::new(EngineSnapshot {
            engine,
            tbox: cur.tbox.clone(),
            deps: cur.deps.clone(),
            voc,
            generation,
            // Fresh cell: constraints mined from the pre-delta data are
            // unreachable from this generation (same discipline as the
            // generation-keyed plan cache).
            constraints: OnceLock::new(),
        });
        self.swap_snapshot(next, generation);
        // Prune the conflict registry below every open transaction's
        // view — entries at or before the oldest begin generation can
        // never conflict anyone again.
        let horizon = self
            .lock_active()
            .values()
            .copied()
            .min()
            .unwrap_or(generation);
        writer.recent_concepts.retain(|_, g| *g > horizon);
        writer.recent_roles.retain(|_, g| *g > horizon);
        drop(writer);

        // Ack only after the publish, so a returning committer
        // immediately reads its own write from the live snapshot.
        for (generation, slot) in slots {
            slot.resolve(Ok(generation));
        }
        Ok(())
    }

    /// A group's WAL append failed: nothing from it was applied (the
    /// WAL writer rolled the torn record back out). Fail every staged
    /// transaction — including ones queued *behind* the group, whose
    /// interning predictions build on it — and reset the staging state
    /// to the applied prefix.
    fn fail_group(&self, slots: Vec<(u64, Arc<CommitSlot>)>, err: &StoreError) {
        let detail = err.to_string();
        let mut tail = Vec::new();
        if let Ok(mut writer) = self.writer.lock() {
            tail = std::mem::take(&mut writer.queue);
            writer.pending_names.clear();
            writer.staged_generation = writer.applied_generation;
            let applied = writer.applied_generation;
            writer.recent_concepts.retain(|_, g| *g <= applied);
            writer.recent_roles.retain(|_, g| *g <= applied);
        }
        for (_, slot) in slots
            .into_iter()
            .chain(tail.into_iter().map(|t| (t.generation, t.slot)))
        {
            slot.resolve(Err(detail.clone()));
        }
    }

    /// Fold the WAL once it accumulates `compact_every` logged
    /// transactions. Runs after a successful commit with no commit-path
    /// lock held; skipped when a checkpoint is already in flight.
    fn maybe_auto_checkpoint(&self) {
        if self.config.compact_every == 0 {
            return;
        }
        let due = self
            .lock_store()
            .as_ref()
            .is_some_and(|s| s.wal_batches() >= self.config.compact_every);
        if !due {
            return;
        }
        let guard = match self.ckpt.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return,
        };
        // Best-effort: the commit already succeeded. A failed
        // checkpoint poisons the store and surfaces on the next append
        // instead of masquerading as a commit failure here.
        let _ = self.checkpoint_locked(guard);
    }

    /// Take a **fuzzy checkpoint**: snapshot the applied state to disk
    /// while the WAL keeps accepting group commits, then atomically
    /// install it and rebuild the WAL down to the tail beyond it.
    ///
    /// Three phases:
    ///
    /// 1. **pin** — clone the master vocabulary/ABox at the applied
    ///    generation `g` under a brief writer lock (clones only, no
    ///    I/O);
    /// 2. **write** — serialize the clone to `snapshot.ckpt` with *no*
    ///    server lock held: commits keep flowing into the WAL the
    ///    whole time;
    /// 3. **install** — under the store lock, atomically rename the
    ///    checkpoint over the snapshot and rewrite the WAL to only the
    ///    transactions beyond `g` (including any that committed during
    ///    phase 2).
    ///
    /// No-op on a non-durable server. Answering is unaffected —
    /// checkpointing only rewrites the on-disk representation.
    pub fn checkpoint(&self) -> Result<(), ServerError> {
        let guard = self.ckpt.lock().unwrap_or_else(|e| e.into_inner());
        self.checkpoint_locked(guard)
    }

    fn checkpoint_locked(&self, _ckpt: MutexGuard<'_, ()>) -> Result<(), ServerError> {
        let ckpt_started = Instant::now();
        // Phase 1: pin. The TBox is read *inside* the writer lock so a
        // concurrent reload cannot slip a new KB between the reads.
        let (voc, abox, tbox, generation) = {
            let writer = self.lock_writer()?;
            let tbox = self.read_snapshot().tbox.clone();
            (
                writer.voc.clone(),
                writer.abox.clone(),
                tbox,
                writer.applied_generation,
            )
        };
        // `writer` and `store` are never held together here — the
        // leader nests them, and only paths under `commit_leader` may.
        let ckpt_path = match self.lock_store().as_ref() {
            Some(store) => store.checkpoint_file(),
            None => return Ok(()),
        };
        // Phase 2: write, unlocked.
        write_snapshot_to(&ckpt_path, &voc, &tbox, &abox, generation)
            .map_err(ServerError::Store)?;
        // Phase 3: install.
        if let Some(store) = self.lock_store().as_mut() {
            store
                .install_checkpoint(generation)
                .map_err(ServerError::Store)?;
        }
        self.observe.record_checkpoint(ckpt_started.elapsed());
        Ok(())
    }

    /// Historical name for [`Server::checkpoint`].
    pub fn compact(&self) -> Result<(), ServerError> {
        self.checkpoint()
    }

    /// [`Server::query_on_as`] bypassing the plan cache: compile cold
    /// and evaluate. The transaction layer serves in-transaction reads
    /// from per-transaction overlay snapshots that *share* the pinned
    /// generation number — caching their compilations would poison
    /// other sessions' entries for that generation, so they stay out of
    /// the cache entirely.
    pub(crate) fn query_uncached(
        &self,
        snap: &Arc<EngineSnapshot>,
        cq: &CQ,
        backend: Backend,
    ) -> Result<ServerOutcome, EngineError> {
        let compiled = self.compile_cold(snap, cq, backend);
        let opts = EvalOptions {
            strategy: None,
            prepared: Some(&compiled.plans),
            threads: self.config.threads,
            sql_bytes: Some(compiled.sql_bytes),
            sql_text: compiled.sql.as_deref(),
            backend: Some(backend),
            mode: None,
        };
        let outcome = match snap.engine.evaluate_opts(&compiled.fol, &opts) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.observe.record_query_error();
                return Err(e);
            }
        };
        let spans = self.record_served(&compiled, false, backend, &outcome);
        Ok(ServerOutcome {
            outcome,
            cache_hit: false,
            generation: snap.generation,
            spans,
        })
    }

    /// `EXPLAIN ANALYZE`: compile (through the plan cache — the plan
    /// analyzed is the *exact* compilation a plain query would replay),
    /// price it with the engine's structured explain, then execute it
    /// and return prediction and measurement side by side. Counts as a
    /// served query in the registry.
    pub fn explain_analyze(
        &self,
        snap: &Arc<EngineSnapshot>,
        cq: &CQ,
        backend: Backend,
    ) -> Result<AnalyzedQuery, EngineError> {
        let (compiled, cache_hit) = self.compile(snap, cq, backend);
        let explain = snap.engine.explain_plan(&compiled.fol);
        let opts = EvalOptions {
            strategy: None,
            prepared: Some(&compiled.plans),
            threads: self.config.threads,
            sql_bytes: Some(compiled.sql_bytes),
            sql_text: compiled.sql.as_deref(),
            backend: Some(backend),
            mode: None,
        };
        let outcome = match snap.engine.evaluate_opts(&compiled.fol, &opts) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.observe.record_query_error();
                return Err(e);
            }
        };
        let spans = self.record_served(&compiled, cache_hit, backend, &outcome);
        Ok(AnalyzedQuery {
            explain,
            outcome,
            cache_hit,
            generation: snap.generation,
            backend,
            spans,
            pruned: compiled.pruned,
        })
    }

    /// Publish a new ABox under the current TBox: rebuilds storage and
    /// statistics from scratch, bumps the generation, and drops every
    /// stale cache entry.
    ///
    /// **Generation semantics** (shared by [`Server::reload_kb`] and
    /// [`Server::apply_batch`]): each successful write publishes exactly
    /// one new generation `g+1`; the plan cache is keyed by
    /// `(generation, canonical query)`, so every entry compiled against
    /// `g` or older is dropped at publish time and can never serve the
    /// new data. In-flight queries that pinned the generation-`g`
    /// snapshot (via [`Server::snapshot`] / [`Server::query_on`]) finish
    /// against generation `g`'s engine — their prepared plans stay
    /// correct for the data they were planned on, because the snapshot
    /// owns that data immutably.
    ///
    /// On a durable server a bulk reload is also a **compaction point**:
    /// the new ABox becomes a fresh on-disk snapshot and the WAL resets
    /// (logged deltas against the pre-reload state are meaningless going
    /// forward).
    pub fn reload_abox(&self, abox: &ABox) -> Result<u64, ServerError> {
        let _leader = self.lock_leader();
        self.run_leader()?; // staged commits land first, in commit order
        let mut writer = self.lock_writer()?;
        let (tbox, deps) = {
            let cur = self.read_snapshot();
            (cur.tbox.clone(), cur.deps.clone())
        };
        Ok(self.publish(&mut writer, tbox, deps, abox))
    }

    /// Publish a new TBox *and* ABox (ontology evolution): recomputes the
    /// predicate dependencies, then swaps like [`Server::reload_abox`]
    /// (see there for the generation semantics, which are identical).
    pub fn reload_kb(&self, tbox: TBox, abox: &ABox) -> Result<u64, ServerError> {
        let _leader = self.lock_leader();
        self.run_leader()?; // staged commits land first, in commit order
        let mut writer = self.lock_writer()?;
        let deps = Dependencies::compute(&writer.voc, &tbox);
        Ok(self.publish(&mut writer, tbox, deps, abox))
    }

    /// Build and swap in the next generation (bulk path). The writer
    /// guard proves the caller holds the writer mutex: the current
    /// TBox/deps were read under it, so no concurrent write can
    /// interleave (lost update), and the expensive snapshot build
    /// happens *before* the snapshot write lock is taken — queries keep
    /// serving the old generation until the O(1) `Arc` swap.
    fn publish(
        &self,
        writer: &mut WriterState,
        tbox: TBox,
        deps: Dependencies,
        abox: &ABox,
    ) -> u64 {
        let generation = self.read_snapshot().generation + 1;
        let next = Arc::new(Self::build_snapshot(
            &writer.voc,
            &self.config,
            tbox.clone(),
            deps,
            abox,
            generation,
        ));
        self.swap_snapshot(next, generation);
        writer.abox = abox.clone();
        writer.applied_generation = generation;
        writer.staged_generation = generation;
        // The queue was flushed by the caller's `run_leader`; a bulk
        // reload also resets the conflict registry — it replaces the KB
        // wholesale, so fact-keyed conflict tracking against the old
        // state is meaningless (reloads are administrative operations,
        // not competing transactions).
        writer.pending_names.clear();
        writer.recent_concepts.clear();
        writer.recent_roles.clear();
        if let Some(store) = self.lock_store().as_mut() {
            // A bulk reload invalidates the log: compact to the new state.
            // Persisting is best-effort here (a publish is an in-memory
            // commit); a failed compaction leaves the old snapshot + WAL
            // intact, which recovers to the *previous* generation —
            // stale but consistent — and poisons the store so the next
            // append reports it.
            let _ = store.compact(&writer.voc, &tbox, abox, generation);
        }
        generation
    }

    /// Swap the published snapshot and drop every plan-cache entry of
    /// older generations (counted in `invalidated`).
    fn swap_snapshot(&self, next: Arc<EngineSnapshot>, generation: u64) {
        *self.snapshot.write().unwrap_or_else(|e| e.into_inner()) = next;
        let mut cache = self.lock_cache();
        let before = cache.len();
        cache.retain(|(gen, _, _), _| *gen >= generation);
        self.invalidated
            .fetch_add((before - cache.len()) as u64, Ordering::Relaxed);
    }

    /// The currently published snapshot generation.
    pub fn generation(&self) -> u64 {
        self.read_snapshot().generation
    }

    /// Whether this server persists to a durable store directory (the
    /// option itself is set once at construction).
    pub fn is_durable(&self) -> bool {
        self.lock_store().is_some()
    }

    /// Point-in-time transaction counters.
    pub fn txn_stats(&self) -> TxnStats {
        TxnStats {
            committed: self.txn_commits.load(Ordering::Relaxed),
            conflicts: self.txn_conflicts.load(Ordering::Relaxed),
            commit_groups: self.commit_groups.load(Ordering::Relaxed),
            active: self.lock_active().len(),
        }
    }

    /// Allocate a transaction id and register its begin generation in
    /// the active registry, returning `(id, pinned snapshot)`. The
    /// snapshot is read *inside* the registry lock so the conflict
    /// registry can never be pruned past a begin generation that is
    /// about to register (pruning takes the same lock).
    pub(crate) fn register_txn(&self) -> (u64, Arc<EngineSnapshot>) {
        let id = self.txn_counter.fetch_add(1, Ordering::Relaxed) + 1;
        let mut active = self.lock_active();
        let snapshot = self.read_snapshot();
        active.insert(id, snapshot.generation);
        (id, snapshot)
    }

    pub(crate) fn deregister_txn(&self, id: u64) {
        self.lock_active().remove(&id);
    }

    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.lock_cache().len(),
            invalidated: self.invalidated.load(Ordering::Relaxed),
        }
    }

    /// Deliberately panic while holding each shared lock in turn — the
    /// poison-robustness harness. It simulates a session thread dying
    /// mid-operation so the suites can assert that readers recover and
    /// writers fail typed instead of cascading panics. (A read guard
    /// never poisons an `RwLock`, so the snapshot lock is poisoned
    /// through its *write* half — the stronger case.)
    #[doc(hidden)]
    pub fn poison_all_locks_for_test(&self) {
        for which in ["snapshot", "cache", "writer"] {
            let res = std::thread::scope(|s| {
                s.spawn(|| match which {
                    "snapshot" => {
                        let _guard = self.snapshot.write().unwrap_or_else(|e| e.into_inner());
                        panic!("poison snapshot lock");
                    }
                    "cache" => {
                        let _guard = self.cache.lock().unwrap_or_else(|e| e.into_inner());
                        panic!("poison cache lock");
                    }
                    _ => {
                        let _guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
                        panic!("poison writer lock");
                    }
                })
                .join()
            });
            assert!(res.is_err(), "the poisoning thread must have panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::example7_tbox;
    use obda_query::{Atom, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// Example-7 KB: PhD students / supervision, with facts that make the
    /// reformulation non-trivial.
    fn fixture() -> (Vocabulary, TBox, ABox, CQ) {
        let (mut voc, tbox) = example7_tbox();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let damian = voc.individual("Damian");
        let ioana = voc.individual("Ioana");
        let mut abox = ABox::new();
        abox.assert_concept(phd, damian);
        abox.assert_concept(phd, ioana);
        abox.assert_role(works, ioana, damian);
        abox.assert_role(sup, damian, ioana);
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(phd, v(0)),
                Atom::Role(works, v(0), v(1)),
                Atom::Role(sup, v(2), v(1)),
            ],
        );
        (voc, tbox, abox, q)
    }

    fn server(config: ServerConfig) -> (Server, CQ) {
        let (voc, tbox, abox, q) = fixture();
        (Server::new(voc, tbox, &abox, config), q)
    }

    #[test]
    fn repeated_queries_hit_the_cache_and_agree() {
        let (srv, q) = server(ServerConfig::default());
        let first = srv.query(&q).unwrap();
        assert!(!first.cache_hit);
        let second = srv.query(&q).unwrap();
        assert!(second.cache_hit);
        let mut a = first.outcome.rows.clone();
        let mut b = second.outcome.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        let stats = srv.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn renamed_and_reordered_queries_share_one_entry() {
        let (srv, q) = server(ServerConfig::default());
        let baseline = srv.query(&q).unwrap();
        // Same query: head variable renamed, body atoms reversed,
        // existentials shifted — one canonical key.
        let renamed = CQ::with_var_head(
            vec![VarId(9)],
            q.atoms()
                .iter()
                .rev()
                .map(|a| a.map_vars(|var| Term::Var(VarId(var.0 + 9))))
                .collect(),
        );
        let out = srv.query(&renamed).unwrap();
        assert!(out.cache_hit, "canonical key must unify syntactic variants");
        let mut a = baseline.outcome.rows.clone();
        let mut b = out.outcome.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn cache_disabled_recompiles_every_call() {
        let (srv, q) = server(ServerConfig {
            cache_plans: false,
            ..ServerConfig::default()
        });
        assert!(!srv.query(&q).unwrap().cache_hit);
        assert!(!srv.query(&q).unwrap().cache_hit);
        assert_eq!(srv.cache_stats().entries, 0);
    }

    #[test]
    fn reload_bumps_generation_and_invalidates() {
        let (voc, tbox, abox, q) = fixture();
        let srv = Server::new(voc.clone(), tbox.clone(), &abox, ServerConfig::default());
        let before = srv.query(&q).unwrap();
        assert_eq!(before.generation, 0);

        // Grow the ABox: a second supervised collaborator.
        let mut voc2 = voc.clone();
        let phd = voc2.find_concept("PhDStudent").unwrap();
        let works = voc2.find_role("worksWith").unwrap();
        let sup = voc2.find_role("supervisedBy").unwrap();
        let extra = voc2.individual("Extra");
        let other = voc2.individual("Other");
        let mut abox2 = abox.clone();
        abox2.assert_concept(phd, extra);
        abox2.assert_role(works, extra, other);
        abox2.assert_role(sup, extra, other);
        srv.reload_abox(&abox2).expect("reload commits");

        let after = srv.query(&q).unwrap();
        assert_eq!(after.generation, 1);
        assert!(!after.cache_hit, "stale plan must not serve the new KB");
        assert!(srv.cache_stats().invalidated >= 1);

        // Row-for-row parity with a cold server over the new ABox.
        let cold = Server::new(
            voc2,
            tbox,
            &abox2,
            ServerConfig {
                cache_plans: false,
                ..ServerConfig::default()
            },
        );
        let mut want = cold.query(&q).unwrap().outcome.rows;
        let mut got = after.outcome.rows.clone();
        want.sort();
        got.sort();
        assert_eq!(got, want);
        assert!(
            got.len() > before.outcome.rows.len(),
            "the new facts must be visible"
        );
    }

    #[test]
    fn apply_batch_is_incremental_and_invalidates_like_reload() {
        let (voc, tbox, abox, q) = fixture();
        let srv = Server::new(voc.clone(), tbox.clone(), &abox, ServerConfig::default());
        let before = srv.query(&q).unwrap();
        assert_eq!(before.generation, 0);

        // Same growth as the reload test, but expressed as a delta with a
        // batch-interned individual.
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let extra = obda_dllite::IndividualId(voc.num_individuals() as u32);
        let other = obda_dllite::IndividualId(voc.num_individuals() as u32 + 1);
        let delta = AboxDelta {
            new_individuals: vec!["Extra".into(), "Other".into()],
            ..AboxDelta::new()
        }
        .insert_concept(phd, extra)
        .insert_role(works, extra, other)
        .insert_role(sup, extra, other);

        let generation = srv.apply_batch(&delta).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(srv.generation(), 1);
        let after = srv.query(&q).unwrap();
        assert_eq!(after.generation, 1);
        assert!(!after.cache_hit, "stale plan must not serve the new KB");
        assert!(srv.cache_stats().invalidated >= 1);

        // Row-for-row parity with a cold server over the equivalent
        // reloaded ABox.
        let mut voc2 = voc.clone();
        voc2.individual("Extra");
        voc2.individual("Other");
        let mut abox2 = abox.clone();
        abox2.apply(&delta);
        let cold = Server::new(
            voc2,
            tbox,
            &abox2,
            ServerConfig {
                cache_plans: false,
                ..ServerConfig::default()
            },
        );
        let mut want = cold.query(&q).unwrap().outcome.rows;
        let mut got = after.outcome.rows.clone();
        want.sort();
        got.sort();
        assert_eq!(got, want);
        assert!(got.len() > before.outcome.rows.len());
    }

    #[test]
    fn pinned_snapshot_survives_apply_batch() {
        let (voc, tbox, abox, q) = fixture();
        let srv = Server::new(voc.clone(), tbox, &abox, ServerConfig::default());
        let pinned = srv.snapshot();
        let mut want_old = srv.query_on(&pinned, &q).unwrap().outcome.rows;
        want_old.sort();

        let phd = voc.find_concept("PhDStudent").unwrap();
        let damian = voc.find_individual("Damian").unwrap();
        srv.apply_batch(&AboxDelta::new().delete_concept(phd, damian))
            .unwrap();

        // The pinned generation-0 snapshot still answers from the old
        // data (snapshot isolation): the apply mutated a clone, not it.
        let replay = srv.query_on(&pinned, &q).unwrap();
        assert_eq!(replay.generation, 0);
        let mut got = replay.outcome.rows;
        got.sort();
        assert_eq!(got, want_old);

        // The live path sees the deletion.
        let now = srv.query(&q).unwrap();
        assert_eq!(now.generation, 1);
        assert!(now.outcome.rows.len() < want_old.len());
    }

    #[test]
    fn empty_batches_still_bump_the_generation() {
        let (srv, q) = server(ServerConfig::default());
        let g1 = srv.apply_batch(&AboxDelta::new()).unwrap();
        assert_eq!(g1, 1);
        let out = srv.query(&q).unwrap();
        assert_eq!(out.generation, 1);
    }

    #[test]
    fn sql_backend_server_agrees_and_caches_the_translation() {
        let (voc, tbox, abox, q) = fixture();
        let native = Server::new(voc.clone(), tbox.clone(), &abox, ServerConfig::default());
        let sql = Server::new(
            voc,
            tbox,
            &abox,
            ServerConfig {
                backend: Backend::Sql,
                ..ServerConfig::default()
            },
        );
        let mut want = native.query(&q).unwrap().outcome.rows;
        want.sort();

        let miss = sql.query(&q).unwrap();
        assert!(!miss.cache_hit);
        let mut got = miss.outcome.rows;
        got.sort();
        assert_eq!(got, want, "cold SQL-backend serving parity");

        // The warm path replays the cached SQL text (no regeneration):
        // same rows, cache hit.
        let hit = sql.query(&q).unwrap();
        assert!(hit.cache_hit);
        let mut got = hit.outcome.rows;
        got.sort();
        assert_eq!(got, want, "warm SQL-backend serving parity");
        assert_eq!(hit.outcome.sql_bytes, miss.outcome.sql_bytes);
    }

    /// The poison-robustness contract: one session thread panicking while
    /// holding a shared lock must leave every other session answering
    /// (readers recover the guard) and must turn writes into typed
    /// errors, not cascading panics.
    #[test]
    fn poisoned_locks_do_not_take_down_other_sessions() {
        let (srv, q) = server(ServerConfig::default());
        let mut want = srv.query(&q).unwrap().outcome.rows;
        want.sort();

        srv.poison_all_locks_for_test();

        // Reader paths: queries, snapshots, stats all still answer.
        let out = srv.query(&q).expect("queries must survive poisoning");
        let mut got = out.outcome.rows;
        got.sort();
        assert_eq!(got, want);
        assert!(out.cache_hit, "the cache survives a poisoned guard");
        assert_eq!(srv.snapshot().generation(), 0);
        let _ = srv.cache_stats();
        assert!(!srv.is_durable());

        // Concurrent sessions keep answering after the poisoning too.
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut rows = srv.query(&q).unwrap().outcome.rows;
                    rows.sort();
                    assert_eq!(rows, want);
                });
            }
        });

        // Writer paths: typed refusal, never a panic, nothing published.
        assert!(matches!(
            srv.apply_batch(&AboxDelta::new()),
            Err(ServerError::Poisoned)
        ));
        assert!(matches!(srv.compact(), Err(ServerError::Poisoned)));
        let (_, _, abox, _) = fixture();
        assert!(matches!(srv.reload_abox(&abox), Err(ServerError::Poisoned)));
        assert_eq!(srv.generation(), 0, "no failed write may publish");
    }

    #[test]
    fn per_session_backends_share_one_server_and_agree() {
        let (srv, q) = server(ServerConfig::default());
        let mut native = srv
            .query_on_as(&srv.snapshot(), &q, Backend::Native)
            .unwrap()
            .outcome
            .rows;
        native.sort();
        let sql_out = srv.query_on_as(&srv.snapshot(), &q, Backend::Sql).unwrap();
        assert!(!sql_out.cache_hit, "backends cache independent entries");
        let mut sql = sql_out.outcome.rows;
        sql.sort();
        assert_eq!(native, sql, "backend parity on one shared snapshot");

        // Each backend warms its own entry.
        assert!(
            srv.query_on_as(&srv.snapshot(), &q, Backend::Sql)
                .unwrap()
                .cache_hit
        );
        assert!(
            srv.query_on_as(&srv.snapshot(), &q, Backend::Native)
                .unwrap()
                .cache_hit
        );
        assert_eq!(srv.cache_stats().entries, 2);
    }

    #[test]
    fn concurrent_clients_and_parallel_arms_agree_with_sequential() {
        let (srv, q) = server(ServerConfig {
            threads: 4,
            ..ServerConfig::default()
        });
        let mut want = srv.query(&q).unwrap().outcome.rows;
        want.sort();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..5 {
                        let mut rows = srv.query(&q).unwrap().outcome.rows;
                        rows.sort();
                        assert_eq!(rows, want);
                    }
                });
            }
        });
        let stats = srv.cache_stats();
        assert_eq!(stats.hits + stats.misses, 41);
    }
}
