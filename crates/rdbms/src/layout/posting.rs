//! Small-inline posting lists for the hash indexes of the storage
//! layouts.
//!
//! The copy-on-write apply path ([`super::Storage::boxed_clone`] +
//! `apply_delta`) clones a whole storage per published generation; with
//! `HashMap<key, Vec<u32>>` indexes that clone pays one heap allocation
//! per *key*, and entity-shaped data (LUBM: advisors, memberships,
//! types) has enormous numbers of keys with fan-out 1–2. [`Posting`]
//! inlines up to two values in the map entry itself, so cloning the
//! index is one table memcpy plus allocations only for the rare
//! high-fan-out keys — the difference between the incremental path
//! merely matching a full reload and beating it comfortably.

use std::collections::hash_map::Entry;
use std::hash::Hash;

use crate::fxhash::FxHashMap;

/// A multiset of `u32` values, inline up to two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Posting {
    /// Up to two values, stored inline (no heap allocation).
    Few { len: u8, vals: [u32; 2] },
    /// Spilled: three or more values. Once spilled, a posting stays
    /// spilled until it empties (no shrink hysteresis to pay on the
    /// delete path).
    Many(Vec<u32>),
}

impl Posting {
    /// A one-element posting.
    pub fn one(v: u32) -> Self {
        Posting::Few {
            len: 1,
            vals: [v, 0],
        }
    }

    /// The values as a slice (uniform read path for both shapes).
    pub fn slice(&self) -> &[u32] {
        match self {
            Posting::Few { len, vals } => &vals[..*len as usize],
            Posting::Many(v) => v,
        }
    }

    pub fn len(&self) -> usize {
        self.slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn contains(&self, v: u32) -> bool {
        self.slice().contains(&v)
    }

    /// Append one value (duplicates allowed — the caller guarantees
    /// multiset semantics match its own dedup discipline).
    pub fn push(&mut self, v: u32) {
        match self {
            Posting::Few { len: len @ 0, vals } => {
                vals[0] = v;
                *len = 1;
            }
            Posting::Few { len: len @ 1, vals } => {
                vals[1] = v;
                *len = 2;
            }
            Posting::Few { vals, .. } => *self = Posting::Many(vec![vals[0], vals[1], v]),
            Posting::Many(vec) => vec.push(v),
        }
    }

    /// Remove one occurrence of `v` (order not preserved). Returns
    /// `true` if an occurrence was found.
    pub fn remove_one(&mut self, v: u32) -> bool {
        match self {
            Posting::Few { len, vals } => {
                let n = *len as usize;
                match vals[..n].iter().position(|&x| x == v) {
                    Some(pos) => {
                        vals[pos] = vals[n - 1];
                        *len -= 1;
                        true
                    }
                    None => false,
                }
            }
            Posting::Many(vec) => match vec.iter().position(|&x| x == v) {
                Some(pos) => {
                    vec.swap_remove(pos);
                    true
                }
                None => false,
            },
        }
    }
}

/// Append `value` to the posting list of `key` (shared by the simple
/// and triple layouts' hash indexes).
pub fn push_posting<K: Eq + Hash>(index: &mut FxHashMap<K, Posting>, key: K, value: u32) {
    match index.entry(key) {
        Entry::Occupied(mut e) => e.get_mut().push(value),
        Entry::Vacant(e) => {
            e.insert(Posting::one(value));
        }
    }
}

/// Drop one occurrence of `value` from the posting list of `key`,
/// removing the entry when it empties — probe-miss accounting then
/// matches a freshly loaded table. Panics if the occurrence is absent
/// (the caller feeds *effective* deltas, so it must be present).
pub fn remove_posting<K: Eq + Hash>(index: &mut FxHashMap<K, Posting>, key: &K, value: u32) {
    let list = index.get_mut(key).expect("posting list exists");
    assert!(list.remove_one(value), "posting list holds the value");
    if list.is_empty() {
        index.remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_inline_then_spills() {
        let mut p = Posting::one(10);
        assert_eq!(p.slice(), &[10]);
        p.push(20);
        assert!(matches!(p, Posting::Few { len: 2, .. }));
        assert_eq!(p.slice(), &[10, 20]);
        p.push(30);
        assert!(matches!(p, Posting::Many(_)), "third value spills");
        assert_eq!(p.slice(), &[10, 20, 30]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn remove_covers_both_shapes_and_misses() {
        let mut p = Posting::one(1);
        p.push(2);
        assert!(p.remove_one(1));
        assert!(!p.remove_one(99));
        assert_eq!(p.slice(), &[2]);
        assert!(p.remove_one(2));
        assert!(p.is_empty());

        let mut m = Posting::one(1);
        m.push(2);
        m.push(3);
        m.push(2); // duplicate occurrence
        assert!(m.remove_one(2));
        assert_eq!(m.len(), 3);
        assert!(m.contains(2), "only one occurrence removed");
        assert!(m.remove_one(2));
        assert!(!m.contains(2));
    }

    #[test]
    fn duplicates_inline() {
        let mut p = Posting::one(5);
        p.push(5);
        assert_eq!(p.slice(), &[5, 5]);
        assert!(p.remove_one(5));
        assert_eq!(p.slice(), &[5]);
    }
}
