//! The *simple layout*: a unary table per concept, a binary table per
//! role, with all one- and two-attribute indexes (§6.1). Facts are
//! dictionary-encoded `u32`s (the `Vocabulary` is the dictionary).

use obda_dllite::{ABox, AboxDelta, ConceptId, RoleId};

use crate::fxhash::FxHashMap;
use crate::layout::posting::{push_posting, remove_posting, Posting};
use crate::layout::{LayoutKind, Storage, BATCH_SIZE};
use crate::meter::{tk_concept, tk_role, Meter};
use crate::stats::CatalogStats;

/// A unary (concept) table: member vector plus membership index. The
/// index stores each member's row position, making deletion O(1)
/// (`swap_remove` + one fix-up) — deletions run inside the serving
/// layer's writer critical section, where a per-fact table scan would
/// stall concurrent writes.
#[derive(Debug, Default, Clone)]
struct UnaryTable {
    rows: Vec<u32>,
    index: FxHashMap<u32, u32>,
}

impl UnaryTable {
    fn insert(&mut self, i: u32) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.index.entry(i) {
            e.insert(self.rows.len() as u32);
            self.rows.push(i);
        }
    }

    fn delete(&mut self, i: u32) {
        if let Some(pos) = self.index.remove(&i) {
            self.rows.swap_remove(pos as usize);
            if let Some(&moved) = self.rows.get(pos as usize) {
                self.index.insert(moved, pos);
            }
        }
    }
}

/// A binary (role) table: parallel subject/object column vectors plus
/// hash indexes on each attribute and on the pair. The columnar split
/// (rather than a `Vec<(u32, u32)>` row vector) lets block scans hand
/// zero-copy `&[u32]` slices to the vectorized executor. Posting lists
/// inline small fan-outs ([`Posting`]) so the copy-on-write clone of the
/// apply path stays a near-memcpy, and the pair index stores row
/// positions so deletion is O(1) like [`UnaryTable`]'s.
#[derive(Debug, Default, Clone)]
struct BinaryTable {
    subs: Vec<u32>,
    objs: Vec<u32>,
    by_subject: FxHashMap<u32, Posting>,
    by_object: FxHashMap<u32, Posting>,
    pairs: FxHashMap<(u32, u32), u32>,
}

impl BinaryTable {
    fn len(&self) -> usize {
        self.subs.len()
    }

    fn insert(&mut self, a: u32, b: u32) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.pairs.entry((a, b)) {
            e.insert(self.subs.len() as u32);
            self.subs.push(a);
            self.objs.push(b);
            push_posting(&mut self.by_subject, a, b);
            push_posting(&mut self.by_object, b, a);
        }
    }

    fn delete(&mut self, a: u32, b: u32) {
        if let Some(pos) = self.pairs.remove(&(a, b)) {
            self.subs.swap_remove(pos as usize);
            self.objs.swap_remove(pos as usize);
            if let Some(&s) = self.subs.get(pos as usize) {
                let o = self.objs[pos as usize];
                self.pairs.insert((s, o), pos);
            }
            remove_posting(&mut self.by_subject, &a, b);
            remove_posting(&mut self.by_object, &b, a);
        }
    }
}

/// Simple-layout storage.
#[derive(Clone)]
pub struct SimpleStorage {
    concepts: FxHashMap<u32, UnaryTable>,
    roles: FxHashMap<u32, BinaryTable>,
    stats: CatalogStats,
}

impl SimpleStorage {
    pub fn load(abox: &ABox) -> Self {
        let mut concepts: FxHashMap<u32, UnaryTable> = FxHashMap::default();
        for &(c, i) in abox.concept_assertions() {
            concepts.entry(c.0).or_default().insert(i.0);
        }
        let mut roles: FxHashMap<u32, BinaryTable> = FxHashMap::default();
        for &(r, a, b) in abox.role_assertions() {
            roles.entry(r.0).or_default().insert(a.0, b.0);
        }
        SimpleStorage {
            concepts,
            roles,
            stats: CatalogStats::from_abox(abox),
        }
    }
}

impl Storage for SimpleStorage {
    fn layout(&self) -> LayoutKind {
        LayoutKind::Simple
    }

    fn stats(&self) -> &CatalogStats {
        &self.stats
    }

    fn for_each_concept(&self, c: ConceptId, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        if let Some(t) = self.concepts.get(&c.0) {
            m.on_scan(tk_concept(c.0), t.rows.len() as u64);
            for &v in &t.rows {
                f(v);
            }
        }
    }

    fn for_each_role(&self, r: RoleId, m: &mut Meter, f: &mut dyn FnMut(u32, u32)) {
        if let Some(t) = self.roles.get(&r.0) {
            m.on_scan(tk_role(r.0), t.len() as u64);
            for (&a, &b) in t.subs.iter().zip(&t.objs) {
                f(a, b);
            }
        }
    }

    fn concept_blocks(&self, c: ConceptId, m: &mut Meter, f: &mut dyn FnMut(&[u32])) {
        if let Some(t) = self.concepts.get(&c.0) {
            m.on_scan(tk_concept(c.0), t.rows.len() as u64);
            for block in t.rows.chunks(BATCH_SIZE) {
                f(block);
            }
        }
    }

    fn role_blocks(&self, r: RoleId, m: &mut Meter, f: &mut dyn FnMut(&[u32], &[u32])) {
        if let Some(t) = self.roles.get(&r.0) {
            m.on_scan(tk_role(r.0), t.len() as u64);
            for (bs, bo) in t.subs.chunks(BATCH_SIZE).zip(t.objs.chunks(BATCH_SIZE)) {
                f(bs, bo);
            }
        }
    }

    fn probe_concept(&self, c: ConceptId, v: u32, m: &mut Meter) -> bool {
        m.on_probe(1);
        self.concepts
            .get(&c.0)
            .is_some_and(|t| t.index.contains_key(&v))
    }

    fn role_objects(&self, r: RoleId, s: u32, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        if let Some(t) = self.roles.get(&r.0) {
            if let Some(objs) = t.by_subject.get(&s) {
                m.on_probe(objs.len() as u64);
                for &o in objs.slice() {
                    f(o);
                }
                return;
            }
        }
        m.on_probe(0);
    }

    fn role_subjects(&self, r: RoleId, o: u32, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        if let Some(t) = self.roles.get(&r.0) {
            if let Some(subs) = t.by_object.get(&o) {
                m.on_probe(subs.len() as u64);
                for &s in subs.slice() {
                    f(s);
                }
                return;
            }
        }
        m.on_probe(0);
    }

    fn probe_role(&self, r: RoleId, s: u32, o: u32, m: &mut Meter) -> bool {
        m.on_probe(1);
        self.roles
            .get(&r.0)
            .is_some_and(|t| t.pairs.contains_key(&(s, o)))
    }

    fn apply_delta(&mut self, delta: &AboxDelta) {
        for &(c, i) in &delta.insert_concepts {
            self.concepts.entry(c.0).or_default().insert(i.0);
        }
        for &(r, a, b) in &delta.insert_roles {
            self.roles.entry(r.0).or_default().insert(a.0, b.0);
        }
        for &(c, i) in &delta.delete_concepts {
            if let Some(t) = self.concepts.get_mut(&c.0) {
                t.delete(i.0);
                if t.rows.is_empty() {
                    self.concepts.remove(&c.0);
                }
            }
        }
        for &(r, a, b) in &delta.delete_roles {
            if let Some(t) = self.roles.get_mut(&r.0) {
                t.delete(a.0, b.0);
                if t.subs.is_empty() {
                    self.roles.remove(&r.0);
                }
            }
        }
        self.stats.apply_delta(delta);
    }

    fn boxed_clone(&self) -> Box<dyn Storage> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::testutil::{check_storage_contract, small_abox};

    #[test]
    fn contract() {
        let (_, abox) = small_abox();
        let storage = SimpleStorage::load(&abox);
        check_storage_contract(&storage);
        assert_eq!(storage.layout(), LayoutKind::Simple);
    }

    #[test]
    fn duplicate_assertions_deduplicate() {
        let (voc, _) = small_abox();
        let a = voc.find_concept("A").unwrap();
        let i0 = voc.find_individual("i0").unwrap();
        let mut abox = ABox::new();
        abox.assert_concept(a, i0);
        abox.assert_concept(a, i0);
        let storage = SimpleStorage::load(&abox);
        assert_eq!(storage.stats().concept_card(a.0), 1);
    }

    #[test]
    fn stats_match_content() {
        let (voc, abox) = small_abox();
        let storage = SimpleStorage::load(&abox);
        let r = voc.find_role("r").unwrap();
        assert_eq!(storage.stats().role_card(r.0), 3);
        assert_eq!(storage.stats().role_distinct_subjects(r.0), 2);
    }

    #[test]
    fn incremental_apply_matches_fresh_load() {
        crate::layout::testutil::check_incremental_matches_reload(|abox| {
            Box::new(SimpleStorage::load(abox))
        });
    }
}
