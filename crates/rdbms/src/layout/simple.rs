//! The *simple layout*: a unary table per concept, a binary table per
//! role, with all one- and two-attribute indexes (§6.1). Facts are
//! dictionary-encoded `u32`s (the `Vocabulary` is the dictionary).

use obda_dllite::{ABox, ConceptId, RoleId};

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::layout::{LayoutKind, Storage};
use crate::meter::{tk_concept, tk_role, Meter};
use crate::stats::CatalogStats;

/// A unary (concept) table: member vector plus membership index.
#[derive(Debug, Default)]
struct UnaryTable {
    rows: Vec<u32>,
    index: FxHashSet<u32>,
}

/// A binary (role) table: pair vector plus hash indexes on each attribute
/// and on the pair.
#[derive(Debug, Default)]
struct BinaryTable {
    rows: Vec<(u32, u32)>,
    by_subject: FxHashMap<u32, Vec<u32>>,
    by_object: FxHashMap<u32, Vec<u32>>,
    pairs: FxHashSet<(u32, u32)>,
}

/// Simple-layout storage.
pub struct SimpleStorage {
    concepts: FxHashMap<u32, UnaryTable>,
    roles: FxHashMap<u32, BinaryTable>,
    stats: CatalogStats,
}

impl SimpleStorage {
    pub fn load(abox: &ABox) -> Self {
        let mut concepts: FxHashMap<u32, UnaryTable> = FxHashMap::default();
        for &(c, i) in abox.concept_assertions() {
            let t = concepts.entry(c.0).or_default();
            if t.index.insert(i.0) {
                t.rows.push(i.0);
            }
        }
        let mut roles: FxHashMap<u32, BinaryTable> = FxHashMap::default();
        for &(r, a, b) in abox.role_assertions() {
            let t = roles.entry(r.0).or_default();
            if t.pairs.insert((a.0, b.0)) {
                t.rows.push((a.0, b.0));
                t.by_subject.entry(a.0).or_default().push(b.0);
                t.by_object.entry(b.0).or_default().push(a.0);
            }
        }
        SimpleStorage {
            concepts,
            roles,
            stats: CatalogStats::from_abox(abox),
        }
    }
}

impl Storage for SimpleStorage {
    fn layout(&self) -> LayoutKind {
        LayoutKind::Simple
    }

    fn stats(&self) -> &CatalogStats {
        &self.stats
    }

    fn for_each_concept(&self, c: ConceptId, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        if let Some(t) = self.concepts.get(&c.0) {
            m.on_scan(tk_concept(c.0), t.rows.len() as u64);
            for &v in &t.rows {
                f(v);
            }
        }
    }

    fn for_each_role(&self, r: RoleId, m: &mut Meter, f: &mut dyn FnMut(u32, u32)) {
        if let Some(t) = self.roles.get(&r.0) {
            m.on_scan(tk_role(r.0), t.rows.len() as u64);
            for &(a, b) in &t.rows {
                f(a, b);
            }
        }
    }

    fn probe_concept(&self, c: ConceptId, v: u32, m: &mut Meter) -> bool {
        m.on_probe(1);
        self.concepts
            .get(&c.0)
            .is_some_and(|t| t.index.contains(&v))
    }

    fn role_objects(&self, r: RoleId, s: u32, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        if let Some(t) = self.roles.get(&r.0) {
            if let Some(objs) = t.by_subject.get(&s) {
                m.on_probe(objs.len() as u64);
                for &o in objs {
                    f(o);
                }
                return;
            }
        }
        m.on_probe(0);
    }

    fn role_subjects(&self, r: RoleId, o: u32, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        if let Some(t) = self.roles.get(&r.0) {
            if let Some(subs) = t.by_object.get(&o) {
                m.on_probe(subs.len() as u64);
                for &s in subs {
                    f(s);
                }
                return;
            }
        }
        m.on_probe(0);
    }

    fn probe_role(&self, r: RoleId, s: u32, o: u32, m: &mut Meter) -> bool {
        m.on_probe(1);
        self.roles
            .get(&r.0)
            .is_some_and(|t| t.pairs.contains(&(s, o)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::testutil::{check_storage_contract, small_abox};

    #[test]
    fn contract() {
        let (_, abox) = small_abox();
        let storage = SimpleStorage::load(&abox);
        check_storage_contract(&storage);
        assert_eq!(storage.layout(), LayoutKind::Simple);
    }

    #[test]
    fn duplicate_assertions_deduplicate() {
        let (voc, _) = small_abox();
        let a = voc.find_concept("A").unwrap();
        let i0 = voc.find_individual("i0").unwrap();
        let mut abox = ABox::new();
        abox.assert_concept(a, i0);
        abox.assert_concept(a, i0);
        let storage = SimpleStorage::load(&abox);
        assert_eq!(storage.stats().concept_card(a.0), 1);
    }

    #[test]
    fn stats_match_content() {
        let (voc, abox) = small_abox();
        let storage = SimpleStorage::load(&abox);
        let r = voc.find_role("r").unwrap();
        assert_eq!(storage.stats().role_card(r.0), 3);
        assert_eq!(storage.stats().role_distinct_subjects(r.0), 2);
    }
}
