//! The *triple layout*: a single `(pred, subj, obj)` table clustered by
//! predicate, with `(pred, subj)` and `(pred, obj)` hash indexes.
//!
//! A common RDF-store physical design; included as an ablation between the
//! simple layout (per-predicate tables) and the DPH entity layout. Scans
//! touch wider rows than the simple layout (the predicate column rides
//! along), modeled as a per-tuple width factor.
//!
//! Physically the predicate clustering is represented as one extent
//! (row vector) per predicate code — the in-memory image of a
//! predicate-clustered B-tree: a predicate scan touches exactly its
//! extent, and an insert lands at the end of its predicate's cluster
//! instead of rewriting a global sorted vector. That makes incremental
//! maintenance ([`Storage::apply_delta`]) O(1) per inserted triple and
//! O(extent) per deleted one, while the metering (`WIDTH_FACTOR` per
//! scanned tuple, per-row probe counts) is unchanged from the sorted
//! representation it replaces.

use obda_dllite::{ABox, AboxDelta, ConceptId, RoleId};

use crate::fxhash::FxHashMap;
use crate::layout::posting::{push_posting, remove_posting, Posting};
use crate::layout::{LayoutKind, Storage, BATCH_SIZE};
use crate::meter::{Meter, TK_TRIPLES};
use crate::stats::CatalogStats;

/// Predicate code disambiguating concepts from roles in the shared table.
fn code_concept(c: u32) -> u32 {
    c << 1
}

fn code_role(r: u32) -> u32 {
    (r << 1) | 1
}

/// Extra scan cost per tuple relative to the simple layout (wider rows,
/// predicate column).
const WIDTH_FACTOR: f64 = 1.5;

/// Object column value for concept-membership triples.
const NO_OBJECT: u32 = u32::MAX;

/// One predicate's cluster as parallel subject/object columns; concepts
/// store `o == NO_OBJECT`. Columnar (rather than `Vec<(u32, u32)>`) so
/// block scans hand zero-copy slices to the vectorized executor.
#[derive(Debug, Default, Clone)]
struct Extent {
    subs: Vec<u32>,
    objs: Vec<u32>,
}

impl Extent {
    fn len(&self) -> usize {
        self.subs.len()
    }
}

/// Triple-table storage.
#[derive(Clone)]
pub struct TripleStorage {
    /// Predicate code → its cluster of `(s, o)` rows. The ABox guarantees
    /// row uniqueness.
    extents: FxHashMap<u32, Extent>,
    /// `(code, s, o)` → position in its extent: O(1) deletion
    /// (`swap_remove` + one fix-up) instead of an extent scan inside the
    /// serving layer's writer critical section.
    row_pos: FxHashMap<(u32, u32, u32), u32>,
    /// `(code, s)` → objects; `(code, o)` → subjects. Small fan-outs
    /// inline ([`Posting`]) to keep copy-on-write clones cheap.
    by_subject: FxHashMap<(u32, u32), Posting>,
    by_object: FxHashMap<(u32, u32), Posting>,
    stats: CatalogStats,
}

impl TripleStorage {
    pub fn load(abox: &ABox) -> Self {
        let mut storage = TripleStorage {
            extents: FxHashMap::default(),
            row_pos: FxHashMap::default(),
            by_subject: FxHashMap::default(),
            by_object: FxHashMap::default(),
            stats: CatalogStats::from_abox(abox),
        };
        for &(c, i) in abox.concept_assertions() {
            storage.insert_triple(code_concept(c.0), i.0, NO_OBJECT);
        }
        for &(r, a, b) in abox.role_assertions() {
            storage.insert_triple(code_role(r.0), a.0, b.0);
        }
        storage
    }

    fn insert_triple(&mut self, code: u32, s: u32, o: u32) {
        let extent = self.extents.entry(code).or_default();
        self.row_pos.insert((code, s, o), extent.len() as u32);
        extent.subs.push(s);
        extent.objs.push(o);
        push_posting(&mut self.by_subject, (code, s), o);
        if o != NO_OBJECT {
            push_posting(&mut self.by_object, (code, o), s);
        }
    }

    fn delete_triple(&mut self, code: u32, s: u32, o: u32) {
        let Some(pos) = self.row_pos.remove(&(code, s, o)) else {
            return;
        };
        let extent = self
            .extents
            .get_mut(&code)
            .expect("row-position index mirrors the extents");
        extent.subs.swap_remove(pos as usize);
        extent.objs.swap_remove(pos as usize);
        if let Some(&ms) = extent.subs.get(pos as usize) {
            let mo = extent.objs[pos as usize];
            self.row_pos.insert((code, ms, mo), pos);
        }
        if extent.subs.is_empty() {
            self.extents.remove(&code);
        }
        remove_posting(&mut self.by_subject, &(code, s), o);
        if o != NO_OBJECT {
            remove_posting(&mut self.by_object, &(code, o), s);
        }
    }

    fn extent(&self, code: u32) -> Option<&Extent> {
        self.extents.get(&code)
    }

    /// Width-factor metering for one full extent scan — a single
    /// [`Meter::on_scan`] for the whole logical scan regardless of how
    /// many blocks it is delivered in, so batched and row execution
    /// meter identically.
    fn meter_extent_scan(m: &mut Meter, len: usize) {
        m.on_scan(TK_TRIPLES, (len as f64 * WIDTH_FACTOR) as u64);
    }
}

impl Storage for TripleStorage {
    fn layout(&self) -> LayoutKind {
        LayoutKind::Triple
    }

    fn stats(&self) -> &CatalogStats {
        &self.stats
    }

    fn for_each_concept(&self, c: ConceptId, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        let extent = self.extent(code_concept(c.0));
        Self::meter_extent_scan(m, extent.map_or(0, Extent::len));
        if let Some(extent) = extent {
            for &s in &extent.subs {
                f(s);
            }
        }
    }

    fn for_each_role(&self, r: RoleId, m: &mut Meter, f: &mut dyn FnMut(u32, u32)) {
        let extent = self.extent(code_role(r.0));
        Self::meter_extent_scan(m, extent.map_or(0, Extent::len));
        if let Some(extent) = extent {
            for (&s, &o) in extent.subs.iter().zip(&extent.objs) {
                f(s, o);
            }
        }
    }

    fn concept_blocks(&self, c: ConceptId, m: &mut Meter, f: &mut dyn FnMut(&[u32])) {
        let extent = self.extent(code_concept(c.0));
        Self::meter_extent_scan(m, extent.map_or(0, Extent::len));
        if let Some(extent) = extent {
            for block in extent.subs.chunks(BATCH_SIZE) {
                f(block);
            }
        }
    }

    fn role_blocks(&self, r: RoleId, m: &mut Meter, f: &mut dyn FnMut(&[u32], &[u32])) {
        let extent = self.extent(code_role(r.0));
        Self::meter_extent_scan(m, extent.map_or(0, Extent::len));
        if let Some(extent) = extent {
            for (bs, bo) in extent
                .subs
                .chunks(BATCH_SIZE)
                .zip(extent.objs.chunks(BATCH_SIZE))
            {
                f(bs, bo);
            }
        }
    }

    fn probe_concept(&self, c: ConceptId, v: u32, m: &mut Meter) -> bool {
        m.on_probe(1);
        self.by_subject.contains_key(&(code_concept(c.0), v))
    }

    fn role_objects(&self, r: RoleId, s: u32, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        match self.by_subject.get(&(code_role(r.0), s)) {
            Some(objs) => {
                m.on_probe(objs.len() as u64);
                for &o in objs.slice() {
                    f(o);
                }
            }
            None => m.on_probe(0),
        }
    }

    fn role_subjects(&self, r: RoleId, o: u32, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        match self.by_object.get(&(code_role(r.0), o)) {
            Some(subs) => {
                m.on_probe(subs.len() as u64);
                for &s in subs.slice() {
                    f(s);
                }
            }
            None => m.on_probe(0),
        }
    }

    fn probe_role(&self, r: RoleId, s: u32, o: u32, m: &mut Meter) -> bool {
        m.on_probe(1);
        match self.by_subject.get(&(code_role(r.0), s)) {
            Some(objs) => objs.contains(o),
            None => false,
        }
    }

    fn apply_delta(&mut self, delta: &AboxDelta) {
        for &(c, i) in &delta.insert_concepts {
            self.insert_triple(code_concept(c.0), i.0, NO_OBJECT);
        }
        for &(r, a, b) in &delta.insert_roles {
            self.insert_triple(code_role(r.0), a.0, b.0);
        }
        for &(c, i) in &delta.delete_concepts {
            self.delete_triple(code_concept(c.0), i.0, NO_OBJECT);
        }
        for &(r, a, b) in &delta.delete_roles {
            self.delete_triple(code_role(r.0), a.0, b.0);
        }
        self.stats.apply_delta(delta);
    }

    fn boxed_clone(&self) -> Box<dyn Storage> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::testutil::{check_storage_contract, small_abox};
    use crate::profile::EngineProfile;

    #[test]
    fn contract() {
        let (_, abox) = small_abox();
        let storage = TripleStorage::load(&abox);
        check_storage_contract(&storage);
        assert_eq!(storage.layout(), LayoutKind::Triple);
    }

    #[test]
    fn scans_cost_more_than_simple_layout() {
        let (voc, abox) = small_abox();
        let triple = TripleStorage::load(&abox);
        let simple = crate::layout::simple::SimpleStorage::load(&abox);
        let profile = EngineProfile::pg_like();
        let r = voc.find_role("r").unwrap();

        let mut mt = Meter::new(&profile);
        triple.for_each_role(r, &mut mt, &mut |_, _| {});
        let mut ms = Meter::new(&profile);
        simple.for_each_role(r, &mut ms, &mut |_, _| {});
        assert!(mt.metrics.scanned > ms.metrics.scanned);
    }

    #[test]
    fn concept_and_role_codes_do_not_collide() {
        // Concept 1 and role 0 / role 1 must live in distinct extents.
        assert_ne!(code_concept(1), code_role(0));
        assert_ne!(code_concept(1), code_role(1));
        assert_ne!(code_concept(0), code_role(0));
    }

    #[test]
    fn incremental_apply_matches_fresh_load() {
        crate::layout::testutil::check_incremental_matches_reload(|abox| {
            Box::new(TripleStorage::load(abox))
        });
    }

    #[test]
    fn delete_shrinks_the_metered_extent() {
        let (voc, mut abox) = small_abox();
        let r = voc.find_role("r").unwrap();
        let mut storage = TripleStorage::load(&abox);
        let pairs: Vec<_> = abox.role_pairs(r).collect();
        let mut delta = obda_dllite::AboxDelta::new();
        for &(s, o) in &pairs {
            delta.delete_roles.push((r, s, o));
        }
        let eff = abox.apply(&delta);
        storage.apply_delta(&eff);
        let profile = EngineProfile::pg_like();
        let mut m = Meter::new(&profile);
        let mut n = 0;
        storage.for_each_role(r, &mut m, &mut |_, _| n += 1);
        assert_eq!(n, 0);
        assert_eq!(m.metrics.scanned, 0.0, "empty extent scans zero tuples");
    }
}
