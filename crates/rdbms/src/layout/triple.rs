//! The *triple layout*: a single `(pred, subj, obj)` table clustered by
//! predicate, with `(pred, subj)` and `(pred, obj)` hash indexes.
//!
//! A common RDF-store physical design; included as an ablation between the
//! simple layout (per-predicate tables) and the DPH entity layout. Scans
//! touch wider rows than the simple layout (the predicate column rides
//! along), modeled as a per-tuple width factor.

use obda_dllite::{ABox, ConceptId, RoleId};

use crate::fxhash::FxHashMap;
use crate::layout::{LayoutKind, Storage};
use crate::meter::{Meter, TK_TRIPLES};
use crate::stats::CatalogStats;

/// Predicate code disambiguating concepts from roles in the shared table.
fn code_concept(c: u32) -> u32 {
    c << 1
}

fn code_role(r: u32) -> u32 {
    (r << 1) | 1
}

/// Extra scan cost per tuple relative to the simple layout (wider rows,
/// predicate column).
const WIDTH_FACTOR: f64 = 1.5;

/// Triple-table storage.
pub struct TripleStorage {
    /// Triples sorted by predicate code; `(code, s, o)`; concepts store
    /// `o == u32::MAX`.
    triples: Vec<(u32, u32, u32)>,
    /// Predicate code → range in `triples`.
    ranges: FxHashMap<u32, std::ops::Range<usize>>,
    /// `(code, s)` → row indices; `(code, o)` → row indices.
    by_subject: FxHashMap<(u32, u32), Vec<u32>>,
    by_object: FxHashMap<(u32, u32), Vec<u32>>,
    stats: CatalogStats,
}

impl TripleStorage {
    pub fn load(abox: &ABox) -> Self {
        let mut triples: Vec<(u32, u32, u32)> = Vec::with_capacity(abox.len());
        for &(c, i) in abox.concept_assertions() {
            triples.push((code_concept(c.0), i.0, u32::MAX));
        }
        for &(r, a, b) in abox.role_assertions() {
            triples.push((code_role(r.0), a.0, b.0));
        }
        triples.sort_unstable();
        triples.dedup();

        let mut ranges: FxHashMap<u32, std::ops::Range<usize>> = FxHashMap::default();
        let mut start = 0usize;
        for i in 1..=triples.len() {
            if i == triples.len() || triples[i].0 != triples[start].0 {
                ranges.insert(triples[start].0, start..i);
                start = i;
            }
        }

        let mut by_subject: FxHashMap<(u32, u32), Vec<u32>> = FxHashMap::default();
        let mut by_object: FxHashMap<(u32, u32), Vec<u32>> = FxHashMap::default();
        for (idx, &(code, s, o)) in triples.iter().enumerate() {
            by_subject.entry((code, s)).or_default().push(idx as u32);
            if o != u32::MAX {
                by_object.entry((code, o)).or_default().push(idx as u32);
            }
        }
        TripleStorage {
            triples,
            ranges,
            by_subject,
            by_object,
            stats: CatalogStats::from_abox(abox),
        }
    }

    fn range_of(&self, code: u32) -> std::ops::Range<usize> {
        self.ranges.get(&code).cloned().unwrap_or(0..0)
    }
}

impl Storage for TripleStorage {
    fn layout(&self) -> LayoutKind {
        LayoutKind::Triple
    }

    fn stats(&self) -> &CatalogStats {
        &self.stats
    }

    fn for_each_concept(&self, c: ConceptId, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        let range = self.range_of(code_concept(c.0));
        m.on_scan(TK_TRIPLES, (range.len() as f64 * WIDTH_FACTOR) as u64);
        for &(_, s, _) in &self.triples[range] {
            f(s);
        }
    }

    fn for_each_role(&self, r: RoleId, m: &mut Meter, f: &mut dyn FnMut(u32, u32)) {
        let range = self.range_of(code_role(r.0));
        m.on_scan(TK_TRIPLES, (range.len() as f64 * WIDTH_FACTOR) as u64);
        for &(_, s, o) in &self.triples[range] {
            f(s, o);
        }
    }

    fn probe_concept(&self, c: ConceptId, v: u32, m: &mut Meter) -> bool {
        m.on_probe(1);
        self.by_subject.contains_key(&(code_concept(c.0), v))
    }

    fn role_objects(&self, r: RoleId, s: u32, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        match self.by_subject.get(&(code_role(r.0), s)) {
            Some(rows) => {
                m.on_probe(rows.len() as u64);
                for &idx in rows {
                    f(self.triples[idx as usize].2);
                }
            }
            None => m.on_probe(0),
        }
    }

    fn role_subjects(&self, r: RoleId, o: u32, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        match self.by_object.get(&(code_role(r.0), o)) {
            Some(rows) => {
                m.on_probe(rows.len() as u64);
                for &idx in rows {
                    f(self.triples[idx as usize].1);
                }
            }
            None => m.on_probe(0),
        }
    }

    fn probe_role(&self, r: RoleId, s: u32, o: u32, m: &mut Meter) -> bool {
        m.on_probe(1);
        match self.by_subject.get(&(code_role(r.0), s)) {
            Some(rows) => rows.iter().any(|&idx| self.triples[idx as usize].2 == o),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::testutil::{check_storage_contract, small_abox};
    use crate::profile::EngineProfile;

    #[test]
    fn contract() {
        let (_, abox) = small_abox();
        let storage = TripleStorage::load(&abox);
        check_storage_contract(&storage);
        assert_eq!(storage.layout(), LayoutKind::Triple);
    }

    #[test]
    fn scans_cost_more_than_simple_layout() {
        let (voc, abox) = small_abox();
        let triple = TripleStorage::load(&abox);
        let simple = crate::layout::simple::SimpleStorage::load(&abox);
        let profile = EngineProfile::pg_like();
        let r = voc.find_role("r").unwrap();

        let mut mt = Meter::new(&profile);
        triple.for_each_role(r, &mut mt, &mut |_, _| {});
        let mut ms = Meter::new(&profile);
        simple.for_each_role(r, &mut ms, &mut |_, _| {});
        assert!(mt.metrics.scanned > ms.metrics.scanned);
    }

    #[test]
    fn concept_and_role_codes_do_not_collide() {
        // Concept 1 and role 0 / role 1 must live in distinct ranges.
        assert_ne!(code_concept(1), code_role(0));
        assert_ne!(code_concept(1), code_role(1));
        assert_ne!(code_concept(0), code_role(0));
    }
}
