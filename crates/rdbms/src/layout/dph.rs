//! The DB2RDF-like entity layout \[9\]: DPH (direct primary hash) and RPH
//! (reverse primary hash) tables.
//!
//! Each DPH row bundles one subject's `(predicate, value)` entries into
//! `k` hashed column pairs; a subject with more predicates (or repeated
//! predicates — multi-valued) *spills* into additional rows. The RPH table
//! mirrors the structure keyed by object. The design shines for
//! entity-centric lookups (bound subject → one hashed row fetch) and is
//! poor for predicate-extension scans — every scan walks the whole wide
//! table. §6.3 finds it "not the best alternative when evaluating queries
//! issued from reformulation against an ontology"; this module reproduces
//! both effects, and `crate::sql` reproduces the statement-size blowup of
//! its SQL (per-atom CASE over candidate columns).

use obda_dllite::{ABox, AboxDelta, ConceptId, RoleId};

use crate::fxhash::FxHashMap;
use crate::layout::{LayoutKind, Storage, BATCH_SIZE};
use crate::meter::{Meter, TK_DPH, TK_RPH};
use crate::stats::CatalogStats;

/// Number of (pred, val) column pairs per row — DB2RDF determines this
/// from the data; we fix a typical value.
pub const DPH_COLUMNS: usize = 8;

/// Predicate code: concepts and roles share the column space.
fn code_concept(c: u32) -> u32 {
    c << 1
}

fn code_role(r: u32) -> u32 {
    (r << 1) | 1
}

/// Marker value for concept membership entries (DB2RDF stores the type
/// predicate like any other). Public because the `sqlexec` catalog
/// virtualizes the same convention in the SQL-visible `dph` table.
pub const TYPE_MARKER: u32 = u32::MAX;

/// One wide row: key plus up to [`DPH_COLUMNS`] (pred, val) entries.
#[derive(Debug, Clone)]
struct WideRow {
    key: u32,
    entries: Vec<(u32, u32)>, // (pred code, value)
}

/// Repack trigger: a table is rebuilt once tombstones outnumber live
/// rows **and** there are at least this many of them. The floor keeps
/// tiny tables (where a handful of tombstones is harmless and a rebuild
/// churns the copy-on-write clone for nothing) on the cheap path.
const REPACK_MIN_DEAD: usize = 8;

/// One side of the entity layout (DPH keyed by subject, RPH by object):
/// the wide-row vector plus the key → row-indices index.
#[derive(Debug, Clone, Default)]
struct WideTable {
    rows: Vec<WideRow>,
    by_key: FxHashMap<u32, Vec<u32>>,
    /// Tombstone count: rows whose entries were all deleted. Maintained
    /// incrementally so the repack check is O(1) per `apply_delta`.
    dead: u32,
}

impl WideTable {
    /// Incremental insert: append the entry to the key's last row if a
    /// column pair is free, else spill into a fresh row at the end of the
    /// table — the same placement DB2RDF performs on a live table (a
    /// fresh bulk load may pack the same data into fewer rows; compaction
    /// restores the packed form).
    fn insert(&mut self, key: u32, entry: (u32, u32)) {
        let indices = self.by_key.entry(key).or_default();
        if let Some(&last) = indices.last() {
            let row = &mut self.rows[last as usize];
            if row.entries.len() < DPH_COLUMNS {
                if row.entries.is_empty() {
                    // Reusing a tombstone revives it.
                    self.dead -= 1;
                }
                row.entries.push(entry);
                return;
            }
        }
        indices.push(self.rows.len() as u32);
        self.rows.push(WideRow {
            key,
            entries: vec![entry],
        });
    }

    /// Incremental delete: remove the entry from whichever of the key's
    /// rows holds it. A row emptied by deletion stays as a tombstone —
    /// predicate scans still touch it (the un-vacuumed-page effect) —
    /// until [`WideTable::repack_if_needed`] rebuilds the table.
    fn delete(&mut self, key: u32, entry: (u32, u32)) {
        let Some(indices) = self.by_key.get(&key) else {
            return;
        };
        for &idx in indices {
            let row = &mut self.rows[idx as usize];
            if let Some(pos) = row.entries.iter().position(|&e| e == entry) {
                row.entries.swap_remove(pos);
                if row.entries.is_empty() {
                    self.dead += 1;
                }
                return;
            }
        }
    }

    /// VACUUM analogue, run at the end of every `apply_delta`: once
    /// tombstones outnumber live rows (and clear [`REPACK_MIN_DEAD`]),
    /// rebuild the table from its live entries. Without this, a
    /// delete-heavy workload grows the wide-row vector without bound and
    /// every predicate scan pays for rows that hold nothing.
    fn repack_if_needed(&mut self) {
        let dead = self.dead as usize;
        if dead < REPACK_MIN_DEAD || dead * 2 <= self.rows.len() {
            return;
        }
        let mut live: FxHashMap<u32, Vec<(u32, u32)>> = FxHashMap::default();
        for row in &self.rows {
            if !row.entries.is_empty() {
                live.entry(row.key)
                    .or_default()
                    .extend_from_slice(&row.entries);
            }
        }
        *self = pack_rows(live);
    }
}

/// Column position a predicate hashes to (its *primary* column; conflicts
/// spill to the next free slot, which is why SQL must CASE over all
/// candidate columns).
pub fn primary_column(pred_code: u32) -> usize {
    (pred_code as usize * 2654435761) % DPH_COLUMNS
}

/// Entity-layout storage: DPH + RPH.
#[derive(Clone)]
pub struct DphStorage {
    dph: WideTable,
    rph: WideTable,
    stats: CatalogStats,
}

impl DphStorage {
    pub fn load(abox: &ABox) -> Self {
        // Gather per-subject and per-object entry lists.
        let mut by_subject: FxHashMap<u32, Vec<(u32, u32)>> = FxHashMap::default();
        let mut by_object: FxHashMap<u32, Vec<(u32, u32)>> = FxHashMap::default();
        for &(c, i) in abox.concept_assertions() {
            by_subject
                .entry(i.0)
                .or_default()
                .push((code_concept(c.0), TYPE_MARKER));
        }
        for &(r, a, b) in abox.role_assertions() {
            by_subject
                .entry(a.0)
                .or_default()
                .push((code_role(r.0), b.0));
            by_object
                .entry(b.0)
                .or_default()
                .push((code_role(r.0), a.0));
        }
        DphStorage {
            dph: pack_rows(by_subject),
            rph: pack_rows(by_object),
            stats: CatalogStats::from_abox(abox),
        }
    }

    /// Total DPH rows (spills and tombstones included) — the cost of any
    /// predicate scan.
    pub fn dph_rows(&self) -> usize {
        self.dph.rows.len()
    }

    pub fn rph_rows(&self) -> usize {
        self.rph.rows.len()
    }
}

/// Pack entry lists into wide rows of at most [`DPH_COLUMNS`] entries,
/// each predicate placed at (or probed after) its primary column; overflow
/// spills into extra rows for the same key.
fn pack_rows(map: FxHashMap<u32, Vec<(u32, u32)>>) -> WideTable {
    let mut table = WideTable::default();
    let mut keys: Vec<u32> = map.keys().copied().collect();
    keys.sort_unstable(); // deterministic layout
    for key in keys {
        let entries = &map[&key];
        for chunk in entries.chunks(DPH_COLUMNS) {
            table
                .by_key
                .entry(key)
                .or_default()
                .push(table.rows.len() as u32);
            table.rows.push(WideRow {
                key,
                entries: chunk.to_vec(),
            });
        }
    }
    table
}

impl Storage for DphStorage {
    fn layout(&self) -> LayoutKind {
        LayoutKind::Dph
    }

    fn stats(&self) -> &CatalogStats {
        &self.stats
    }

    fn for_each_concept(&self, c: ConceptId, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        // Full DPH scan: every wide row is touched (the layout has no
        // per-predicate extent).
        let code = code_concept(c.0);
        m.on_scan(TK_DPH, (self.dph.rows.len() * 2) as u64);
        for row in &self.dph.rows {
            if row.entries.iter().any(|&(p, _)| p == code) {
                f(row.key);
            }
        }
    }

    fn for_each_role(&self, r: RoleId, m: &mut Meter, f: &mut dyn FnMut(u32, u32)) {
        let code = code_role(r.0);
        m.on_scan(TK_DPH, (self.dph.rows.len() * 2) as u64);
        for row in &self.dph.rows {
            for &(p, v) in &row.entries {
                if p == code {
                    f(row.key, v);
                }
            }
        }
    }

    fn concept_blocks(&self, c: ConceptId, m: &mut Meter, f: &mut dyn FnMut(&[u32])) {
        // Same full-table walk and metering as `for_each_concept`; the
        // matching keys are staged into a block-sized scratch column
        // (the layout has no contiguous per-predicate extent to slice).
        let code = code_concept(c.0);
        m.on_scan(TK_DPH, (self.dph.rows.len() * 2) as u64);
        let mut buf = Vec::with_capacity(BATCH_SIZE);
        for row in &self.dph.rows {
            if row.entries.iter().any(|&(p, _)| p == code) {
                buf.push(row.key);
                if buf.len() == BATCH_SIZE {
                    f(&buf);
                    buf.clear();
                }
            }
        }
        if !buf.is_empty() {
            f(&buf);
        }
    }

    fn role_blocks(&self, r: RoleId, m: &mut Meter, f: &mut dyn FnMut(&[u32], &[u32])) {
        let code = code_role(r.0);
        m.on_scan(TK_DPH, (self.dph.rows.len() * 2) as u64);
        let mut subs = Vec::with_capacity(BATCH_SIZE);
        let mut objs = Vec::with_capacity(BATCH_SIZE);
        for row in &self.dph.rows {
            for &(p, v) in &row.entries {
                if p == code {
                    subs.push(row.key);
                    objs.push(v);
                    if subs.len() == BATCH_SIZE {
                        f(&subs, &objs);
                        subs.clear();
                        objs.clear();
                    }
                }
            }
        }
        if !subs.is_empty() {
            f(&subs, &objs);
        }
    }

    fn probe_concept(&self, c: ConceptId, v: u32, m: &mut Meter) -> bool {
        m.on_probe(1);
        let code = code_concept(c.0);
        self.dph.by_key.get(&v).is_some_and(|rows| {
            rows.iter().any(|&idx| {
                self.dph.rows[idx as usize]
                    .entries
                    .iter()
                    .any(|&(p, _)| p == code)
            })
        })
    }

    fn role_objects(&self, r: RoleId, s: u32, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        let code = code_role(r.0);
        match self.dph.by_key.get(&s) {
            Some(rows) => {
                m.on_probe(rows.len() as u64);
                for &idx in rows {
                    for &(p, v) in &self.dph.rows[idx as usize].entries {
                        if p == code {
                            f(v);
                        }
                    }
                }
            }
            None => m.on_probe(0),
        }
    }

    fn role_subjects(&self, r: RoleId, o: u32, m: &mut Meter, f: &mut dyn FnMut(u32)) {
        let code = code_role(r.0);
        match self.rph.by_key.get(&o) {
            Some(rows) => {
                m.on_probe(rows.len() as u64);
                for &idx in rows {
                    for &(p, v) in &self.rph.rows[idx as usize].entries {
                        if p == code {
                            f(v);
                        }
                    }
                }
            }
            None => m.on_probe(0),
        }
    }

    fn probe_role(&self, r: RoleId, s: u32, o: u32, m: &mut Meter) -> bool {
        let code = code_role(r.0);
        m.on_probe(1);
        self.dph.by_key.get(&s).is_some_and(|rows| {
            rows.iter().any(|&idx| {
                self.dph.rows[idx as usize]
                    .entries
                    .iter()
                    .any(|&(p, v)| p == code && v == o)
            })
        })
    }

    fn apply_delta(&mut self, delta: &AboxDelta) {
        for &(c, i) in &delta.insert_concepts {
            self.dph.insert(i.0, (code_concept(c.0), TYPE_MARKER));
        }
        for &(r, a, b) in &delta.insert_roles {
            self.dph.insert(a.0, (code_role(r.0), b.0));
            self.rph.insert(b.0, (code_role(r.0), a.0));
        }
        for &(c, i) in &delta.delete_concepts {
            self.dph.delete(i.0, (code_concept(c.0), TYPE_MARKER));
        }
        for &(r, a, b) in &delta.delete_roles {
            self.dph.delete(a.0, (code_role(r.0), b.0));
            self.rph.delete(b.0, (code_role(r.0), a.0));
        }
        self.dph.repack_if_needed();
        self.rph.repack_if_needed();
        self.stats.apply_delta(delta);
    }

    fn boxed_clone(&self) -> Box<dyn Storage> {
        Box::new(self.clone())
    }
}

// RPH scans account against TK_RPH when used; expose for tests.
#[allow(dead_code)]
fn rph_table_key() -> crate::meter::TableKey {
    TK_RPH
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::testutil::{check_storage_contract, small_abox};
    use crate::profile::EngineProfile;
    use obda_dllite::Vocabulary;

    #[test]
    fn contract() {
        let (_, abox) = small_abox();
        let storage = DphStorage::load(&abox);
        check_storage_contract(&storage);
        assert_eq!(storage.layout(), LayoutKind::Dph);
    }

    #[test]
    fn spill_rows_for_wide_subjects() {
        let mut voc = Vocabulary::new();
        let s = voc.individual("hub");
        let t = voc.individual("t");
        let mut abox = ABox::new();
        // One subject with 20 role assertions: must spill into ≥3 rows of
        // 8 columns.
        for i in 0..20 {
            let r = voc.role(&format!("r{i}"));
            abox.assert_role(r, s, t);
        }
        let storage = DphStorage::load(&abox);
        assert!(storage.dph_rows() >= 3, "20 entries / 8 cols → ≥3 rows");
        // All 20 still retrievable.
        let profile = EngineProfile::pg_like();
        let mut m = Meter::new(&profile);
        let mut count = 0;
        for i in 0..20u32 {
            storage.role_objects(obda_dllite::RoleId(i), s.0, &mut m, &mut |_| count += 1);
        }
        assert_eq!(count, 20);
    }

    #[test]
    fn scans_are_much_costlier_than_simple() {
        let (voc, abox) = small_abox();
        let dph = DphStorage::load(&abox);
        let simple = crate::layout::simple::SimpleStorage::load(&abox);
        let profile = EngineProfile::pg_like();
        let r = voc.find_role("s").unwrap(); // tiny table: 1 pair
        let mut md = Meter::new(&profile);
        dph.for_each_role(r, &mut md, &mut |_, _| {});
        let mut ms = Meter::new(&profile);
        simple.for_each_role(r, &mut ms, &mut |_, _| {});
        // DPH scans the whole wide table even for a 1-pair predicate.
        assert!(md.metrics.scanned > ms.metrics.scanned * 2.0);
    }

    #[test]
    fn primary_column_is_stable_and_in_range() {
        for code in 0..100 {
            let col = primary_column(code);
            assert!(col < DPH_COLUMNS);
            assert_eq!(col, primary_column(code));
        }
    }

    #[test]
    fn incremental_apply_matches_fresh_load() {
        crate::layout::testutil::check_incremental_matches_reload(|abox| {
            Box::new(DphStorage::load(abox))
        });
    }

    #[test]
    fn incremental_inserts_spill_and_deletes_tombstone() {
        let mut voc = Vocabulary::new();
        let s = voc.individual("hub");
        let t = voc.individual("t");
        let mut abox = ABox::new();
        let roles: Vec<_> = (0..20).map(|i| voc.role(&format!("r{i}"))).collect();
        abox.assert_role(roles[0], s, t);
        let mut storage = DphStorage::load(&abox);
        assert_eq!(storage.dph_rows(), 1);

        // 19 incremental inserts on one subject must spill past one row.
        let mut delta = obda_dllite::AboxDelta::new();
        for &r in &roles[1..] {
            delta.insert_roles.push((r, s, t));
        }
        let eff = abox.apply(&delta);
        storage.apply_delta(&eff);
        assert!(storage.dph_rows() >= 3, "20 entries / 8 cols → ≥3 rows");
        let profile = EngineProfile::pg_like();
        let mut m = Meter::new(&profile);
        let mut count = 0;
        for &r in &roles {
            storage.role_objects(r, s.0, &mut m, &mut |_| count += 1);
        }
        assert_eq!(count, 20);

        // Deleting everything leaves tombstone rows (scans still touch
        // them) but no retrievable entries. The table stays under the
        // REPACK_MIN_DEAD floor, so no repack fires here.
        let mut wipe = obda_dllite::AboxDelta::new();
        for &r in &roles {
            wipe.delete_roles.push((r, s, t));
        }
        let eff = abox.apply(&wipe);
        storage.apply_delta(&eff);
        assert!(
            storage.dph_rows() >= 3,
            "below the repack floor, tombstones persist"
        );
        let mut gone = 0;
        for &r in &roles {
            storage.role_objects(r, s.0, &mut m, &mut |_| gone += 1);
        }
        assert_eq!(gone, 0);
        assert_eq!(storage.stats().total_facts, 0);
    }

    #[test]
    fn heavy_churn_repacks_and_scan_cost_stops_degrading() {
        let mut voc = Vocabulary::new();
        let r = voc.role("r");
        let t = voc.individual("t");
        let mut abox = ABox::new();
        let mut storage = DphStorage::load(&abox);
        let profile = EngineProfile::pg_like();

        // 40 waves of 16 single-entry subjects: each wave inserts fresh
        // facts and deletes the previous wave's, emptying one row per
        // dead subject. Without the repack threshold the wide-row vector
        // would end up ~640 rows of tombstones.
        let waves = 40usize;
        let per_wave = 16usize;
        for wave in 0..waves {
            let mut delta = obda_dllite::AboxDelta::new();
            for k in 0..per_wave {
                let s = voc.individual(&format!("s{wave}_{k}"));
                delta.insert_roles.push((r, s, t));
            }
            if wave > 0 {
                for k in 0..per_wave {
                    let s = voc.find_individual(&format!("s{}_{k}", wave - 1)).unwrap();
                    delta.delete_roles.push((r, s, t));
                }
            }
            let eff = abox.apply(&delta);
            storage.apply_delta(&eff);
            // Tombstones never outnumber the live rows for long.
            assert!(
                storage.dph_rows() <= 4 * per_wave + 2 * REPACK_MIN_DEAD,
                "wave {wave}: {} rows — tombstones are accumulating",
                storage.dph_rows()
            );
        }

        // Scan cost is a function of live data, not churn history: the
        // churned table scans like a fresh load of the same ABox (the
        // width-2 metering makes a tombstone-free scan 2 tuples per row).
        let reloaded = DphStorage::load(&abox);
        let mut churned_m = Meter::new(&profile);
        let mut fresh_m = Meter::new(&profile);
        let mut n = 0;
        storage.for_each_role(r, &mut churned_m, &mut |_, _| n += 1);
        reloaded.for_each_role(r, &mut fresh_m, &mut |_, _| {});
        assert_eq!(n, per_wave, "only the last wave's facts remain");
        assert!(
            churned_m.metrics.scanned <= fresh_m.metrics.scanned * 3.0,
            "churned scan ({}) must stay near fresh-load scan ({})",
            churned_m.metrics.scanned,
            fresh_m.metrics.scanned
        );

        // And the table still answers exactly like a fresh load.
        crate::layout::testutil::assert_same_contents(&storage, &reloaded, &voc, "after churn");
    }

    #[test]
    fn multivalued_predicates_survive_packing() {
        let mut voc = Vocabulary::new();
        let r = voc.role("r");
        let s = voc.individual("s");
        let mut abox = ABox::new();
        for i in 0..12 {
            let o = voc.individual(&format!("o{i}"));
            abox.assert_role(r, s, o);
        }
        let storage = DphStorage::load(&abox);
        let profile = EngineProfile::pg_like();
        let mut m = Meter::new(&profile);
        let mut objs = Vec::new();
        storage.role_objects(r, s.0, &mut m, &mut |o| objs.push(o));
        assert_eq!(objs.len(), 12, "multi-valued predicate spills correctly");
    }
}
