//! Storage layouts for the ABox.
//!
//! §6.1 evaluates three physical designs:
//!
//! * **simple** — one unary table per concept, one binary table per role,
//!   all one- and two-attribute indexes ([`simple::SimpleStorage`]);
//! * **triple** — a single `(pred, subj, obj)` table with predicate-first
//!   clustering (a common RDF-store baseline; an extra ablation here);
//! * **DPH/RPH** — the DB2RDF entity-oriented layout \[9\]: wide rows
//!   bundling a subject's predicates into hashed columns, plus the reverse
//!   table ([`dph::DphStorage`]).
//!
//! All layouts expose the same [`Storage`] access-path interface; they
//! differ in which operations are cheap, in how much work scans cost, and
//! in the SQL text they force (`crate::sql`).

pub mod dph;
pub mod simple;
pub mod triple;

use obda_dllite::{ConceptId, RoleId};

use crate::meter::Meter;
use crate::stats::CatalogStats;

/// Which layout a storage implements (drives SQL generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutKind {
    Simple,
    Triple,
    Dph,
}

impl LayoutKind {
    pub fn name(&self) -> &'static str {
        match self {
            LayoutKind::Simple => "simple",
            LayoutKind::Triple => "triple",
            LayoutKind::Dph => "rdf-dph",
        }
    }
}

/// Uniform access-path interface over the stored ABox.
///
/// Every access reports its work to the [`Meter`]; executors never touch
/// the data behind the meter's back, so measured work units are complete.
pub trait Storage: Send + Sync {
    fn layout(&self) -> LayoutKind;

    fn stats(&self) -> &CatalogStats;

    /// Scan all members of concept `c`.
    fn for_each_concept(&self, c: ConceptId, m: &mut Meter, f: &mut dyn FnMut(u32));

    /// Scan all pairs of role `r`.
    fn for_each_role(&self, r: RoleId, m: &mut Meter, f: &mut dyn FnMut(u32, u32));

    /// Membership probe `c(v)`.
    fn probe_concept(&self, c: ConceptId, v: u32, m: &mut Meter) -> bool;

    /// Objects `o` with `r(s, o)`.
    fn role_objects(&self, r: RoleId, s: u32, m: &mut Meter, f: &mut dyn FnMut(u32));

    /// Subjects `s` with `r(s, o)`.
    fn role_subjects(&self, r: RoleId, o: u32, m: &mut Meter, f: &mut dyn FnMut(u32));

    /// Pair probe `r(s, o)`.
    fn probe_role(&self, r: RoleId, s: u32, o: u32, m: &mut Meter) -> bool;
}

#[cfg(test)]
pub(crate) mod testutil {
    use obda_dllite::{ABox, Vocabulary};

    /// A tiny shared fixture: A = {i0, i1}, B = {i2},
    /// r = {(i0,i1), (i0,i2), (i3,i2)}, s = {(i1,i0)}.
    pub fn small_abox() -> (Vocabulary, ABox) {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let r = voc.role("r");
        let s = voc.role("s");
        let i: Vec<_> = (0..4).map(|k| voc.individual(&format!("i{k}"))).collect();
        let mut abox = ABox::new();
        abox.assert_concept(a, i[0]);
        abox.assert_concept(a, i[1]);
        abox.assert_concept(b, i[2]);
        abox.assert_role(r, i[0], i[1]);
        abox.assert_role(r, i[0], i[2]);
        abox.assert_role(r, i[3], i[2]);
        abox.assert_role(s, i[1], i[0]);
        (voc, abox)
    }

    /// Exercise the full [`super::Storage`] contract on any layout.
    pub fn check_storage_contract(storage: &dyn super::Storage) {
        use crate::meter::Meter;
        use crate::profile::EngineProfile;
        let profile = EngineProfile::pg_like();
        let mut m = Meter::new(&profile);

        // Concept scan.
        let mut members = Vec::new();
        storage.for_each_concept(obda_dllite::ConceptId(0), &mut m, &mut |v| members.push(v));
        members.sort_unstable();
        assert_eq!(members, vec![0, 1], "A = {{i0, i1}}");

        // Role scan.
        let mut pairs = Vec::new();
        storage.for_each_role(obda_dllite::RoleId(0), &mut m, &mut |s, o| {
            pairs.push((s, o))
        });
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (3, 2)]);

        // Probes.
        assert!(storage.probe_concept(obda_dllite::ConceptId(0), 1, &mut m));
        assert!(!storage.probe_concept(obda_dllite::ConceptId(0), 2, &mut m));
        assert!(storage.probe_role(obda_dllite::RoleId(0), 0, 2, &mut m));
        assert!(!storage.probe_role(obda_dllite::RoleId(0), 2, 0, &mut m));

        // Bound-subject lookup.
        let mut objs = Vec::new();
        storage.role_objects(obda_dllite::RoleId(0), 0, &mut m, &mut |o| objs.push(o));
        objs.sort_unstable();
        assert_eq!(objs, vec![1, 2]);

        // Bound-object lookup.
        let mut subs = Vec::new();
        storage.role_subjects(obda_dllite::RoleId(0), 2, &mut m, &mut |s| subs.push(s));
        subs.sort_unstable();
        assert_eq!(subs, vec![0, 3]);

        // Missing predicates yield nothing.
        let mut none = Vec::new();
        storage.for_each_concept(obda_dllite::ConceptId(99), &mut m, &mut |v| none.push(v));
        storage.for_each_role(obda_dllite::RoleId(99), &mut m, &mut |a, _| none.push(a));
        assert!(none.is_empty());

        // Work was metered.
        assert!(m.metrics.work_units() > 0.0);
    }
}
