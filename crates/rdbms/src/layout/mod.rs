//! Storage layouts for the ABox.
//!
//! §6.1 evaluates three physical designs:
//!
//! * **simple** — one unary table per concept, one binary table per role,
//!   all one- and two-attribute indexes ([`simple::SimpleStorage`]);
//! * **triple** — a single `(pred, subj, obj)` table with predicate-first
//!   clustering (a common RDF-store baseline; an extra ablation here);
//! * **DPH/RPH** — the DB2RDF entity-oriented layout \[9\]: wide rows
//!   bundling a subject's predicates into hashed columns, plus the reverse
//!   table ([`dph::DphStorage`]).
//!
//! All layouts expose the same [`Storage`] access-path interface; they
//! differ in which operations are cheap, in how much work scans cost, and
//! in the SQL text they force (`crate::sql`).

pub mod dph;
pub mod posting;
pub mod simple;
pub mod triple;

use obda_dllite::{AboxDelta, ConceptId, RoleId};

use crate::meter::Meter;
use crate::stats::CatalogStats;

/// Number of values per column block in the vectorized execution
/// pipeline: scans, hash probes and distinct-projection all move data in
/// chunks of at most this many `u32`s (see `crate::columnar`).
pub const BATCH_SIZE: usize = 1024;

/// Which layout a storage implements (drives SQL generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutKind {
    Simple,
    Triple,
    Dph,
}

impl LayoutKind {
    pub fn name(&self) -> &'static str {
        match self {
            LayoutKind::Simple => "simple",
            LayoutKind::Triple => "triple",
            LayoutKind::Dph => "rdf-dph",
        }
    }
}

/// Uniform access-path interface over the stored ABox.
///
/// Every access reports its work to the [`Meter`]; executors never touch
/// the data behind the meter's back, so measured work units are complete.
pub trait Storage: Send + Sync {
    fn layout(&self) -> LayoutKind;

    fn stats(&self) -> &CatalogStats;

    /// Scan all members of concept `c`.
    fn for_each_concept(&self, c: ConceptId, m: &mut Meter, f: &mut dyn FnMut(u32));

    /// Scan all pairs of role `r`.
    fn for_each_role(&self, r: RoleId, m: &mut Meter, f: &mut dyn FnMut(u32, u32));

    /// Scan all members of concept `c` in column blocks of at most
    /// [`BATCH_SIZE`] values. Same extent, order, and metering as
    /// [`Storage::for_each_concept`] (one logical scan for the whole
    /// extent, not one per block); layouts with columnar extents override
    /// this to hand out zero-copy slices.
    fn concept_blocks(&self, c: ConceptId, m: &mut Meter, f: &mut dyn FnMut(&[u32])) {
        let mut buf = Vec::new();
        self.for_each_concept(c, m, &mut |v| buf.push(v));
        for block in buf.chunks(BATCH_SIZE) {
            f(block);
        }
    }

    /// Scan all pairs of role `r` as parallel subject/object column
    /// blocks of at most [`BATCH_SIZE`] pairs. Same extent, order, and
    /// metering as [`Storage::for_each_role`].
    fn role_blocks(&self, r: RoleId, m: &mut Meter, f: &mut dyn FnMut(&[u32], &[u32])) {
        let (mut subs, mut objs) = (Vec::new(), Vec::new());
        self.for_each_role(r, m, &mut |s, o| {
            subs.push(s);
            objs.push(o);
        });
        for (bs, bo) in subs.chunks(BATCH_SIZE).zip(objs.chunks(BATCH_SIZE)) {
            f(bs, bo);
        }
    }

    /// Membership probe `c(v)`.
    fn probe_concept(&self, c: ConceptId, v: u32, m: &mut Meter) -> bool;

    /// Objects `o` with `r(s, o)`.
    fn role_objects(&self, r: RoleId, s: u32, m: &mut Meter, f: &mut dyn FnMut(u32));

    /// Subjects `s` with `r(s, o)`.
    fn role_subjects(&self, r: RoleId, o: u32, m: &mut Meter, f: &mut dyn FnMut(u32));

    /// Pair probe `r(s, o)`.
    fn probe_role(&self, r: RoleId, s: u32, o: u32, m: &mut Meter) -> bool;

    /// Maintain the stored tables, indexes and [`CatalogStats`] under one
    /// **effective** delta (the sub-delta [`obda_dllite::ABox::apply`]
    /// returns: inserts that were new w.r.t. the ABox this storage
    /// mirrors, deletes that hit). Insertions commit before deletions,
    /// matching the ABox batch semantics, so after the call the storage
    /// answers exactly as if reloaded from the mutated ABox.
    fn apply_delta(&mut self, delta: &AboxDelta);

    /// Clone the storage behind the trait object — the copy-on-write step
    /// of the incremental apply path: the serving layer clones the current
    /// snapshot's storage (a table memcpy, no re-hashing or re-statistics),
    /// applies the delta to the clone, and publishes it as the next
    /// generation while readers keep the old one.
    fn boxed_clone(&self) -> Box<dyn Storage>;
}

#[cfg(test)]
pub(crate) mod testutil {
    use obda_dllite::{ABox, Vocabulary};

    /// A tiny shared fixture: A = {i0, i1}, B = {i2},
    /// r = {(i0,i1), (i0,i2), (i3,i2)}, s = {(i1,i0)}.
    pub fn small_abox() -> (Vocabulary, ABox) {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let r = voc.role("r");
        let s = voc.role("s");
        let i: Vec<_> = (0..4).map(|k| voc.individual(&format!("i{k}"))).collect();
        let mut abox = ABox::new();
        abox.assert_concept(a, i[0]);
        abox.assert_concept(a, i[1]);
        abox.assert_concept(b, i[2]);
        abox.assert_role(r, i[0], i[1]);
        abox.assert_role(r, i[0], i[2]);
        abox.assert_role(r, i[3], i[2]);
        abox.assert_role(s, i[1], i[0]);
        (voc, abox)
    }

    /// Exercise the full [`super::Storage`] contract on any layout.
    pub fn check_storage_contract(storage: &dyn super::Storage) {
        use crate::meter::Meter;
        use crate::profile::EngineProfile;
        let profile = EngineProfile::pg_like();
        let mut m = Meter::new(&profile);

        // Concept scan.
        let mut members = Vec::new();
        storage.for_each_concept(obda_dllite::ConceptId(0), &mut m, &mut |v| members.push(v));
        members.sort_unstable();
        assert_eq!(members, vec![0, 1], "A = {{i0, i1}}");

        // Role scan.
        let mut pairs = Vec::new();
        storage.for_each_role(obda_dllite::RoleId(0), &mut m, &mut |s, o| {
            pairs.push((s, o))
        });
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (3, 2)]);

        // Probes.
        assert!(storage.probe_concept(obda_dllite::ConceptId(0), 1, &mut m));
        assert!(!storage.probe_concept(obda_dllite::ConceptId(0), 2, &mut m));
        assert!(storage.probe_role(obda_dllite::RoleId(0), 0, 2, &mut m));
        assert!(!storage.probe_role(obda_dllite::RoleId(0), 2, 0, &mut m));

        // Bound-subject lookup.
        let mut objs = Vec::new();
        storage.role_objects(obda_dllite::RoleId(0), 0, &mut m, &mut |o| objs.push(o));
        objs.sort_unstable();
        assert_eq!(objs, vec![1, 2]);

        // Bound-object lookup.
        let mut subs = Vec::new();
        storage.role_subjects(obda_dllite::RoleId(0), 2, &mut m, &mut |s| subs.push(s));
        subs.sort_unstable();
        assert_eq!(subs, vec![0, 3]);

        // Missing predicates yield nothing.
        let mut none = Vec::new();
        storage.for_each_concept(obda_dllite::ConceptId(99), &mut m, &mut |v| none.push(v));
        storage.for_each_role(obda_dllite::RoleId(99), &mut m, &mut |a, _| none.push(a));
        assert!(none.is_empty());

        // Work was metered.
        assert!(m.metrics.work_units() > 0.0);

        // Block scans see the same extents in the same order as the
        // row-at-a-time scans, with identical metering (so the batched
        // executor's work units match the row executor's exactly).
        let mut rows_m = Meter::new(&profile);
        let mut blocks_m = Meter::new(&profile);
        let mut row_members = Vec::new();
        storage.for_each_concept(obda_dllite::ConceptId(0), &mut rows_m, &mut |v| {
            row_members.push(v)
        });
        let mut block_members = Vec::new();
        storage.concept_blocks(obda_dllite::ConceptId(0), &mut blocks_m, &mut |b| {
            block_members.extend_from_slice(b)
        });
        assert_eq!(row_members, block_members, "concept blocks == scan");
        let mut row_pairs = Vec::new();
        storage.for_each_role(obda_dllite::RoleId(0), &mut rows_m, &mut |s, o| {
            row_pairs.push((s, o))
        });
        let mut block_pairs = Vec::new();
        storage.role_blocks(obda_dllite::RoleId(0), &mut blocks_m, &mut |bs, bo| {
            assert!(bs.len() <= super::BATCH_SIZE && bs.len() == bo.len());
            block_pairs.extend(bs.iter().copied().zip(bo.iter().copied()))
        });
        assert_eq!(row_pairs, block_pairs, "role blocks == scan");
        assert_eq!(
            rows_m.metrics.scanned, blocks_m.metrics.scanned,
            "block scans meter exactly like row scans"
        );
        storage.concept_blocks(obda_dllite::ConceptId(99), &mut blocks_m, &mut |_| {
            panic!("missing concept must yield no blocks")
        });
        storage.role_blocks(obda_dllite::RoleId(99), &mut blocks_m, &mut |_, _| {
            panic!("missing role must yield no blocks")
        });
    }

    /// Observable-state equality of two storages over a vocabulary-wide
    /// probe sweep: every concept extension, role extension, bound-side
    /// lookup, and the full catalog statistics.
    pub fn assert_same_contents(
        a: &dyn super::Storage,
        b: &dyn super::Storage,
        voc: &Vocabulary,
        context: &str,
    ) {
        use crate::meter::Meter;
        use crate::profile::EngineProfile;
        let profile = EngineProfile::pg_like();
        let mut m = Meter::new(&profile);
        for c in voc.concept_ids() {
            let collect = |s: &dyn super::Storage, m: &mut Meter| {
                let mut v = Vec::new();
                s.for_each_concept(c, m, &mut |i| v.push(i));
                v.sort_unstable();
                v
            };
            assert_eq!(
                collect(a, &mut m),
                collect(b, &mut m),
                "{context}: concept {c:?} extension"
            );
        }
        for r in voc.role_ids() {
            let collect = |s: &dyn super::Storage, m: &mut Meter| {
                let mut v = Vec::new();
                s.for_each_role(r, m, &mut |x, y| v.push((x, y)));
                v.sort_unstable();
                v
            };
            let pairs = collect(a, &mut m);
            assert_eq!(pairs, collect(b, &mut m), "{context}: role {r:?} extension");
            for &(s, o) in &pairs {
                assert!(a.probe_role(r, s, o, &mut m), "{context}: pair probe");
                let mut objs_a = Vec::new();
                a.role_objects(r, s, &mut m, &mut |v| objs_a.push(v));
                let mut objs_b = Vec::new();
                b.role_objects(r, s, &mut m, &mut |v| objs_b.push(v));
                objs_a.sort_unstable();
                objs_b.sort_unstable();
                assert_eq!(objs_a, objs_b, "{context}: objects of {r:?}({s}, _)");
                let mut subs_a = Vec::new();
                a.role_subjects(r, o, &mut m, &mut |v| subs_a.push(v));
                let mut subs_b = Vec::new();
                b.role_subjects(r, o, &mut m, &mut |v| subs_b.push(v));
                subs_a.sort_unstable();
                subs_b.sort_unstable();
                assert_eq!(subs_a, subs_b, "{context}: subjects of {r:?}(_, {o})");
            }
        }
        assert_eq!(a.stats(), b.stats(), "{context}: catalog statistics");
    }

    /// The incremental-maintenance contract shared by every layout:
    /// applying an effective delta to a loaded storage leaves it
    /// observably identical to a storage freshly loaded from the mutated
    /// ABox — inserts (including into brand-new tables), deletes
    /// (including emptying a table), and the statistics.
    pub fn check_incremental_matches_reload(
        make: impl Fn(&obda_dllite::ABox) -> Box<dyn super::Storage>,
    ) {
        use obda_dllite::AboxDelta;
        let (mut voc, mut abox) = small_abox();
        let a = voc.find_concept("A").unwrap();
        let b = voc.find_concept("B").unwrap();
        let c_new = voc.concept("CNew"); // table that does not exist yet
        let r = voc.find_role("r").unwrap();
        let s = voc.find_role("s").unwrap();
        let i: Vec<_> = (0..4)
            .map(|k| voc.find_individual(&format!("i{k}")).unwrap())
            .collect();
        let i4 = voc.individual("i4");

        let mut storage = make(&abox);
        let delta = AboxDelta::new()
            .insert_concept(c_new, i4)
            .insert_concept(a, i[2])
            .insert_concept(a, i[0]) // duplicate: ineffective
            .insert_role(r, i4, i[0])
            .insert_role(s, i[1], i[0]) // duplicate: ineffective
            .delete_concept(b, i[2]) // empties concept B
            .delete_role(r, i[0], i[1])
            .delete_role(s, i[1], i[0]) // empties role s
            .delete_role(r, i[2], i[2]); // miss: ineffective
        let eff = abox.apply(&delta);
        storage.apply_delta(&eff);
        let reloaded = make(&abox);
        assert_same_contents(storage.as_ref(), reloaded.as_ref(), &voc, "after delta");

        // A second wave on the already-mutated storage (covers spill /
        // posting-list paths that only show up on non-fresh tables).
        let delta2 = AboxDelta::new()
            .insert_role(r, i4, i[1])
            .insert_role(r, i4, i[2])
            .delete_concept(c_new, i4) // empties the table created above
            .delete_role(r, i4, i[0]);
        let eff2 = abox.apply(&delta2);
        storage.apply_delta(&eff2);
        let reloaded2 = make(&abox);
        assert_same_contents(storage.as_ref(), reloaded2.as_ref(), &voc, "after delta 2");
    }
}
