//! Greedy join-order planning shared by the executor and the cost model.
//!
//! The engine evaluates conjunctions of disjunctive *slots* (a CQ is a
//! conjunction of singleton slots; an SCQ has wider slots). Planning picks
//! the next slot greedily: cheapest access given the variables bound so
//! far — bound-subject/object index probes beat scans, selective tables
//! beat large ones. On top of the slot order, [`plan_conjunction`] chooses
//! a **physical operator** per join step: the classic index-nested-loop
//! probe, or a build-side/probe-side hash join that scans the predicate's
//! extension once and probes it with every intermediate row. Executor and
//! cost model call the same functions, so the estimate ("explain") prices
//! exactly the plan that runs.

use std::collections::BTreeSet;

use obda_query::{Atom, Slot, Term, VarId};

use crate::layout::{LayoutKind, BATCH_SIZE};
use crate::stats::CatalogStats;

/// Per-tuple weights of the hash operators (shared with
/// [`crate::cost_model`] and [`crate::metrics::ExecMetrics::work_units`],
/// so estimates and measurements stay in one unit).
pub const HASH_BUILD_WEIGHT: f64 = 1.5;
pub const HASH_PROBE_WEIGHT: f64 = 1.0;
/// Cost of materializing one intermediate tuple (`WITH … AS`).
pub const MATERIALIZE_WEIGHT: f64 = 3.0;
/// Cost of one index probe (same constant as [`atom_estimate`]'s bound
/// access paths).
pub const INDEX_PROBE_WEIGHT: f64 = 2.0;
/// Hysteresis for cost-chosen operator switches: take the hash join only
/// when its estimate beats INL by at least this factor. Near break-even
/// the work-unit model overstates INL (an in-memory index probe costs
/// about one hash probe, not [`INDEX_PROBE_WEIGHT`]), and estimate error
/// should not flap the operator on marginal calls.
pub const HASH_COST_MARGIN: f64 = 0.75;

/// How an atom will be accessed given the currently-bound variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// All positions bound or constant: a membership probe.
    Probe,
    /// Subject bound, object free: index lookup by subject.
    BySubject,
    /// Object bound, subject free: index lookup by object.
    ByObject,
    /// Nothing bound: a full scan of the predicate's extension.
    Scan,
}

/// Classify an atom's access path. A term is bound if it is a constant or
/// its variable is in `bound`.
pub fn access_kind(atom: &Atom, bound: &BTreeSet<VarId>) -> AccessKind {
    let is_bound = |t: &Term| match t {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(v),
    };
    match atom {
        Atom::Concept(_, t) => {
            if is_bound(t) {
                AccessKind::Probe
            } else {
                AccessKind::Scan
            }
        }
        Atom::Role(_, t1, t2) => match (is_bound(t1), is_bound(t2)) {
            (true, true) => AccessKind::Probe,
            (true, false) => AccessKind::BySubject,
            (false, true) => AccessKind::ByObject,
            (false, false) => AccessKind::Scan,
        },
    }
}

/// Estimated (access cost, output multiplier) for one atom under the
/// layout. The multiplier is the expected number of extensions per current
/// row (System-R style, uniformity + independence — §6.1's assumptions).
pub fn atom_estimate(
    atom: &Atom,
    bound: &BTreeSet<VarId>,
    stats: &CatalogStats,
    layout: LayoutKind,
) -> (f64, f64) {
    let n = stats.num_individuals.max(1) as f64;
    match atom {
        Atom::Concept(c, _) => {
            let card = stats.concept_card(c.0) as f64;
            match access_kind(atom, bound) {
                AccessKind::Probe => (2.0, (card / n).min(1.0)),
                _ => (scan_cost(card, stats, layout), card.max(1e-9)),
            }
        }
        Atom::Role(r, _, _) => {
            let card = stats.role_card(r.0) as f64;
            let vs = stats.role_distinct_subjects(r.0).max(1) as f64;
            let vo = stats.role_distinct_objects(r.0).max(1) as f64;
            match access_kind(atom, bound) {
                AccessKind::Probe => (2.0, (card / (vs * vo)).min(1.0)),
                AccessKind::BySubject => (2.0, stats.role_fanout_s(r.0)),
                AccessKind::ByObject => (2.0, stats.role_fanout_o(r.0)),
                AccessKind::Scan => (scan_cost(card, stats, layout), card.max(1e-9)),
            }
        }
    }
}

/// Layout-dependent scan cost: the simple layout scans exactly the
/// predicate's extension; the triple table pays a width factor; the DPH
/// layout scans the *whole* wide table regardless of the predicate (no
/// per-predicate extent — the core weakness of entity layouts under
/// reformulated workloads, §6.3).
pub fn scan_cost(pred_card: f64, stats: &CatalogStats, layout: LayoutKind) -> f64 {
    match layout {
        LayoutKind::Simple => pred_card,
        LayoutKind::Triple => pred_card * 1.5,
        LayoutKind::Dph => (stats.total_facts as f64) * 2.0,
    }
}

/// Estimated (cost, multiplier) of a whole slot: disjunction = sum of
/// member costs and multipliers.
pub fn slot_estimate(
    slot: &Slot,
    bound: &BTreeSet<VarId>,
    stats: &CatalogStats,
    layout: LayoutKind,
) -> (f64, f64) {
    let mut cost = 0.0;
    let mut mult = 0.0;
    for atom in slot.atoms() {
        let (c, m) = atom_estimate(atom, bound, stats, layout);
        cost += c;
        mult += m;
    }
    (cost, mult)
}

/// Greedy slot order: repeatedly take the slot minimizing
/// `access_cost · (1 + multiplier)` given the variables bound so far.
pub fn order_slots(
    slots: &[Slot],
    initially_bound: &BTreeSet<VarId>,
    stats: &CatalogStats,
    layout: LayoutKind,
) -> Vec<usize> {
    let mut bound = initially_bound.clone();
    let mut remaining: Vec<usize> = (0..slots.len()).collect();
    let mut order = Vec::with_capacity(slots.len());
    while !remaining.is_empty() {
        let (pos, &idx) = remaining
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                let (ca, ma) = slot_estimate(&slots[a], &bound, stats, layout);
                let (cb, mb) = slot_estimate(&slots[b], &bound, stats, layout);
                let ka = ca * (1.0 + ma);
                let kb = cb * (1.0 + mb);
                ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty");
        order.push(idx);
        for atom in slots[idx].atoms() {
            bound.extend(atom.vars());
        }
        remaining.remove(pos);
    }
    order
}

// ---------------------------------------------------------------------
// physical operator choice
// ---------------------------------------------------------------------

/// Which physical join operator the executor may use per step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Always index-nested-loop (the engine's historical behaviour).
    ForcedInl,
    /// Hash-join every eligible step: keyed (≥ 1 bound variable) and
    /// binding a new variable. Pure scan stages have no key; fully-bound
    /// membership filters stay INL probes (see `plan_conjunction`).
    ForcedHash,
    /// Let the cost model arbitrate per step — the default.
    #[default]
    CostChosen,
}

impl JoinStrategy {
    pub fn name(&self) -> &'static str {
        match self {
            JoinStrategy::ForcedInl => "forced-inl",
            JoinStrategy::ForcedHash => "forced-hash",
            JoinStrategy::CostChosen => "cost-chosen",
        }
    }
}

/// Which execution pipeline a plan targets. Plans are mode-specific so
/// that explain always prices — and stored plans always replay — the
/// exact operator that runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Tuple-at-a-time (Volcano-style) — kept as the reference/contrast
    /// pipeline for differential testing and benchmarking.
    Row,
    /// Columnar batches of [`BATCH_SIZE`] values — the default native
    /// path. Identical answers and identical meter totals to [`Self::Row`];
    /// only the per-tuple constant factors change.
    #[default]
    Batched,
}

impl ExecMode {
    pub fn name(&self) -> &'static str {
        match self {
            ExecMode::Row => "row",
            ExecMode::Batched => "batched",
        }
    }
}

/// The physical operator chosen for one conjunction step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhysicalOp {
    /// Per-row index access (probe / by-subject / by-object), or a shared
    /// prescan for pure scan stages.
    IndexNestedLoop(AccessKind),
    /// Scan the slot's extensions once into a hash table keyed on the
    /// already-bound variables, then probe once per intermediate row.
    HashJoin {
        /// Estimated build-side rows (the slot's total extension size).
        build_rows: f64,
    },
    /// The [`ExecMode::Batched`] form of [`PhysicalOp::HashJoin`]: the
    /// build side is filled from block scans and the probe column is
    /// processed `batch` values at a time. Same logical work (and the
    /// same cost formula — batching changes constant factors, not tuple
    /// counts), so the two variants price identically.
    BatchHashJoin {
        /// Estimated build-side rows (the slot's total extension size).
        build_rows: f64,
        /// Probe-column batch size ([`BATCH_SIZE`]).
        batch: usize,
    },
}

impl PhysicalOp {
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::IndexNestedLoop(AccessKind::Scan) => "scan",
            PhysicalOp::IndexNestedLoop(_) => "inl",
            PhysicalOp::HashJoin { .. } => "hash",
            PhysicalOp::BatchHashJoin { .. } => "vhash",
        }
    }
}

/// One step of a conjunction plan: which slot runs, with which operator,
/// at what estimated cost, leaving how many estimated rows.
#[derive(Debug, Clone)]
pub struct PlanStep {
    pub slot: usize,
    pub op: PhysicalOp,
    /// True when no slot variable was bound yet (prescan / cartesian
    /// stage) — hash joins are ineligible there.
    pub scan_stage: bool,
    /// Estimated work units of this step under the chosen operator.
    pub est_cost: f64,
    /// Estimated intermediate rows after the step.
    pub est_rows: f64,
}

/// An ordered, operator-annotated plan for one conjunction.
#[derive(Debug, Clone)]
pub struct ConjunctionPlan {
    pub steps: Vec<PlanStep>,
}

impl ConjunctionPlan {
    /// Total estimated cost across steps.
    pub fn est_cost(&self) -> f64 {
        self.steps.iter().map(|s| s.est_cost).sum()
    }
}

/// Estimated cost of running `slot` as a hash join given `rows` current
/// intermediate rows: scan the extensions once, insert every build tuple,
/// probe once per row. Returns the build-side cardinality too.
pub fn hash_join_cost(
    slot: &Slot,
    rows: f64,
    stats: &CatalogStats,
    layout: LayoutKind,
) -> (f64, f64) {
    let mut build_rows = 0.0;
    let mut scan = 0.0;
    for atom in slot.atoms() {
        let card = match atom {
            Atom::Concept(c, _) => stats.concept_card(c.0) as f64,
            Atom::Role(r, _, _) => stats.role_card(r.0) as f64,
        };
        build_rows += card;
        scan += scan_cost(card, stats, layout);
    }
    let cost = scan + HASH_BUILD_WEIGHT * build_rows + HASH_PROBE_WEIGHT * rows;
    (cost, build_rows)
}

/// Estimated cost of running `slot` index-nested-loop style: scan stages
/// pay the (pre)scan once; bound stages pay one index probe per atom per
/// current row.
pub fn inl_cost(
    slot: &Slot,
    bound: &BTreeSet<VarId>,
    rows: f64,
    stats: &CatalogStats,
    layout: LayoutKind,
) -> f64 {
    if slot_is_scan_stage(slot, bound) {
        let (access, _) = slot_estimate(slot, bound, stats, layout);
        access
    } else {
        rows * INDEX_PROBE_WEIGHT * slot.len() as f64
    }
}

/// A slot is a scan stage when none of its variables are bound yet (and
/// no term is a constant, which would give an index key).
pub fn slot_is_scan_stage(slot: &Slot, bound: &BTreeSet<VarId>) -> bool {
    slot.atoms()
        .iter()
        .all(|a| access_kind(a, bound) == AccessKind::Scan)
}

/// Plan a conjunction: greedy slot order (identical to [`order_slots`],
/// so all strategies evaluate slots in the same sequence and differ only
/// in physical operators), then per-step operator choice driven by the
/// tracked cardinality estimate.
pub fn plan_conjunction(
    slots: &[Slot],
    initially_bound: &BTreeSet<VarId>,
    stats: &CatalogStats,
    layout: LayoutKind,
    strategy: JoinStrategy,
) -> ConjunctionPlan {
    plan_conjunction_mode(
        slots,
        initially_bound,
        stats,
        layout,
        strategy,
        ExecMode::default(),
    )
}

/// [`plan_conjunction`] with an explicit [`ExecMode`]: hash steps come
/// out as [`PhysicalOp::HashJoin`] (row mode) or
/// [`PhysicalOp::BatchHashJoin`] (batched mode). Slot order, operator
/// choices and estimated costs are identical across modes.
pub fn plan_conjunction_mode(
    slots: &[Slot],
    initially_bound: &BTreeSet<VarId>,
    stats: &CatalogStats,
    layout: LayoutKind,
    strategy: JoinStrategy,
    mode: ExecMode,
) -> ConjunctionPlan {
    let order = order_slots(slots, initially_bound, stats, layout);
    let mut bound = initially_bound.clone();
    let mut rows = 1.0f64;
    let mut steps = Vec::with_capacity(order.len());
    for idx in order {
        let slot = &slots[idx];
        let scan_stage = slot_is_scan_stage(slot, &bound);
        let (_, mult) = slot_estimate(slot, &bound, stats, layout);
        let inl = inl_cost(slot, &bound, rows, stats, layout);
        let (hash, build_rows) = hash_join_cost(slot, rows, stats, layout);
        // Hash joins need a join key: at least one bound *variable* (a
        // constant makes a slot non-scan-stage but gives the hash table
        // nothing to key on — INL filters constants during the index
        // lookup instead) AND must bind a new variable: a fully-bound
        // slot is a membership *filter*, and an in-memory index probe
        // already costs what a hash probe costs, so building a table for
        // it can never pay off. Only expansion steps — where INL
        // re-traverses the index once per intermediate row — are where
        // the build amortizes.
        let slot_vars = slot.vars();
        let hash_eligible = !scan_stage
            && slot_vars.iter().any(|v| bound.contains(v))
            && slot_vars.iter().any(|v| !bound.contains(v));
        let use_hash = match strategy {
            JoinStrategy::ForcedInl => false,
            JoinStrategy::ForcedHash => hash_eligible,
            JoinStrategy::CostChosen => hash_eligible && hash < inl * HASH_COST_MARGIN,
        };
        let (op, est_cost) = if use_hash {
            let op = match mode {
                ExecMode::Row => PhysicalOp::HashJoin { build_rows },
                ExecMode::Batched => PhysicalOp::BatchHashJoin {
                    build_rows,
                    batch: BATCH_SIZE,
                },
            };
            (op, hash)
        } else {
            // Representative access kind: the first atom's (slot atoms
            // share a variable set, so kinds agree up to role direction).
            let kind = access_kind(&slot.atoms()[0], &bound);
            (PhysicalOp::IndexNestedLoop(kind), inl)
        };
        rows = (rows * mult.max(1e-9)).max(0.0);
        steps.push(PlanStep {
            slot: idx,
            op,
            scan_stage,
            est_cost,
            est_rows: rows,
        });
        for atom in slot.atoms() {
            bound.extend(atom.vars());
        }
    }
    ConjunctionPlan { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{ABox, ConceptId, RoleId, Vocabulary};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// Either hash variant — most operator-choice assertions are
    /// mode-independent.
    fn is_hash(op: PhysicalOp) -> bool {
        matches!(
            op,
            PhysicalOp::HashJoin { .. } | PhysicalOp::BatchHashJoin { .. }
        )
    }

    fn stats_with_skew() -> CatalogStats {
        let mut voc = Vocabulary::new();
        let small = voc.concept("Small");
        let big = voc.concept("Big");
        let r = voc.role("r");
        let mut abox = ABox::new();
        for i in 0..100 {
            let ind = voc.individual(&format!("i{i}"));
            abox.assert_concept(big, ind);
            if i < 5 {
                abox.assert_concept(small, ind);
            }
            if i > 0 {
                let prev = voc.find_individual(&format!("i{}", i - 1)).unwrap();
                abox.assert_role(r, prev, ind);
            }
        }
        let _ = small;
        CatalogStats::from_abox(&abox)
    }

    #[test]
    fn access_kind_classification() {
        let mut bound = BTreeSet::new();
        let a = Atom::Role(RoleId(0), v(0), v(1));
        assert_eq!(access_kind(&a, &bound), AccessKind::Scan);
        bound.insert(VarId(0));
        assert_eq!(access_kind(&a, &bound), AccessKind::BySubject);
        bound.insert(VarId(1));
        assert_eq!(access_kind(&a, &bound), AccessKind::Probe);
        let c = Atom::Concept(ConceptId(0), Term::Const(obda_dllite::IndividualId(1)));
        assert_eq!(access_kind(&c, &BTreeSet::new()), AccessKind::Probe);
    }

    #[test]
    fn greedy_order_starts_with_selective_slot() {
        let stats = stats_with_skew();
        // Small(x) ∧ Big(x): start with Small (5 rows), then probe Big.
        let slots = vec![
            Slot::single(Atom::Concept(ConceptId(1), v(0))), // Big
            Slot::single(Atom::Concept(ConceptId(0), v(0))), // Small
        ];
        let order = order_slots(&slots, &BTreeSet::new(), &stats, LayoutKind::Simple);
        assert_eq!(order[0], 1, "Small first");
    }

    #[test]
    fn bound_probe_is_cheaper_than_scan() {
        let stats = stats_with_skew();
        let atom = Atom::Role(RoleId(0), v(0), v(1));
        let unbound = BTreeSet::new();
        let mut bound = BTreeSet::new();
        bound.insert(VarId(0));
        let (scan_c, _) = atom_estimate(&atom, &unbound, &stats, LayoutKind::Simple);
        let (probe_c, _) = atom_estimate(&atom, &bound, &stats, LayoutKind::Simple);
        assert!(probe_c < scan_c);
    }

    #[test]
    fn dph_scan_ignores_predicate_size() {
        let stats = stats_with_skew();
        // Tiny predicate scan costs the whole table under DPH.
        let small_scan = scan_cost(5.0, &stats, LayoutKind::Dph);
        let big_scan = scan_cost(100.0, &stats, LayoutKind::Dph);
        assert_eq!(small_scan, big_scan);
        assert!(small_scan > scan_cost(5.0, &stats, LayoutKind::Simple));
    }

    /// Star join over the skewed fixture: Big(x) ∧ Big(y) ∧ r(x, y).
    fn cartesian_slots() -> Vec<Slot> {
        vec![
            Slot::single(Atom::Concept(ConceptId(1), v(0))),
            Slot::single(Atom::Concept(ConceptId(1), v(1))),
            Slot::single(Atom::Role(RoleId(0), v(0), v(1))),
        ]
    }

    #[test]
    fn plan_order_matches_order_slots_under_every_strategy() {
        let stats = stats_with_skew();
        let slots = cartesian_slots();
        let base = order_slots(&slots, &BTreeSet::new(), &stats, LayoutKind::Simple);
        for strategy in [
            JoinStrategy::ForcedInl,
            JoinStrategy::ForcedHash,
            JoinStrategy::CostChosen,
        ] {
            let plan = plan_conjunction(
                &slots,
                &BTreeSet::new(),
                &stats,
                LayoutKind::Simple,
                strategy,
            );
            let order: Vec<usize> = plan.steps.iter().map(|s| s.slot).collect();
            assert_eq!(order, base, "{strategy:?}");
        }
    }

    #[test]
    fn forced_inl_never_hashes_and_forced_hash_hashes_expansions() {
        let stats = fanout_stats();
        let slots = fanout_slots();
        let inl = plan_conjunction(
            &slots,
            &BTreeSet::new(),
            &stats,
            LayoutKind::Simple,
            JoinStrategy::ForcedInl,
        );
        assert!(inl
            .steps
            .iter()
            .all(|s| matches!(s.op, PhysicalOp::IndexNestedLoop(_))));
        // Forced hash: A(x) scans (no key), r(x, y) hashes (expansion),
        // B(y) stays an INL membership filter (no new variable).
        let hash = plan_conjunction(
            &slots,
            &BTreeSet::new(),
            &stats,
            LayoutKind::Simple,
            JoinStrategy::ForcedHash,
        );
        let op_of = |slot: usize| {
            hash.steps
                .iter()
                .find(|s| s.slot == slot)
                .map(|s| s.op)
                .expect("slot planned")
        };
        assert!(
            matches!(op_of(0), PhysicalOp::IndexNestedLoop(_)),
            "A scans"
        );
        assert!(is_hash(op_of(1)), "r hashes");
        assert!(
            matches!(op_of(2), PhysicalOp::IndexNestedLoop(AccessKind::Probe)),
            "B filter stays INL"
        );
    }

    /// A(x) ∧ r(x, y) ∧ B(y) over a fan-out-heavy r: A and B have 100
    /// members each, r has 100 × 100 pairs, so after A-scan → r-expand
    /// the pipeline carries ~10 000 rows into the B step.
    fn fanout_stats() -> CatalogStats {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let r = voc.role("r");
        let mut abox = ABox::new();
        let xs: Vec<_> = (0..100).map(|i| voc.individual(&format!("x{i}"))).collect();
        let ys: Vec<_> = (0..100).map(|i| voc.individual(&format!("y{i}"))).collect();
        for &x in &xs {
            abox.assert_concept(a, x);
            for &y in &ys {
                abox.assert_role(r, x, y);
            }
        }
        for &y in &ys {
            abox.assert_concept(b, y);
        }
        CatalogStats::from_abox(&abox)
    }

    fn fanout_slots() -> Vec<Slot> {
        vec![
            Slot::single(Atom::Concept(ConceptId(0), v(0))), // A(x)
            Slot::single(Atom::Role(RoleId(0), v(0), v(1))), // r(x, y)
            Slot::single(Atom::Concept(ConceptId(1), v(1))), // B(y)
        ]
    }

    /// C(x) ∧ r1(x, y) ∧ r2(y, z): C has 100 members, r1 fans each out
    /// to 100 ys (10 000 pairs), r2 is a 1 000-pair expansion — after
    /// C-scan → r1-expand the pipeline carries ~10 000 rows into the r2
    /// step, where hashing the 1 000-row extension (≈ 12 500 units)
    /// beats 20 000 per-row index probes.
    fn chain_stats() -> CatalogStats {
        let mut voc = Vocabulary::new();
        let c = voc.concept("C");
        let r1 = voc.role("r1");
        let r2 = voc.role("r2");
        let mut abox = ABox::new();
        let xs: Vec<_> = (0..100).map(|i| voc.individual(&format!("x{i}"))).collect();
        let ys: Vec<_> = (0..100).map(|i| voc.individual(&format!("y{i}"))).collect();
        for &x in &xs {
            abox.assert_concept(c, x);
            for &y in &ys {
                abox.assert_role(r1, x, y);
            }
        }
        for (yi, &y) in ys.iter().enumerate() {
            for k in 0..10 {
                let z = voc.individual(&format!("z{yi}_{k}"));
                abox.assert_role(r2, y, z);
            }
        }
        CatalogStats::from_abox(&abox)
    }

    fn chain_slots() -> Vec<Slot> {
        vec![
            Slot::single(Atom::Concept(ConceptId(0), v(0))), // C(x)
            Slot::single(Atom::Role(RoleId(0), v(0), v(1))), // r1(x, y)
            Slot::single(Atom::Role(RoleId(1), v(1), v(2))), // r2(y, z)
        ]
    }

    #[test]
    fn cost_chosen_hashes_when_intermediate_rows_dwarf_build_side() {
        let stats = chain_stats();
        let plan = plan_conjunction(
            &chain_slots(),
            &BTreeSet::new(),
            &stats,
            LayoutKind::Simple,
            JoinStrategy::CostChosen,
        );
        // The r2 step expands ~10 000 intermediate rows through a
        // 1 000-row table: hashing it once wins.
        let r2_step = plan
            .steps
            .iter()
            .find(|s| s.slot == 2)
            .expect("r2 slot planned");
        assert!(
            is_hash(r2_step.op),
            "expected hash join for the r2 step: {r2_step:?}"
        );
        // The r1 expansion stays INL: its 10 000-row build dwarfs the
        // 100 rows that would probe it.
        let r1_step = plan.steps.iter().find(|s| s.slot == 1).unwrap();
        assert!(matches!(r1_step.op, PhysicalOp::IndexNestedLoop(_)));
        // And the chosen plan is never priced above either forced mode.
        for strategy in [JoinStrategy::ForcedInl, JoinStrategy::ForcedHash] {
            let forced = plan_conjunction(
                &chain_slots(),
                &BTreeSet::new(),
                &stats,
                LayoutKind::Simple,
                strategy,
            );
            assert!(plan.est_cost() <= forced.est_cost(), "{strategy:?}");
        }
    }

    #[test]
    fn cost_chosen_keeps_inl_for_membership_filters() {
        // A(x) ∧ r(x, y) ∧ B(y): the B step is fully bound — a
        // membership filter — and must stay INL even though its work-unit
        // arithmetic would favour a hash table (an in-memory index probe
        // costs the same as a hash probe; the build cannot amortize).
        let stats = fanout_stats();
        let plan = plan_conjunction(
            &fanout_slots(),
            &BTreeSet::new(),
            &stats,
            LayoutKind::Simple,
            JoinStrategy::CostChosen,
        );
        let b_step = plan.steps.iter().find(|s| s.slot == 2).unwrap();
        assert!(
            matches!(b_step.op, PhysicalOp::IndexNestedLoop(AccessKind::Probe)),
            "filter step must stay INL: {b_step:?}"
        );
    }

    #[test]
    fn cost_chosen_keeps_inl_for_selective_probes() {
        let stats = stats_with_skew();
        // Small(x) ∧ Big(x): one 5-row scan, then 5 cheap probes into
        // Big — building a 100-row hash table would be wasteful.
        let slots = vec![
            Slot::single(Atom::Concept(ConceptId(1), v(0))), // Big
            Slot::single(Atom::Concept(ConceptId(0), v(0))), // Small
        ];
        let plan = plan_conjunction(
            &slots,
            &BTreeSet::new(),
            &stats,
            LayoutKind::Simple,
            JoinStrategy::CostChosen,
        );
        assert!(matches!(
            plan.steps[1].op,
            PhysicalOp::IndexNestedLoop(AccessKind::Probe)
        ));
    }

    #[test]
    fn strategy_and_op_names_are_stable() {
        assert_eq!(JoinStrategy::default(), JoinStrategy::CostChosen);
        assert_eq!(JoinStrategy::ForcedInl.name(), "forced-inl");
        assert_eq!(JoinStrategy::ForcedHash.name(), "forced-hash");
        assert_eq!(JoinStrategy::CostChosen.name(), "cost-chosen");
        assert_eq!(PhysicalOp::HashJoin { build_rows: 1.0 }.name(), "hash");
        assert_eq!(
            PhysicalOp::BatchHashJoin {
                build_rows: 1.0,
                batch: 1024
            }
            .name(),
            "vhash"
        );
        assert_eq!(PhysicalOp::IndexNestedLoop(AccessKind::Scan).name(), "scan");
        assert_eq!(
            PhysicalOp::IndexNestedLoop(AccessKind::BySubject).name(),
            "inl"
        );
        assert_eq!(ExecMode::default(), ExecMode::Batched);
        assert_eq!(ExecMode::Row.name(), "row");
        assert_eq!(ExecMode::Batched.name(), "batched");
    }

    #[test]
    fn modes_agree_on_order_costs_and_choices() {
        let stats = chain_stats();
        for strategy in [
            JoinStrategy::ForcedInl,
            JoinStrategy::ForcedHash,
            JoinStrategy::CostChosen,
        ] {
            let row = plan_conjunction_mode(
                &chain_slots(),
                &BTreeSet::new(),
                &stats,
                LayoutKind::Simple,
                strategy,
                ExecMode::Row,
            );
            let batched = plan_conjunction_mode(
                &chain_slots(),
                &BTreeSet::new(),
                &stats,
                LayoutKind::Simple,
                strategy,
                ExecMode::Batched,
            );
            assert_eq!(row.steps.len(), batched.steps.len());
            for (r, b) in row.steps.iter().zip(&batched.steps) {
                assert_eq!(r.slot, b.slot, "{strategy:?}: slot order");
                assert_eq!(r.est_cost, b.est_cost, "{strategy:?}: step cost");
                assert_eq!(r.est_rows, b.est_rows, "{strategy:?}: cardinality");
                match (r.op, b.op) {
                    (
                        PhysicalOp::HashJoin { build_rows: br },
                        PhysicalOp::BatchHashJoin {
                            build_rows: bb,
                            batch,
                        },
                    ) => {
                        assert_eq!(br, bb);
                        assert_eq!(batch, crate::layout::BATCH_SIZE);
                    }
                    (r_op, b_op) => assert_eq!(r_op, b_op, "{strategy:?}: non-hash ops agree"),
                }
            }
        }
    }
}
