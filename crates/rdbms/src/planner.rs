//! Greedy join-order planning shared by the executor and the cost model.
//!
//! The engine evaluates conjunctions of disjunctive *slots* (a CQ is a
//! conjunction of singleton slots; an SCQ has wider slots). Planning picks
//! the next slot greedily: cheapest access given the variables bound so
//! far — bound-subject/object index probes beat scans, selective tables
//! beat large ones. Executor and cost model call the same functions, so
//! the estimate ("explain") prices exactly the plan that runs.

use std::collections::BTreeSet;

use obda_query::{Atom, Slot, Term, VarId};

use crate::layout::LayoutKind;
use crate::stats::CatalogStats;

/// How an atom will be accessed given the currently-bound variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// All positions bound or constant: a membership probe.
    Probe,
    /// Subject bound, object free: index lookup by subject.
    BySubject,
    /// Object bound, subject free: index lookup by object.
    ByObject,
    /// Nothing bound: a full scan of the predicate's extension.
    Scan,
}

/// Classify an atom's access path. A term is bound if it is a constant or
/// its variable is in `bound`.
pub fn access_kind(atom: &Atom, bound: &BTreeSet<VarId>) -> AccessKind {
    let is_bound = |t: &Term| match t {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(v),
    };
    match atom {
        Atom::Concept(_, t) => {
            if is_bound(t) {
                AccessKind::Probe
            } else {
                AccessKind::Scan
            }
        }
        Atom::Role(_, t1, t2) => match (is_bound(t1), is_bound(t2)) {
            (true, true) => AccessKind::Probe,
            (true, false) => AccessKind::BySubject,
            (false, true) => AccessKind::ByObject,
            (false, false) => AccessKind::Scan,
        },
    }
}

/// Estimated (access cost, output multiplier) for one atom under the
/// layout. The multiplier is the expected number of extensions per current
/// row (System-R style, uniformity + independence — §6.1's assumptions).
pub fn atom_estimate(
    atom: &Atom,
    bound: &BTreeSet<VarId>,
    stats: &CatalogStats,
    layout: LayoutKind,
) -> (f64, f64) {
    let n = stats.num_individuals.max(1) as f64;
    match atom {
        Atom::Concept(c, _) => {
            let card = stats.concept_card(c.0) as f64;
            match access_kind(atom, bound) {
                AccessKind::Probe => (2.0, (card / n).min(1.0)),
                _ => (scan_cost(card, stats, layout), card.max(1e-9)),
            }
        }
        Atom::Role(r, _, _) => {
            let card = stats.role_card(r.0) as f64;
            let vs = stats.role_distinct_subjects(r.0).max(1) as f64;
            let vo = stats.role_distinct_objects(r.0).max(1) as f64;
            match access_kind(atom, bound) {
                AccessKind::Probe => (2.0, (card / (vs * vo)).min(1.0)),
                AccessKind::BySubject => (2.0, stats.role_fanout_s(r.0)),
                AccessKind::ByObject => (2.0, stats.role_fanout_o(r.0)),
                AccessKind::Scan => (scan_cost(card, stats, layout), card.max(1e-9)),
            }
        }
    }
}

/// Layout-dependent scan cost: the simple layout scans exactly the
/// predicate's extension; the triple table pays a width factor; the DPH
/// layout scans the *whole* wide table regardless of the predicate (no
/// per-predicate extent — the core weakness of entity layouts under
/// reformulated workloads, §6.3).
pub fn scan_cost(pred_card: f64, stats: &CatalogStats, layout: LayoutKind) -> f64 {
    match layout {
        LayoutKind::Simple => pred_card,
        LayoutKind::Triple => pred_card * 1.5,
        LayoutKind::Dph => (stats.total_facts as f64) * 2.0,
    }
}

/// Estimated (cost, multiplier) of a whole slot: disjunction = sum of
/// member costs and multipliers.
pub fn slot_estimate(
    slot: &Slot,
    bound: &BTreeSet<VarId>,
    stats: &CatalogStats,
    layout: LayoutKind,
) -> (f64, f64) {
    let mut cost = 0.0;
    let mut mult = 0.0;
    for atom in slot.atoms() {
        let (c, m) = atom_estimate(atom, bound, stats, layout);
        cost += c;
        mult += m;
    }
    (cost, mult)
}

/// Greedy slot order: repeatedly take the slot minimizing
/// `access_cost · (1 + multiplier)` given the variables bound so far.
pub fn order_slots(
    slots: &[Slot],
    initially_bound: &BTreeSet<VarId>,
    stats: &CatalogStats,
    layout: LayoutKind,
) -> Vec<usize> {
    let mut bound = initially_bound.clone();
    let mut remaining: Vec<usize> = (0..slots.len()).collect();
    let mut order = Vec::with_capacity(slots.len());
    while !remaining.is_empty() {
        let (pos, &idx) = remaining
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                let (ca, ma) = slot_estimate(&slots[a], &bound, stats, layout);
                let (cb, mb) = slot_estimate(&slots[b], &bound, stats, layout);
                let ka = ca * (1.0 + ma);
                let kb = cb * (1.0 + mb);
                ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty");
        order.push(idx);
        for atom in slots[idx].atoms() {
            bound.extend(atom.vars());
        }
        remaining.remove(pos);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{ABox, ConceptId, RoleId, Vocabulary};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn stats_with_skew() -> CatalogStats {
        let mut voc = Vocabulary::new();
        let small = voc.concept("Small");
        let big = voc.concept("Big");
        let r = voc.role("r");
        let mut abox = ABox::new();
        for i in 0..100 {
            let ind = voc.individual(&format!("i{i}"));
            abox.assert_concept(big, ind);
            if i < 5 {
                abox.assert_concept(small, ind);
            }
            if i > 0 {
                let prev = voc.find_individual(&format!("i{}", i - 1)).unwrap();
                abox.assert_role(r, prev, ind);
            }
        }
        let _ = small;
        CatalogStats::from_abox(&abox)
    }

    #[test]
    fn access_kind_classification() {
        let mut bound = BTreeSet::new();
        let a = Atom::Role(RoleId(0), v(0), v(1));
        assert_eq!(access_kind(&a, &bound), AccessKind::Scan);
        bound.insert(VarId(0));
        assert_eq!(access_kind(&a, &bound), AccessKind::BySubject);
        bound.insert(VarId(1));
        assert_eq!(access_kind(&a, &bound), AccessKind::Probe);
        let c = Atom::Concept(ConceptId(0), Term::Const(obda_dllite::IndividualId(1)));
        assert_eq!(access_kind(&c, &BTreeSet::new()), AccessKind::Probe);
    }

    #[test]
    fn greedy_order_starts_with_selective_slot() {
        let stats = stats_with_skew();
        // Small(x) ∧ Big(x): start with Small (5 rows), then probe Big.
        let slots = vec![
            Slot::single(Atom::Concept(ConceptId(1), v(0))), // Big
            Slot::single(Atom::Concept(ConceptId(0), v(0))), // Small
        ];
        let order = order_slots(&slots, &BTreeSet::new(), &stats, LayoutKind::Simple);
        assert_eq!(order[0], 1, "Small first");
    }

    #[test]
    fn bound_probe_is_cheaper_than_scan() {
        let stats = stats_with_skew();
        let atom = Atom::Role(RoleId(0), v(0), v(1));
        let unbound = BTreeSet::new();
        let mut bound = BTreeSet::new();
        bound.insert(VarId(0));
        let (scan_c, _) = atom_estimate(&atom, &unbound, &stats, LayoutKind::Simple);
        let (probe_c, _) = atom_estimate(&atom, &bound, &stats, LayoutKind::Simple);
        assert!(probe_c < scan_c);
    }

    #[test]
    fn dph_scan_ignores_predicate_size() {
        let stats = stats_with_skew();
        // Tiny predicate scan costs the whole table under DPH.
        let small_scan = scan_cost(5.0, &stats, LayoutKind::Dph);
        let big_scan = scan_cost(100.0, &stats, LayoutKind::Dph);
        assert_eq!(small_scan, big_scan);
        assert!(small_scan > scan_cost(5.0, &stats, LayoutKind::Simple));
    }
}
