//! The query executor: evaluates any Table-4 dialect over a [`Storage`].
//!
//! Execution strategy mirrors what the paper's SQL translations make the
//! RDBMS do:
//!
//! * each CQ (or SCQ) runs as a left-deep pipeline whose steps are either
//!   **index-nested-loop** probes or **hash joins** (build the slot's
//!   extension once, probe per intermediate row), as chosen per step by
//!   the planner's [`JoinStrategy`];
//! * each UCQ/USCQ arm runs **independently** — no common-subexpression
//!   sharing across union terms (§2.3: no major engine does MQO/CSE); the
//!   only cross-arm effect is the profile's repeated-scan discount;
//! * a JUCQ materializes each component (`WITH … AS`, `DISTINCT`) and
//!   hash-joins the materialized tables, smallest first (§3's SQL shape);
//! * `SELECT DISTINCT` set semantics everywhere.

use std::collections::BTreeSet;

use obda_query::{Atom, FolQuery, Slot, Term, VarId, CQ, JUCQ, JUSCQ, SCQ, USCQ};

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::layout::{LayoutKind, Storage};
use crate::meter::Meter;
use crate::planner::{plan_conjunction_mode, ConjunctionPlan, ExecMode, JoinStrategy, PhysicalOp};
use crate::stats::CatalogStats;

/// A result tuple of dictionary-encoded values.
pub type Row = Vec<u32>;

/// A materialized relation: variable layout + rows.
#[derive(Debug, Clone)]
pub struct Relation {
    pub vars: Vec<VarId>,
    pub rows: Vec<Row>,
}

/// The operator-annotated plans of every conjunction in a statement, in
/// executor traversal order — the cacheable artifact of the serving
/// layer's plan cache. Produced by [`prepare_plans`], consumed by
/// [`execute_planned`]: a repeated query skips `plan_conjunction`
/// entirely and replays the stored [`ConjunctionPlan`]s.
#[derive(Debug, Clone)]
pub struct PreparedPlans {
    /// The strategy the plans were produced under (recorded so cached
    /// entries can be audited; execution follows the stored ops directly).
    pub strategy: JoinStrategy,
    /// The execution mode the plans were priced for. Replaying a stored
    /// plan re-enters the same pipeline (row or batched) it was planned
    /// under, so explain output, cached costs, and the executed
    /// operators always describe the same physical run.
    pub mode: ExecMode,
    /// One plan per *non-empty* conjunction, in the order the executor
    /// visits them (CQ; UCQ arms; SCQ; USCQ arms; JUCQ/JUSCQ components'
    /// arms, component-major). Empty-body conjunctions plan nothing.
    pub plans: Vec<ConjunctionPlan>,
}

/// Plan every conjunction of `q` in executor traversal order, without
/// executing anything. `execute_planned` replays the result; the walk
/// order here and the executor's traversal must stay in lockstep.
pub fn prepare_plans(
    q: &FolQuery,
    stats: &CatalogStats,
    layout: LayoutKind,
    strategy: JoinStrategy,
) -> PreparedPlans {
    prepare_plans_mode(q, stats, layout, strategy, ExecMode::default())
}

/// [`prepare_plans`] with an explicit [`ExecMode`]: the mode decides the
/// physical join operator recorded per step (`hash` vs `vhash`) and is
/// stored in the result so replay re-enters the matching pipeline.
pub fn prepare_plans_mode(
    q: &FolQuery,
    stats: &CatalogStats,
    layout: LayoutKind,
    strategy: JoinStrategy,
    mode: ExecMode,
) -> PreparedPlans {
    struct Prep<'a> {
        stats: &'a CatalogStats,
        layout: LayoutKind,
        strategy: JoinStrategy,
        mode: ExecMode,
        plans: Vec<ConjunctionPlan>,
    }
    impl Prep<'_> {
        fn add(&mut self, slots: &[Slot]) {
            if !slots.is_empty() {
                self.plans.push(plan_conjunction_mode(
                    slots,
                    &BTreeSet::new(),
                    self.stats,
                    self.layout,
                    self.strategy,
                    self.mode,
                ));
            }
        }
        fn add_cq(&mut self, cq: &CQ) {
            let slots: Vec<Slot> = cq.atoms().iter().map(|a| Slot::single(*a)).collect();
            self.add(&slots);
        }
    }
    let mut p = Prep {
        stats,
        layout,
        strategy,
        mode,
        plans: Vec::new(),
    };
    match q {
        FolQuery::Cq(cq) => p.add_cq(cq),
        FolQuery::Ucq(ucq) => ucq.cqs().iter().for_each(|c| p.add_cq(c)),
        FolQuery::Scq(scq) => p.add(scq.slots()),
        FolQuery::Uscq(uscq) => uscq.scqs().iter().for_each(|s| p.add(s.slots())),
        FolQuery::Jucq(jucq) => {
            for comp in jucq.components() {
                comp.cqs().iter().for_each(|c| p.add_cq(c));
            }
        }
        FolQuery::Juscq(juscq) => {
            for comp in juscq.components() {
                comp.scqs().iter().for_each(|s| p.add(s.slots()));
            }
        }
    }
    PreparedPlans {
        strategy,
        mode,
        plans: p.plans,
    }
}

/// Where each conjunction's plan comes from during one execution. Both
/// variants carry the [`ExecMode`] so every conjunction of a statement
/// runs the same pipeline the plan was (or will be) priced for.
enum PlanSource<'a> {
    /// Plan on the fly (the classic per-call pipeline).
    Inline(JoinStrategy, ExecMode),
    /// Replay stored plans in traversal order (the plan-cache hot path).
    Stored {
        plans: &'a [ConjunctionPlan],
        next: usize,
        mode: ExecMode,
    },
}

impl<'a> PlanSource<'a> {
    fn stored(plans: &'a [ConjunctionPlan], mode: ExecMode) -> Self {
        PlanSource::Stored {
            plans,
            next: 0,
            mode,
        }
    }

    fn mode(&self) -> ExecMode {
        match self {
            PlanSource::Inline(_, mode) => *mode,
            PlanSource::Stored { mode, .. } => *mode,
        }
    }
}

/// Evaluate any FOL query under the default cost-chosen operator mix,
/// returning the deduplicated result rows (one per head tuple).
pub fn execute(storage: &dyn Storage, q: &FolQuery, meter: &mut Meter) -> Vec<Row> {
    execute_with(storage, q, meter, JoinStrategy::CostChosen)
}

/// Evaluate any FOL query under an explicit [`JoinStrategy`] (forced
/// modes exist for the differential test harness and benchmarks).
pub fn execute_with(
    storage: &dyn Storage,
    q: &FolQuery,
    meter: &mut Meter,
    strategy: JoinStrategy,
) -> Vec<Row> {
    execute_mode(storage, q, meter, strategy, ExecMode::default())
}

/// Evaluate any FOL query under an explicit strategy *and* [`ExecMode`].
/// `ExecMode::Batched` (the default everywhere) runs conjunctions through
/// the vectorized pipeline in [`crate::columnar`]; `ExecMode::Row` runs
/// the classic tuple-at-a-time pipeline. Both produce identical answer
/// sets and meter totals — the differential harness holds them to it.
pub fn execute_mode(
    storage: &dyn Storage,
    q: &FolQuery,
    meter: &mut Meter,
    strategy: JoinStrategy,
    mode: ExecMode,
) -> Vec<Row> {
    execute_from(storage, q, meter, &mut PlanSource::Inline(strategy, mode))
}

/// Evaluate `q` replaying [`PreparedPlans`] — no `plan_conjunction` calls.
/// The plans must have been prepared for this exact query shape (and, for
/// meaningful results, this storage's statistics); a shape mismatch
/// panics rather than silently misplanning.
pub fn execute_planned(
    storage: &dyn Storage,
    q: &FolQuery,
    meter: &mut Meter,
    prepared: &PreparedPlans,
) -> Vec<Row> {
    let mut source = PlanSource::stored(&prepared.plans, prepared.mode);
    let rows = execute_from(storage, q, meter, &mut source);
    if let PlanSource::Stored { next, plans, .. } = source {
        assert_eq!(
            next,
            plans.len(),
            "prepared plan count must match the query's conjunction count"
        );
    }
    rows
}

fn execute_from(
    storage: &dyn Storage,
    q: &FolQuery,
    meter: &mut Meter,
    source: &mut PlanSource,
) -> Vec<Row> {
    let set = match q {
        FolQuery::Cq(cq) => eval_cq_set(storage, cq, meter, source),
        FolQuery::Ucq(ucq) => eval_ucq_set(storage, ucq, meter, source),
        FolQuery::Scq(scq) => eval_scq_set(storage, scq, meter, source),
        FolQuery::Uscq(uscq) => eval_uscq_set(storage, uscq, meter, source),
        FolQuery::Jucq(jucq) => eval_jucq_set(storage, jucq, meter, source),
        FolQuery::Juscq(juscq) => eval_juscq_set(storage, juscq, meter, source),
    };
    meter.metrics.output = set.len() as u64;
    set.into_iter().collect()
}

// ---------------------------------------------------------------------
// intra-query parallelism
// ---------------------------------------------------------------------

/// Evaluate `q` fanning its independent units across up to `threads` OS
/// threads: the arms of a top-level UCQ/USCQ, or the components of a
/// JUCQ/JUSCQ. Non-union shapes (and `threads <= 1`) run sequentially.
///
/// Each worker owns a private [`Meter`]; deltas are merged into `meter`
/// in arm/component index order, so merged totals and `arm_metrics` are
/// deterministic and the arm-sums-equal-totals invariant holds exactly as
/// in sequential execution. Worker meters never share scan state, so the
/// profile's cross-arm rescan discount does not apply under the parallel
/// path (a non-issue for discount-free profiles like pg-like; under
/// db2-like, parallel totals conservatively price every arm's first scan
/// at full cost).
#[allow(clippy::too_many_arguments)]
pub fn execute_parallel(
    storage: &dyn Storage,
    q: &FolQuery,
    meter: &mut Meter,
    strategy: JoinStrategy,
    mode: ExecMode,
    prepared: Option<&PreparedPlans>,
    threads: usize,
) -> Vec<Row> {
    let sequential = |meter: &mut Meter| match prepared {
        Some(p) => execute_planned(storage, q, meter, p),
        None => execute_mode(storage, q, meter, strategy, mode),
    };
    if threads <= 1 {
        return sequential(meter);
    }
    let set = match q {
        FolQuery::Ucq(ucq) => {
            let offsets = plan_offsets(ucq.cqs().iter().map(|cq| usize::from(cq.num_atoms() > 0)));
            let profile = meter.profile();
            let results = fan_out(ucq.cqs(), threads, |i, cq| {
                let arm_started = std::time::Instant::now();
                let mut wm = Meter::new(profile);
                let mut src = arm_source(prepared, &offsets, i, strategy, mode);
                let rows = eval_cq_set(storage, cq, &mut wm, &mut src);
                wm.on_hash_build(rows.len() as u64);
                let mut delta = wm.metrics;
                delta.output = rows.len() as u64;
                delta.wall = arm_started.elapsed();
                (rows, delta)
            });
            let mut out = FxHashSet::default();
            for (rows, delta) in results {
                meter.merge_arm(delta);
                out.extend(rows);
            }
            out
        }
        FolQuery::Uscq(uscq) => {
            let offsets = plan_offsets(
                uscq.scqs()
                    .iter()
                    .map(|s| usize::from(!s.slots().is_empty())),
            );
            let profile = meter.profile();
            let results = fan_out(uscq.scqs(), threads, |i, scq| {
                let arm_started = std::time::Instant::now();
                let mut wm = Meter::new(profile);
                let mut src = arm_source(prepared, &offsets, i, strategy, mode);
                let rows = eval_scq_set(storage, scq, &mut wm, &mut src);
                wm.on_hash_build(rows.len() as u64);
                let mut delta = wm.metrics;
                delta.output = rows.len() as u64;
                delta.wall = arm_started.elapsed();
                (rows, delta)
            });
            let mut out = FxHashSet::default();
            for (rows, delta) in results {
                meter.merge_arm(delta);
                out.extend(rows);
            }
            out
        }
        FolQuery::Jucq(jucq) => {
            let offsets = plan_offsets(
                jucq.components()
                    .iter()
                    .map(|c| c.cqs().iter().filter(|cq| cq.num_atoms() > 0).count()),
            );
            let profile = meter.profile();
            let results = fan_out(jucq.components(), threads, |i, comp| {
                let mut wm = Meter::new(profile);
                let mut src = arm_source(prepared, &offsets, i, strategy, mode);
                let set = eval_ucq_set_inner(storage, comp, &mut wm, &mut src, false);
                let rel = materialize(comp.head(), set, &mut wm);
                (rel, wm.metrics)
            });
            let mut relations = Vec::with_capacity(results.len());
            for (rel, delta) in results {
                meter.merge_unattributed(&delta);
                relations.push(rel);
            }
            join_relations(relations, jucq.head(), meter)
        }
        FolQuery::Juscq(juscq) => {
            let offsets = plan_offsets(
                juscq
                    .components()
                    .iter()
                    .map(|c| c.scqs().iter().filter(|s| !s.slots().is_empty()).count()),
            );
            let profile = meter.profile();
            let results = fan_out(juscq.components(), threads, |i, comp| {
                let mut wm = Meter::new(profile);
                let mut src = arm_source(prepared, &offsets, i, strategy, mode);
                let set = eval_uscq_set_inner(storage, comp, &mut wm, &mut src, false);
                let rel = materialize(comp.head(), set, &mut wm);
                (rel, wm.metrics)
            });
            let mut relations = Vec::with_capacity(results.len());
            for (rel, delta) in results {
                meter.merge_unattributed(&delta);
                relations.push(rel);
            }
            join_relations(relations, juscq.head(), meter)
        }
        _ => return sequential(meter),
    };
    meter.metrics.output = set.len() as u64;
    set.into_iter().collect()
}

/// Prefix offsets into [`PreparedPlans::plans`]: unit `i` (union arm or
/// JUCQ/JUSCQ component) owns the stored plans in
/// `plans[offsets[i]..offsets[i + 1]]`. `plan_counts` yields, per unit,
/// how many *non-empty* conjunctions it contains (0 or 1 for UCQ/USCQ
/// arms — empty bodies plan nothing, mirroring `prepare_plans`).
fn plan_offsets(plan_counts: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut offsets = vec![0usize];
    for count in plan_counts {
        offsets.push(offsets.last().unwrap() + count);
    }
    offsets
}

/// The plan source for one parallel unit: a slice of the stored plans, or
/// inline planning when no prepared plans were supplied.
fn arm_source<'a>(
    prepared: Option<&'a PreparedPlans>,
    offsets: &[usize],
    i: usize,
    strategy: JoinStrategy,
    mode: ExecMode,
) -> PlanSource<'a> {
    match prepared {
        Some(p) => PlanSource::stored(&p.plans[offsets[i]..offsets[i + 1]], p.mode),
        None => PlanSource::Inline(strategy, mode),
    }
}

/// Run `f` over every item on up to `threads` scoped worker threads
/// (contiguous chunks), returning results in item order regardless of
/// thread scheduling — the merge step's determinism hinges on this.
fn fan_out<'e, T: Sync, R: Send>(
    items: &'e [T],
    threads: usize,
    f: impl Fn(usize, &'e T) -> R + Sync,
) -> Vec<R> {
    let workers = threads.min(items.len()).max(1);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        for (wi, out_chunk) in results.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (j, slot) in out_chunk.iter_mut().enumerate() {
                    let idx = wi * chunk + j;
                    *slot = Some(f(idx, &items[idx]));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled every result slot"))
        .collect()
}

fn eval_cq_set(
    storage: &dyn Storage,
    cq: &CQ,
    meter: &mut Meter,
    source: &mut PlanSource,
) -> FxHashSet<Row> {
    let slots: Vec<Slot> = cq.atoms().iter().map(|a| Slot::single(*a)).collect();
    eval_conjunction(storage, &slots, cq.head(), meter, source)
}

fn eval_ucq_set(
    storage: &dyn Storage,
    ucq: &obda_query::UCQ,
    meter: &mut Meter,
    source: &mut PlanSource,
) -> FxHashSet<Row> {
    eval_ucq_set_inner(storage, ucq, meter, source, true)
}

/// `track_arms` is false when the union is a JUCQ component: arm metrics
/// are a top-level-union contract (their deltas sum to the statement
/// totals), and component work interleaves with materialize/join work
/// that belongs to no arm.
fn eval_ucq_set_inner(
    storage: &dyn Storage,
    ucq: &obda_query::UCQ,
    meter: &mut Meter,
    source: &mut PlanSource,
    track_arms: bool,
) -> FxHashSet<Row> {
    let mut out = FxHashSet::default();
    for cq in ucq.cqs() {
        if track_arms {
            meter.begin_arm();
        }
        let rows = eval_cq_set(storage, cq, meter, source);
        meter.on_hash_build(rows.len() as u64);
        if track_arms {
            meter.end_arm(rows.len() as u64);
        }
        out.extend(rows);
    }
    out
}

fn eval_scq_set(
    storage: &dyn Storage,
    scq: &SCQ,
    meter: &mut Meter,
    source: &mut PlanSource,
) -> FxHashSet<Row> {
    eval_conjunction(storage, scq.slots(), scq.head(), meter, source)
}

fn eval_uscq_set(
    storage: &dyn Storage,
    uscq: &USCQ,
    meter: &mut Meter,
    source: &mut PlanSource,
) -> FxHashSet<Row> {
    eval_uscq_set_inner(storage, uscq, meter, source, true)
}

fn eval_uscq_set_inner(
    storage: &dyn Storage,
    uscq: &USCQ,
    meter: &mut Meter,
    source: &mut PlanSource,
    track_arms: bool,
) -> FxHashSet<Row> {
    let mut out = FxHashSet::default();
    for scq in uscq.scqs() {
        if track_arms {
            meter.begin_arm();
        }
        let rows = eval_scq_set(storage, scq, meter, source);
        meter.on_hash_build(rows.len() as u64);
        if track_arms {
            meter.end_arm(rows.len() as u64);
        }
        out.extend(rows);
    }
    out
}

fn eval_jucq_set(
    storage: &dyn Storage,
    jucq: &JUCQ,
    meter: &mut Meter,
    source: &mut PlanSource,
) -> FxHashSet<Row> {
    let relations: Vec<Relation> = jucq
        .components()
        .iter()
        .map(|c| {
            let set = eval_ucq_set_inner(storage, c, meter, source, false);
            materialize(c.head(), set, meter)
        })
        .collect();
    join_relations(relations, jucq.head(), meter)
}

fn eval_juscq_set(
    storage: &dyn Storage,
    juscq: &JUSCQ,
    meter: &mut Meter,
    source: &mut PlanSource,
) -> FxHashSet<Row> {
    let relations: Vec<Relation> = juscq
        .components()
        .iter()
        .map(|c| {
            let set = eval_uscq_set_inner(storage, c, meter, source, false);
            materialize(c.head(), set, meter)
        })
        .collect();
    join_relations(relations, juscq.head(), meter)
}

/// Materialize a component result (the `WITH sqlN AS (SELECT DISTINCT …)`
/// of §3).
fn materialize(head: &[Term], set: FxHashSet<Row>, meter: &mut Meter) -> Relation {
    meter.on_materialize(set.len() as u64);
    Relation {
        vars: head.iter().filter_map(|t| t.as_var()).collect(),
        rows: set.into_iter().collect(),
    }
}

// ---------------------------------------------------------------------
// conjunction pipeline
// ---------------------------------------------------------------------

/// Evaluate a conjunction of disjunctive slots, projecting `head`. Each
/// step runs the physical operator recorded in the plan — freshly chosen
/// by the planner (inline mode) or replayed from a stored plan.
fn eval_conjunction(
    storage: &dyn Storage,
    slots: &[Slot],
    head: &[Term],
    meter: &mut Meter,
    source: &mut PlanSource,
) -> FxHashSet<Row> {
    if slots.is_empty() {
        // Empty body: true, the empty tuple (constants in head allowed).
        // No plan is consumed — prepare_plans skips empty conjunctions
        // with the same rule, keeping the stored-plan cursor aligned.
        let row: Option<Row> = head
            .iter()
            .map(|t| match t {
                Term::Const(c) => Some(c.0),
                Term::Var(_) => None,
            })
            .collect();
        let mut out = FxHashSet::default();
        if let Some(r) = row {
            meter.on_hash_build(1);
            out.insert(r);
        }
        return out;
    }

    let mode = source.mode();
    let inline_plan;
    let plan: &ConjunctionPlan = match source {
        PlanSource::Inline(strategy, mode) => {
            inline_plan = plan_conjunction_mode(
                slots,
                &BTreeSet::new(),
                storage.stats(),
                storage.layout(),
                *strategy,
                *mode,
            );
            &inline_plan
        }
        PlanSource::Stored { plans, next, .. } => {
            let plan = plans
                .get(*next)
                .expect("stored plans exhausted before the query's conjunctions");
            *next += 1;
            plan
        }
    };

    if mode == ExecMode::Batched {
        return crate::columnar::run_plan(storage, slots, head, plan, meter);
    }

    // Bound-variable layout grows as slots execute.
    let mut var_pos: FxHashMap<VarId, usize> = FxHashMap::default();
    let mut rows: Vec<Row> = vec![Vec::new()];
    for step in &plan.steps {
        let slot = &slots[step.slot];
        // Canonical order in which this slot's new variables are appended
        // to rows. Slot atoms share one variable *set* but may list it in
        // different positional orders (e.g. r(x,y) ∨ r2(y,x)), so
        // extensions are keyed by variable, not by atom position.
        let mut new_var_order: Vec<VarId> = Vec::new();
        for v in slot.atoms()[0].vars() {
            if !var_pos.contains_key(&v) && !new_var_order.contains(&v) {
                new_var_order.push(v);
            }
        }
        let next = match step.op {
            // A row-mode run only ever sees `HashJoin`, but a plan is
            // data — accept both spellings so a batched plan replayed
            // through the row pipeline still executes correctly.
            PhysicalOp::HashJoin { .. } | PhysicalOp::BatchHashJoin { .. } => {
                hash_join_step(storage, slot, &rows, &var_pos, &new_var_order, meter)
            }
            PhysicalOp::IndexNestedLoop(_) => {
                inl_step(storage, slot, &rows, &var_pos, &new_var_order, meter)
            }
        };
        for v in new_var_order {
            let len = var_pos.len();
            var_pos.insert(v, len);
        }
        rows = next;
        if rows.is_empty() {
            break;
        }
    }

    // Project the head.
    let mut out = FxHashSet::default();
    'rows: for row in rows {
        let mut tuple = Vec::with_capacity(head.len());
        for t in head {
            match t {
                Term::Const(c) => tuple.push(c.0),
                Term::Var(v) => match var_pos.get(v) {
                    Some(&p) if p < row.len() => tuple.push(row[p]),
                    _ => continue 'rows,
                },
            }
        }
        meter.on_hash_build(1);
        out.insert(tuple);
    }
    out
}

/// One index-nested-loop step: per current row, probe/extend through each
/// atom of the slot (unbound atoms share one prescan).
fn inl_step(
    storage: &dyn Storage,
    slot: &Slot,
    rows: &[Row],
    var_pos: &FxHashMap<VarId, usize>,
    new_var_order: &[VarId],
    meter: &mut Meter,
) -> Vec<Row> {
    // Pre-scan unbound atoms once (shared across current rows).
    let prescans: Vec<Option<Prescan>> = slot
        .atoms()
        .iter()
        .map(|a| prescan_if_unbound(storage, a, var_pos, meter))
        .collect();
    let mut next: Vec<Row> = Vec::new();
    for row in rows {
        for (atom, prescan) in slot.atoms().iter().zip(&prescans) {
            extend_row(
                storage,
                atom,
                prescan.as_ref(),
                row,
                var_pos,
                new_var_order,
                meter,
                &mut next,
            );
        }
    }
    next
}

/// The build side of one hash-join step. A slot has at most two
/// variables, so keys pack into one `u64` and at most one variable is
/// newly bound — both cases stay allocation-free per tuple (hash joins
/// must beat INL in wall time where the cost model says they do, not
/// just in work units).
/// One hash-join step: scan each atom's extension once into a hash table
/// keyed on the already-bound slot variable, then probe every current
/// row. Equivalent to [`inl_step`] up to intermediate-row order (the
/// final result is a set, so order never shows).
///
/// The planner only emits hash joins for keyed *expansion* steps (≥ 1
/// bound variable AND ≥ 1 new variable — see `plan_conjunction`).
/// Because slot atoms share one variable set and an atom has at most
/// two positions, every hash-eligible slot consists of exactly
/// two-distinct-variable role atoms: one bound key variable, one new
/// variable, no constants. The build therefore inserts `u32 → u32`
/// straight from the scan callbacks, allocation-free per tuple — hash
/// joins must beat INL in wall time where the cost model says they do,
/// not just in work units.
fn hash_join_step(
    storage: &dyn Storage,
    slot: &Slot,
    rows: &[Row],
    var_pos: &FxHashMap<VarId, usize>,
    new_var_order: &[VarId],
    meter: &mut Meter,
) -> Vec<Row> {
    let key_vars: Vec<VarId> = slot
        .vars()
        .into_iter()
        .filter(|v| var_pos.contains_key(v))
        .collect();
    assert_eq!(key_vars.len(), 1, "hash join keys on one bound variable");
    assert_eq!(
        new_var_order.len(),
        1,
        "hash join steps bind exactly one new variable"
    );
    let key_var = key_vars[0];

    // Build side: key value → new-variable values, straight from the
    // scan callbacks. Atoms may list the shared variable set in either
    // positional order (r(x, y) ∨ r2(y, x)); both feed one table.
    let mut table: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    let mut inserted: u64 = 0;
    for atom in slot.atoms() {
        let Atom::Role(r, Term::Var(v1), Term::Var(v2)) = atom else {
            unreachable!("hash-eligible slots contain only two-variable role atoms")
        };
        let key_on_subject = *v1 == key_var;
        debug_assert!(
            key_on_subject || *v2 == key_var,
            "slot atom must use the key variable"
        );
        storage.for_each_role(*r, meter, &mut |s, o| {
            let (key, val) = if key_on_subject { (s, o) } else { (o, s) };
            inserted += 1;
            table.entry(key).or_default().push(val);
        });
    }
    meter.on_join_build(inserted);

    // Probe side: one lookup per current row.
    let key_pos = var_pos[&key_var];
    let mut next: Vec<Row> = Vec::new();
    for row in rows {
        meter.on_join_probe(1);
        if let Some(vals) = table.get(&row[key_pos]) {
            for &val in vals {
                let mut rr = row.clone();
                rr.push(val);
                next.push(rr);
            }
        }
    }
    next
}

/// A materialized scan of an atom whose variables are all unbound.
enum Prescan {
    Concept(Vec<u32>),
    Role(Vec<(u32, u32)>),
}

fn prescan_if_unbound(
    storage: &dyn Storage,
    atom: &Atom,
    var_pos: &FxHashMap<VarId, usize>,
    meter: &mut Meter,
) -> Option<Prescan> {
    let term_bound = |t: &Term| match t {
        Term::Const(_) => true,
        Term::Var(v) => var_pos.contains_key(v),
    };
    match atom {
        Atom::Concept(c, t) if !term_bound(t) => {
            let mut v = Vec::new();
            storage.for_each_concept(*c, meter, &mut |x| v.push(x));
            Some(Prescan::Concept(v))
        }
        Atom::Role(r, t1, t2) if !term_bound(t1) && !term_bound(t2) => {
            let mut v = Vec::new();
            storage.for_each_role(*r, meter, &mut |s, o| v.push((s, o)));
            Some(Prescan::Role(v))
        }
        _ => None,
    }
}

/// Extend one row through one atom. New bindings are keyed by variable and
/// appended in `new_var_order`, so every atom of a slot emits rows with
/// identical column layout.
#[allow(clippy::too_many_arguments)]
fn extend_row(
    storage: &dyn Storage,
    atom: &Atom,
    prescan: Option<&Prescan>,
    row: &Row,
    var_pos: &FxHashMap<VarId, usize>,
    new_var_order: &[VarId],
    meter: &mut Meter,
    out: &mut Vec<Row>,
) {
    let resolve = |t: &Term| -> Option<u32> {
        match t {
            Term::Const(c) => Some(c.0),
            Term::Var(v) => var_pos.get(v).map(|&p| row[p]),
        }
    };
    // Append `bindings` (var → value pairs) to a copy of `row`, following
    // the slot's canonical new-variable order.
    let emit = |bindings: &[(VarId, u32)], out: &mut Vec<Row>| {
        let mut rr = row.clone();
        for v in new_var_order {
            match bindings.iter().find(|(w, _)| w == v) {
                Some(&(_, val)) => rr.push(val),
                None => return, // atom doesn't bind a slot variable — bug guard
            }
        }
        out.push(rr);
    };
    match atom {
        Atom::Concept(c, t) => match resolve(t) {
            Some(val) => {
                if storage.probe_concept(*c, val, meter) {
                    out.push(row.clone());
                }
            }
            None => {
                let Some(Prescan::Concept(members)) = prescan else {
                    unreachable!("unbound concept atom must have a prescan")
                };
                let var = t.as_var().expect("unbound term is a variable");
                for &m in members {
                    emit(&[(var, m)], out);
                }
            }
        },
        Atom::Role(r, t1, t2) => {
            let b1 = resolve(t1);
            let b2 = resolve(t2);
            match (b1, b2) {
                (Some(s), Some(o)) => {
                    if storage.probe_role(*r, s, o, meter) {
                        out.push(row.clone());
                    }
                }
                (Some(s), None) => {
                    let var = t2.as_var().expect("unbound term is a variable");
                    storage.role_objects(*r, s, meter, &mut |o| {
                        emit(&[(var, o)], out);
                    });
                }
                (None, Some(o)) => {
                    let var = t1.as_var().expect("unbound term is a variable");
                    storage.role_subjects(*r, o, meter, &mut |s| {
                        emit(&[(var, s)], out);
                    });
                }
                (None, None) => {
                    let Some(Prescan::Role(pairs)) = prescan else {
                        unreachable!("unbound role atom must have a prescan")
                    };
                    let v1 = t1.as_var().expect("unbound term is a variable");
                    let v2 = t2.as_var().expect("unbound term is a variable");
                    if v1 == v2 {
                        for &(s, o) in pairs {
                            if s == o {
                                emit(&[(v1, s)], out);
                            }
                        }
                    } else {
                        for &(s, o) in pairs {
                            emit(&[(v1, s), (v2, o)], out);
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// hash join of materialized components
// ---------------------------------------------------------------------

/// Join materialized component relations on shared variables (smallest
/// relation first) and project `head` with DISTINCT.
fn join_relations(
    mut relations: Vec<Relation>,
    head: &[Term],
    meter: &mut Meter,
) -> FxHashSet<Row> {
    relations.sort_by_key(|r| r.rows.len());
    let mut acc_vars: Vec<VarId> = Vec::new();
    let mut acc_rows: Vec<Row> = vec![Vec::new()];
    for rel in relations {
        // Join positions: (acc idx, rel idx); new vars keep rel order.
        let mut join_pos: Vec<(usize, usize)> = Vec::new();
        let mut new_vars: Vec<(usize, VarId)> = Vec::new();
        for (ri, v) in rel.vars.iter().enumerate() {
            match acc_vars.iter().position(|w| w == v) {
                Some(ai) => join_pos.push((ai, ri)),
                None => new_vars.push((ri, *v)),
            }
        }
        // Build hash on the (smaller) new relation.
        let mut index: FxHashMap<Vec<u32>, Vec<&Row>> = FxHashMap::default();
        for row in &rel.rows {
            let key: Vec<u32> = join_pos.iter().map(|&(_, ri)| row[ri]).collect();
            index.entry(key).or_default().push(row);
        }
        meter.on_hash_build(rel.rows.len() as u64);
        let mut next: Vec<Row> = Vec::new();
        for arow in &acc_rows {
            let key: Vec<u32> = join_pos.iter().map(|&(ai, _)| arow[ai]).collect();
            meter.on_hash_probe(1);
            if let Some(matches) = index.get(&key) {
                for m in matches {
                    let mut combined = arow.clone();
                    for &(ri, _) in &new_vars {
                        combined.push(m[ri]);
                    }
                    next.push(combined);
                }
            }
        }
        acc_vars.extend(new_vars.iter().map(|&(_, v)| v));
        acc_rows = next;
        if acc_rows.is_empty() {
            break;
        }
    }
    // DISTINCT projection.
    let mut out = FxHashSet::default();
    'rows: for row in acc_rows {
        let mut tuple = Vec::with_capacity(head.len());
        for t in head {
            match t {
                Term::Const(c) => tuple.push(c.0),
                Term::Var(v) => match acc_vars.iter().position(|w| w == v) {
                    Some(p) => tuple.push(row[p]),
                    None => continue 'rows,
                },
            }
        }
        meter.on_hash_build(1);
        out.insert(tuple);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::simple::SimpleStorage;
    use crate::layout::testutil::small_abox;
    use crate::profile::EngineProfile;
    use obda_dllite::{ConceptId, RoleId};
    use obda_query::UCQ;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn run(q: FolQuery) -> Vec<Row> {
        run_with(q, JoinStrategy::CostChosen)
    }

    fn run_with(q: FolQuery, strategy: JoinStrategy) -> Vec<Row> {
        let (_, abox) = small_abox();
        let storage = SimpleStorage::load(&abox);
        let profile = EngineProfile::pg_like();
        let mut meter = Meter::new(&profile);
        let mut rows = execute_with(&storage, &q, &mut meter, strategy);
        rows.sort();
        rows
    }

    #[test]
    fn cq_join_through_shared_var() {
        // q(x, z) ← r(x, y) ∧ r(y, z): i0→i1→? no (i1 has no r-out);
        // actually r = {(0,1), (0,2), (3,2)}: paths 0→1→? none, 0→2→?
        // none, 3→2→? none. Use s = {(1,0)}: q(x, z) ← r(x,y) ∧ s(y,z):
        // (0,1)·(1,0) → (0, 0).
        let q = CQ::with_var_head(
            vec![VarId(0), VarId(2)],
            vec![
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Role(RoleId(1), v(1), v(2)),
            ],
        );
        assert_eq!(run(FolQuery::Cq(q)), vec![vec![0, 0]]);
    }

    #[test]
    fn cq_with_concept_filter() {
        // q(x) ← A(x) ∧ r(x, y): A = {0, 1}; r subjects = {0, 3} → {0}.
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(0), v(1)),
            ],
        );
        assert_eq!(run(FolQuery::Cq(q)), vec![vec![0]]);
    }

    #[test]
    fn self_join_same_variable() {
        // q(x) ← r(x, x): no reflexive pairs in the fixture.
        let q = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(0))]);
        assert!(run(FolQuery::Cq(q)).is_empty());
    }

    #[test]
    fn ucq_union_dedup() {
        // A(x) ∨ (x : subjects of r) = {0,1} ∪ {0,3} = {0,1,3}.
        let qa = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(0), v(0))]);
        let qr = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(0), v(0), v(1))]);
        let u = UCQ::from_cqs(vec![v(0)], [qa, qr]);
        assert_eq!(run(FolQuery::Ucq(u)), vec![vec![0], vec![1], vec![3]]);
    }

    #[test]
    fn jucq_matches_flat_cq() {
        // JUCQ of {A(x)} ⋈ {r(x, y)} must equal the flat CQ answer.
        let flat = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(0), v(1)),
            ],
        );
        let c1 = UCQ::single(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(ConceptId(0), v(0))],
        ));
        let c2 = UCQ::single(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Role(RoleId(0), v(0), v(1))],
        ));
        let j = JUCQ::new(vec![v(0)], vec![c1, c2]);
        assert_eq!(run(FolQuery::Jucq(j)), run(FolQuery::Cq(flat)));
    }

    #[test]
    fn constants_restrict() {
        // q(x) ← r(x, i2): subjects {0, 3}.
        let (mut voc, _) = small_abox();
        let i2 = voc.individual("i2");
        let q = CQ::new(
            vec![v(0)],
            vec![Atom::Role(RoleId(0), v(0), Term::Const(i2))],
        );
        assert_eq!(run(FolQuery::Cq(q)), vec![vec![0], vec![3]]);
    }

    #[test]
    fn boolean_queries() {
        let yes = CQ::with_var_head(vec![], vec![Atom::Concept(ConceptId(0), v(0))]);
        assert_eq!(run(FolQuery::Cq(yes)), vec![Vec::<u32>::new()]);
        let no = CQ::with_var_head(vec![], vec![Atom::Concept(ConceptId(42), v(0))]);
        assert!(run(FolQuery::Cq(no)).is_empty());
    }

    #[test]
    fn scq_slot_disjunction() {
        use obda_query::{Slot, SCQ};
        // (A(x) ∨ B(x)): {0,1} ∪ {2}.
        let slot = Slot::new(vec![
            Atom::Concept(ConceptId(0), v(0)),
            Atom::Concept(ConceptId(1), v(0)),
        ]);
        let scq = SCQ::new(vec![v(0)], vec![slot]);
        assert_eq!(run(FolQuery::Scq(scq)), vec![vec![0], vec![1], vec![2]]);
    }

    /// Every fixture query answers identically under forced-INL,
    /// forced-hash, and cost-chosen execution (the per-crate smoke
    /// version of the workspace differential harness).
    #[test]
    fn physical_strategies_agree_on_fixture_queries() {
        use obda_query::{Slot, SCQ};
        let queries: Vec<FolQuery> = vec![
            FolQuery::Cq(CQ::with_var_head(
                vec![VarId(0), VarId(2)],
                vec![
                    Atom::Role(RoleId(0), v(0), v(1)),
                    Atom::Role(RoleId(1), v(1), v(2)),
                ],
            )),
            FolQuery::Cq(CQ::with_var_head(
                vec![VarId(0)],
                vec![
                    Atom::Concept(ConceptId(0), v(0)),
                    Atom::Role(RoleId(0), v(0), v(1)),
                ],
            )),
            FolQuery::Cq(CQ::with_var_head(
                vec![VarId(0)],
                vec![Atom::Role(RoleId(0), v(0), v(0))],
            )),
            FolQuery::Ucq(UCQ::from_cqs(
                vec![v(0)],
                [
                    CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(0), v(0))]),
                    CQ::with_var_head(
                        vec![VarId(0)],
                        vec![
                            Atom::Role(RoleId(0), v(0), v(1)),
                            Atom::Concept(ConceptId(1), v(1)),
                        ],
                    ),
                ],
            )),
            FolQuery::Scq(SCQ::new(
                vec![v(0)],
                vec![
                    Slot::new(vec![
                        Atom::Role(RoleId(0), v(0), v(1)),
                        Atom::Role(RoleId(1), v(1), v(0)),
                    ]),
                    Slot::single(Atom::Concept(ConceptId(0), v(0))),
                ],
            )),
            // Constant-keyed atoms: a constant makes a slot non-scan-stage
            // while giving a hash table nothing to key on — these must
            // plan (and run) as INL under every strategy, never panic
            // (regression: forced-hash used to hit unreachable!()).
            FolQuery::Cq(CQ::new(
                vec![v(1)],
                vec![Atom::Role(
                    RoleId(0),
                    Term::Const(obda_dllite::IndividualId(0)),
                    v(1),
                )],
            )),
            FolQuery::Cq(CQ::new(
                vec![v(0)],
                vec![
                    Atom::Concept(ConceptId(0), v(0)),
                    Atom::Role(RoleId(0), v(0), Term::Const(obda_dllite::IndividualId(2))),
                ],
            )),
        ];
        for q in queries {
            let inl = run_with(q.clone(), JoinStrategy::ForcedInl);
            let hash = run_with(q.clone(), JoinStrategy::ForcedHash);
            let chosen = run_with(q.clone(), JoinStrategy::CostChosen);
            assert_eq!(inl, hash, "INL vs hash on {q:?}");
            assert_eq!(inl, chosen, "INL vs cost-chosen on {q:?}");
        }
    }

    /// Forced-hash execution records join_build/join_probe work, and the
    /// per-arm deltas of a UCQ sum to the statement totals.
    #[test]
    fn hash_execution_is_metered_per_arm() {
        let (_, abox) = small_abox();
        let storage = SimpleStorage::load(&abox);
        let profile = EngineProfile::pg_like();
        let q = FolQuery::Ucq(UCQ::from_cqs(
            vec![v(0)],
            [
                CQ::with_var_head(
                    vec![VarId(0)],
                    vec![
                        Atom::Concept(ConceptId(0), v(0)),
                        Atom::Role(RoleId(0), v(0), v(1)),
                    ],
                ),
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(1), v(0))]),
            ],
        ));
        let mut meter = Meter::new(&profile);
        execute_with(&storage, &q, &mut meter, JoinStrategy::ForcedHash);
        assert!(
            meter.metrics.join_build > 0 && meter.metrics.join_probe > 0,
            "hash ops metered: {:?}",
            meter.metrics
        );
        assert_eq!(meter.arm_metrics.len(), 2);
        let mut sum = crate::metrics::ExecMetrics::default();
        for a in &meter.arm_metrics {
            sum.merge(a);
        }
        assert_eq!(sum.scanned, meter.metrics.scanned);
        assert_eq!(sum.index_probes, meter.metrics.index_probes);
        assert_eq!(sum.hash_build, meter.metrics.hash_build);
        assert_eq!(sum.join_build, meter.metrics.join_build);
        assert_eq!(sum.join_probe, meter.metrics.join_probe);
    }

    /// Cross-validation: the engine agrees with the reference evaluator on
    /// randomized queries and data — the engine's master correctness test.
    #[test]
    fn agrees_with_reference_evaluator() {
        use obda_query::eval_over_abox;
        use obda_query::testkit::{random_abox, random_connected_cq, KbShape, Rng};
        for seed in 0..40u64 {
            let mut rng = Rng::new(seed);
            let shape = KbShape::default();
            let (mut voc, _) = obda_query::testkit::random_tbox(&mut rng, &shape);
            let abox = random_abox(&mut rng, &mut voc, &shape);
            let storage = SimpleStorage::load(&abox);
            let profile = EngineProfile::pg_like();
            for n in 1..=4 {
                let cq = random_connected_cq(&mut rng, &voc, n, 2);
                let q = FolQuery::Cq(cq);
                let mut meter = Meter::new(&profile);
                let mut got: Vec<Row> = execute(&storage, &q, &mut meter);
                got.sort();
                let mut want: Vec<Row> = eval_over_abox(&abox, &q)
                    .into_iter()
                    .map(|row| row.into_iter().map(|i| i.0).collect())
                    .collect();
                want.sort();
                assert_eq!(got, want, "seed {seed}, atoms {n}");
            }
        }
    }
}
