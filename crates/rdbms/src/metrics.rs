//! Work-unit accounting for query execution.
//!
//! Every physical operation reports its work: tuples scanned, index
//! probes, hash operations, materialized tuples. Work units feed (a) the
//! simulated-time model (profile-scaled, used to compare engine profiles
//! on equal footing) and (b) regression assertions in tests ("the JUCQ
//! plan scans less than the UCQ plan").

use std::time::Duration;

use crate::profile::EngineProfile;

/// Execution metrics of one statement.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecMetrics {
    /// Tuples produced by full or filtered scans (after rescan discount —
    /// see [`ExecMetrics::add_scan`]).
    pub scanned: f64,
    /// Index probe operations (hash/point lookups into an access path).
    pub index_probes: u64,
    /// Tuples inserted into hash tables (joins, DISTINCT).
    pub hash_build: u64,
    /// Hash probe operations.
    pub hash_probe: u64,
    /// Tuples materialized into intermediate results (WITH … AS).
    pub materialized: u64,
    /// Tuples in the final result.
    pub output: u64,
    /// Wall-clock execution time.
    pub wall: Duration,
}

impl ExecMetrics {
    /// Record a scan of `tuples` rows; `prior_scans` is how many times the
    /// same table was already scanned in this statement (the profile's
    /// rescan discount applies to repeats).
    pub fn add_scan(&mut self, tuples: u64, prior_scans: u32, profile: &EngineProfile) {
        let factor = if prior_scans > 0 {
            profile.rescan_discount
        } else {
            1.0
        };
        self.scanned += tuples as f64 * factor;
    }

    /// Total abstract work units (calibration: a scanned tuple = 1, an
    /// index probe = 2, hash ops = 1.5/1, a materialized tuple = 3 —
    /// constants fixed once, shared by all profiles, standing in for the
    /// per-engine calibration of §6.1).
    pub fn work_units(&self) -> f64 {
        self.scanned
            + 2.0 * self.index_probes as f64
            + 1.5 * self.hash_build as f64
            + self.hash_probe as f64
            + 3.0 * self.materialized as f64
    }

    /// Simulated execution time under a profile.
    pub fn simulated(&self, profile: &EngineProfile) -> Duration {
        Duration::from_nanos((self.work_units() * profile.ns_per_work_unit) as u64)
    }

    /// Merge another statement's metrics into this one.
    pub fn merge(&mut self, other: &ExecMetrics) {
        self.scanned += other.scanned;
        self.index_probes += other.index_probes;
        self.hash_build += other.hash_build;
        self.hash_probe += other.hash_probe;
        self.materialized += other.materialized;
        self.output += other.output;
        self.wall += other.wall;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescan_discount_applies_to_repeats() {
        let db2 = EngineProfile::db2_like();
        let mut m = ExecMetrics::default();
        m.add_scan(1000, 0, &db2);
        assert_eq!(m.scanned, 1000.0);
        m.add_scan(1000, 1, &db2);
        assert!(m.scanned < 2000.0, "second scan discounted");
        let pg = EngineProfile::pg_like();
        let mut m2 = ExecMetrics::default();
        m2.add_scan(1000, 0, &pg);
        m2.add_scan(1000, 5, &pg);
        assert_eq!(m2.scanned, 2000.0, "pg has no discount");
    }

    #[test]
    fn work_units_are_weighted() {
        let m = ExecMetrics {
            scanned: 10.0,
            index_probes: 5,
            ..Default::default()
        };
        assert_eq!(m.work_units(), 10.0 + 10.0);
    }

    #[test]
    fn simulated_time_scales_with_profile() {
        let m = ExecMetrics {
            scanned: 1_000_000.0,
            ..Default::default()
        };
        let pg = EngineProfile::pg_like();
        let t = m.simulated(&pg);
        assert!(t > Duration::from_millis(1));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ExecMetrics {
            scanned: 1.0,
            output: 2,
            ..Default::default()
        };
        let b = ExecMetrics {
            scanned: 3.0,
            hash_probe: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.scanned, 4.0);
        assert_eq!(a.hash_probe, 4);
        assert_eq!(a.output, 2);
    }
}
