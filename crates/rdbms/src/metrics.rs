//! Work-unit accounting for query execution.
//!
//! Every physical operation reports its work: tuples scanned, index
//! probes, hash operations, materialized tuples. Work units feed (a) the
//! simulated-time model (profile-scaled, used to compare engine profiles
//! on equal footing) and (b) regression assertions in tests ("the JUCQ
//! plan scans less than the UCQ plan").

use std::time::Duration;

use crate::planner::{
    HASH_BUILD_WEIGHT, HASH_PROBE_WEIGHT, INDEX_PROBE_WEIGHT, MATERIALIZE_WEIGHT,
};
use crate::profile::EngineProfile;

/// Execution metrics of one statement.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecMetrics {
    /// Tuples produced by full or filtered scans (after rescan discount —
    /// see [`ExecMetrics::add_scan`]).
    pub scanned: f64,
    /// Index probe operations (hash/point lookups into an access path).
    pub index_probes: u64,
    /// Tuples inserted into hash tables for dedup/DISTINCT and JUCQ
    /// component joins.
    pub hash_build: u64,
    /// Hash probe operations against dedup/JUCQ tables.
    pub hash_probe: u64,
    /// Tuples inserted into **hash-join build sides** inside a
    /// conjunction pipeline (the cost-chosen physical operator) — kept
    /// separate from `hash_build` so operator choice is visible in
    /// measurements.
    pub join_build: u64,
    /// Probe operations against conjunction hash-join tables.
    pub join_probe: u64,
    /// Tuples materialized into intermediate results (WITH … AS).
    pub materialized: u64,
    /// Tuples in the final result.
    pub output: u64,
    /// Wall-clock execution time.
    pub wall: Duration,
}

impl ExecMetrics {
    /// Record a scan of `tuples` rows; `prior_scans` is how many times the
    /// same table was already scanned in this statement (the profile's
    /// rescan discount applies to repeats).
    pub fn add_scan(&mut self, tuples: u64, prior_scans: u32, profile: &EngineProfile) {
        let factor = if prior_scans > 0 {
            profile.rescan_discount
        } else {
            1.0
        };
        self.scanned += tuples as f64 * factor;
    }

    /// Total abstract work units (calibration: a scanned tuple = 1, an
    /// index probe = 2, hash ops = 1.5/1, a materialized tuple = 3 —
    /// constants fixed once in [`crate::planner`], shared by all
    /// profiles and by the cost model, standing in for the per-engine
    /// calibration of §6.1).
    pub fn work_units(&self) -> f64 {
        self.scanned
            + INDEX_PROBE_WEIGHT * self.index_probes as f64
            + HASH_BUILD_WEIGHT * (self.hash_build + self.join_build) as f64
            + HASH_PROBE_WEIGHT * (self.hash_probe + self.join_probe) as f64
            + MATERIALIZE_WEIGHT * self.materialized as f64
    }

    /// Simulated execution time under a profile.
    pub fn simulated(&self, profile: &EngineProfile) -> Duration {
        Duration::from_nanos((self.work_units() * profile.ns_per_work_unit) as u64)
    }

    /// Merge another statement's metrics into this one.
    pub fn merge(&mut self, other: &ExecMetrics) {
        self.scanned += other.scanned;
        self.index_probes += other.index_probes;
        self.hash_build += other.hash_build;
        self.hash_probe += other.hash_probe;
        self.join_build += other.join_build;
        self.join_probe += other.join_probe;
        self.materialized += other.materialized;
        self.output += other.output;
        self.wall += other.wall;
    }

    /// `self - other` on every additive counter (wall saturates at zero).
    /// Used by the meter to compute per-union-arm deltas.
    pub fn delta_since(&self, other: &ExecMetrics) -> ExecMetrics {
        ExecMetrics {
            scanned: self.scanned - other.scanned,
            index_probes: self.index_probes - other.index_probes,
            hash_build: self.hash_build - other.hash_build,
            hash_probe: self.hash_probe - other.hash_probe,
            join_build: self.join_build - other.join_build,
            join_probe: self.join_probe - other.join_probe,
            materialized: self.materialized - other.materialized,
            output: self.output.saturating_sub(other.output),
            wall: self.wall.saturating_sub(other.wall),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescan_discount_applies_to_repeats() {
        let db2 = EngineProfile::db2_like();
        let mut m = ExecMetrics::default();
        m.add_scan(1000, 0, &db2);
        assert_eq!(m.scanned, 1000.0);
        m.add_scan(1000, 1, &db2);
        assert!(m.scanned < 2000.0, "second scan discounted");
        let pg = EngineProfile::pg_like();
        let mut m2 = ExecMetrics::default();
        m2.add_scan(1000, 0, &pg);
        m2.add_scan(1000, 5, &pg);
        assert_eq!(m2.scanned, 2000.0, "pg has no discount");
    }

    #[test]
    fn work_units_are_weighted() {
        let m = ExecMetrics {
            scanned: 10.0,
            index_probes: 5,
            ..Default::default()
        };
        assert_eq!(m.work_units(), 10.0 + 10.0);
    }

    #[test]
    fn simulated_time_scales_with_profile() {
        let m = ExecMetrics {
            scanned: 1_000_000.0,
            ..Default::default()
        };
        let pg = EngineProfile::pg_like();
        let t = m.simulated(&pg);
        assert!(t > Duration::from_millis(1));
    }

    #[test]
    fn join_counters_are_weighted_like_hash_counters() {
        let dedup = ExecMetrics {
            hash_build: 10,
            hash_probe: 4,
            ..Default::default()
        };
        let join = ExecMetrics {
            join_build: 10,
            join_probe: 4,
            ..Default::default()
        };
        assert_eq!(dedup.work_units(), join.work_units());
    }

    #[test]
    fn delta_since_subtracts_every_counter() {
        let mut total = ExecMetrics {
            scanned: 10.0,
            index_probes: 5,
            hash_build: 4,
            hash_probe: 3,
            join_build: 2,
            join_probe: 1,
            materialized: 6,
            ..Default::default()
        };
        let before = total;
        total.merge(&ExecMetrics {
            scanned: 1.0,
            join_build: 7,
            ..Default::default()
        });
        let d = total.delta_since(&before);
        assert_eq!(d.scanned, 1.0);
        assert_eq!(d.join_build, 7);
        assert_eq!(d.index_probes, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ExecMetrics {
            scanned: 1.0,
            output: 2,
            ..Default::default()
        };
        let b = ExecMetrics {
            scanned: 3.0,
            hash_probe: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.scanned, 4.0);
        assert_eq!(a.hash_probe, 4);
        assert_eq!(a.output, 2);
    }
}
