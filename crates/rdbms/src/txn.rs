//! Snapshot-isolated transactions over the serving layer.
//!
//! [`Server::begin`] pins the current [`EngineSnapshot`] and opens a
//! [`Txn`]: a [`WorkingSet`] of buffered inserts/retractions overlaid on
//! the pinned generation. Reads — point probes and full conjunctive
//! queries — see the pinned snapshot *plus* the transaction's own writes
//! (read-your-own-writes), and nothing from concurrent committers.
//!
//! Commit flattens the working set into one [`AboxDelta`], resolves the
//! provisional ids of names the transaction introduced against the
//! master vocabulary, validates **first-committer-wins** (any overlapping
//! fact key committed after this transaction's begin aborts it with
//! [`ServerError::Conflict`]), and rides the group-commit WAL: concurrent
//! committers share one fsynced record, one published snapshot each.
//! Rollback — explicit or by drop — simply discards the working set.
//!
//! ## Overlay queries
//!
//! An in-transaction query runs against a private overlay snapshot: the
//! pinned engine cloned copy-on-write, the effective working-set delta
//! applied to the clone, and the pinned vocabulary extended with the
//! transaction's new names. Provisional ids are allocated densely above
//! the pinned vocabulary (`base + k`), so extending a clone of that
//! vocabulary in allocation order makes every provisional id resolve by
//! the ordinary vocabulary API — parsing and row rendering need no
//! special cases. Overlay compilations bypass the server's plan cache:
//! the overlay shares the pinned generation number, and caching under it
//! would leak transaction-private plans to other sessions.

use std::sync::Arc;

use obda_dllite::{AboxDelta, ConceptId, IndividualId, RoleId, WorkingSet};
use obda_query::CQ;

use crate::engine::EngineError;
use crate::server::{EngineSnapshot, Server, ServerError, ServerOutcome};
use crate::sqlexec::Backend;

/// One open snapshot-isolated transaction. Holds no server lock while
/// open — any number of transactions proceed concurrently, and only
/// commit touches shared state. Dropping an unfinished transaction
/// rolls it back.
pub struct Txn<'s> {
    server: &'s Server,
    id: u64,
    snapshot: Arc<EngineSnapshot>,
    ws: WorkingSet,
    /// Cached overlay snapshot, keyed by the working-set version that
    /// built it (queries between writes reuse it).
    overlay: Option<(u64, Arc<EngineSnapshot>)>,
    finished: bool,
}

impl Server {
    /// Open a transaction pinned to the current snapshot generation.
    ///
    /// Reads inside the transaction are snapshot-isolated (they see the
    /// pinned generation plus the transaction's own writes); the commit
    /// is validated first-committer-wins against everything that
    /// committed after this begin.
    pub fn begin(&self) -> Txn<'_> {
        let (id, snapshot) = self.register_txn();
        let base = snapshot.vocabulary().num_individuals();
        Txn {
            server: self,
            id,
            snapshot,
            ws: WorkingSet::new(base),
            overlay: None,
            finished: false,
        }
    }
}

impl<'s> Txn<'s> {
    /// This transaction's id (unique per server, monotonically
    /// assigned).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The pinned snapshot every read resolves against.
    pub fn snapshot(&self) -> &Arc<EngineSnapshot> {
        &self.snapshot
    }

    /// The generation this transaction began at.
    pub fn begin_generation(&self) -> u64 {
        self.snapshot.generation()
    }

    /// Number of buffered fact writes (distinct keys).
    pub fn pending_ops(&self) -> usize {
        self.ws.len()
    }

    /// Names this transaction introduced so far.
    pub fn new_names(&self) -> usize {
        self.ws.new_individuals().len()
    }

    /// Resolve a name to an id, interning it transaction-locally if the
    /// pinned snapshot does not know it. The returned id is provisional
    /// for new names — meaningful inside this transaction; commit remaps
    /// it to the final interned id.
    pub fn individual(&mut self, name: &str) -> IndividualId {
        match self.snapshot.vocabulary().find_individual(name) {
            Some(id) => id,
            None => self.ws.new_individual(name),
        }
    }

    /// Resolve a name without interning: pinned snapshot first, then the
    /// transaction's own new names.
    pub fn find_individual(&self, name: &str) -> Option<IndividualId> {
        self.snapshot
            .vocabulary()
            .find_individual(name)
            .or_else(|| self.ws.find_new_individual(name))
    }

    /// The name behind an id this transaction can see.
    pub fn individual_name(&self, id: IndividualId) -> Option<&str> {
        let voc = self.snapshot.vocabulary();
        if (id.0 as usize) < voc.num_individuals() {
            Some(voc.individual_name(id))
        } else {
            self.ws.provisional_name(id)
        }
    }

    /// Buffer an insert of `A(a)`.
    pub fn insert_concept(&mut self, c: ConceptId, a: IndividualId) {
        self.ws.insert_concept(c, a);
    }

    /// Buffer a retraction of `A(a)`.
    pub fn retract_concept(&mut self, c: ConceptId, a: IndividualId) {
        self.ws.retract_concept(c, a);
    }

    /// Buffer an insert of `R(a, b)`.
    pub fn insert_role(&mut self, r: RoleId, a: IndividualId, b: IndividualId) {
        self.ws.insert_role(r, a, b);
    }

    /// Buffer a retraction of `R(a, b)`.
    pub fn retract_role(&mut self, r: RoleId, a: IndividualId, b: IndividualId) {
        self.ws.retract_role(r, a, b);
    }

    /// Read-your-own-writes visibility of `A(a)`: the buffered write if
    /// any, else the pinned snapshot.
    pub fn contains_concept(&self, c: ConceptId, a: IndividualId) -> bool {
        self.ws
            .concept_write((c, a))
            .unwrap_or_else(|| self.snapshot.engine().probe_concept(c, a))
    }

    /// Read-your-own-writes visibility of `R(a, b)`.
    pub fn contains_role(&self, r: RoleId, a: IndividualId, b: IndividualId) -> bool {
        self.ws
            .role_write((r, a, b))
            .unwrap_or_else(|| self.snapshot.engine().probe_role(r, a, b))
    }

    /// Answer a conjunctive query inside the transaction: against the
    /// pinned snapshot overlaid with the working set, under the server's
    /// configured backend.
    pub fn query(&mut self, cq: &CQ) -> Result<ServerOutcome, EngineError> {
        self.query_as(cq, self.server.config().backend)
    }

    /// [`Txn::query`] under an explicit execution backend (the wire
    /// front end's per-session selection).
    pub fn query_as(&mut self, cq: &CQ, backend: Backend) -> Result<ServerOutcome, EngineError> {
        if self.ws.is_empty() {
            // Clean transaction: the pinned snapshot *is* the view, and
            // its compilations are safely shareable through the cache.
            return self.server.query_on_as(&self.snapshot, cq, backend);
        }
        let overlay = self.overlay_snapshot();
        self.server.query_uncached(&overlay, cq, backend)
    }

    /// A read view of the transaction: the overlay snapshot when the
    /// working set is dirty, the pinned snapshot otherwise. The wire
    /// front end parses names and renders rows against this.
    pub fn view(&mut self) -> Arc<EngineSnapshot> {
        if self.ws.is_empty() {
            return Arc::clone(&self.snapshot);
        }
        self.overlay_snapshot()
    }

    /// Build (or reuse) the overlay: pinned engine clone + effective
    /// working-set delta + vocabulary extended with the transaction's
    /// new names, tagged with the *pinned* generation.
    fn overlay_snapshot(&mut self) -> Arc<EngineSnapshot> {
        if let Some((version, snap)) = &self.overlay {
            if *version == self.ws.version() {
                return Arc::clone(snap);
            }
        }
        let base = &self.snapshot;
        // Extending a clone of the pinned vocabulary in allocation order
        // assigns each new name exactly its provisional id.
        let mut voc = base.vocabulary().clone();
        for name in self.ws.new_individuals() {
            voc.individual(name);
        }
        // The effective delta: only writes that change the pinned state
        // (inserts of absent facts, retractions of present ones).
        let mut delta = AboxDelta::new();
        for (key, present) in self.ws.concept_writes() {
            let (c, a) = key;
            if present != base.engine().probe_concept(c, a) {
                if present {
                    delta.insert_concepts.push(key);
                } else {
                    delta.delete_concepts.push(key);
                }
            }
        }
        for (key, present) in self.ws.role_writes() {
            let (r, a, b) = key;
            if present != base.engine().probe_role(r, a, b) {
                if present {
                    delta.insert_roles.push(key);
                } else {
                    delta.delete_roles.push(key);
                }
            }
        }
        delta.insert_concepts.sort_unstable();
        delta.delete_concepts.sort_unstable();
        delta.insert_roles.sort_unstable();
        delta.delete_roles.sort_unstable();
        let mut engine = base.engine().clone();
        engine.apply_delta(&delta);
        let snap = Arc::new(EngineSnapshot {
            engine,
            tbox: base.tbox.clone(),
            deps: base.deps.clone(),
            voc: Arc::new(voc),
            generation: base.generation,
            // Fresh cell, NOT the base snapshot's: this overlay contains
            // the transaction's own uncommitted writes, so constraints
            // mined from the base data could wrongly prune arms over
            // predicates this transaction just populated.
            constraints: std::sync::OnceLock::new(),
        });
        self.overlay = Some((self.ws.version(), Arc::clone(&snap)));
        snap
    }

    /// Commit: validate first-committer-wins, stage the flattened delta,
    /// and ride the next group-commit WAL record. Returns the published
    /// generation. An empty transaction commits as a no-op — no WAL
    /// record, no generation bump — and returns the pinned generation.
    ///
    /// On [`ServerError::Conflict`] nothing was applied; re-running the
    /// whole transaction against a fresh snapshot is the retry protocol.
    pub fn commit(mut self) -> Result<u64, ServerError> {
        self.finished = true;
        if self.ws.is_empty() {
            self.server.deregister_txn(self.id);
            return Ok(self.snapshot.generation());
        }
        // Stage (which validates conflicts) *before* deregistering: the
        // conflict registry must stay protected by this transaction's
        // begin generation until its own check has run.
        let staged = self.server.stage_txn(&self.ws, self.snapshot.generation());
        self.server.deregister_txn(self.id);
        let slot = staged?;
        self.server.commit_wait(&slot)
    }

    /// Helper for the wire front end: commit by reference semantics are
    /// not offered — commit consumes the transaction, so a session's
    /// `Option<Txn>` commits with `take()`.
    #[doc(hidden)]
    pub fn working_set(&self) -> &WorkingSet {
        &self.ws
    }

    /// Roll back: discard the working set. Nothing downstream ever saw
    /// it. (Dropping the transaction does the same.)
    pub fn rollback(mut self) {
        self.finished = true;
        self.server.deregister_txn(self.id);
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.server.deregister_txn(self.id);
        }
    }
}
