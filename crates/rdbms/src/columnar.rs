//! The vectorized (batched columnar) conjunction pipeline — the default
//! native execution path.
//!
//! The row pipeline in [`crate::executor`] carries intermediate results
//! as `Vec<Row>` with one heap-allocated `Vec<u32>` per tuple and clones
//! a row for every extension. This module carries the same intermediate
//! relation column-major (`Cols`): one flat `Vec<u32>` per bound
//! variable. Steps produce a *selection vector* (input-row index per
//! output row) plus the newly bound value columns, then a chunked gather
//! rebuilds the carried columns — no per-tuple allocation anywhere in
//! the pipeline. Leaves scan storage through the block iterators
//! ([`Storage::concept_blocks`] / [`Storage::role_blocks`], blocks of
//! [`BATCH_SIZE`] values), hash-join probes and the DISTINCT projection
//! process one block at a time, and their meter hooks fire once per
//! block with the tuple count instead of once per tuple.
//!
//! **Exact parity contract** with the row pipeline, enforced by the
//! differential harness and the equivalence property suite: identical
//! answer sets AND identical meter totals. Every counter is a sum of
//! per-tuple contributions, so amortized per-block counting changes
//! nothing as long as (a) logical scans meter once with the same tuple
//! counts (the block iterators' contract), (b) scans happen in the same
//! order (the rescan discount is order-sensitive), and (c) intermediate
//! tuple *multiplicities* match (later probe counts multiply by them).
//! The pipeline therefore mirrors the row executor's step structure —
//! atom-order prescans, per-row probes, no mid-pipeline dedup — and
//! differs only in data representation and counting granularity.

use obda_query::{Atom, Slot, Term, VarId};

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::layout::{Storage, BATCH_SIZE};
use crate::meter::Meter;
use crate::planner::{ConjunctionPlan, PhysicalOp};

/// A result tuple (re-exported shape of [`crate::executor::Row`]).
type Row = Vec<u32>;

/// A column-major intermediate relation: one value column per bound
/// variable (indexed by the executor's `var_pos` layout), all of length
/// `len`. The initial state is the unit relation: zero columns, one row.
struct Cols {
    cols: Vec<Vec<u32>>,
    len: usize,
}

impl Cols {
    fn unit() -> Self {
        Cols {
            cols: Vec::new(),
            len: 1,
        }
    }
}

/// Rebuild the carried columns through a selection vector and append the
/// newly bound columns. The gather walks one [`BATCH_SIZE`] chunk of the
/// selection at a time per column, keeping the working set block-sized.
fn gather(data: &Cols, sel: &[u32], new_cols: Vec<Vec<u32>>) -> Cols {
    let len = sel.len();
    let mut cols = Vec::with_capacity(data.cols.len() + new_cols.len());
    for col in &data.cols {
        let mut out = Vec::with_capacity(len);
        for chunk in sel.chunks(BATCH_SIZE) {
            out.extend(chunk.iter().map(|&i| col[i as usize]));
        }
        cols.push(out);
    }
    for c in new_cols {
        debug_assert_eq!(c.len(), len, "new columns align with the selection");
        cols.push(c);
    }
    Cols { cols, len }
}

/// Run one planned conjunction through the batched pipeline and project
/// `head` with DISTINCT. Drop-in columnar equivalent of the row
/// executor's step loop + projection (same plans, same meter totals).
pub(crate) fn run_plan(
    storage: &dyn Storage,
    slots: &[Slot],
    head: &[Term],
    plan: &ConjunctionPlan,
    meter: &mut Meter,
) -> FxHashSet<Row> {
    let mut var_pos: FxHashMap<VarId, usize> = FxHashMap::default();
    let mut data = Cols::unit();
    for step in &plan.steps {
        let slot = &slots[step.slot];
        // Canonical new-variable order — identical computation to the
        // row executor so both modes produce the same column layout.
        let mut new_var_order: Vec<VarId> = Vec::new();
        for v in slot.atoms()[0].vars() {
            if !var_pos.contains_key(&v) && !new_var_order.contains(&v) {
                new_var_order.push(v);
            }
        }
        data = match step.op {
            PhysicalOp::HashJoin { .. } | PhysicalOp::BatchHashJoin { .. } => {
                hash_join_batch(storage, slot, &data, &var_pos, &new_var_order, meter)
            }
            PhysicalOp::IndexNestedLoop(_) => {
                inl_batch(storage, slot, &data, &var_pos, &new_var_order, meter)
            }
        };
        for v in new_var_order {
            let len = var_pos.len();
            var_pos.insert(v, len);
        }
        if data.len == 0 {
            break;
        }
    }
    project(head, &var_pos, &data, meter)
}

/// How a head term is filled during projection. Resolution is
/// all-or-nothing per conjunction (column layout is fixed), so it is
/// computed once instead of per row.
enum HeadSrc {
    Const(u32),
    Col(usize),
}

/// Batched DISTINCT projection: resolve the head against the column
/// layout once, then insert block-sized runs into the answer set with
/// one amortized `on_hash_build` per block.
fn project(
    head: &[Term],
    var_pos: &FxHashMap<VarId, usize>,
    data: &Cols,
    meter: &mut Meter,
) -> FxHashSet<Row> {
    let mut srcs = Vec::with_capacity(head.len());
    for t in head {
        match t {
            Term::Const(c) => srcs.push(HeadSrc::Const(c.0)),
            Term::Var(v) => match var_pos.get(v) {
                Some(&p) if p < data.cols.len() => srcs.push(HeadSrc::Col(p)),
                // Unresolvable head variable: the row pipeline drops
                // every row (unmetered) — so does the batched one.
                _ => return FxHashSet::default(),
            },
        }
    }
    let mut out = FxHashSet::default();
    let mut start = 0usize;
    while start < data.len {
        let end = (start + BATCH_SIZE).min(data.len);
        meter.on_hash_build((end - start) as u64);
        for i in start..end {
            let tuple: Row = srcs
                .iter()
                .map(|s| match s {
                    HeadSrc::Const(c) => *c,
                    HeadSrc::Col(p) => data.cols[*p][i],
                })
                .collect();
            out.insert(tuple);
        }
        start = end;
    }
    out
}

/// A buffered block scan of an atom whose variables are all unbound —
/// the columnar analogue of the row executor's `Prescan`, filled from
/// the block iterators (identical `on_scan` metering).
enum Prescan {
    Concept(Vec<u32>),
    Role(Vec<u32>, Vec<u32>),
}

fn prescan_if_unbound(
    storage: &dyn Storage,
    atom: &Atom,
    var_pos: &FxHashMap<VarId, usize>,
    meter: &mut Meter,
) -> Option<Prescan> {
    let term_bound = |t: &Term| match t {
        Term::Const(_) => true,
        Term::Var(v) => var_pos.contains_key(v),
    };
    match atom {
        Atom::Concept(c, t) if !term_bound(t) => {
            let mut members = Vec::new();
            storage.concept_blocks(*c, meter, &mut |b| members.extend_from_slice(b));
            Some(Prescan::Concept(members))
        }
        Atom::Role(r, t1, t2) if !term_bound(t1) && !term_bound(t2) => {
            let (mut subs, mut objs) = (Vec::new(), Vec::new());
            storage.role_blocks(*r, meter, &mut |bs, bo| {
                subs.extend_from_slice(bs);
                objs.extend_from_slice(bo);
            });
            Some(Prescan::Role(subs, objs))
        }
        _ => None,
    }
}

/// One index-nested-loop step over the column batch. Atom-major instead
/// of the row executor's row-major loop: per atom, every input row is
/// probed/extended into the shared selection + new-value columns (the
/// output multiset — and with it every later meter count — is
/// identical; only the intermediate order differs, which a set-semantics
/// result never observes).
fn inl_batch(
    storage: &dyn Storage,
    slot: &Slot,
    data: &Cols,
    var_pos: &FxHashMap<VarId, usize>,
    new_var_order: &[VarId],
    meter: &mut Meter,
) -> Cols {
    // Prescans run once per atom, in atom order, before any per-row
    // work — same scan order (and rescan discounting) as the row path.
    let prescans: Vec<Option<Prescan>> = slot
        .atoms()
        .iter()
        .map(|a| prescan_if_unbound(storage, a, var_pos, meter))
        .collect();

    let mut sel: Vec<u32> = Vec::new();
    let mut new_cols: Vec<Vec<u32>> = vec![Vec::new(); new_var_order.len()];
    let value_of = |t: &Term, i: usize| -> Option<u32> {
        match t {
            Term::Const(c) => Some(c.0),
            Term::Var(v) => var_pos.get(v).map(|&p| data.cols[p][i]),
        }
    };
    let scan_stage = data.len == 1 && data.cols.is_empty();

    for (atom, prescan) in slot.atoms().iter().zip(&prescans) {
        match atom {
            Atom::Concept(c, t) => match prescan {
                None => {
                    // Bound term: a membership filter (the slot binds no
                    // new variable — slot atoms share one variable set).
                    debug_assert!(new_var_order.is_empty());
                    for i in 0..data.len {
                        let val = value_of(t, i).expect("filter term is bound");
                        if storage.probe_concept(*c, val, meter) {
                            sel.push(i as u32);
                        }
                    }
                }
                Some(Prescan::Concept(members)) => {
                    debug_assert_eq!(new_var_order.len(), 1);
                    if scan_stage {
                        // Unit input: the members column IS the output.
                        sel.resize(sel.len() + members.len(), 0);
                        new_cols[0].extend_from_slice(members);
                    } else {
                        for i in 0..data.len {
                            for &m in members {
                                sel.push(i as u32);
                                new_cols[0].push(m);
                            }
                        }
                    }
                }
                Some(Prescan::Role(..)) => unreachable!("concept atom prescans members"),
            },
            Atom::Role(r, t1, t2) => {
                let bound1 = matches!(t1, Term::Const(_))
                    || t1.as_var().is_some_and(|v| var_pos.contains_key(&v));
                let bound2 = matches!(t2, Term::Const(_))
                    || t2.as_var().is_some_and(|v| var_pos.contains_key(&v));
                match (bound1, bound2) {
                    (true, true) => {
                        debug_assert!(new_var_order.is_empty());
                        for i in 0..data.len {
                            let s = value_of(t1, i).expect("bound");
                            let o = value_of(t2, i).expect("bound");
                            if storage.probe_role(*r, s, o, meter) {
                                sel.push(i as u32);
                            }
                        }
                    }
                    (true, false) => {
                        debug_assert_eq!(new_var_order.len(), 1);
                        let col = &mut new_cols[0];
                        for i in 0..data.len {
                            let s = value_of(t1, i).expect("bound");
                            storage.role_objects(*r, s, meter, &mut |o| {
                                sel.push(i as u32);
                                col.push(o);
                            });
                        }
                    }
                    (false, true) => {
                        debug_assert_eq!(new_var_order.len(), 1);
                        let col = &mut new_cols[0];
                        for i in 0..data.len {
                            let o = value_of(t2, i).expect("bound");
                            storage.role_subjects(*r, o, meter, &mut |s| {
                                sel.push(i as u32);
                                col.push(s);
                            });
                        }
                    }
                    (false, false) => {
                        let Some(Prescan::Role(psubs, pobjs)) = prescan else {
                            unreachable!("unbound role atom must have a prescan")
                        };
                        let v1 = t1.as_var().expect("unbound term is a variable");
                        let v2 = t2.as_var().expect("unbound term is a variable");
                        if v1 == v2 {
                            // Self-join r(x, x): keep only s == o pairs.
                            debug_assert_eq!(new_var_order.len(), 1);
                            for i in 0..data.len {
                                for (&s, &o) in psubs.iter().zip(pobjs) {
                                    if s == o {
                                        sel.push(i as u32);
                                        new_cols[0].push(s);
                                    }
                                }
                            }
                        } else {
                            // Atoms may list the shared variable set in
                            // either order; bind by variable identity.
                            let p1 = new_var_order.iter().position(|v| *v == v1);
                            let p2 = new_var_order.iter().position(|v| *v == v2);
                            let (Some(p1), Some(p2)) = (p1, p2) else {
                                unreachable!("slot atoms share one variable set")
                            };
                            if scan_stage {
                                sel.resize(sel.len() + psubs.len(), 0);
                                new_cols[p1].extend_from_slice(psubs);
                                new_cols[p2].extend_from_slice(pobjs);
                            } else {
                                for i in 0..data.len {
                                    for (&s, &o) in psubs.iter().zip(pobjs) {
                                        sel.push(i as u32);
                                        new_cols[p1].push(s);
                                        new_cols[p2].push(o);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    gather(data, &sel, new_cols)
}

/// One vectorized hash-join step ([`PhysicalOp::BatchHashJoin`]): build
/// the slot's extension into a key → values table straight from the
/// block scans (one amortized `on_join_build`), then probe the bound key
/// *column* one [`BATCH_SIZE`] block at a time with one `on_join_probe`
/// per block — the amortized per-batch meter hook replacing the row
/// executor's per-row counting, with identical totals.
fn hash_join_batch(
    storage: &dyn Storage,
    slot: &Slot,
    data: &Cols,
    var_pos: &FxHashMap<VarId, usize>,
    new_var_order: &[VarId],
    meter: &mut Meter,
) -> Cols {
    let key_vars: Vec<VarId> = slot
        .vars()
        .into_iter()
        .filter(|v| var_pos.contains_key(v))
        .collect();
    assert_eq!(key_vars.len(), 1, "hash join keys on one bound variable");
    assert_eq!(
        new_var_order.len(),
        1,
        "hash join steps bind exactly one new variable"
    );
    let key_var = key_vars[0];

    let mut table: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    let mut inserted: u64 = 0;
    for atom in slot.atoms() {
        let Atom::Role(r, Term::Var(v1), Term::Var(v2)) = atom else {
            unreachable!("hash-eligible slots contain only two-variable role atoms")
        };
        let key_on_subject = *v1 == key_var;
        debug_assert!(
            key_on_subject || *v2 == key_var,
            "slot atom must use the key variable"
        );
        storage.role_blocks(*r, meter, &mut |bs, bo| {
            let (keys, vals) = if key_on_subject { (bs, bo) } else { (bo, bs) };
            inserted += keys.len() as u64;
            for (&k, &v) in keys.iter().zip(vals) {
                table.entry(k).or_default().push(v);
            }
        });
    }
    meter.on_join_build(inserted);

    let key_col = &data.cols[var_pos[&key_var]];
    let mut sel: Vec<u32> = Vec::new();
    let mut out_col: Vec<u32> = Vec::new();
    let mut start = 0usize;
    while start < data.len {
        let end = (start + BATCH_SIZE).min(data.len);
        meter.on_join_probe((end - start) as u64);
        for (i, key) in key_col[start..end].iter().enumerate() {
            if let Some(vals) = table.get(key) {
                for &val in vals {
                    sel.push((start + i) as u32);
                    out_col.push(val);
                }
            }
        }
        start = end;
    }
    gather(data, &sel, vec![out_col])
}

#[cfg(test)]
mod tests {
    use obda_dllite::{ABox, ConceptId, IndividualId, RoleId, Vocabulary};
    use obda_query::{Atom, FolQuery, Term, VarId, CQ, UCQ};

    use crate::executor::{execute_mode, Row};
    use crate::layout::{dph::DphStorage, simple::SimpleStorage, triple::TripleStorage, Storage};
    use crate::meter::Meter;
    use crate::metrics::ExecMetrics;
    use crate::planner::{ExecMode, JoinStrategy};
    use crate::profile::EngineProfile;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// A KB whose extents straddle the batch boundary: concept `A` has
    /// `n` members, role `r` has `n` pairs fanning into 7 objects.
    fn boundary_abox(n: u32) -> (Vocabulary, ABox) {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        voc.concept("B"); // stays empty
        let r = voc.role("r");
        voc.role("s"); // stays empty
        let inds: Vec<_> = (0..n).map(|k| voc.individual(&format!("i{k}"))).collect();
        let mut abox = ABox::new();
        for &i in &inds {
            abox.assert_concept(a, i);
            abox.assert_role(r, i, IndividualId(i.0 % 7));
        }
        (voc, abox)
    }

    fn layouts(abox: &ABox) -> Vec<(&'static str, Box<dyn Storage>)> {
        vec![
            ("simple", Box::new(SimpleStorage::load(abox))),
            ("triple", Box::new(TripleStorage::load(abox))),
            ("dph", Box::new(DphStorage::load(abox))),
        ]
    }

    fn assert_metrics_eq(b: &ExecMetrics, r: &ExecMetrics, ctx: &str) {
        assert!(
            (b.scanned - r.scanned).abs() < 1e-9,
            "{ctx}: scanned {} vs {}",
            b.scanned,
            r.scanned
        );
        assert_eq!(b.index_probes, r.index_probes, "{ctx}: index_probes");
        assert_eq!(b.hash_build, r.hash_build, "{ctx}: hash_build");
        assert_eq!(b.hash_probe, r.hash_probe, "{ctx}: hash_probe");
        assert_eq!(b.join_build, r.join_build, "{ctx}: join_build");
        assert_eq!(b.join_probe, r.join_probe, "{ctx}: join_probe");
        assert_eq!(b.materialized, r.materialized, "{ctx}: materialized");
        assert_eq!(b.output, r.output, "{ctx}: output");
    }

    /// Run `q` in both pipelines on one storage; rows and every meter
    /// counter must match.
    fn assert_modes_agree(storage: &dyn Storage, q: &FolQuery, ctx: &str) -> Vec<Row> {
        let profile = EngineProfile::pg_like();
        let mut rows_per_mode: Vec<(Vec<Row>, ExecMetrics)> = Vec::new();
        for strategy in [
            JoinStrategy::ForcedInl,
            JoinStrategy::ForcedHash,
            JoinStrategy::CostChosen,
        ] {
            let mut per_strategy = Vec::new();
            for mode in [ExecMode::Batched, ExecMode::Row] {
                let mut meter = Meter::new(&profile);
                let mut rows = execute_mode(storage, q, &mut meter, strategy, mode);
                rows.sort();
                per_strategy.push((rows, meter.metrics));
            }
            let (batched, row) = (&per_strategy[0], &per_strategy[1]);
            assert_eq!(batched.0, row.0, "{ctx}/{strategy:?}: rows drifted");
            assert_metrics_eq(&batched.1, &row.1, &format!("{ctx}/{strategy:?}"));
            rows_per_mode.push(per_strategy.remove(0));
        }
        rows_per_mode.remove(0).0
    }

    /// Extents of exactly BATCH_SIZE−1 / BATCH_SIZE / BATCH_SIZE+1 rows:
    /// the block iterators emit a final partial block, one exact block,
    /// and a full-plus-one split; both pipelines must agree on rows and
    /// meter totals for a pure scan and for a join straddling the edge.
    #[test]
    fn batch_boundary_extents_agree_across_modes() {
        assert_eq!(super::BATCH_SIZE, 1024, "test pins the block size");
        let scan = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(ConceptId(0), v(0))],
        ));
        let join = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(0), v(1)),
            ],
        ));
        for n in [1023u32, 1024, 1025] {
            let (_voc, abox) = boundary_abox(n);
            for (name, storage) in layouts(&abox) {
                let got =
                    assert_modes_agree(storage.as_ref(), &scan, &format!("scan n={n} {name}"));
                assert_eq!(got.len(), n as usize, "scan n={n} {name}: row count");
                let got =
                    assert_modes_agree(storage.as_ref(), &join, &format!("join n={n} {name}"));
                assert_eq!(got.len(), n as usize, "join n={n} {name}: row count");
            }
        }
    }

    /// A union interleaving empty arms (empty concept, empty role join)
    /// between populated ones: the batched pipeline must push empty
    /// column batches through gather/projection without skewing any
    /// counter, and per-arm deltas must still sum to the totals.
    #[test]
    fn empty_batches_between_union_arms_agree_across_modes() {
        let (_voc, abox) = boundary_abox(1500);
        let arms = [
            // Empty: concept B has no members.
            CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(1), v(0))]),
            // Populated: 1500 members of A.
            CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(0), v(0))]),
            // Empty again: role s has no pairs, so the join yields nothing.
            CQ::with_var_head(
                vec![VarId(0)],
                vec![
                    Atom::Concept(ConceptId(0), v(0)),
                    Atom::Role(RoleId(1), v(0), v(1)),
                ],
            ),
            // Populated join crossing the batch boundary.
            CQ::with_var_head(
                vec![VarId(0)],
                vec![
                    Atom::Concept(ConceptId(0), v(0)),
                    Atom::Role(RoleId(0), v(0), v(1)),
                ],
            ),
        ];
        let q = FolQuery::Ucq(UCQ::from_cqs(vec![v(0)], arms));
        for (name, storage) in layouts(&abox) {
            let got = assert_modes_agree(storage.as_ref(), &q, &format!("union {name}"));
            assert_eq!(got.len(), 1500, "union {name}: distinct union size");
        }
        // Arm-delta invariant under the batched default: empty arms
        // record zero-output deltas and the deltas sum to the totals.
        let storage = SimpleStorage::load(&abox);
        let profile = EngineProfile::pg_like();
        let mut meter = Meter::new(&profile);
        execute_mode(
            &storage,
            &q,
            &mut meter,
            JoinStrategy::CostChosen,
            ExecMode::Batched,
        );
        assert_eq!(meter.arm_metrics.len(), 4, "one delta per union arm");
        assert_eq!(meter.arm_metrics[0].output, 0, "empty concept arm");
        assert_eq!(meter.arm_metrics[2].output, 0, "empty join arm");
        let mut sum = ExecMetrics::default();
        for arm in &meter.arm_metrics {
            sum.merge(arm);
        }
        assert!(
            (sum.scanned - meter.metrics.scanned).abs() < 1e-9
                && sum.join_build == meter.metrics.join_build
                && sum.join_probe == meter.metrics.join_probe
                && sum.hash_build == meter.metrics.hash_build,
            "arm deltas sum to statement totals"
        );
    }
}
