//! A fast, non-cryptographic hasher for integer-keyed hot paths.
//!
//! The engine hashes millions of `u32`/`u64` keys per query (hash joins,
//! DISTINCT); SipHash (std default) is needlessly slow for that. This is
//! the word-folding multiply hash popularized by rustc's `FxHasher`,
//! reimplemented here to stay within the workspace's allowed dependency
//! set. HashDoS is not a concern: keys are dictionary-encoded ids, not
//! attacker-controlled strings.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: rotate, xor, multiply per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinguishing() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
        assert_ne!(h(0), h(1));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
        let s: FxHashSet<u32> = (0..100).collect();
        assert!(s.contains(&99));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"hello world");
        let mut b = FxHasher::default();
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
    }
}
