//! Adapters plugging the engine's cost estimation into the search
//! framework's [`obda_core::CostEstimator`] trait — the ε of Problem 1.

use obda_core::CostEstimator;
use obda_query::FolQuery;

use crate::cost_model::CostModel;
use crate::engine::Engine;

impl CostEstimator for CostModel {
    fn estimate(&self, q: &FolQuery) -> f64 {
        self.estimate_fol(q)
    }

    fn name(&self) -> &str {
        self.model_name()
    }
}

/// The "ask the engine" estimator: GDL/RDBMS in Figures 2–3. Each call
/// corresponds to an `explain` round-trip (the §6.4 overhead the
/// time-limited variant works around).
pub struct ExplainEstimator<'e> {
    engine: &'e Engine,
}

impl<'e> ExplainEstimator<'e> {
    pub fn new(engine: &'e Engine) -> Self {
        ExplainEstimator { engine }
    }
}

impl CostEstimator for ExplainEstimator<'_> {
    fn estimate(&self, q: &FolQuery) -> f64 {
        self.engine.explain(q)
    }

    fn name(&self) -> &str {
        "rdbms"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::testutil::small_abox;
    use crate::layout::LayoutKind;
    use crate::profile::EngineProfile;
    use obda_dllite::ConceptId;
    use obda_query::{Atom, Term, VarId, CQ};

    #[test]
    fn adapters_expose_names_and_estimates() {
        let (voc, abox) = small_abox();
        let engine = Engine::load(&abox, &voc, LayoutKind::Simple, EngineProfile::pg_like());
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(ConceptId(0), Term::Var(VarId(0)))],
        ));
        let explain = ExplainEstimator::new(&engine);
        assert_eq!(explain.name(), "rdbms");
        assert!(explain.estimate(&q) > 0.0);
        let ext = engine.ext_cost_model();
        assert_eq!(CostEstimator::name(&ext), "ext");
        assert!(CostEstimator::estimate(&ext, &q) > 0.0);
    }
}
