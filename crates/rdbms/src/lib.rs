//! # obda-rdbms
//!
//! The RDBMS substrate of the reproduction: an in-memory relational engine
//! standing in for the PostgreSQL and DB2 instances of the paper's
//! evaluation (§6). It provides:
//!
//! * three storage layouts over dictionary-encoded facts — per-predicate
//!   tables (*simple*), a clustered triple table, and the DB2RDF-like
//!   DPH/RPH entity layout \[9\] (`layout`);
//! * a greedy planner with **two physical join operators** — per-row
//!   index-nested-loop probes and build/probe **hash joins** (the slot's
//!   extension is scanned once into a hash table keyed on the bound
//!   variables, then probed per intermediate row). The planner fixes one
//!   slot order for all strategies and picks the operator per step:
//!   [`planner::JoinStrategy::CostChosen`] (the default) takes whichever
//!   the cost model prices cheaper — INL wins when few selective rows
//!   probe a large table, hash wins when a wide intermediate result would
//!   re-probe the same extension thousands of times; the forced modes
//!   exist for the differential harness and benchmarks (`planner`);
//! * a metered executor for every Table-4 dialect running exactly the
//!   planned operators, with no cross-union-arm sharing (the §2.3 RDBMS
//!   behaviour) and per-union-arm metric attribution (`executor`,
//!   `meter`, `metrics`);
//! * SQL text generation, including the `WITH … AS` JUCQ form of §3 and
//!   the DPH candidate-column blowup behind the Figure-3 statement-size
//!   failures (`sql`);
//! * an **embedded SQL backend** (`sqlexec`): a tokenizer,
//!   recursive-descent parser and relational evaluator for exactly the
//!   dialect the generator emits, runnable against the same layout
//!   tables — [`Backend::Sql`] closes the paper's delegation loop
//!   (reformulate → emit SQL → let the relational engine execute it)
//!   and serves as a second, independently derived answering oracle;
//! * engine profiles capturing the observable PostgreSQL/DB2 differences:
//!   statement-size limits, optimizer collapse shortcuts, repeated-scan
//!   discounts (`profile`);
//! * the two cost estimators of §6.1 — the engine's `explain` and the
//!   external textbook model — as [`obda_core::CostEstimator`]s. Both
//!   price the *same* operator-annotated plan the executor runs
//!   ([`planner::plan_conjunction`]), so `explain` and execution cannot
//!   drift (`cost_model`, `estimators`);
//! * the **differential harness** proving all of the above equivalent:
//!   every query runs under forced-INL, forced-hash, and cost-chosen
//!   modes across all three layouts against the reference evaluator,
//!   additionally replayed through stored plans and parallel arm
//!   execution (`testkit`);
//! * the **serving layer** (`server`): `Arc`-shared engine snapshots
//!   with a generation counter, a reformulation/plan cache keyed by
//!   `obda_query::canonical_key`, and union-arm fan-out across worker
//!   threads — amortizing the §6.4-dominant cost-estimation work across
//!   repeated queries;
//! * the **observability spine** (`observe`): staged query traces, a
//!   lock-free server metrics registry with fixed-bucket latency
//!   histograms, a slow-query ring, cost-model accuracy counters, and a
//!   Prometheus text-exposition endpoint;
//! * the **durable store** (`store`): versioned binary snapshots of
//!   `Vocabulary` + TBox + ABox, an append-only checksummed WAL of
//!   `AboxDelta` batches, crash recovery with torn-tail truncation, and
//!   the incremental `Server::apply_batch` path that maintains every
//!   layout and the catalog statistics in place instead of rebuilding.
//!
//! ## Example: one query, two execution engines
//!
//! ```
//! use obda_dllite::{ABox, Vocabulary};
//! use obda_query::{Atom, FolQuery, Term, VarId, CQ};
//! use obda_rdbms::{Backend, Engine, EngineProfile, LayoutKind};
//!
//! let mut voc = Vocabulary::new();
//! let student = voc.concept("Student");
//! let takes = voc.role("takesCourse");
//! let (ann, db) = (voc.individual("ann"), voc.individual("databases"));
//! let mut abox = ABox::new();
//! abox.assert_concept(student, ann);
//! abox.assert_role(takes, ann, db);
//!
//! // q(x) ← Student(x) ∧ takesCourse(x, y)
//! let q = FolQuery::Cq(CQ::with_var_head(
//!     vec![VarId(0)],
//!     vec![
//!         Atom::Concept(student, Term::Var(VarId(0))),
//!         Atom::Role(takes, Term::Var(VarId(0)), Term::Var(VarId(1))),
//!     ],
//! ));
//!
//! let native = Engine::load(&abox, &voc, LayoutKind::Simple, EngineProfile::pg_like());
//! let sql = native.clone().with_backend(Backend::Sql);
//! // The native pipeline and the generate→parse→execute delegation
//! // path agree on the answer: ann.
//! let mut a = native.evaluate(&q).unwrap().rows;
//! let mut b = sql.evaluate(&q).unwrap().rows;
//! a.sort();
//! b.sort();
//! assert_eq!(a, b);
//! assert_eq!(a, vec![vec![ann.0]]);
//! ```

pub mod columnar;
pub mod cost_model;
pub mod engine;
pub mod estimators;
pub mod executor;
pub mod fxhash;
pub mod layout;
pub mod meter;
pub mod metrics;
pub mod observe;
pub mod pgwire;
pub mod planner;
pub mod profile;
pub mod server;
pub mod sql;
pub mod sqlexec;
pub mod stats;
pub mod store;
pub mod testkit;
pub mod txn;

pub use cost_model::CostModel;
pub use engine::{ArmPlan, Engine, EngineError, EvalOptions, ExplainPlan, QueryOutcome};
pub use estimators::ExplainEstimator;
pub use executor::{
    execute, execute_mode, execute_parallel, execute_planned, execute_with, prepare_plans,
    prepare_plans_mode, PreparedPlans, Relation, Row,
};
pub use layout::{LayoutKind, Storage};
pub use meter::Meter;
pub use metrics::ExecMetrics;
pub use observe::{
    percentile, Histogram, MetricsEndpoint, MetricsRegistry, QueryTrace, StageSpans,
};
pub use pgwire::{PgConfig, PgListener, WireClient};
pub use planner::{ConjunctionPlan, ExecMode, JoinStrategy, PhysicalOp, PlanStep};
pub use profile::{EngineKind, EngineProfile};
pub use server::{
    AnalyzedQuery, CacheStats, CompiledQuery, EngineSnapshot, Server, ServerConfig, ServerError,
    ServerOutcome, TxnStats,
};
pub use sql::{SqlGenerator, SqlNames};
pub use sqlexec::{Backend, SqlError};
pub use stats::{CatalogStats, KeySide};
pub use store::{DurableStore, RecoveredKb, StoreError};
pub use txn::Txn;
