//! # obda-rdbms
//!
//! The RDBMS substrate of the reproduction: an in-memory relational engine
//! standing in for the PostgreSQL and DB2 instances of the paper's
//! evaluation (§6). It provides:
//!
//! * three storage layouts over dictionary-encoded facts — per-predicate
//!   tables (*simple*), a clustered triple table, and the DB2RDF-like
//!   DPH/RPH entity layout \[9\] (`layout`);
//! * a greedy index-nested-loop planner and a metered executor for every
//!   Table-4 dialect, with no cross-union-arm sharing (the §2.3 RDBMS
//!   behaviour) (`planner`, `executor`);
//! * SQL text generation, including the `WITH … AS` JUCQ form of §3 and
//!   the DPH candidate-column blowup behind the Figure-3 statement-size
//!   failures (`sql`);
//! * engine profiles capturing the observable PostgreSQL/DB2 differences:
//!   statement-size limits, optimizer collapse shortcuts, repeated-scan
//!   discounts (`profile`);
//! * the two cost estimators of §6.1 — the engine's `explain` and the
//!   external textbook model — as [`obda_core::CostEstimator`]s
//!   (`cost_model`, `estimators`).

pub mod cost_model;
pub mod engine;
pub mod estimators;
pub mod executor;
pub mod fxhash;
pub mod layout;
pub mod meter;
pub mod metrics;
pub mod planner;
pub mod profile;
pub mod sql;
pub mod stats;

pub use cost_model::CostModel;
pub use engine::{Engine, EngineError, QueryOutcome};
pub use estimators::ExplainEstimator;
pub use executor::{execute, Relation, Row};
pub use layout::{LayoutKind, Storage};
pub use meter::Meter;
pub use metrics::ExecMetrics;
pub use profile::{EngineKind, EngineProfile};
pub use sql::{SqlGenerator, SqlNames};
pub use stats::CatalogStats;
