//! Engine profiles: the behavioural envelopes of the two RDBMSs used in
//! the paper's evaluation (PostgreSQL 9.3 and IBM DB2 10.5).
//!
//! The in-memory engine executes identically under both profiles; what a
//! profile changes is exactly what differed *observably* in the paper:
//!
//! * **statement size limit** — DB2 rejects statements above ~2 MB
//!   ("The statement is too long or too complex. Current SQL statement
//!   size is 2,247,118", §6.3); Postgres has no practical limit;
//! * **optimizer collapse limit** — Postgres "takes drastic shortcuts when
//!   estimating the cost of an extremely large query" (§6.3, the Q9–Q11
//!   anomaly): beyond `union_collapse_limit` union arms its estimator
//!   falls back to default selectivities;
//! * **repeated-scan discount** — DB2's buffer-locality machinery for
//!   concurrent table scans (\[21\], credited in §6.3 for DB2's better
//!   handling of large UCQs) makes the 2nd+ scan of a table within one
//!   statement cheaper;
//! * **work-unit time scale** — converts abstract work units into the
//!   simulated milliseconds reported next to measured wall time.

/// Which real system the profile emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    PgLike,
    Db2Like,
}

/// Behavioural parameters of an engine.
#[derive(Debug, Clone)]
pub struct EngineProfile {
    pub kind: EngineKind,
    /// Reject SQL statements longer than this many bytes.
    pub max_statement_bytes: Option<usize>,
    /// Beyond this many union arms, the cost model stops estimating
    /// per-arm cardinalities and uses default selectivities.
    pub union_collapse_limit: Option<usize>,
    /// Cost multiplier for the 2nd+ scan of the same table within one
    /// statement (1.0 = no discount).
    pub rescan_discount: f64,
    /// Nanoseconds of simulated time per work unit.
    pub ns_per_work_unit: f64,
}

impl EngineProfile {
    /// PostgreSQL-like: no statement limit, collapse shortcuts on huge
    /// unions, no scan sharing.
    pub fn pg_like() -> Self {
        EngineProfile {
            kind: EngineKind::PgLike,
            max_statement_bytes: None,
            union_collapse_limit: Some(64),
            rescan_discount: 1.0,
            ns_per_work_unit: 25.0,
        }
    }

    /// DB2-like: ~2 MB statement limit, accurate estimation at any size,
    /// repeated-scan discount (buffer-locality grouping, \[21\]).
    pub fn db2_like() -> Self {
        EngineProfile {
            kind: EngineKind::Db2Like,
            max_statement_bytes: Some(2_000_000),
            union_collapse_limit: None,
            rescan_discount: 0.35,
            ns_per_work_unit: 22.0,
        }
    }

    pub fn name(&self) -> &'static str {
        match self.kind {
            EngineKind::PgLike => "pg-like",
            EngineKind::Db2Like => "db2-like",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_encode_paper_behaviours() {
        let pg = EngineProfile::pg_like();
        assert!(pg.max_statement_bytes.is_none());
        assert!(pg.union_collapse_limit.is_some());
        assert_eq!(pg.rescan_discount, 1.0);

        let db2 = EngineProfile::db2_like();
        assert_eq!(db2.max_statement_bytes, Some(2_000_000));
        assert!(db2.union_collapse_limit.is_none());
        assert!(db2.rescan_discount < 1.0);
    }

    #[test]
    fn names() {
        assert_eq!(EngineProfile::pg_like().name(), "pg-like");
        assert_eq!(EngineProfile::db2_like().name(), "db2-like");
    }
}
