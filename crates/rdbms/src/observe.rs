//! The observability spine: staged query traces, a lock-free server
//! metrics registry, a slow-query ring, and Prometheus text exposition.
//!
//! The paper's thesis is that the cost model should pick the plan that
//! actually runs fastest — which a *running* server can only audit if it
//! measures itself. This module provides the three pieces every layer
//! reports through:
//!
//! * [`StageSpans`] — per-statement wall-clock spans for the pipeline
//!   stages (parse → reformulate → plan → SQL-gen → execute →
//!   serialize). The serving layer fills the compile stages on a cache
//!   miss (a warm hit genuinely skips them, so its spans are zero —
//!   that *is* the §6.4 amortization, now observable), the engine fills
//!   `execute` ([`crate::metrics::ExecMetrics::wall`]), and the wire
//!   session brackets the whole thing with `parse`/`serialize`.
//! * [`MetricsRegistry`] — atomic counters and fixed-bucket latency
//!   [`Histogram`]s, no locks on the hot path. Query latency per
//!   backend, plan-cache and transaction counters, WAL appends/fsyncs/
//!   bytes, checkpoint durations, connection admission, contained
//!   panics, and the running predicted-vs-measured cost totals that
//!   make cost-model accuracy a first-class observable. A disabled
//!   registry reduces every record call to one relaxed load — the
//!   bench guard holds the warm-path overhead under 5%.
//! * [`MetricsEndpoint`] — `GET /metrics` over a plain
//!   `std::net::TcpListener`, serving [`render_prometheus`] text
//!   exposition (format 0.0.4). Malformed requests get `400`/`404`,
//!   never a panic: each connection is handled under `catch_unwind`.
//!
//! The slowest [`SLOW_RING_CAPACITY`] traces are retained in a ring
//! (`SHOW slow_queries` over the wire) guarded by an admission
//! threshold, so the common fast query never takes the ring lock.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::server::Server;
use crate::sqlexec::Backend;

/// The `p`-th percentile (0..=100) of an unsorted latency sample, by the
/// nearest-rank method. Empty samples yield zero. This is the single
/// shared definition — `obda_bench` re-exports it, and the histogram
/// quantile tests below compare bucketed quantiles against it.
pub fn percentile(samples: &[Duration], p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Upper bounds (µs) of the latency histogram buckets; one implicit
/// `+Inf` overflow bucket follows. Spans 50µs–5s: a warm cached query
/// lands in the first buckets, a cold DPH reformulation near the top.
pub const LATENCY_BUCKETS_US: [u64; 15] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000,
];

/// Bucket count including the overflow bucket.
pub const BUCKET_COUNT: usize = LATENCY_BUCKETS_US.len() + 1;

/// A fixed-bucket latency histogram: lock-free observe (one relaxed
/// `fetch_add` per bucket/sum/count), Prometheus-compatible snapshot.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; last entry is the overflow.
    pub buckets: [u64; BUCKET_COUNT],
    pub sum_micros: u64,
    pub count: u64,
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(micros: u64) -> usize {
        LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len())
    }

    pub fn observe(&self, d: Duration) {
        self.observe_micros(d.as_micros().min(u64::MAX as u128) as u64);
    }

    pub fn observe_micros(&self, micros: u64) {
        self.buckets[Self::bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKET_COUNT];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }

    /// The nearest-rank `p`-th quantile at bucket resolution: the upper
    /// bound of the bucket holding the rank-`⌈p/100·n⌉` observation.
    /// For observations placed exactly on bucket bounds this agrees with
    /// [`percentile`] over the raw samples; in general it rounds up to
    /// the bucket bound. Overflow observations report the largest bound.
    pub fn quantile(&self, p: f64) -> Duration {
        let snap = self.snapshot();
        if snap.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((p / 100.0) * snap.count as f64).ceil() as u64;
        let rank = rank.clamp(1, snap.count);
        let mut seen = 0u64;
        for (i, &n) in snap.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let bound = LATENCY_BUCKETS_US
                    .get(i)
                    .copied()
                    .unwrap_or(LATENCY_BUCKETS_US[LATENCY_BUCKETS_US.len() - 1]);
                return Duration::from_micros(bound);
            }
        }
        Duration::from_micros(LATENCY_BUCKETS_US[LATENCY_BUCKETS_US.len() - 1])
    }
}

/// The pipeline stages a statement passes through, in order.
pub const STAGE_NAMES: [&str; 6] = [
    "parse",
    "reformulate",
    "plan",
    "sqlgen",
    "execute",
    "serialize",
];

/// Per-stage wall-clock spans of one statement. Stages a statement
/// skipped (a warm cache hit skips reformulate/plan/sqlgen; a library
/// call has no parse/serialize) stay zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageSpans {
    pub parse: Duration,
    pub reformulate: Duration,
    pub plan: Duration,
    pub sqlgen: Duration,
    pub execute: Duration,
    pub serialize: Duration,
}

impl StageSpans {
    /// Spans in [`STAGE_NAMES`] order.
    pub fn as_array(&self) -> [Duration; 6] {
        [
            self.parse,
            self.reformulate,
            self.plan,
            self.sqlgen,
            self.execute,
            self.serialize,
        ]
    }

    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.as_array().iter().sum()
    }
}

/// One completed statement's trace: id, spans, and enough context to
/// read a slow-query report without the original session.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// Server-unique, monotonically assigned.
    pub id: u64,
    /// The statement text, truncated to [`TRACE_QUERY_MAX`] chars.
    pub query: String,
    pub backend: Backend,
    pub cache_hit: bool,
    /// Snapshot generation the statement ran against.
    pub generation: u64,
    pub rows: u64,
    pub spans: StageSpans,
    /// End-to-end statement time (≥ the span sum: includes dispatch).
    pub total: Duration,
}

/// Longest statement text a trace retains.
pub const TRACE_QUERY_MAX: usize = 160;

/// How many slowest traces `SHOW slow_queries` retains.
pub const SLOW_RING_CAPACITY: usize = 16;

/// Truncate a statement text for trace retention (char-boundary safe).
pub fn truncate_query(text: &str) -> String {
    if text.len() <= TRACE_QUERY_MAX {
        return text.to_string();
    }
    let mut end = TRACE_QUERY_MAX;
    while !text.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &text[..end])
}

/// The server-wide metrics registry. Hot-path recording is one relaxed
/// atomic per counter — the only lock is the slow-query ring, taken only
/// when a statement beats the ring's admission threshold. Disabling the
/// registry ([`MetricsRegistry::set_enabled`]) reduces every record call
/// to a single relaxed load, which is what the metrics-overhead bench
/// guard measures.
pub struct MetricsRegistry {
    enabled: AtomicBool,
    trace_ids: AtomicU64,
    /// Indexed by [`backend_index`].
    queries: [AtomicU64; 2],
    query_errors: AtomicU64,
    rows_returned: AtomicU64,
    latency: [Histogram; 2],
    /// Accumulated stage time (µs), indexed like [`STAGE_NAMES`].
    stage_micros: [AtomicU64; 6],
    /// Predicted plan cost and measured executor work, both in
    /// milli-work-units: their running ratio is the live cost-model
    /// accuracy (§6.1's predicted-vs-actual, as a counter pair).
    predicted_milli_units: AtomicU64,
    measured_milli_units: AtomicU64,
    wal_appends: AtomicU64,
    wal_fsyncs: AtomicU64,
    wal_bytes: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_micros: AtomicU64,
    conns_admitted: AtomicU64,
    conns_rejected: AtomicU64,
    panics_recovered: AtomicU64,
    /// Union arms dropped by constraint-driven pruning, split by reason
    /// (provably empty vs data-subsumed).
    pruned_arms_empty: AtomicU64,
    pruned_arms_subsumed: AtomicU64,
    /// Admission bar for the ring: total µs of the ring's fastest entry
    /// once full (`0` while the ring has room).
    slow_threshold_micros: AtomicU64,
    slow: Mutex<Vec<QueryTrace>>,
    /// Statements slower than this also log one structured line to
    /// stderr (`u64::MAX` = off).
    slow_log_micros: AtomicU64,
}

/// Stable index of a backend in per-backend counter arrays.
pub fn backend_index(backend: Backend) -> usize {
    match backend {
        Backend::Native => 0,
        Backend::Sql => 1,
    }
}

/// Backend names in [`backend_index`] order.
pub const BACKEND_NAMES: [&str; 2] = ["native", "sql"];

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: AtomicBool::new(true),
            trace_ids: AtomicU64::new(0),
            queries: Default::default(),
            query_errors: AtomicU64::new(0),
            rows_returned: AtomicU64::new(0),
            latency: Default::default(),
            stage_micros: Default::default(),
            predicted_milli_units: AtomicU64::new(0),
            measured_milli_units: AtomicU64::new(0),
            wal_appends: AtomicU64::new(0),
            wal_fsyncs: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            checkpoint_micros: AtomicU64::new(0),
            conns_admitted: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            panics_recovered: AtomicU64::new(0),
            pruned_arms_empty: AtomicU64::new(0),
            pruned_arms_subsumed: AtomicU64::new(0),
            slow_threshold_micros: AtomicU64::new(0),
            slow: Mutex::new(Vec::new()),
            slow_log_micros: AtomicU64::new(u64::MAX),
        }
    }

    /// Toggle recording. Off, every record call is one relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Allocate the next trace id (ids keep flowing when disabled so a
    /// re-enabled registry never reuses one).
    pub fn next_trace_id(&self) -> u64 {
        self.trace_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Statements slower than `threshold` log one structured line to
    /// stderr; `None` turns the log off.
    pub fn set_slow_log_threshold(&self, threshold: Option<Duration>) {
        let micros = threshold
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(u64::MAX);
        self.slow_log_micros.store(micros, Ordering::Relaxed);
    }

    /// Record one served query: per-backend count + latency histogram,
    /// row counter. Called by the serving layer for every query
    /// (library or wire).
    pub fn record_query(&self, backend: Backend, latency: Duration, rows: u64) {
        if !self.is_enabled() {
            return;
        }
        let i = backend_index(backend);
        self.queries[i].fetch_add(1, Ordering::Relaxed);
        self.rows_returned.fetch_add(rows, Ordering::Relaxed);
        self.latency[i].observe(latency);
    }

    pub fn record_query_error(&self) {
        if self.is_enabled() {
            self.query_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one cold compilation's constraint-pruning outcome: union
    /// arms dropped as provably empty and as data-subsumed.
    pub fn record_pruned_arms(&self, empty: usize, subsumed: usize) {
        if !self.is_enabled() {
            return;
        }
        self.pruned_arms_empty
            .fetch_add(empty as u64, Ordering::Relaxed);
        self.pruned_arms_subsumed
            .fetch_add(subsumed as u64, Ordering::Relaxed);
    }

    /// Accumulate one cost-model accuracy sample: the plan's predicted
    /// cost vs the executor's measured work units.
    pub fn record_cost_sample(&self, predicted: f64, measured: f64) {
        if !self.is_enabled() {
            return;
        }
        let clamp = |v: f64| {
            if v.is_finite() && v > 0.0 {
                (v * 1000.0).min(u64::MAX as f64) as u64
            } else {
                0
            }
        };
        self.predicted_milli_units
            .fetch_add(clamp(predicted), Ordering::Relaxed);
        self.measured_milli_units
            .fetch_add(clamp(measured), Ordering::Relaxed);
    }

    /// Record a completed statement trace: stage-time totals, the
    /// slow-query ring (if it beats the admission threshold), and the
    /// structured stderr slow log.
    pub fn record_trace(&self, trace: QueryTrace) {
        if !self.is_enabled() {
            return;
        }
        for (slot, span) in self.stage_micros.iter().zip(trace.spans.as_array()) {
            slot.fetch_add(
                span.as_micros().min(u64::MAX as u128) as u64,
                Ordering::Relaxed,
            );
        }
        let total_micros = trace.total.as_micros().min(u64::MAX as u128) as u64;
        if total_micros >= self.slow_log_micros.load(Ordering::Relaxed) {
            log_slow_query(&trace);
        }
        // Ring admission: the common fast statement compares one relaxed
        // load and moves on; only candidates take the lock.
        if total_micros > self.slow_threshold_micros.load(Ordering::Relaxed)
            || self
                .slow
                .lock()
                .map(|r| r.len())
                .unwrap_or(SLOW_RING_CAPACITY)
                < SLOW_RING_CAPACITY
        {
            let mut ring = match self.slow.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            ring.push(trace);
            if ring.len() > SLOW_RING_CAPACITY {
                if let Some((min_at, _)) = ring.iter().enumerate().min_by_key(|(_, t)| t.total) {
                    ring.swap_remove(min_at);
                }
            }
            if ring.len() >= SLOW_RING_CAPACITY {
                let floor = ring.iter().map(|t| t.total).min().unwrap_or(Duration::ZERO);
                self.slow_threshold_micros.store(
                    floor.as_micros().min(u64::MAX as u128) as u64,
                    Ordering::Relaxed,
                );
            }
        }
    }

    /// The retained slowest traces, slowest first.
    pub fn slow_queries(&self) -> Vec<QueryTrace> {
        let mut traces = match self.slow.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        traces.sort_by(|a, b| b.total.cmp(&a.total));
        traces
    }

    /// One WAL group record appended (`bytes` on the wire, `fsynced` if
    /// the group was made power-loss durable).
    pub fn record_wal_append(&self, bytes: u64, fsynced: bool) {
        if !self.is_enabled() {
            return;
        }
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        if fsynced {
            self.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn record_checkpoint(&self, took: Duration) {
        if !self.is_enabled() {
            return;
        }
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_micros.fetch_add(
            took.as_micros().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    pub fn record_admission(&self) {
        if self.is_enabled() {
            self.conns_admitted.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn record_rejection(&self) {
        if self.is_enabled() {
            self.conns_rejected.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn record_panic_recovered(&self) {
        if self.is_enabled() {
            self.panics_recovered.fetch_add(1, Ordering::Relaxed);
        }
    }

    // Point-in-time reads (used by SHOW metrics, exposition, and tests).

    pub fn queries_total(&self, backend: Backend) -> u64 {
        self.queries[backend_index(backend)].load(Ordering::Relaxed)
    }

    pub fn query_errors_total(&self) -> u64 {
        self.query_errors.load(Ordering::Relaxed)
    }

    pub fn rows_returned_total(&self) -> u64 {
        self.rows_returned.load(Ordering::Relaxed)
    }

    pub fn latency(&self, backend: Backend) -> &Histogram {
        &self.latency[backend_index(backend)]
    }

    pub fn stage_micros_total(&self, stage: usize) -> u64 {
        self.stage_micros[stage].load(Ordering::Relaxed)
    }

    /// `(predicted, measured)` accumulated work units.
    pub fn cost_totals(&self) -> (f64, f64) {
        (
            self.predicted_milli_units.load(Ordering::Relaxed) as f64 / 1000.0,
            self.measured_milli_units.load(Ordering::Relaxed) as f64 / 1000.0,
        )
    }

    pub fn wal_appends_total(&self) -> u64 {
        self.wal_appends.load(Ordering::Relaxed)
    }

    pub fn wal_fsyncs_total(&self) -> u64 {
        self.wal_fsyncs.load(Ordering::Relaxed)
    }

    pub fn wal_bytes_total(&self) -> u64 {
        self.wal_bytes.load(Ordering::Relaxed)
    }

    pub fn checkpoints_total(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    pub fn checkpoint_micros_total(&self) -> u64 {
        self.checkpoint_micros.load(Ordering::Relaxed)
    }

    pub fn connections_admitted_total(&self) -> u64 {
        self.conns_admitted.load(Ordering::Relaxed)
    }

    pub fn connections_rejected_total(&self) -> u64 {
        self.conns_rejected.load(Ordering::Relaxed)
    }

    pub fn panics_recovered_total(&self) -> u64 {
        self.panics_recovered.load(Ordering::Relaxed)
    }

    /// Union arms dropped by constraint-driven pruning, as
    /// `(provably_empty, data_subsumed)`.
    pub fn pruned_arms_total(&self) -> (u64, u64) {
        (
            self.pruned_arms_empty.load(Ordering::Relaxed),
            self.pruned_arms_subsumed.load(Ordering::Relaxed),
        )
    }
}

/// One structured stderr line per over-threshold statement; key=value so
/// log scrapers need no custom parsing.
fn log_slow_query(trace: &QueryTrace) {
    let s = trace.spans;
    eprintln!(
        "slow_query trace_id={} total_us={} parse_us={} reformulate_us={} plan_us={} \
         sqlgen_us={} execute_us={} serialize_us={} backend={} cache_hit={} \
         generation={} rows={} q={:?}",
        trace.id,
        trace.total.as_micros(),
        s.parse.as_micros(),
        s.reformulate.as_micros(),
        s.plan.as_micros(),
        s.sqlgen.as_micros(),
        s.execute.as_micros(),
        s.serialize.as_micros(),
        trace.backend.name(),
        trace.cache_hit,
        trace.generation,
        trace.rows,
        trace.query,
    );
}

/// Render the full server state as Prometheus text exposition (0.0.4):
/// the registry's counters and histograms plus the serving layer's plan
/// cache and transaction stats, labelled with the configured layout.
pub fn render_prometheus(server: &Server) -> String {
    use std::fmt::Write;
    let reg = server.observe();
    let layout = server.config().layout.name();
    let mut out = String::with_capacity(4096);
    let counter = |out: &mut String, name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    };

    // Query counters, per backend.
    let _ = writeln!(out, "# HELP obda_queries_total Queries served.");
    let _ = writeln!(out, "# TYPE obda_queries_total counter");
    for (i, name) in BACKEND_NAMES.iter().enumerate() {
        let _ = writeln!(
            out,
            "obda_queries_total{{backend=\"{name}\",layout=\"{layout}\"}} {}",
            reg.queries[i].load(Ordering::Relaxed)
        );
    }
    counter(
        &mut out,
        "obda_query_errors_total",
        "Queries that returned an error.",
        reg.query_errors_total(),
    );
    counter(
        &mut out,
        "obda_query_rows_total",
        "Result rows returned.",
        reg.rows_returned_total(),
    );

    // Latency histograms, per backend.
    let _ = writeln!(
        out,
        "# HELP obda_query_latency_seconds Serving-layer query latency (compile + execute)."
    );
    let _ = writeln!(out, "# TYPE obda_query_latency_seconds histogram");
    for (i, name) in BACKEND_NAMES.iter().enumerate() {
        let snap = reg.latency[i].snapshot();
        let mut cumulative = 0u64;
        for (b, &n) in snap.buckets.iter().enumerate() {
            cumulative += n;
            let le = LATENCY_BUCKETS_US
                .get(b)
                .map(|&us| format!("{}", us as f64 / 1e6))
                .unwrap_or_else(|| "+Inf".to_string());
            let _ = writeln!(
                out,
                "obda_query_latency_seconds_bucket{{backend=\"{name}\",le=\"{le}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "obda_query_latency_seconds_sum{{backend=\"{name}\"}} {}",
            snap.sum_micros as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "obda_query_latency_seconds_count{{backend=\"{name}\"}} {}",
            snap.count
        );
    }

    // Stage time totals.
    let _ = writeln!(
        out,
        "# HELP obda_stage_seconds_total Accumulated per-stage statement time."
    );
    let _ = writeln!(out, "# TYPE obda_stage_seconds_total counter");
    for (i, stage) in STAGE_NAMES.iter().enumerate() {
        let _ = writeln!(
            out,
            "obda_stage_seconds_total{{stage=\"{stage}\"}} {}",
            reg.stage_micros_total(i) as f64 / 1e6
        );
    }

    // Plan cache.
    let cache = server.cache_stats();
    counter(
        &mut out,
        "obda_plan_cache_hits_total",
        "Plan-cache hits.",
        cache.hits,
    );
    counter(
        &mut out,
        "obda_plan_cache_misses_total",
        "Plan-cache misses (cold compilations).",
        cache.misses,
    );
    counter(
        &mut out,
        "obda_plan_cache_invalidated_total",
        "Stale plan-cache entries dropped by publishes.",
        cache.invalidated,
    );
    let _ = writeln!(
        out,
        "# HELP obda_plan_cache_entries Live plan-cache entries."
    );
    let _ = writeln!(out, "# TYPE obda_plan_cache_entries gauge");
    let _ = writeln!(out, "obda_plan_cache_entries {}", cache.entries);

    // Constraint-driven reformulation pruning, by reason.
    let (pruned_empty, pruned_subsumed) = reg.pruned_arms_total();
    let _ = writeln!(
        out,
        "# HELP obda_pruned_arms_total Union arms dropped by constraint-driven pruning."
    );
    let _ = writeln!(out, "# TYPE obda_pruned_arms_total counter");
    let _ = writeln!(
        out,
        "obda_pruned_arms_total{{reason=\"empty\"}} {pruned_empty}"
    );
    let _ = writeln!(
        out,
        "obda_pruned_arms_total{{reason=\"subsumed\"}} {pruned_subsumed}"
    );

    // Transactions.
    let txn = server.txn_stats();
    counter(
        &mut out,
        "obda_txn_commits_total",
        "Transactions committed.",
        txn.committed,
    );
    counter(
        &mut out,
        "obda_txn_conflicts_total",
        "Commits refused by first-committer-wins validation.",
        txn.conflicts,
    );
    counter(
        &mut out,
        "obda_txn_commit_groups_total",
        "Group-commit WAL records (group size = commits / groups).",
        txn.commit_groups,
    );
    let _ = writeln!(out, "# HELP obda_txn_active Currently open transactions.");
    let _ = writeln!(out, "# TYPE obda_txn_active gauge");
    let _ = writeln!(out, "obda_txn_active {}", txn.active);

    // WAL and checkpoints.
    counter(
        &mut out,
        "obda_wal_appends_total",
        "WAL group records appended.",
        reg.wal_appends_total(),
    );
    counter(
        &mut out,
        "obda_wal_fsyncs_total",
        "WAL group records fsynced (sync_commits).",
        reg.wal_fsyncs_total(),
    );
    counter(
        &mut out,
        "obda_wal_bytes_total",
        "Bytes appended to the WAL.",
        reg.wal_bytes_total(),
    );
    counter(
        &mut out,
        "obda_checkpoints_total",
        "Fuzzy checkpoints taken.",
        reg.checkpoints_total(),
    );
    let _ = writeln!(
        out,
        "# HELP obda_checkpoint_seconds_total Accumulated checkpoint time."
    );
    let _ = writeln!(out, "# TYPE obda_checkpoint_seconds_total counter");
    let _ = writeln!(
        out,
        "obda_checkpoint_seconds_total {}",
        reg.checkpoint_micros_total() as f64 / 1e6
    );

    // Connections and contained panics.
    counter(
        &mut out,
        "obda_connections_admitted_total",
        "Wire connections admitted.",
        reg.connections_admitted_total(),
    );
    counter(
        &mut out,
        "obda_connections_rejected_total",
        "Wire connections refused at the session limit (53300).",
        reg.connections_rejected_total(),
    );
    counter(
        &mut out,
        "obda_panics_recovered_total",
        "Statement panics contained per-session (XX000).",
        reg.panics_recovered_total(),
    );

    // Cost-model accuracy.
    let (predicted, measured) = reg.cost_totals();
    let _ = writeln!(
        out,
        "# HELP obda_cost_predicted_units_total Accumulated predicted plan cost (work units)."
    );
    let _ = writeln!(out, "# TYPE obda_cost_predicted_units_total counter");
    let _ = writeln!(out, "obda_cost_predicted_units_total {predicted}");
    let _ = writeln!(
        out,
        "# HELP obda_cost_measured_units_total Accumulated measured executor work (work units)."
    );
    let _ = writeln!(out, "# TYPE obda_cost_measured_units_total counter");
    let _ = writeln!(out, "obda_cost_measured_units_total {measured}");

    // Server identity.
    let _ = writeln!(out, "# HELP obda_generation Published snapshot generation.");
    let _ = writeln!(out, "# TYPE obda_generation gauge");
    let _ = writeln!(out, "obda_generation {}", server.generation());
    out
}

/// A running `GET /metrics` endpoint over a plain `TcpListener`.
/// Dropping the handle stops the serving thread.
pub struct MetricsEndpoint {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsEndpoint {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve [`render_prometheus`]
    /// for the given server on a background thread.
    pub fn bind(addr: &str, server: Arc<Server>) -> std::io::Result<MetricsEndpoint> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("obda-metrics".into())
            .spawn(move || metrics_loop(listener, server, thread_stop))?;
        Ok(MetricsEndpoint {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop serving and join the thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsEndpoint {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn metrics_loop(listener: TcpListener, server: Arc<Server>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // One request per connection, handled inline (scrapes are
                // rare and tiny) — and under catch_unwind, so no request,
                // however malformed, can take the endpoint down.
                let result = catch_unwind(AssertUnwindSafe(|| handle_scrape(stream, &server)));
                if result.is_err() {
                    server.observe().record_panic_recovered();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Read one HTTP/1.x request (line-limited, time-limited) and answer it.
/// Every malformed input maps to a typed 4xx response or a dropped
/// connection — never an error that escapes to the accept loop.
fn handle_scrape(mut stream: TcpStream, server: &Server) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    let deadline = Instant::now() + Duration::from_secs(2);
    // Read until the header terminator, the buffer cap, or the deadline.
    loop {
        if len >= buf.len() || Instant::now() >= deadline {
            break;
        }
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n")
                    || buf[..len].windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "only GET is supported\n".to_string(),
        )
    } else if path == "/metrics" {
        ("200 OK", render_prometheus(server))
    } else if path.is_empty() {
        ("400 Bad Request", "malformed request line\n".to_string())
    } else {
        ("404 Not Found", "try /metrics\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_bounds_and_overflow() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(50), 0);
        assert_eq!(Histogram::bucket_index(51), 1);
        assert_eq!(Histogram::bucket_index(5_000_000), BUCKET_COUNT - 2);
        assert_eq!(Histogram::bucket_index(5_000_001), BUCKET_COUNT - 1);
    }

    /// Satellite: the histogram's quantile agrees with the shared
    /// nearest-rank [`percentile`] helper (the one `obda_bench`
    /// re-exports) when observations sit exactly on bucket bounds.
    #[test]
    fn histogram_quantile_matches_shared_percentile_helper() {
        let h = Histogram::new();
        let samples: Vec<Duration> = LATENCY_BUCKETS_US
            .iter()
            .map(|&us| Duration::from_micros(us))
            .collect();
        for &s in &samples {
            h.observe(s);
        }
        for p in [10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(
                h.quantile(p),
                percentile(&samples, p),
                "p={p} disagrees with the nearest-rank helper"
            );
        }
        assert_eq!(h.quantile(50.0), percentile(&samples, 50.0));
    }

    #[test]
    fn histogram_empty_and_overflow() {
        let h = Histogram::new();
        assert_eq!(h.quantile(99.0), Duration::ZERO);
        h.observe(Duration::from_secs(60)); // beyond the last bound
        assert_eq!(h.count(), 1);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[BUCKET_COUNT - 1], 1);
        // Overflow quantile reports the largest finite bound.
        assert_eq!(
            h.quantile(100.0),
            Duration::from_micros(LATENCY_BUCKETS_US[LATENCY_BUCKETS_US.len() - 1])
        );
    }

    fn trace(id: u64, millis: u64) -> QueryTrace {
        QueryTrace {
            id,
            query: format!("SELECT ?x WHERE Q{id}(?x)"),
            backend: Backend::Native,
            cache_hit: false,
            generation: 0,
            rows: 1,
            spans: StageSpans {
                execute: Duration::from_millis(millis),
                ..StageSpans::default()
            },
            total: Duration::from_millis(millis),
        }
    }

    #[test]
    fn slow_ring_keeps_the_slowest() {
        let reg = MetricsRegistry::new();
        for i in 0..100u64 {
            reg.record_trace(trace(i, i + 1));
        }
        let slow = reg.slow_queries();
        assert_eq!(slow.len(), SLOW_RING_CAPACITY);
        // The slowest 16 of 1..=100ms are 85..=100ms, slowest first.
        assert_eq!(slow[0].total, Duration::from_millis(100));
        assert!(slow.iter().all(|t| t.total >= Duration::from_millis(85)));
        assert!(slow.windows(2).all(|w| w[0].total >= w[1].total));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::new();
        reg.set_enabled(false);
        reg.record_query(Backend::Native, Duration::from_millis(5), 3);
        reg.record_trace(trace(1, 50));
        reg.record_wal_append(100, true);
        reg.record_admission();
        assert_eq!(reg.queries_total(Backend::Native), 0);
        assert_eq!(reg.latency(Backend::Native).count(), 0);
        assert!(reg.slow_queries().is_empty());
        assert_eq!(reg.wal_appends_total(), 0);
        assert_eq!(reg.connections_admitted_total(), 0);
        reg.set_enabled(true);
        reg.record_query(Backend::Sql, Duration::from_millis(5), 3);
        assert_eq!(reg.queries_total(Backend::Sql), 1);
    }

    #[test]
    fn stage_spans_total_and_order() {
        let spans = StageSpans {
            parse: Duration::from_micros(1),
            reformulate: Duration::from_micros(2),
            plan: Duration::from_micros(3),
            sqlgen: Duration::from_micros(4),
            execute: Duration::from_micros(5),
            serialize: Duration::from_micros(6),
        };
        assert_eq!(spans.total(), Duration::from_micros(21));
        assert_eq!(spans.as_array().len(), STAGE_NAMES.len());
        assert_eq!(STAGE_NAMES[0], "parse");
        assert_eq!(STAGE_NAMES[4], "execute");
    }

    #[test]
    fn truncate_query_is_boundary_safe() {
        let long = "é".repeat(200);
        let t = truncate_query(&long);
        assert!(t.chars().count() <= TRACE_QUERY_MAX + 1);
        assert!(t.ends_with('…'));
        assert_eq!(truncate_query("short"), "short");
    }
}
