//! The executor differential harness: the oracle that makes physical
//! operator work safe to change.
//!
//! [`differential_check`] runs one FOL query under **every** storage
//! layout × join strategy (forced index-nested-loop, forced hash,
//! cost-chosen), asserts all eighteen executions return the same row
//! set, cross-checks the reference evaluator, and audits the meter's
//! per-union-arm accounting ([`assert_arm_metrics_sum`]). Each
//! combination is additionally executed through the classic **row
//! pipeline** ([`ExecMode::Row`]) and compared counter-for-counter
//! against the default vectorized pipeline, then replayed through
//! **stored plans** (`prepare` + `evaluate_opts`, the plan-cache hot
//! path) and through **parallel arm execution** (3 worker threads),
//! asserting row-set and work-counter parity with the sequential
//! inline-planned run — so a batching, cache-key or merge-order bug
//! fails here, not in production. Every layout also answers through the **SQL backend**
//! (generate-SQL → parse → execute via [`crate::sqlexec`]) with
//! answer-set equality, making generated-SQL correctness a tested
//! property. Any future executor change — new operator, new layout,
//! planner rewrite — is covered by pointing this harness (plus the
//! random query generators in `obda_query::testkit`) at the new code
//! path.

use obda_core::{
    choose_reformulation, choose_reformulation_constrained, prune_ucq, Strategy,
    StructuralEstimator,
};
use obda_dllite::{ABox, AboxDelta, ConstraintSet, Dependencies, TBox, Vocabulary};
use obda_query::{eval_over_abox, FolQuery, CQ, UCQ};

use crate::engine::{Engine, EvalOptions, QueryOutcome};
use crate::executor::Row;
use crate::layout::LayoutKind;
use crate::metrics::ExecMetrics;
use crate::planner::{ExecMode, JoinStrategy};
use crate::profile::EngineProfile;
use crate::sqlexec::Backend;

/// Every storage layout the engine supports.
pub const ALL_LAYOUTS: [LayoutKind; 3] = [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph];

/// Every physical operator strategy.
pub const ALL_STRATEGIES: [JoinStrategy; 3] = [
    JoinStrategy::ForcedInl,
    JoinStrategy::ForcedHash,
    JoinStrategy::CostChosen,
];

/// Sorted engine rows from the reference evaluator (the semantics
/// oracle).
pub fn reference_rows(abox: &ABox, q: &FolQuery) -> Vec<Row> {
    let mut rows: Vec<Row> = eval_over_abox(abox, q)
        .into_iter()
        .map(|row| row.into_iter().map(|i| i.0).collect())
        .collect();
    rows.sort();
    rows
}

/// Execute `q` under every layout × strategy (pg-like profile: no
/// statement-size limit can interfere), asserting every combination
/// returns the reference evaluator's row set and that union-arm metrics
/// sum to the statement totals. Returns the canonical sorted rows.
///
/// `context` is prepended to assertion messages (pass a seed).
pub fn differential_check(voc: &Vocabulary, abox: &ABox, q: &FolQuery, context: &str) -> Vec<Row> {
    let want = reference_rows(abox, q);
    for layout in ALL_LAYOUTS {
        let engine = Engine::load(abox, voc, layout, EngineProfile::pg_like());
        for strategy in ALL_STRATEGIES {
            let out = engine
                .evaluate_with(q, strategy)
                .expect("pg-like profile has no statement limit");
            let mut rows = out.rows.clone();
            rows.sort();
            assert_eq!(
                rows,
                want,
                "{context}: row-set mismatch under {layout:?}/{}",
                strategy.name()
            );
            assert_arm_metrics_sum(q, &out, context);

            // The classic row pipeline must be indistinguishable from
            // the default vectorized one: identical answer sets AND
            // identical meter totals on every counter — the batched
            // operators' amortized per-block hooks must sum to exactly
            // the row pipeline's per-tuple counts.
            let row = engine
                .evaluate_opts(
                    q,
                    &EvalOptions {
                        strategy: Some(strategy),
                        mode: Some(ExecMode::Row),
                        ..EvalOptions::default()
                    },
                )
                .expect("pg-like profile has no statement limit");
            assert_same_execution(
                &out,
                &row,
                &format!(
                    "{context}: row vs batched pipeline, {layout:?}/{}",
                    strategy.name()
                ),
            );
            assert_arm_metrics_sum(q, &row, context);

            // Stored-plan replay (the plan-cache hot path) must be
            // indistinguishable from inline planning: same rows, same
            // work on every counter.
            let prepared = engine.prepare_with(q, strategy);
            let replay = engine
                .evaluate_opts(
                    q,
                    &EvalOptions {
                        strategy: Some(strategy),
                        prepared: Some(&prepared),
                        ..EvalOptions::default()
                    },
                )
                .expect("pg-like profile has no statement limit");
            assert_same_execution(
                &out,
                &replay,
                &format!(
                    "{context}: stored-plan replay, {layout:?}/{}",
                    strategy.name()
                ),
            );
            assert_arm_metrics_sum(q, &replay, context);

            // Parallel arm execution (3 workers) must return the same
            // rows with identical deterministic work totals (pg-like has
            // no rescan discount, so per-arm meters sum exactly).
            let par = engine
                .evaluate_opts(
                    q,
                    &EvalOptions {
                        strategy: Some(strategy),
                        prepared: Some(&prepared),
                        threads: 3,
                        ..EvalOptions::default()
                    },
                )
                .expect("pg-like profile has no statement limit");
            assert_same_execution(
                &out,
                &par,
                &format!("{context}: parallel arms, {layout:?}/{}", strategy.name()),
            );
            assert_arm_metrics_sum(q, &par, context);
        }

        // The SQL-delegation backend: generate the layout's SQL
        // translation, parse it, and execute it through the embedded
        // relational evaluator — answer-set equality makes generated-SQL
        // correctness a property, not an assumption.
        let sql_engine = engine.clone().with_backend(Backend::Sql);
        let out = sql_engine.evaluate(q).unwrap_or_else(|e| {
            panic!(
                "{context}: SQL backend failed under {layout:?}: {e}\nSQL:\n{}",
                engine.sql_for(q)
            )
        });
        let mut rows = out.rows;
        rows.sort();
        assert_eq!(
            rows,
            want,
            "{context}: SQL backend row-set mismatch under {layout:?}\nSQL:\n{}",
            engine.sql_for(q)
        );
    }
    want
}

/// The reformulation strategies the constraints parity harness sweeps:
/// the plain UCQ route and the fixed root-cover JUCQ route — the two
/// shapes [`obda_core::prune_fol`] rewrites.
pub const PARITY_STRATEGIES: [Strategy; 2] = [Strategy::Ucq, Strategy::CrootJucq];

/// The **constraints parity phase** of the differential harness: prove
/// that constraint-driven pruning is invisible in the answers.
///
/// Starting from a *conjunctive* query (pruning happens during
/// reformulation, so the harness must own that step), for each of
/// [`PARITY_STRATEGIES`]:
///
/// 1. reformulate **without** constraints and **with** constraints
///    mined from `abox` (the same mining the serving layer runs per
///    snapshot generation);
/// 2. assert the two reformulations are reference-evaluator
///    row-identical — pruning never changes the answer relation;
/// 3. for the UCQ shape, re-derive the pruned arms and assert each
///    **empty-pruned** arm really evaluates to zero rows and each
///    **subsumed-pruned** arm's rows are already contained in the
///    pruned union's rows — no arm is dropped on a false proof;
/// 4. execute both reformulations under every storage layout on the
///    native **and** SQL backends, asserting every execution returns
///    the reference row set.
///
/// Returns the canonical sorted rows (identical across strategies).
pub fn differential_constraints_check(
    voc: &Vocabulary,
    tbox: &TBox,
    abox: &ABox,
    cq: &CQ,
    context: &str,
) -> Vec<Row> {
    let deps = Dependencies::compute(voc, tbox);
    let cons = ConstraintSet::mine_from_abox(tbox, abox);
    assert!(
        cons.holds_on(abox),
        "{context}: mined constraints must hold on the ABox they came from"
    );
    let mut canonical: Option<Vec<Row>> = None;
    for strategy in &PARITY_STRATEGIES {
        let off = choose_reformulation(cq, tbox, &deps, &StructuralEstimator, strategy);
        let on = choose_reformulation_constrained(
            cq,
            tbox,
            &deps,
            &StructuralEstimator,
            strategy,
            Some(&cons),
        );
        let want = reference_rows(abox, &off.fol);
        let got = reference_rows(abox, &on.fol);
        assert_eq!(
            got, want,
            "{context}: pruning changed the answer relation under {strategy:?}"
        );
        let stats = on.pruned.expect("constrained reformulation reports stats");
        assert!(
            stats.kept >= 1 || stats.arms_in == 0,
            "{context}: pruning must never empty a union ({stats:?})"
        );

        // Arm-level soundness, on the shape where arms are addressable.
        if let FolQuery::Ucq(ucq) = &off.fol {
            let pruned = prune_ucq(ucq, &cons);
            assert_eq!(
                pruned.stats(),
                stats,
                "{context}: prune_ucq and choose_reformulation_constrained disagree"
            );
            for arm in &pruned.empty_arms {
                let rows = reference_rows(abox, &FolQuery::Ucq(UCQ::single(arm.clone())));
                assert!(
                    rows.is_empty(),
                    "{context}: arm pruned as provably empty has {} rows: {arm:?}",
                    rows.len()
                );
            }
            for arm in &pruned.subsumed_arms {
                for row in reference_rows(abox, &FolQuery::Ucq(UCQ::single(arm.clone()))) {
                    assert!(
                        want.contains(&row),
                        "{context}: arm pruned as subsumed contributes unseen row {row:?}: {arm:?}"
                    );
                }
            }
        }

        // Execution parity: every layout, native and SQL backends, both
        // reformulations — all equal to the reference rows.
        for layout in ALL_LAYOUTS {
            let engine = Engine::load(abox, voc, layout, EngineProfile::pg_like());
            let sql_engine = engine.clone().with_backend(Backend::Sql);
            for (tag, fol) in [("off", &off.fol), ("on", &on.fol)] {
                for (backend, eng) in [("native", &engine), ("sql", &sql_engine)] {
                    let mut rows = eng
                        .evaluate(fol)
                        .unwrap_or_else(|e| {
                            panic!(
                                "{context}: constraints={tag} failed under \
                                 {layout:?}/{backend}/{strategy:?}: {e}"
                            )
                        })
                        .rows;
                    rows.sort();
                    assert_eq!(
                        rows, want,
                        "{context}: constraints={tag} row-set mismatch under \
                         {layout:?}/{backend}/{strategy:?}"
                    );
                }
            }
        }
        if let Some(prev) = &canonical {
            assert_eq!(prev, &want, "{context}: strategies disagree on answers");
        } else {
            canonical = Some(want);
        }
    }
    canonical.unwrap_or_default()
}

/// The **constraint invalidation phase**: prove that ABox mutation
/// re-mines rather than reuses constraints.
///
/// Mines constraints from the pre-delta state, applies `delta`, and
/// asserts (a) whenever the old constraints no longer hold on the
/// mutated data the freshly-mined set differs from the stale one, and
/// (b) pruning with the *fresh* set is answer-preserving on the mutated
/// state across [`PARITY_STRATEGIES`], all layouts, and both backends —
/// i.e. the serving layer's mine-per-generation discipline is the
/// correct one. Returns the canonical sorted rows over the mutated
/// state.
pub fn differential_constraints_mutation_check(
    voc: &Vocabulary,
    tbox: &TBox,
    abox: &ABox,
    delta: &AboxDelta,
    cq: &CQ,
    context: &str,
) -> Vec<Row> {
    let stale = ConstraintSet::mine_from_abox(tbox, abox);
    let mut voc2 = voc.clone();
    for name in &delta.new_individuals {
        voc2.individual(name);
    }
    let mut mutated = abox.clone();
    mutated.apply(delta);
    let fresh = ConstraintSet::mine_from_abox(tbox, &mutated);
    assert!(
        fresh.holds_on(&mutated),
        "{context}: freshly mined constraints must hold on the mutated ABox"
    );
    // `holds_on` is the staleness oracle. A violated stale set can never
    // equal the fresh one (`fresh` holds where `stale` does not), and —
    // since the empty set vacuously holds everywhere — it necessarily
    // carried real constraints the delta just broke.
    if !stale.holds_on(&mutated) {
        assert!(
            !stale.is_empty(),
            "{context}: an empty constraint set cannot be violated"
        );
    }
    differential_constraints_check(&voc2, tbox, &mutated, cq, context)
}

/// The **mutation phase** of the differential harness: apply a delta
/// batch *incrementally* to engines loaded from `abox`, and assert they
/// are indistinguishable — on answers under every strategy, and on
/// catalog statistics exactly — from engines rebuilt from scratch on the
/// mutated ABox, across every layout. The reference evaluator on the
/// mutated ABox is the semantics oracle. Chained mutation is covered by
/// calling this repeatedly on successive states. Returns the canonical
/// sorted rows over the mutated ABox.
pub fn differential_mutation_check(
    voc: &Vocabulary,
    abox: &ABox,
    delta: &AboxDelta,
    q: &FolQuery,
    context: &str,
) -> Vec<Row> {
    // The vocabulary after the batch interns its new individuals.
    let mut voc2 = voc.clone();
    for name in &delta.new_individuals {
        voc2.individual(name);
    }
    // The mutated ABox and the effective sub-delta that produced it.
    let mut mutated = abox.clone();
    let effective = mutated.apply(delta);
    let want = reference_rows(&mutated, q);

    for layout in ALL_LAYOUTS {
        let mut incremental = Engine::load(abox, &voc2, layout, EngineProfile::pg_like());
        incremental.apply_delta(&effective);
        let rebuilt = Engine::load(&mutated, &voc2, layout, EngineProfile::pg_like());
        assert_eq!(
            incremental.stats(),
            rebuilt.stats(),
            "{context}: incremental stats must equal rebuild under {layout:?}"
        );
        for strategy in ALL_STRATEGIES {
            for (tag, engine) in [("incremental", &incremental), ("rebuilt", &rebuilt)] {
                let mut rows = engine
                    .evaluate_with(q, strategy)
                    .expect("pg-like profile has no statement limit")
                    .rows;
                rows.sort();
                assert_eq!(
                    rows,
                    want,
                    "{context}: {tag} row-set mismatch under {layout:?}/{}",
                    strategy.name()
                );
            }
        }

        // The SQL backend over delta-maintained storage: the sqlexec
        // catalog virtualizes the *mutated* tables, so incremental
        // maintenance bugs surface here through a second, independent
        // access path.
        let sql_engine = incremental.clone().with_backend(Backend::Sql);
        let mut rows = sql_engine
            .evaluate(q)
            .unwrap_or_else(|e| panic!("{context}: SQL backend failed under {layout:?}: {e}"))
            .rows;
        rows.sort();
        assert_eq!(
            rows, want,
            "{context}: SQL backend row-set mismatch on mutated state under {layout:?}"
        );
    }
    want
}

/// Two executions of one statement must agree on the row set and on
/// every work counter (`wall` excluded; `scanned` compared with a float
/// tolerance since parallel merging reassociates f64 sums).
pub fn assert_same_execution(a: &QueryOutcome, b: &QueryOutcome, context: &str) {
    let mut ra = a.rows.clone();
    let mut rb = b.rows.clone();
    ra.sort();
    rb.sort();
    assert_eq!(ra, rb, "{context}: row sets differ");
    let (ma, mb) = (&a.metrics, &b.metrics);
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs()));
    assert!(
        close(ma.scanned, mb.scanned),
        "{context}: scanned {} vs {}",
        ma.scanned,
        mb.scanned
    );
    assert_eq!(ma.index_probes, mb.index_probes, "{context}: index_probes");
    assert_eq!(ma.hash_build, mb.hash_build, "{context}: hash_build");
    assert_eq!(ma.hash_probe, mb.hash_probe, "{context}: hash_probe");
    assert_eq!(ma.join_build, mb.join_build, "{context}: join_build");
    assert_eq!(ma.join_probe, mb.join_probe, "{context}: join_probe");
    assert_eq!(ma.materialized, mb.materialized, "{context}: materialized");
    assert_eq!(ma.output, mb.output, "{context}: output");
}

/// For top-level unions, the per-arm metric deltas must sum to the
/// statement totals on every work counter — every metered operation of a
/// union evaluation happens inside an arm scope. (`output` and `wall`
/// are statement-level and excluded.)
pub fn assert_arm_metrics_sum(q: &FolQuery, out: &QueryOutcome, context: &str) {
    let arms = match q {
        FolQuery::Ucq(u) => u.cqs().len(),
        FolQuery::Uscq(u) => u.scqs().len(),
        _ => return,
    };
    assert_eq!(
        out.arm_metrics.len(),
        arms,
        "{context}: one metric delta per union arm"
    );
    let mut sum = ExecMetrics::default();
    for a in &out.arm_metrics {
        sum.merge(a);
    }
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()));
    assert!(
        close(sum.scanned, out.metrics.scanned),
        "{context}: arm scanned sums {} != total {}",
        sum.scanned,
        out.metrics.scanned
    );
    assert_eq!(sum.index_probes, out.metrics.index_probes, "{context}");
    assert_eq!(sum.hash_build, out.metrics.hash_build, "{context}");
    assert_eq!(sum.hash_probe, out.metrics.hash_probe, "{context}");
    assert_eq!(sum.join_build, out.metrics.join_build, "{context}");
    assert_eq!(sum.join_probe, out.metrics.join_probe, "{context}");
    assert_eq!(sum.materialized, out.metrics.materialized, "{context}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_query::testkit::{
        random_abox, random_connected_cq, random_delta, random_fol_query, random_tbox, KbShape, Rng,
    };

    /// The harness on randomized inputs — the in-crate version of the
    /// workspace `tests/differential.rs` suite.
    #[test]
    fn randomized_differential_smoke() {
        let shape = KbShape::default();
        for seed in 0..15u64 {
            let mut rng = Rng::new(seed);
            let (mut voc, _) = random_tbox(&mut rng, &shape);
            let abox = random_abox(&mut rng, &mut voc, &shape);
            for k in 0..3 {
                let q = random_fol_query(&mut rng, &voc, 3);
                differential_check(&voc, &abox, &q, &format!("seed {seed}.{k}"));
            }
        }
    }

    /// The constraints parity harness on randomized KBs and CQs — the
    /// in-crate version of the workspace proptest suite.
    #[test]
    fn randomized_constraints_parity_smoke() {
        let shape = KbShape::default();
        for seed in 0..10u64 {
            let mut rng = Rng::new(1000 + seed);
            let (mut voc, tbox) = random_tbox(&mut rng, &shape);
            let abox = random_abox(&mut rng, &mut voc, &shape);
            for k in 0..2 {
                let atoms = 1 + rng.below(3);
                let cq = random_connected_cq(&mut rng, &voc, atoms, 2);
                differential_constraints_check(
                    &voc,
                    &tbox,
                    &abox,
                    &cq,
                    &format!("constraints seed {seed}.{k}"),
                );
            }
        }
    }

    /// Constraint invalidation under random mutation: stale constraints
    /// are detected by `holds_on` and fresh ones stay answer-preserving.
    #[test]
    fn randomized_constraints_mutation_smoke() {
        let shape = KbShape::default();
        for seed in 0..10u64 {
            let mut rng = Rng::new(2000 + seed);
            let (mut voc, tbox) = random_tbox(&mut rng, &shape);
            let abox = random_abox(&mut rng, &mut voc, &shape);
            let delta = random_delta(&mut rng, &voc, &abox, 8, seed as usize);
            let atoms = 1 + rng.below(3);
            let cq = random_connected_cq(&mut rng, &voc, atoms, 2);
            differential_constraints_mutation_check(
                &voc,
                &tbox,
                &abox,
                &delta,
                &cq,
                &format!("constraints mutation seed {seed}"),
            );
        }
    }
}
