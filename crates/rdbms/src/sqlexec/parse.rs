//! Recursive-descent parser for the generated-SQL dialect.
//!
//! Grammar (exactly the shapes [`crate::sql::SqlGenerator`] emits, plus
//! `[INNER|CROSS] JOIN … [ON …]`, which desugars to the comma form):
//!
//! ```text
//! query   := [WITH name AS ( set ) {, name AS ( set )}] set
//! set     := select { UNION [ALL] select }
//! select  := SELECT [DISTINCT] item {, item} [FROM source {sep source}]
//!            [WHERE expr]
//! sep     := ',' | [INNER] JOIN … [ON expr] | CROSS JOIN
//! source  := '(' set ')' alias | name [alias]
//! item    := expr [AS name]
//! expr    := or;  or := and {OR and};  and := cmp {AND cmp}
//! cmp     := prim ['=' prim]
//! prim    := number | NULL | CASE {WHEN expr THEN expr} [ELSE expr] END
//!          | '(' set ')' | '(' expr ')' | name ['.' name]
//! ```

use super::ast::{Expr, FromItem, Query, Select, SelectItem, SetExpr};
use super::token::{tokenize, Tok};
use super::SqlError;

/// Parse one statement; errors carry the byte offset into the SQL text.
pub fn parse(sql: &str) -> Result<Query, SqlError> {
    let toks = tokenize(sql)?;
    let mut p = Parser {
        toks,
        at: 0,
        end: sql.len(),
    };
    let q = p.query()?;
    if p.at < p.toks.len() {
        return Err(p.err_here("trailing tokens after the statement"));
    }
    Ok(q)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    at: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.at).map(|(t, _)| t)
    }

    fn pos(&self) -> usize {
        self.toks.get(self.at).map(|&(_, p)| p).unwrap_or(self.end)
    }

    fn err_here(&self, message: &str) -> SqlError {
        SqlError::Parse {
            pos: self.pos(),
            message: message.to_owned(),
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), SqlError> {
        if self.eat(&want) {
            Ok(())
        } else {
            Err(self.err_here(&format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.peek() {
            Some(Tok::Ident(name)) => {
                let name = name.clone();
                self.at += 1;
                Ok(name)
            }
            _ => Err(self.err_here(&format!("expected {what}"))),
        }
    }

    /// An optional trailing alias: a bare identifier (keywords never
    /// alias, so `FROM triples WHERE …` parses unaliased).
    fn opt_alias(&mut self) -> Option<String> {
        match self.peek() {
            Some(Tok::Ident(name)) => {
                let name = name.clone();
                self.at += 1;
                Some(name)
            }
            _ => None,
        }
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        let mut ctes = Vec::new();
        if self.eat(&Tok::With) {
            loop {
                let name = self.ident("CTE name after WITH")?;
                self.expect(Tok::As, "AS in CTE binding")?;
                self.expect(Tok::LParen, "( opening the CTE body")?;
                let body = self.set_expr()?;
                self.expect(Tok::RParen, ") closing the CTE body")?;
                ctes.push((name, body));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let body = self.set_expr()?;
        Ok(Query { ctes, body })
    }

    fn set_expr(&mut self) -> Result<SetExpr, SqlError> {
        let first = SetExpr::Select(Box::new(self.select()?));
        if self.peek() != Some(&Tok::Union) {
            return Ok(first);
        }
        let mut arms = vec![(first, false)];
        while self.eat(&Tok::Union) {
            let all = self.eat(&Tok::All);
            arms.push((SetExpr::Select(Box::new(self.select()?)), all));
        }
        Ok(SetExpr::Union { arms })
    }

    fn select(&mut self) -> Result<Select, SqlError> {
        self.expect(Tok::Select, "SELECT")?;
        let distinct = self.eat(&Tok::Distinct);
        let mut items = vec![self.select_item()?];
        while self.eat(&Tok::Comma) {
            items.push(self.select_item()?);
        }
        let mut from = Vec::new();
        let mut on_conds: Vec<Expr> = Vec::new();
        if self.eat(&Tok::From) {
            from.push(self.from_item()?);
            loop {
                if self.eat(&Tok::Comma) {
                    from.push(self.from_item()?);
                } else if self.peek() == Some(&Tok::Join)
                    || self.peek() == Some(&Tok::Inner)
                    || self.peek() == Some(&Tok::Cross)
                {
                    let cross = self.eat(&Tok::Cross);
                    if !cross {
                        self.eat(&Tok::Inner);
                    }
                    self.expect(Tok::Join, "JOIN")?;
                    from.push(self.from_item()?);
                    if !cross && self.eat(&Tok::On) {
                        on_conds.push(self.expr()?);
                    }
                } else {
                    break;
                }
            }
        }
        let mut filter = if self.eat(&Tok::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        // `ON` conditions are plain join predicates in this dialect.
        for cond in on_conds {
            filter = Some(match filter {
                Some(f) => Expr::And(Box::new(f), Box::new(cond)),
                None => cond,
            });
        }
        Ok(Select {
            distinct,
            items,
            from,
            filter,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let expr = self.expr()?;
        let alias = if self.eat(&Tok::As) {
            Some(self.ident("alias after AS")?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn from_item(&mut self) -> Result<FromItem, SqlError> {
        if self.eat(&Tok::LParen) {
            let query = self.set_expr()?;
            self.expect(Tok::RParen, ") closing the subquery")?;
            let alias = self
                .opt_alias()
                .ok_or_else(|| self.err_here("expected alias after subquery"))?;
            Ok(FromItem::Subquery {
                query: Box::new(query),
                alias,
            })
        } else {
            let name = self.ident("table name")?;
            let alias = self.opt_alias();
            Ok(FromItem::Table { name, alias })
        }
    }

    fn expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.cmp_expr()?;
        while self.eat(&Tok::And) {
            let right = self.cmp_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr, SqlError> {
        let left = self.primary()?;
        if self.eat(&Tok::Eq) {
            let right = self.primary()?;
            Ok(Expr::Eq(Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.at += 1;
                Ok(Expr::Num(n))
            }
            Some(Tok::Null) => {
                self.at += 1;
                Ok(Expr::Null)
            }
            Some(Tok::Case) => {
                self.at += 1;
                let mut arms = Vec::new();
                while self.eat(&Tok::When) {
                    let cond = self.expr()?;
                    self.expect(Tok::Then, "THEN")?;
                    let value = self.expr()?;
                    arms.push((cond, value));
                }
                if arms.is_empty() {
                    return Err(self.err_here("CASE needs at least one WHEN arm"));
                }
                let otherwise = if self.eat(&Tok::Else) {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.expect(Tok::End, "END closing CASE")?;
                Ok(Expr::Case { arms, otherwise })
            }
            Some(Tok::LParen) => {
                self.at += 1;
                let e = if self.peek() == Some(&Tok::Select) {
                    Expr::Subquery(Box::new(self.set_expr()?))
                } else {
                    self.expr()?
                };
                self.expect(Tok::RParen, ") closing the expression")?;
                Ok(e)
            }
            Some(Tok::Ident(first)) => {
                self.at += 1;
                if self.eat(&Tok::Dot) {
                    let column = self.ident("column after '.'")?;
                    Ok(Expr::Col {
                        table: Some(first),
                        column,
                    })
                } else {
                    Ok(Expr::Col {
                        table: None,
                        column: first,
                    })
                }
            }
            _ => Err(self.err_here("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_conjunction() {
        let q =
            parse("SELECT DISTINCT t0.x AS h0 FROM c_A t0, r_r t1 WHERE t1.s = t0.x AND t1.o = 42")
                .unwrap();
        assert!(q.ctes.is_empty());
        let SetExpr::Select(sel) = &q.body else {
            panic!("expected a single select");
        };
        assert!(sel.distinct);
        assert_eq!(sel.items.len(), 1);
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.filter.as_ref().unwrap().conjuncts().len(), 2);
    }

    #[test]
    fn parses_union_chain_and_arms_flatten() {
        let q = parse("SELECT a FROM t UNION SELECT a FROM u UNION ALL SELECT a FROM v").unwrap();
        let arms = q.body.union_arms();
        assert_eq!(arms.len(), 3);
        assert!(!arms[1].1, "second arm joined by plain UNION");
        assert!(arms[2].1, "third arm joined by UNION ALL");
    }

    #[test]
    fn parses_with_prologue() {
        let q = parse(
            "WITH sql0 AS (SELECT x AS h0 FROM a), sql1 AS (SELECT y AS h0 FROM b) \
             SELECT DISTINCT sql0.h0 FROM sql0, sql1 WHERE sql1.h0 = sql0.h0",
        )
        .unwrap();
        assert_eq!(q.ctes.len(), 2);
        assert_eq!(q.ctes[0].0, "sql0");
    }

    #[test]
    fn parses_case_with_scalar_subquery() {
        let q = parse(
            "SELECT entity AS s, CASE WHEN pred0 = 7 THEN CASE WHEN multi0 = 1 THEN \
             (SELECT mv.val FROM dph_values mv WHERE mv.key = dph.val0 AND mv.pred = 7) \
             ELSE val0 END ELSE NULL END AS o FROM dph WHERE pred0 = 7 OR pred1 = 7",
        )
        .unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!();
        };
        assert!(matches!(sel.items[1].expr, Expr::Case { .. }));
        assert!(matches!(sel.filter, Some(Expr::Or(..))));
    }

    #[test]
    fn parses_join_on_as_where_conjunct() {
        let q = parse("SELECT a.x FROM ta a JOIN tb b ON b.y = a.x WHERE a.x = 3").unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!();
        };
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.filter.as_ref().unwrap().conjuncts().len(), 2);
    }

    #[test]
    fn parses_fromless_select() {
        let q = parse("SELECT DISTINCT 1 AS t").unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!();
        };
        assert!(sel.from.is_empty());
        assert_eq!(sel.items[0].alias.as_deref(), Some("t"));
    }

    #[test]
    fn keywords_do_not_become_aliases() {
        let q = parse("SELECT x FROM t WHERE x = 1").unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!();
        };
        match &sel.from[0] {
            FromItem::Table { name, alias } => {
                assert_eq!(name, "t");
                assert!(alias.is_none());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn reports_error_position() {
        let err = parse("SELECT FROM t").unwrap_err();
        match err {
            SqlError::Parse { pos, .. } => assert_eq!(pos, 7),
            other => panic!("wrong error: {other:?}"),
        }
    }
}
