//! The SQL-visible relational schema of each storage layout.
//!
//! The executor resolves `FROM` table references through this catalog:
//!
//! * **simple** — `c_<name>` unary tables with column `x`; `r_<name>`
//!   binary tables with columns `(s, o)`;
//! * **triple** — one `triples` table with columns `(pred, subj, obj)`;
//!   concept-membership rows carry `obj = 4294967295` (`NO_OBJECT`), and
//!   an equality filter on `pred` is *pushed down* so a predicate-
//!   filtered subquery scans exactly the predicate's extent, like the
//!   native access path;
//! * **DPH** — the DB2RDF wide table `dph` with columns `entity`,
//!   `pred0..predK`, `val0..valK`, `multi0..multiK`, plus the
//!   `dph_values` spill relation `(key, pred, val)`. Each virtual row
//!   holds *distinct* predicates; a multi-valued `(entity, pred)` pair
//!   sets `multi` and stores the entity id as the spill key, with one
//!   `dph_values` row per value — the multi-value indirection of \[9\].
//!
//! Every table is materialized from the layout's **metered** access
//! paths (or charged an equivalent wide-table scan, for `dph`), so the
//! statement meter sees base-table work just as the native executor
//! reports it. Tables resolve on *any* layout — the catalog is driven by
//! names, not by [`LayoutKind`](crate::layout::LayoutKind) — which keeps
//! hand-written SQL usable; the generator simply only emits the tables
//! matching the engine's layout.

use std::cell::RefCell;
use std::rc::Rc;

use obda_dllite::{ConceptId, RoleId};

use crate::fxhash::FxHashMap;
use crate::layout::dph::{DPH_COLUMNS, TYPE_MARKER};
use crate::layout::Storage;
use crate::meter::{Meter, TK_DPH};
use crate::sql::SqlNames;

use super::exec::{Table, Val};
use super::SqlError;

/// Object column value of concept-membership rows in the `triples`
/// table (mirrors the triple layout's convention).
const NO_OBJECT: u32 = u32::MAX;

/// Name-driven resolver of base tables over one loaded storage.
pub struct Catalog<'a> {
    storage: &'a dyn Storage,
    /// `c_<name>` / `r_<name>` → predicate id.
    by_name: FxHashMap<String, Pred>,
    num_concepts: u32,
    num_roles: u32,
    /// The DPH virtualization is built once per statement and shared
    /// (`dph` appears once per atom of a reformulation).
    dph: RefCell<Option<(Rc<Table>, Rc<Table>)>>,
}

#[derive(Clone, Copy)]
enum Pred {
    Concept(u32),
    Role(u32),
}

impl<'a> Catalog<'a> {
    pub fn new(storage: &'a dyn Storage, names: &SqlNames) -> Self {
        let mut by_name = FxHashMap::default();
        for (i, n) in names.concept_names().iter().enumerate() {
            by_name.insert(format!("c_{n}"), Pred::Concept(i as u32));
        }
        for (i, n) in names.role_names().iter().enumerate() {
            by_name.insert(format!("r_{n}"), Pred::Role(i as u32));
        }
        Catalog {
            storage,
            by_name,
            num_concepts: names.concept_names().len() as u32,
            num_roles: names.role_names().len() as u32,
            dph: RefCell::new(None),
        }
    }

    /// Materialize a base table. `pred_filter` is the pushed-down
    /// `pred = <code>` equality for the `triples` table (scans only that
    /// predicate's extent). Scans meter through the layout's own access
    /// paths; the `dph` wide table charges one full-table scan per
    /// reference, and `dph_values` is unmetered here (the executor
    /// meters spill lookups as probes).
    pub fn scan(
        &self,
        name: &str,
        pred_filter: Option<u32>,
        m: &mut Meter,
    ) -> Result<Rc<Table>, SqlError> {
        match name {
            "triples" => Ok(Rc::new(self.triples(pred_filter, m))),
            "dph" => {
                let (dph, _) = self.dph_tables(m);
                m.on_scan(TK_DPH, 2 * dph.rows.len() as u64);
                Ok(dph)
            }
            "dph_values" => {
                let (_, values) = self.dph_tables(m);
                Ok(values)
            }
            _ => match self.by_name.get(name) {
                Some(Pred::Concept(c)) => {
                    let mut rows = Vec::new();
                    self.storage
                        .for_each_concept(ConceptId(*c), m, &mut |i| rows.push(vec![Some(i)]));
                    Ok(Rc::new(Table {
                        cols: vec!["x".into()],
                        rows,
                    }))
                }
                Some(Pred::Role(r)) => {
                    let mut rows = Vec::new();
                    self.storage.for_each_role(RoleId(*r), m, &mut |s, o| {
                        rows.push(vec![Some(s), Some(o)])
                    });
                    Ok(Rc::new(Table {
                        cols: vec!["s".into(), "o".into()],
                        rows,
                    }))
                }
                None => Err(SqlError::exec(format!("unknown table: {name}"))),
            },
        }
    }

    /// The `triples` view: predicate-filtered (one extent scan) or the
    /// whole table (one extent scan per predicate, mirroring how the
    /// native layout would have to enumerate them).
    fn triples(&self, pred_filter: Option<u32>, m: &mut Meter) -> Table {
        let mut rows = Vec::new();
        let mut add_pred = |code: u32, m: &mut Meter| {
            if code % 2 == 0 {
                self.storage
                    .for_each_concept(ConceptId(code >> 1), m, &mut |i| {
                        rows.push(vec![Some(code), Some(i), Some(NO_OBJECT)])
                    });
            } else {
                self.storage
                    .for_each_role(RoleId(code >> 1), m, &mut |s, o| {
                        rows.push(vec![Some(code), Some(s), Some(o)])
                    });
            }
        };
        match pred_filter {
            Some(code) => add_pred(code, m),
            None => {
                for c in 0..self.num_concepts {
                    add_pred(c << 1, m);
                }
                for r in 0..self.num_roles {
                    add_pred((r << 1) | 1, m);
                }
            }
        }
        Table {
            cols: vec!["pred".into(), "subj".into(), "obj".into()],
            rows,
        }
    }

    /// Build (once) the `dph` + `dph_values` pair from the storage's
    /// logical content: per entity, distinct predicates inline their
    /// single value; multi-valued predicates set the `multi` flag, store
    /// the entity id as the spill key, and emit one `dph_values` row per
    /// value. Entities pack [`DPH_COLUMNS`] entries per virtual row.
    fn dph_tables(&self, m: &mut Meter) -> (Rc<Table>, Rc<Table>) {
        if let Some((dph, values)) = self.dph.borrow().as_ref() {
            return (dph.clone(), values.clone());
        }
        // Collect per-entity predicate → values through the storage
        // interface; a scratch meter hides the per-predicate enumeration
        // (the caller charges the wide-table scan instead).
        let mut scratch = Meter::new(m.profile());
        let mut entities: std::collections::BTreeMap<u32, Vec<(u32, Vec<u32>)>> =
            std::collections::BTreeMap::new();
        let mut add = |entity: u32, code: u32, value: u32| {
            let preds = entities.entry(entity).or_default();
            match preds.iter_mut().find(|(p, _)| *p == code) {
                Some((_, vals)) => vals.push(value),
                None => preds.push((code, vec![value])),
            }
        };
        for c in 0..self.num_concepts {
            self.storage
                .for_each_concept(ConceptId(c), &mut scratch, &mut |i| {
                    add(i, c << 1, TYPE_MARKER)
                });
        }
        for r in 0..self.num_roles {
            self.storage
                .for_each_role(RoleId(r), &mut scratch, &mut |s, o| add(s, (r << 1) | 1, o));
        }

        let mut cols = vec!["entity".to_owned()];
        for k in 0..DPH_COLUMNS {
            cols.push(format!("pred{k}"));
            cols.push(format!("val{k}"));
            cols.push(format!("multi{k}"));
        }
        let mut dph_rows: Vec<Vec<Val>> = Vec::new();
        let mut spill_rows: Vec<Vec<Val>> = Vec::new();
        for (entity, preds) in &entities {
            // One (pred, val-or-key, multi) cell per distinct predicate.
            let cells: Vec<(u32, u32, u32)> = preds
                .iter()
                .map(|(code, vals)| {
                    if vals.len() == 1 {
                        (*code, vals[0], 0)
                    } else {
                        for v in vals {
                            spill_rows.push(vec![Some(*entity), Some(*code), Some(*v)]);
                        }
                        (*code, *entity, 1)
                    }
                })
                .collect();
            for chunk in cells.chunks(DPH_COLUMNS) {
                let mut row: Vec<Val> = Vec::with_capacity(cols.len());
                row.push(Some(*entity));
                for &(p, v, multi) in chunk {
                    row.push(Some(p));
                    row.push(Some(v));
                    row.push(Some(multi));
                }
                row.resize(cols.len(), None);
                dph_rows.push(row);
            }
        }
        let dph = Rc::new(Table {
            cols,
            rows: dph_rows,
        });
        let values = Rc::new(Table {
            cols: vec!["key".into(), "pred".into(), "val".into()],
            rows: spill_rows,
        });
        *self.dph.borrow_mut() = Some((dph.clone(), values.clone()));
        (dph, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::dph::DphStorage;
    use crate::layout::simple::SimpleStorage;
    use crate::layout::testutil::small_abox;
    use crate::layout::triple::TripleStorage;
    use crate::profile::EngineProfile;
    use obda_dllite::Vocabulary;

    fn names(voc: &Vocabulary) -> SqlNames {
        SqlNames::from_vocabulary(voc)
    }

    #[test]
    fn simple_tables_resolve_by_name() {
        let (voc, abox) = small_abox();
        let storage = SimpleStorage::load(&abox);
        let names = names(&voc);
        let cat = Catalog::new(&storage, &names);
        let profile = EngineProfile::pg_like();
        let mut m = Meter::new(&profile);
        let t = cat.scan("c_A", None, &mut m).unwrap();
        assert_eq!(t.rows.len(), 2);
        let r = cat.scan("r_r", None, &mut m).unwrap();
        assert_eq!(r.rows.len(), 3);
        assert!(cat.scan("c_Nope", None, &mut m).is_err());
        assert!(m.metrics.scanned > 0.0);
    }

    #[test]
    fn triples_pushdown_scans_one_extent() {
        let (voc, abox) = small_abox();
        let storage = TripleStorage::load(&abox);
        let names = names(&voc);
        let cat = Catalog::new(&storage, &names);
        let profile = EngineProfile::pg_like();
        let mut m = Meter::new(&profile);
        // Role r is id 0 → code 1.
        let t = cat.scan("triples", Some(1), &mut m).unwrap();
        assert_eq!(t.rows.len(), 3);
        // Unfiltered view covers everything (3 concepts + 4 role pairs).
        let all = cat.scan("triples", None, &mut m).unwrap();
        assert_eq!(all.rows.len(), 7);
    }

    #[test]
    fn dph_view_spills_multivalues_into_dph_values() {
        let mut voc = Vocabulary::new();
        let r = voc.role("r");
        let s = voc.individual("s");
        let mut abox = obda_dllite::ABox::new();
        for i in 0..3 {
            let o = voc.individual(&format!("o{i}"));
            abox.assert_role(r, s, o);
        }
        let storage = DphStorage::load(&abox);
        let names = names(&voc);
        let cat = Catalog::new(&storage, &names);
        let profile = EngineProfile::pg_like();
        let mut m = Meter::new(&profile);
        let dph = cat.scan("dph", None, &mut m).unwrap();
        let values = cat.scan("dph_values", None, &mut m).unwrap();
        // One wide row for the single entity; pred0 = role code 1 with
        // the multi flag set; three spill rows.
        assert_eq!(dph.rows.len(), 1);
        assert_eq!(dph.rows[0][1], Some(1), "pred0 is role r's code");
        assert_eq!(dph.rows[0][3], Some(1), "multi0 set");
        assert_eq!(values.rows.len(), 3);
        // Both tables are memoized per statement.
        let again = cat.scan("dph", None, &mut m).unwrap();
        assert!(Rc::ptr_eq(&dph, &again));
    }
}
