//! Tokenizer for the generated-SQL dialect.
//!
//! The token set is exactly what [`crate::sql::SqlGenerator`] emits (plus
//! the `JOIN … ON` forms the parser accepts for hand-written statements):
//! identifiers, unsigned integer literals, a handful of punctuation
//! marks, and case-insensitive keywords.

use super::SqlError;

/// One lexical token. Keywords are matched case-insensitively; anything
/// identifier-shaped that is not a keyword stays an [`Tok::Ident`]
/// (table names like `c_PhDStudent` keep their case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Num(u32),
    LParen,
    RParen,
    Comma,
    Dot,
    Eq,
    Select,
    Distinct,
    As,
    From,
    Where,
    And,
    Or,
    Union,
    All,
    Case,
    When,
    Then,
    Else,
    End,
    Null,
    With,
    Join,
    On,
    Inner,
    Cross,
}

impl Tok {
    /// Keywords cannot serve as aliases or column names in this dialect.
    pub fn is_keyword(&self) -> bool {
        !matches!(
            self,
            Tok::Ident(_)
                | Tok::Num(_)
                | Tok::LParen
                | Tok::RParen
                | Tok::Comma
                | Tok::Dot
                | Tok::Eq
        )
    }
}

fn keyword(word: &str) -> Option<Tok> {
    // The generator emits uppercase keywords; accept any case for
    // hand-written statements.
    Some(match word.to_ascii_uppercase().as_str() {
        "SELECT" => Tok::Select,
        "DISTINCT" => Tok::Distinct,
        "AS" => Tok::As,
        "FROM" => Tok::From,
        "WHERE" => Tok::Where,
        "AND" => Tok::And,
        "OR" => Tok::Or,
        "UNION" => Tok::Union,
        "ALL" => Tok::All,
        "CASE" => Tok::Case,
        "WHEN" => Tok::When,
        "THEN" => Tok::Then,
        "ELSE" => Tok::Else,
        "END" => Tok::End,
        "NULL" => Tok::Null,
        "WITH" => Tok::With,
        "JOIN" => Tok::Join,
        "ON" => Tok::On,
        "INNER" => Tok::Inner,
        "CROSS" => Tok::Cross,
        _ => return None,
    })
}

/// Tokenize a whole statement, reporting the byte offset of any
/// unrecognized character or out-of-range literal.
pub fn tokenize(sql: &str) -> Result<Vec<(Tok, usize)>, SqlError> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            b')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            b',' => {
                out.push((Tok::Comma, i));
                i += 1;
            }
            b'.' => {
                out.push((Tok::Dot, i));
                i += 1;
            }
            b'=' => {
                out.push((Tok::Eq, i));
                i += 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &sql[start..i];
                let n: u32 = text.parse().map_err(|_| SqlError::Tokenize {
                    pos: start,
                    message: format!("integer literal out of range: {text}"),
                })?;
                out.push((Tok::Num(n), start));
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &sql[start..i];
                let tok = keyword(word).unwrap_or_else(|| Tok::Ident(word.to_owned()));
                out.push((tok, start));
            }
            other => {
                return Err(SqlError::Tokenize {
                    pos: i,
                    message: format!("unexpected character {:?}", other as char),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive_and_identifiers_keep_case() {
        let toks = tokenize("select c_PhDStudent FROM t0").unwrap();
        assert_eq!(toks[0].0, Tok::Select);
        assert_eq!(toks[1].0, Tok::Ident("c_PhDStudent".into()));
        assert_eq!(toks[2].0, Tok::From);
    }

    #[test]
    fn punctuation_and_numbers() {
        let toks = tokenize("(a.b = 42, 7)").unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|(t, _)| t).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::Dot,
                Tok::Ident("b".into()),
                Tok::Eq,
                Tok::Num(42),
                Tok::Comma,
                Tok::Num(7),
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn bad_character_reports_position() {
        let err = tokenize("SELECT *").unwrap_err();
        match err {
            SqlError::Tokenize { pos, .. } => assert_eq!(pos, 7),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn out_of_range_literal_is_rejected() {
        assert!(tokenize("SELECT 99999999999").is_err());
    }
}
