//! The relational evaluator: run a parsed statement against the catalog.
//!
//! Evaluation is straightforward set-semantics execution, shaped like
//! what a minimal RDBMS would do with the generated statements:
//!
//! * `FROM` sources materialize first. An equality filter on the
//!   `triples` table's `pred` column is pushed into the catalog scan
//!   (the predicate-extent access path); conjuncts referencing only one
//!   source filter it immediately. Memoized catalog tables and CTEs are
//!   shared, never copied.
//! * Sources join **connected-first**: like the native planner's greedy
//!   expansion, the next source is always one linked to the accumulated
//!   columns by an equality conjunct — executed as a **hash join**
//!   (build on the incoming source, probe per accumulated row, metered
//!   as `join_build` / `join_probe` like the native hash operator) — and
//!   only when no linked source remains does evaluation fall back to a
//!   cross product (smallest source first).
//! * Remaining conjuncts filter under SQL three-valued logic (`NULL`
//!   compares unknown, unknown is not true).
//! * Projection evaluates the select items per row; a subquery in
//!   expression position contributes *all* its values, expanding one
//!   output row each (the DPH spill semantics — see the module docs).
//!   Spill-shaped correlated subqueries are materialized and *indexed*
//!   once per site, then probed per row.
//! * `DISTINCT` and plain `UNION` deduplicate; `UNION ALL` concatenates.
//!
//! Expressions are compiled once per `SELECT` against the row layout
//! (column references become frame/index pairs), so per-row evaluation
//! does no name resolution. Correlated references resolve through the
//! enclosing rows' environment chain.

use std::cell::RefCell;
use std::rc::Rc;

use crate::executor::Row;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::layout::Storage;
use crate::meter::Meter;
use crate::sql::SqlNames;

use super::ast::{Expr, FromItem, Query, Select, SelectItem, SetExpr};
use super::catalog::Catalog;
use super::SqlError;

/// One SQL value: a dictionary-encoded id, or `NULL`.
pub type Val = Option<u32>;

/// A materialized relation: column names plus rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    pub cols: Vec<String>,
    pub rows: Vec<Vec<Val>>,
}

/// Execute a parsed statement. Returns answer rows with `NULL`-carrying
/// tuples dropped (mirroring the native executor's head projection); the
/// meter's `output` counter is set to the result size.
pub fn execute<'q>(
    query: &'q Query,
    storage: &dyn Storage,
    names: &SqlNames,
    m: &mut Meter,
) -> Result<Vec<Row>, SqlError> {
    let mut ctx: Ctx<'_, 'q> = Ctx {
        catalog: Catalog::new(storage, names),
        ctes: FxHashMap::default(),
        subplans: RefCell::new(FxHashMap::default()),
    };
    for (name, body) in &query.ctes {
        let t = eval_set(body, &ctx, None, m)?;
        m.on_materialize(t.rows.len() as u64);
        ctx.ctes.insert(name.clone(), Rc::new(t));
    }

    // A top-level plain-UNION chain is metered per arm, mirroring the
    // native executor's union-arm attribution (UNION ALL falls back to
    // plain recursive evaluation: left-associative semantics).
    let arms = query.body.union_arms();
    let plain_union = arms.len() > 1 && arms.iter().skip(1).all(|(_, all)| !all);
    let table = if plain_union {
        let mut cols: Option<Vec<String>> = None;
        let mut seen: FxHashSet<Vec<Val>> = FxHashSet::default();
        let mut rows: Vec<Vec<Val>> = Vec::new();
        for (arm, _) in arms {
            m.begin_arm();
            let t = eval_set(arm, &ctx, None, m)?;
            m.on_hash_build(t.rows.len() as u64);
            m.end_arm(t.rows.len() as u64);
            match &cols {
                None => cols = Some(t.cols),
                Some(c) if c.len() != t.cols.len() => {
                    return Err(SqlError::exec(format!(
                        "UNION arity mismatch: {} vs {} columns",
                        c.len(),
                        t.cols.len()
                    )))
                }
                Some(_) => {}
            }
            for r in t.rows {
                if seen.insert(r.clone()) {
                    rows.push(r);
                }
            }
        }
        Table {
            cols: cols.expect("union has arms"),
            rows,
        }
    } else {
        eval_set(&query.body, &ctx, None, m)?
    };

    let out: Vec<Row> = table
        .rows
        .into_iter()
        .filter_map(|r| r.into_iter().collect::<Option<Vec<u32>>>())
        .collect();
    m.metrics.output = out.len() as u64;
    Ok(out)
}

/// Statement-wide execution context.
struct Ctx<'a, 'q> {
    catalog: Catalog<'a>,
    ctes: FxHashMap<String, Rc<Table>>,
    /// Per-site plans for expression-position subqueries (the DPH spill
    /// lookup), keyed by AST node address: the correlated relation is
    /// materialized, filtered and *indexed* once, then probed per outer
    /// row instead of re-scanned.
    subplans: RefCell<FxHashMap<usize, Rc<SubPlan<'q>>>>,
}

/// How an expression-position subquery site executes.
enum SubPlan<'q> {
    /// The spill shape — `SELECT <local col> FROM <rel> WHERE <local
    /// consts> AND <local col> = <outer expr> …` — as a hash index from
    /// the residual-equality columns to the projected values, probed
    /// with the outer sides evaluated per row.
    Indexed {
        index: FxHashMap<Vec<u32>, Vec<Val>>,
        /// Outer-side expressions of the residual equalities, compiled
        /// against the *outer* environment chain.
        probes: Vec<CExpr<'q>>,
    },
    /// Any other shape: evaluate the subquery generically per row.
    General,
}

/// The rows of a materialized `FROM` source: shared (memoized catalog
/// tables, CTEs — never copied) or owned (subquery results, filtered
/// subsets).
enum Rows {
    Shared(Rc<Table>),
    Owned(Vec<Vec<Val>>),
}

impl Rows {
    fn as_slice(&self) -> &[Vec<Val>] {
        match self {
            Rows::Shared(t) => &t.rows,
            Rows::Owned(rows) => rows,
        }
    }
}

/// The row environment of one `SELECT` during evaluation; `parent`
/// chains to enclosing rows for correlated references.
struct Env<'e> {
    cols: &'e [String],
    row: &'e [Val],
    parent: Option<&'e Env<'e>>,
}

/// A compiled expression: column references resolved to
/// (frame depth, column index) against an [`Env`] chain.
enum CExpr<'q> {
    Ref(usize, usize),
    Lit(Val),
    Case {
        arms: Vec<(CExpr<'q>, CExpr<'q>)>,
        otherwise: Option<Box<CExpr<'q>>>,
    },
    Sub(&'q SetExpr),
    Eq(Box<CExpr<'q>>, Box<CExpr<'q>>),
    And(Box<CExpr<'q>>, Box<CExpr<'q>>),
    Or(Box<CExpr<'q>>, Box<CExpr<'q>>),
}

/// A scalar, or the value *set* of an expression-position subquery.
enum Vals {
    One(Val),
    Many(Vec<Val>),
}

fn eval_set<'q>(
    se: &'q SetExpr,
    ctx: &Ctx<'_, 'q>,
    outer: Option<&Env<'_>>,
    m: &mut Meter,
) -> Result<Table, SqlError> {
    match se {
        SetExpr::Select(sel) => eval_select(sel, ctx, outer, m),
        SetExpr::Union { arms } => {
            // Left-associative fold: a plain UNION deduplicates
            // everything accumulated so far; UNION ALL concatenates.
            let mut iter = arms.iter();
            let (first, _) = iter.next().expect("union has at least one arm");
            let mut acc = eval_set(first, ctx, outer, m)?;
            for (arm, all) in iter {
                let r = eval_set(arm, ctx, outer, m)?;
                if acc.cols.len() != r.cols.len() {
                    return Err(SqlError::exec(format!(
                        "UNION arity mismatch: {} vs {} columns",
                        acc.cols.len(),
                        r.cols.len()
                    )));
                }
                if *all {
                    acc.rows.extend(r.rows);
                } else {
                    let mut seen: FxHashSet<Vec<Val>> = FxHashSet::default();
                    let mut rows = Vec::with_capacity(acc.rows.len());
                    for row in acc.rows.into_iter().chain(r.rows) {
                        if seen.insert(row.clone()) {
                            rows.push(row);
                        }
                    }
                    acc.rows = rows;
                }
            }
            Ok(acc)
        }
    }
}

/// Materialize one `FROM` source: resolve CTE / base table / subquery,
/// apply the `triples` pred pushdown, and filter by the conjuncts that
/// reference only this source (marking them consumed). Returns the
/// source's qualified column names and its rows.
fn materialize_source<'q>(
    item: &'q FromItem,
    conjuncts: &[&'q Expr],
    used: &mut [bool],
    single_source: bool,
    ctx: &Ctx<'_, 'q>,
    outer: Option<&Env<'_>>,
    m: &mut Meter,
) -> Result<(Vec<String>, Rows), SqlError> {
    let binding = item.binding();
    let (bare_cols, mut rows): (Vec<String>, Rows) = match item {
        FromItem::Table { name, .. } => {
            if let Some(cte) = ctx.ctes.get(name) {
                (cte.cols.clone(), Rows::Shared(cte.clone()))
            } else {
                let mut pushdown = None;
                if name == "triples" {
                    for (i, c) in conjuncts.iter().enumerate() {
                        if !used[i] {
                            if let Some(n) = pred_eq_const(c, binding, single_source) {
                                pushdown = Some(n);
                                used[i] = true;
                                break;
                            }
                        }
                    }
                }
                let t = ctx.catalog.scan(name, pushdown, m)?;
                (t.cols.clone(), Rows::Shared(t))
            }
        }
        FromItem::Subquery { query, .. } => {
            let t = eval_set(query, ctx, outer, m)?;
            (t.cols, Rows::Owned(t.rows))
        }
    };
    let src_cols: Vec<String> = bare_cols.iter().map(|c| format!("{binding}.{c}")).collect();

    // Conjuncts referencing only this source filter it immediately.
    let mut local: Vec<CExpr<'q>> = Vec::new();
    for (i, c) in conjuncts.iter().enumerate() {
        if used[i] {
            continue;
        }
        let frame = Env {
            cols: &src_cols,
            row: &[],
            parent: None,
        };
        if let Ok(ce) = compile(c, &frame) {
            used[i] = true;
            local.push(ce);
        }
    }
    if !local.is_empty() {
        let mut kept = Vec::new();
        for row in rows.as_slice() {
            let env = Env {
                cols: &src_cols,
                row,
                parent: None,
            };
            let mut pass = true;
            for ce in &local {
                if eval_cond(ce, &env, ctx, m)? != Some(true) {
                    pass = false;
                    break;
                }
            }
            if pass {
                kept.push(row.clone());
            }
        }
        rows = Rows::Owned(kept);
    }
    Ok((src_cols, rows))
}

fn eval_select<'q>(
    sel: &'q Select,
    ctx: &Ctx<'_, 'q>,
    outer: Option<&Env<'_>>,
    m: &mut Meter,
) -> Result<Table, SqlError> {
    let conjuncts: Vec<&'q Expr> = sel
        .filter
        .as_ref()
        .map(|f| f.conjuncts())
        .unwrap_or_default();
    let mut used = vec![false; conjuncts.len()];

    // -- materialize the FROM sources -----------------------------------
    let mut sources: Vec<(Vec<String>, Rows)> = Vec::with_capacity(sel.from.len());
    for item in &sel.from {
        sources.push(materialize_source(
            item,
            &conjuncts,
            &mut used,
            sel.from.len() == 1,
            ctx,
            outer,
            m,
        )?);
    }

    // -- join the sources, connected-first ------------------------------
    //
    // The generated SQL lists sources in slot order, which need not keep
    // every *prefix* connected; joining strictly left to right would
    // cross-product through disconnected prefixes. Like the native
    // planner's greedy connected expansion, always prefer a remaining
    // source linked to the accumulated columns by an equality conjunct,
    // and fall back to a cross product (smallest source first) only when
    // none is.
    let mut acc_cols: Vec<String> = Vec::new();
    let mut acc_rows: Vec<Vec<Val>> = vec![Vec::new()];
    let mut remaining: Vec<usize> = (0..sources.len()).collect();
    while !remaining.is_empty() {
        // Find a connected source and its join conjuncts.
        let mut choice: Option<(usize, Vec<(usize, usize, usize)>)> = None;
        for (ri, &si) in remaining.iter().enumerate() {
            let src_cols = &sources[si].0;
            let mut joins: Vec<(usize, usize, usize)> = Vec::new(); // (conjunct, acc, src)
            for (i, c) in conjuncts.iter().enumerate() {
                if used[i] {
                    continue;
                }
                if let Expr::Eq(a, b) = c {
                    let aa = (col_in(a, &acc_cols)?, col_in(a, src_cols)?);
                    let bb = (col_in(b, &acc_cols)?, col_in(b, src_cols)?);
                    let pair = match (aa, bb) {
                        ((Some(ai), None), (None, Some(sj))) => Some((ai, sj)),
                        ((None, Some(sj)), (Some(bi), None)) => Some((bi, sj)),
                        _ => None,
                    };
                    if let Some((ai, sj)) = pair {
                        joins.push((i, ai, sj));
                    }
                }
            }
            if !joins.is_empty() {
                choice = Some((ri, joins));
                break;
            }
        }
        let (ri, joins) = match choice {
            Some(c) => c,
            None => {
                // No linked source: cross with the smallest remaining
                // (the first source starts from the empty tuple).
                let ri = remaining
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &si)| sources[si].1.as_slice().len())
                    .map(|(ri, _)| ri)
                    .expect("remaining is non-empty");
                (ri, Vec::new())
            }
        };
        let si = remaining.remove(ri);
        let (src_cols, src_rows) = &sources[si];
        let src_rows = src_rows.as_slice();

        acc_rows = if joins.is_empty() {
            let mut out = Vec::with_capacity(acc_rows.len().saturating_mul(src_rows.len()));
            for arow in &acc_rows {
                for srow in src_rows {
                    let mut row = arow.clone();
                    row.extend_from_slice(srow);
                    out.push(row);
                }
            }
            out
        } else {
            // Hash join: build on the incoming source, probe per
            // accumulated row. NULL keys never match (3VL).
            for &(i, _, _) in &joins {
                used[i] = true;
            }
            m.on_join_build(src_rows.len() as u64);
            let mut index: FxHashMap<Vec<u32>, Vec<u32>> = FxHashMap::default();
            for (rowi, row) in src_rows.iter().enumerate() {
                if let Some(key) = joins
                    .iter()
                    .map(|&(_, _, sj)| row[sj])
                    .collect::<Option<Vec<u32>>>()
                {
                    index.entry(key).or_default().push(rowi as u32);
                }
            }
            m.on_join_probe(acc_rows.len() as u64);
            let mut out = Vec::new();
            for arow in &acc_rows {
                if let Some(key) = joins
                    .iter()
                    .map(|&(_, ai, _)| arow[ai])
                    .collect::<Option<Vec<u32>>>()
                {
                    if let Some(matches) = index.get(&key) {
                        for &mi in matches {
                            let mut row = arow.clone();
                            row.extend_from_slice(&src_rows[mi as usize]);
                            out.push(row);
                        }
                    }
                }
            }
            out
        };
        acc_cols.extend(src_cols.iter().cloned());
    }

    // -- residual filters and projection --------------------------------
    let frame = Env {
        cols: &acc_cols,
        row: &[],
        parent: outer,
    };
    let mut residual = Vec::new();
    for (i, c) in conjuncts.iter().enumerate() {
        if !used[i] {
            residual.push(compile(c, &frame)?);
        }
    }
    let items: Vec<CExpr<'q>> = sel
        .items
        .iter()
        .map(|it| compile(&it.expr, &frame))
        .collect::<Result<_, _>>()?;

    let cols: Vec<String> = sel
        .items
        .iter()
        .enumerate()
        .map(|(i, it)| item_name(it, i))
        .collect();
    let mut out_rows: Vec<Vec<Val>> = Vec::new();
    'rows: for row in &acc_rows {
        let env = Env {
            cols: &acc_cols,
            row,
            parent: outer,
        };
        for ce in &residual {
            if eval_cond(ce, &env, ctx, m)? != Some(true) {
                continue 'rows;
            }
        }
        let vals: Vec<Vals> = items
            .iter()
            .map(|ce| eval_value(ce, &env, ctx, m))
            .collect::<Result<_, _>>()?;
        expand(&vals, &mut Vec::with_capacity(vals.len()), &mut out_rows);
    }

    if sel.distinct {
        let mut seen = FxHashSet::default();
        let mut deduped = Vec::with_capacity(out_rows.len());
        for row in out_rows {
            m.on_hash_build(1);
            if seen.insert(row.clone()) {
                deduped.push(row);
            }
        }
        out_rows = deduped;
    }
    Ok(Table {
        cols,
        rows: out_rows,
    })
}

/// Cartesian expansion of per-item value sets into output rows (a
/// set-valued subquery contributes one row per value).
fn expand(vals: &[Vals], acc: &mut Vec<Val>, out: &mut Vec<Vec<Val>>) {
    match vals.split_first() {
        None => out.push(acc.clone()),
        Some((v, rest)) => match v {
            Vals::One(x) => {
                acc.push(*x);
                expand(rest, acc, out);
                acc.pop();
            }
            Vals::Many(xs) => {
                for x in xs {
                    acc.push(*x);
                    expand(rest, acc, out);
                    acc.pop();
                }
            }
        },
    }
}

fn item_name(item: &SelectItem, i: usize) -> String {
    if let Some(a) = &item.alias {
        return a.clone();
    }
    match &item.expr {
        Expr::Col { column, .. } => column.clone(),
        _ => format!("col{i}"),
    }
}

/// `pred = <n>` (either side order) targeting `binding`'s `pred` column
/// — the pushdown shape of the `triples` access path.
fn pred_eq_const(e: &Expr, binding: &str, single_source: bool) -> Option<u32> {
    let Expr::Eq(a, b) = e else {
        return None;
    };
    let (col, n) = match (&**a, &**b) {
        (Expr::Col { table, column }, Expr::Num(n)) => ((table, column), *n),
        (Expr::Num(n), Expr::Col { table, column }) => ((table, column), *n),
        _ => return None,
    };
    if col.1 != "pred" {
        return None;
    }
    match col.0 {
        Some(t) if t == binding => Some(n),
        None if single_source => Some(n),
        _ => None,
    }
}

/// Resolve a column-reference expression within one column namespace
/// (`None` if the expression is not a column or is absent; error on
/// ambiguity).
fn col_in(e: &Expr, cols: &[String]) -> Result<Option<usize>, SqlError> {
    let Expr::Col { table, column } = e else {
        return Ok(None);
    };
    resolve_in(cols, table.as_deref(), column)
}

fn resolve_in(
    cols: &[String],
    table: Option<&str>,
    column: &str,
) -> Result<Option<usize>, SqlError> {
    match table {
        Some(t) => {
            let want_len = t.len() + 1 + column.len();
            Ok(cols.iter().position(|c| {
                c.len() == want_len
                    && c.starts_with(t)
                    && c.as_bytes()[t.len()] == b'.'
                    && c.ends_with(column)
            }))
        }
        None => {
            let mut found = None;
            for (i, c) in cols.iter().enumerate() {
                let matches = match c.rfind('.') {
                    Some(dot) => &c[dot + 1..] == column,
                    None => c == column,
                };
                if matches {
                    if found.is_some() {
                        return Err(SqlError::exec(format!("ambiguous column: {column}")));
                    }
                    found = Some(i);
                }
            }
            Ok(found)
        }
    }
}

/// Compile an expression against an environment chain: column references
/// become (frame depth, index) pairs, so row-loop evaluation does no
/// name resolution.
fn compile<'q>(e: &'q Expr, env: &Env<'_>) -> Result<CExpr<'q>, SqlError> {
    match e {
        Expr::Col { table, column } => {
            let mut depth = 0;
            let mut frame = Some(env);
            while let Some(f) = frame {
                if let Some(i) = resolve_in(f.cols, table.as_deref(), column)? {
                    return Ok(CExpr::Ref(depth, i));
                }
                depth += 1;
                frame = f.parent;
            }
            Err(SqlError::exec(format!(
                "unknown column: {}{}",
                table
                    .as_deref()
                    .map(|t| format!("{t}."))
                    .unwrap_or_default(),
                column
            )))
        }
        Expr::Num(n) => Ok(CExpr::Lit(Some(*n))),
        Expr::Null => Ok(CExpr::Lit(None)),
        Expr::Case { arms, otherwise } => {
            let carms = arms
                .iter()
                .map(|(c, v)| Ok((compile(c, env)?, compile(v, env)?)))
                .collect::<Result<_, SqlError>>()?;
            let cotherwise = otherwise
                .as_ref()
                .map(|o| compile(o, env).map(Box::new))
                .transpose()?;
            Ok(CExpr::Case {
                arms: carms,
                otherwise: cotherwise,
            })
        }
        Expr::Subquery(se) => Ok(CExpr::Sub(se)),
        Expr::Eq(a, b) => Ok(CExpr::Eq(
            Box::new(compile(a, env)?),
            Box::new(compile(b, env)?),
        )),
        Expr::And(a, b) => Ok(CExpr::And(
            Box::new(compile(a, env)?),
            Box::new(compile(b, env)?),
        )),
        Expr::Or(a, b) => Ok(CExpr::Or(
            Box::new(compile(a, env)?),
            Box::new(compile(b, env)?),
        )),
    }
}

fn env_ref(env: &Env<'_>, depth: usize, idx: usize) -> Val {
    let mut frame = env;
    for _ in 0..depth {
        frame = frame.parent.expect("compiled ref within the env chain");
    }
    frame.row[idx]
}

/// Plan an expression-position subquery site: when it matches the spill
/// shape (single plain `SELECT` of one local column from one source,
/// every residual conjunct an equality between a local column and an
/// outer-only expression), build a probe index; otherwise fall back to
/// generic per-row evaluation.
fn plan_subquery<'q>(
    se: &'q SetExpr,
    ctx: &Ctx<'_, 'q>,
    env: &Env<'_>,
    m: &mut Meter,
) -> Result<SubPlan<'q>, SqlError> {
    let SetExpr::Select(sel) = se else {
        return Ok(SubPlan::General);
    };
    if sel.distinct || sel.from.len() != 1 || sel.items.len() != 1 {
        return Ok(SubPlan::General);
    }
    let conjuncts: Vec<&'q Expr> = sel
        .filter
        .as_ref()
        .map(|f| f.conjuncts())
        .unwrap_or_default();
    let mut used = vec![false; conjuncts.len()];
    let (src_cols, rows) =
        materialize_source(&sel.from[0], &conjuncts, &mut used, true, ctx, None, m)?;

    let frame = Env {
        cols: &src_cols,
        row: &[],
        parent: Some(env),
    };
    let mut locals: Vec<usize> = Vec::new();
    let mut probes: Vec<CExpr<'q>> = Vec::new();
    for (i, c) in conjuncts.iter().enumerate() {
        if used[i] {
            continue;
        }
        let CExpr::Eq(a, b) = compile(c, &frame)? else {
            return Ok(SubPlan::General);
        };
        match (*a, *b) {
            (CExpr::Ref(0, li), o) | (o, CExpr::Ref(0, li)) => match shift_outer(o) {
                Some(p) => {
                    locals.push(li);
                    probes.push(p);
                }
                None => return Ok(SubPlan::General),
            },
            _ => return Ok(SubPlan::General),
        }
    }
    if locals.is_empty() {
        return Ok(SubPlan::General);
    }
    let CExpr::Ref(0, vi) = compile(&sel.items[0].expr, &frame)? else {
        return Ok(SubPlan::General);
    };
    let mut index: FxHashMap<Vec<u32>, Vec<Val>> = FxHashMap::default();
    for row in rows.as_slice() {
        if let Some(key) = locals
            .iter()
            .map(|&li| row[li])
            .collect::<Option<Vec<u32>>>()
        {
            index.entry(key).or_default().push(row[vi]);
        }
    }
    Ok(SubPlan::Indexed { index, probes })
}

/// Re-root an outer-only compiled expression from the subquery's frame
/// chain onto the outer chain itself (depth − 1). `None` if the
/// expression touches the local frame or is not a plain ref/literal.
fn shift_outer(ce: CExpr<'_>) -> Option<CExpr<'_>> {
    match ce {
        CExpr::Ref(0, _) => None,
        CExpr::Ref(d, i) => Some(CExpr::Ref(d - 1, i)),
        CExpr::Lit(v) => Some(CExpr::Lit(v)),
        _ => None,
    }
}

fn eval_value<'q>(
    ce: &CExpr<'q>,
    env: &Env<'_>,
    ctx: &Ctx<'_, 'q>,
    m: &mut Meter,
) -> Result<Vals, SqlError> {
    match ce {
        CExpr::Ref(d, i) => Ok(Vals::One(env_ref(env, *d, *i))),
        CExpr::Lit(v) => Ok(Vals::One(*v)),
        CExpr::Case { arms, otherwise } => {
            for (cond, value) in arms {
                if eval_cond(cond, env, ctx, m)? == Some(true) {
                    return eval_value(value, env, ctx, m);
                }
            }
            match otherwise {
                Some(o) => eval_value(o, env, ctx, m),
                None => Ok(Vals::One(None)),
            }
        }
        CExpr::Sub(se) => {
            // A spill lookup: one probe into the correlated relation.
            m.on_probe(1);
            let key = *se as *const SetExpr as usize;
            let plan = {
                let cached = ctx.subplans.borrow().get(&key).cloned();
                match cached {
                    Some(p) => p,
                    None => {
                        let p = Rc::new(plan_subquery(se, ctx, env, m)?);
                        ctx.subplans.borrow_mut().insert(key, p.clone());
                        p
                    }
                }
            };
            match &*plan {
                SubPlan::Indexed { index, probes } => {
                    let mut key_vals = Vec::with_capacity(probes.len());
                    for p in probes {
                        match eval_scalar(p, env, ctx, m)? {
                            Some(v) => key_vals.push(v),
                            // NULL never equals: empty value set.
                            None => return Ok(Vals::Many(Vec::new())),
                        }
                    }
                    Ok(Vals::Many(
                        index.get(&key_vals).cloned().unwrap_or_default(),
                    ))
                }
                SubPlan::General => {
                    let t = eval_set(se, ctx, Some(env), m)?;
                    if t.cols.len() != 1 {
                        return Err(SqlError::exec(
                            "expression subquery must select exactly one column",
                        ));
                    }
                    Ok(Vals::Many(t.rows.into_iter().map(|r| r[0]).collect()))
                }
            }
        }
        CExpr::Eq(..) | CExpr::And(..) | CExpr::Or(..) => {
            Err(SqlError::exec("condition used in value position"))
        }
    }
}

fn eval_scalar<'q>(
    ce: &CExpr<'q>,
    env: &Env<'_>,
    ctx: &Ctx<'_, 'q>,
    m: &mut Meter,
) -> Result<Val, SqlError> {
    match eval_value(ce, env, ctx, m)? {
        Vals::One(v) => Ok(v),
        Vals::Many(_) => Err(SqlError::exec("set-valued expression in a comparison")),
    }
}

/// SQL three-valued logic: `None` is *unknown*.
fn eval_cond<'q>(
    ce: &CExpr<'q>,
    env: &Env<'_>,
    ctx: &Ctx<'_, 'q>,
    m: &mut Meter,
) -> Result<Option<bool>, SqlError> {
    match ce {
        CExpr::Eq(a, b) => {
            let va = eval_scalar(a, env, ctx, m)?;
            let vb = eval_scalar(b, env, ctx, m)?;
            Ok(match (va, vb) {
                (Some(x), Some(y)) => Some(x == y),
                _ => None,
            })
        }
        CExpr::And(a, b) => {
            let va = eval_cond(a, env, ctx, m)?;
            if va == Some(false) {
                return Ok(Some(false));
            }
            let vb = eval_cond(b, env, ctx, m)?;
            Ok(match (va, vb) {
                (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            })
        }
        CExpr::Or(a, b) => {
            let va = eval_cond(a, env, ctx, m)?;
            if va == Some(true) {
                return Ok(Some(true));
            }
            let vb = eval_cond(b, env, ctx, m)?;
            Ok(match (va, vb) {
                (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            })
        }
        _ => Err(SqlError::exec("expected a condition")),
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use super::*;
    use crate::layout::simple::SimpleStorage;
    use crate::layout::testutil::small_abox;
    use crate::profile::EngineProfile;

    fn run(sql: &str) -> Result<Vec<Row>, SqlError> {
        let (voc, abox) = small_abox();
        let storage = SimpleStorage::load(&abox);
        let names = SqlNames::from_vocabulary(&voc);
        let profile = EngineProfile::pg_like();
        let mut m = Meter::new(&profile);
        execute(&parse(sql)?, &storage, &names, &mut m)
    }

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort();
        rows
    }

    #[test]
    fn scan_project_filter() {
        // A = {0, 1}; r = {(0,1), (0,2), (3,2)}.
        assert_eq!(
            sorted(run("SELECT DISTINCT t0.x AS h0 FROM c_A t0").unwrap()),
            vec![vec![0], vec![1]]
        );
        assert_eq!(
            sorted(
                run("SELECT DISTINCT t0.s AS h0, t0.o AS h1 FROM r_r t0 WHERE t0.s = 0").unwrap()
            ),
            vec![vec![0, 1], vec![0, 2]]
        );
    }

    #[test]
    fn hash_join_on_equality() {
        // A(x) ∧ r(x, y).
        let rows =
            run("SELECT DISTINCT t0.x AS h0, t1.o AS h1 FROM c_A t0, r_r t1 WHERE t1.s = t0.x")
                .unwrap();
        assert_eq!(sorted(rows), vec![vec![0, 1], vec![0, 2]]);
    }

    #[test]
    fn disconnected_prefix_still_joins_connected_first() {
        // FROM order lists the two r-atoms before the concept that links
        // them; a strict left-to-right join would cross-product r × r.
        let rows = run("SELECT DISTINCT t0.o AS h0 FROM r_r t0, r_s t1, c_A t2 \
             WHERE t1.s = t2.x AND t0.s = t2.x")
        .unwrap();
        // A = {0, 1}; s = {(1,0)}; r(0,·) = {1, 2} → x must be 1 via s,
        // but r(1,·) is empty → no; x = 0 has no s-pair. Check the
        // actual content: s(1,0) → t2.x = 1, r(1,·) = ∅ → empty.
        assert!(rows.is_empty());
    }

    #[test]
    fn cross_product_without_link() {
        let rows = run("SELECT DISTINCT t0.x AS h0, t1.x AS h1 FROM c_A t0, c_B t1").unwrap();
        assert_eq!(sorted(rows), vec![vec![0, 2], vec![1, 2]]);
    }

    #[test]
    fn union_dedups_and_union_all_keeps() {
        let union = run("SELECT x AS h0 FROM c_A UNION SELECT s AS h0 FROM r_r").unwrap();
        assert_eq!(sorted(union), vec![vec![0], vec![1], vec![3]]);
        let all = run("SELECT x AS h0 FROM c_A UNION ALL SELECT x AS h0 FROM c_A").unwrap();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn with_clause_joins_ctes() {
        let rows = run(
            "WITH sql0 AS (SELECT x AS h0 FROM c_A), sql1 AS (SELECT s AS h0 FROM r_r) \
             SELECT DISTINCT sql0.h0 FROM sql0, sql1 WHERE sql1.h0 = sql0.h0",
        )
        .unwrap();
        assert_eq!(sorted(rows), vec![vec![0]]);
    }

    #[test]
    fn correlated_subquery_expands_values() {
        // For each A-member x, the set of objects of r(x, ·): x = 0
        // yields {1, 2} (two rows), x = 1 yields ∅ (no rows).
        let rows = run("SELECT DISTINCT t0.x AS h0, \
             (SELECT u.o FROM r_r u WHERE u.s = t0.x) AS h1 FROM c_A t0")
        .unwrap();
        assert_eq!(sorted(rows), vec![vec![0, 1], vec![0, 2]]);
    }

    #[test]
    fn fromless_select_yields_one_row() {
        assert_eq!(run("SELECT DISTINCT 1 AS t").unwrap(), vec![vec![1]]);
    }

    #[test]
    fn null_rows_are_dropped() {
        assert!(run("SELECT NULL AS h0 FROM c_A").unwrap().is_empty());
    }

    #[test]
    fn unknown_names_error() {
        assert!(matches!(
            run("SELECT x FROM nope"),
            Err(SqlError::Exec { .. })
        ));
        assert!(matches!(
            run("SELECT t0.nope FROM c_A t0"),
            Err(SqlError::Exec { .. })
        ));
    }

    #[test]
    fn union_arity_mismatch_errors() {
        assert!(matches!(
            run("SELECT x AS h0 FROM c_A UNION SELECT s AS h0, o AS h1 FROM r_r"),
            Err(SqlError::Exec { .. })
        ));
    }

    #[test]
    fn top_level_union_arms_are_metered() {
        let (voc, abox) = small_abox();
        let storage = SimpleStorage::load(&abox);
        let names = SqlNames::from_vocabulary(&voc);
        let profile = EngineProfile::pg_like();
        let mut m = Meter::new(&profile);
        let q = parse("SELECT x AS h0 FROM c_A UNION SELECT x AS h0 FROM c_B").unwrap();
        let rows = execute(&q, &storage, &names, &mut m).unwrap();
        assert_eq!(sorted(rows), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(m.arm_metrics.len(), 2);
        let scanned: f64 = m.arm_metrics.iter().map(|a| a.scanned).sum();
        assert_eq!(scanned, m.metrics.scanned);
        assert_eq!(m.metrics.output, 3);
    }
}
