//! Abstract syntax of the generated-SQL dialect.
//!
//! Statements are queries only (the engine's data lives in the layouts;
//! there is no DML): an optional `WITH` prologue of named common table
//! expressions, then a `UNION [ALL]` chain of `SELECT`s — the three
//! statement shapes `crate::sql` emits (plain conjunction, UCQ union,
//! JUCQ `WITH … AS`).

/// A full statement: CTE prologue + set-expression body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// `WITH name AS (…)` bindings, in order (later CTEs may not
    /// reference earlier ones in the generated dialect, but the executor
    /// evaluates them in order so they could).
    pub ctes: Vec<(String, SetExpr)>,
    pub body: SetExpr,
}

/// A set expression: one `SELECT`, or a `UNION [ALL]` chain.
///
/// Union chains are stored *flat* (one `Vec` of arms, left to right)
/// rather than as nested binary nodes: reformulated UCQs reach hundreds
/// or thousands of arms, and a left-nested representation would recurse
/// that deep in evaluation and drop glue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetExpr {
    Select(Box<Select>),
    /// `arms[0] UNION[ ALL] arms[1] UNION[ ALL] arms[2] …`,
    /// left-associative. Each arm carries the flag of the `UNION` that
    /// *precedes* it (`true` = `UNION ALL`); the first arm's flag is
    /// always `false`.
    Union {
        arms: Vec<(SetExpr, bool)>,
    },
}

impl SetExpr {
    /// The arms of the union chain, left to right (a single `SELECT`
    /// yields one arm). The executor meters each arm of a top-level
    /// plain union as one union-arm scope, mirroring the native
    /// executor's per-arm metric attribution.
    pub fn union_arms(&self) -> Vec<(&SetExpr, bool)> {
        match self {
            SetExpr::Select(_) => vec![(self, false)],
            SetExpr::Union { arms } => arms.iter().map(|(a, all)| (a, *all)).collect(),
        }
    }
}

/// One `SELECT` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    /// `FROM` sources; empty for the FROM-less always-true select the
    /// generator emits for empty conjunction bodies.
    pub from: Vec<FromItem>,
    pub filter: Option<Expr>,
}

/// `expr [AS alias]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

/// One `FROM` source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromItem {
    /// A base table or CTE reference, optionally aliased
    /// (`c_PhDStudent t0`, `triples`, `sql0`).
    Table { name: String, alias: Option<String> },
    /// An inline subquery with its mandatory alias (`(SELECT …) t0`).
    Subquery { query: Box<SetExpr>, alias: String },
}

impl FromItem {
    /// The name this source binds in the row namespace: the alias if
    /// given, else the table name itself (`FROM dph` exposes `dph.entity`).
    pub fn binding(&self) -> &str {
        match self {
            FromItem::Table { name, alias } => alias.as_deref().unwrap_or(name),
            FromItem::Subquery { alias, .. } => alias,
        }
    }
}

/// Scalar / boolean expressions. The dialect has one comparison (`=`),
/// `AND`/`OR`, `CASE`, integer literals, `NULL`, column references, and
/// scalar subqueries (the DPH spill lookup).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    Col {
        table: Option<String>,
        column: String,
    },
    Num(u32),
    Null,
    Case {
        /// `WHEN cond THEN value` arms in order.
        arms: Vec<(Expr, Expr)>,
        otherwise: Option<Box<Expr>>,
    },
    /// A parenthesized subquery in expression position. In this dialect
    /// it denotes the *set* of values the subquery returns (the DB2RDF
    /// spill lookup resolves a multi-valued column through it; the
    /// executor expands one output row per value).
    Subquery(Box<SetExpr>),
    Eq(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Split a conjunction into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            other => vec![other],
        }
    }
}
