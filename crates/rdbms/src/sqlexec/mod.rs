//! The embedded SQL execution backend: run the SQL that
//! [`crate::sql::SqlGenerator`] emits, directly against the loaded
//! layout tables.
//!
//! The paper's central claim is that ontological query answering can be
//! *delegated to an RDBMS*: reformulate under the TBox, emit SQL, and
//! let a relational engine execute it. The native executor
//! ([`crate::executor`]) evaluates `FolQuery` values through the
//! [`crate::layout::Storage`] access paths; this module closes the other
//! half of the loop — reformulation → SQL text → relational execution →
//! answers — with a small, purpose-built SQL front-end:
//!
//! * [`token`] / [`parse`](mod@parse) — tokenizer and recursive-descent
//!   parser for the exact `SELECT` / `FROM` / `WHERE` / `UNION [ALL]` /
//!   `JOIN` / `WITH … AS` / `CASE` dialect the generator emits for all
//!   three layouts;
//! * [`catalog`] — the SQL-visible relational schema of each layout:
//!   `c_<name>` / `r_<name>` unary and binary tables (simple), the
//!   `triples` table (triple), and the DB2RDF-style `dph` wide table
//!   plus its `dph_values` spill relation (DPH);
//! * [`exec`] — a set-semantics relational evaluator: pushed-down
//!   predicate filters, hash equi-joins (built on the incoming source,
//!   probed per intermediate row), residual filters under SQL
//!   three-valued logic, `DISTINCT` projection, unions, and CTEs.
//!
//! All work is reported to the same [`crate::meter::Meter`] the native
//! executor uses — base-table scans go through the layouts' metered
//! access paths, join build/probe work counts on the `join_build` /
//! `join_probe` counters — so the two backends' work profiles stay
//! comparable (not identical: the SQL backend has no planner and no
//! index-nested-loop operator).
//!
//! ## Dialect semantics notes
//!
//! * **Spill lookups are set-valued.** The DPH translation resolves a
//!   multi-valued column through a subquery in scalar position
//!   (`CASE WHEN multi0 = 1 THEN (SELECT mv.val FROM dph_values …)`),
//!   following the translation shape of DB2RDF \[9\]. The executor gives
//!   that subquery its intended meaning — *all* matching spill values —
//!   by expanding one output row per value (DB2's own translation
//!   expresses the same thing with a join against the VALUES table).
//! * **`NULL` never reaches an answer.** Result rows containing `NULL`
//!   are dropped, mirroring the native executor's head projection, which
//!   skips tuples with unbound head variables.
//!
//! The differential harness ([`crate::testkit::differential_check`])
//! runs every random query and the LUBM sweep through
//! generate-SQL → parse → execute and asserts answer-set equality with
//! the native executor across all three layouts — generated-SQL
//! correctness is a tested property, not an assumption.

pub mod ast;
pub mod catalog;
pub mod exec;
pub mod parse;
pub mod token;

use std::fmt;

pub use catalog::Catalog;
pub use exec::{execute, Table, Val};
pub use parse::parse;

use crate::executor::Row;
use crate::layout::Storage;
use crate::meter::Meter;
use crate::sql::SqlNames;

/// Which execution engine answers a query.
///
/// * [`Backend::Native`] — the planned, operator-annotated executor of
///   [`crate::executor`] (index-nested-loop / hash joins chosen by the
///   cost model);
/// * [`Backend::Sql`] — generate the SQL translation, parse it, and run
///   it through the embedded relational evaluator of this module. The
///   two must agree on every answer set; the differential harness
///   enforces it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    #[default]
    Native,
    Sql,
}

impl Backend {
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Native => "native",
            Backend::Sql => "sql",
        }
    }
}

/// Errors from the SQL front-end or executor. For generator-produced
/// statements these indicate a generator/executor bug (the differential
/// suite exists to keep them unreachable); for hand-written SQL they are
/// ordinary user errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Unrecognized character or malformed literal at a byte offset.
    Tokenize { pos: usize, message: String },
    /// Syntax error at a byte offset.
    Parse { pos: usize, message: String },
    /// A semantic error during execution (unknown table or column,
    /// ambiguous reference, arity mismatch, misplaced expression).
    Exec { message: String },
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Tokenize { pos, message } => {
                write!(f, "tokenize error at byte {pos}: {message}")
            }
            SqlError::Parse { pos, message } => write!(f, "parse error at byte {pos}: {message}"),
            SqlError::Exec { message } => write!(f, "execution error: {message}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl SqlError {
    pub(crate) fn exec(message: impl Into<String>) -> Self {
        SqlError::Exec {
            message: message.into(),
        }
    }
}

/// Parse and execute one SQL statement against a loaded storage,
/// returning the answer rows (rows containing `NULL` are dropped — see
/// the module docs). `names` maps `c_<name>` / `r_<name>` table
/// references back to predicate ids; metering goes to `m`.
pub fn run(
    sql: &str,
    storage: &dyn Storage,
    names: &SqlNames,
    m: &mut Meter,
) -> Result<Vec<Row>, SqlError> {
    let query = parse(sql)?;
    execute(&query, storage, names, m)
}
