//! Catalog statistics: per-table cardinalities and per-attribute distinct
//! counts, the inputs of both cost models (§6.1: "statistics on the stored
//! data (cardinality and number of distinct values in each stored table
//! attribute)").
//!
//! Statistics are maintained **incrementally** under [`AboxDelta`]
//! batches: instead of bare distinct counts the catalog keeps per-value
//! occurrence counters, so a deletion knows when the last pair with a
//! given subject (or object, or individual) disappears. The maps are kept
//! *canonical* — an entry whose counter reaches zero is removed — which
//! makes incremental maintenance **counter-exact**: after any sequence of
//! deltas, `apply_delta` leaves the catalog structurally equal
//! (`PartialEq`) to [`CatalogStats::from_abox`] on the resulting ABox.
//! The differential suite asserts exactly that property.

use obda_dllite::{ABox, AboxDelta};

use crate::fxhash::FxHashMap;

/// Which role attribute a hash-join build side is keyed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySide {
    Subject,
    Object,
}

/// Occurrence counters per value (canonical: no zero entries).
type Counts = FxHashMap<u32, u64>;

/// Statistics over the stored ABox, layout-independent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CatalogStats {
    concept_rows: FxHashMap<u32, u64>,
    role_rows: FxHashMap<u32, u64>,
    /// Per role: subject value → number of pairs with that subject.
    role_subj_counts: FxHashMap<u32, Counts>,
    /// Per role: object value → number of pairs with that object.
    role_obj_counts: FxHashMap<u32, Counts>,
    /// Individual id → number of facts mentioning it (concept membership
    /// counts once; a role pair counts each position, so a reflexive pair
    /// counts its individual twice).
    individual_refs: Counts,
    pub num_individuals: u64,
    pub total_facts: u64,
}

/// Bump a counter in a canonical count map.
fn count_up(map: &mut Counts, key: u32) {
    *map.entry(key).or_insert(0) += 1;
}

/// Decrement a counter, removing the entry at zero (canonical form).
fn count_down(map: &mut Counts, key: u32) {
    match map.get_mut(&key) {
        Some(n) if *n > 1 => *n -= 1,
        Some(_) => {
            map.remove(&key);
        }
        None => debug_assert!(false, "decrement of untracked key {key}"),
    }
}

impl CatalogStats {
    /// Compute statistics from an ABox.
    pub fn from_abox(abox: &ABox) -> Self {
        let mut stats = CatalogStats::default();
        for &(c, i) in abox.concept_assertions() {
            stats.add_concept(c.0, i.0);
        }
        for &(r, a, b) in abox.role_assertions() {
            stats.add_role(r.0, a.0, b.0);
        }
        stats
    }

    /// Maintain the catalog under one **effective** delta (the sub-delta
    /// [`ABox::apply`] reports: inserts that were new, deletes that hit).
    /// Feeding a non-effective delta (duplicate inserts, misses) would
    /// double-count — the storage layouts guarantee effectiveness.
    pub fn apply_delta(&mut self, delta: &AboxDelta) {
        for &(c, i) in &delta.insert_concepts {
            self.add_concept(c.0, i.0);
        }
        for &(r, a, b) in &delta.insert_roles {
            self.add_role(r.0, a.0, b.0);
        }
        for &(c, i) in &delta.delete_concepts {
            self.remove_concept(c.0, i.0);
        }
        for &(r, a, b) in &delta.delete_roles {
            self.remove_role(r.0, a.0, b.0);
        }
    }

    fn add_concept(&mut self, c: u32, i: u32) {
        *self.concept_rows.entry(c).or_insert(0) += 1;
        self.touch_individual(i);
        self.total_facts += 1;
    }

    fn remove_concept(&mut self, c: u32, i: u32) {
        count_down(&mut self.concept_rows, c);
        self.release_individual(i);
        self.total_facts -= 1;
    }

    fn add_role(&mut self, r: u32, a: u32, b: u32) {
        *self.role_rows.entry(r).or_insert(0) += 1;
        count_up(self.role_subj_counts.entry(r).or_default(), a);
        count_up(self.role_obj_counts.entry(r).or_default(), b);
        self.touch_individual(a);
        self.touch_individual(b);
        self.total_facts += 1;
    }

    fn remove_role(&mut self, r: u32, a: u32, b: u32) {
        count_down(&mut self.role_rows, r);
        let subj = self
            .role_subj_counts
            .get_mut(&r)
            .expect("role with pairs has a subject-count map");
        count_down(subj, a);
        if subj.is_empty() {
            self.role_subj_counts.remove(&r);
        }
        let obj = self
            .role_obj_counts
            .get_mut(&r)
            .expect("role with pairs has an object-count map");
        count_down(obj, b);
        if obj.is_empty() {
            self.role_obj_counts.remove(&r);
        }
        self.release_individual(a);
        self.release_individual(b);
        self.total_facts -= 1;
    }

    fn touch_individual(&mut self, i: u32) {
        let refs = self.individual_refs.entry(i).or_insert(0);
        if *refs == 0 {
            self.num_individuals += 1;
        }
        *refs += 1;
    }

    fn release_individual(&mut self, i: u32) {
        count_down(&mut self.individual_refs, i);
        if !self.individual_refs.contains_key(&i) {
            self.num_individuals -= 1;
        }
    }

    /// Rows in concept table `c` (0 if absent).
    pub fn concept_card(&self, c: u32) -> u64 {
        self.concept_rows.get(&c).copied().unwrap_or(0)
    }

    /// Rows in role table `r`.
    pub fn role_card(&self, r: u32) -> u64 {
        self.role_rows.get(&r).copied().unwrap_or(0)
    }

    /// Distinct subjects of role `r`.
    pub fn role_distinct_subjects(&self, r: u32) -> u64 {
        self.role_subj_counts.get(&r).map_or(0, |m| m.len() as u64)
    }

    /// Distinct objects of role `r`.
    pub fn role_distinct_objects(&self, r: u32) -> u64 {
        self.role_obj_counts.get(&r).map_or(0, |m| m.len() as u64)
    }

    /// Rows a hash-join build side holds for role `r` (its full
    /// extension — the build scans the table once).
    pub fn role_build_rows(&self, r: u32) -> u64 {
        self.role_card(r)
    }

    /// Rows a hash-join build side holds for concept `c`.
    pub fn concept_build_rows(&self, c: u32) -> u64 {
        self.concept_card(c)
    }

    /// Distinct hash keys when role `r` is keyed on `side`: bounds the
    /// build table's bucket count and drives the expected matches per
    /// probe ([`CatalogStats::role_matches_per_key`]).
    pub fn role_distinct_keys(&self, r: u32, side: KeySide) -> u64 {
        match side {
            KeySide::Subject => self.role_distinct_subjects(r),
            KeySide::Object => self.role_distinct_objects(r),
        }
    }

    /// Expected matches per successful hash probe into role `r` keyed on
    /// `side` — identical to the index fan-out, which is what makes INL
    /// and hash joins directly comparable in the cost model.
    pub fn role_matches_per_key(&self, r: u32, side: KeySide) -> f64 {
        match side {
            KeySide::Subject => self.role_fanout_s(r),
            KeySide::Object => self.role_fanout_o(r),
        }
    }

    /// Average fan-out of role `r` from a bound subject (≥ 0).
    pub fn role_fanout_s(&self, r: u32) -> f64 {
        let d = self.role_distinct_subjects(r);
        if d == 0 {
            0.0
        } else {
            self.role_card(r) as f64 / d as f64
        }
    }

    /// Average fan-in of role `r` from a bound object.
    pub fn role_fanout_o(&self, r: u32) -> f64 {
        let d = self.role_distinct_objects(r);
        if d == 0 {
            0.0
        } else {
            self.role_card(r) as f64 / d as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::Vocabulary;

    fn sample() -> (Vocabulary, ABox) {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let r = voc.role("r");
        let mut abox = ABox::new();
        let i: Vec<_> = (0..5).map(|k| voc.individual(&format!("i{k}"))).collect();
        abox.assert_concept(a, i[0]);
        abox.assert_concept(a, i[1]);
        abox.assert_role(r, i[0], i[1]);
        abox.assert_role(r, i[0], i[2]);
        abox.assert_role(r, i[3], i[2]);
        (voc, abox)
    }

    #[test]
    fn cardinalities() {
        let (voc, abox) = sample();
        let stats = CatalogStats::from_abox(&abox);
        let a = voc.find_concept("A").unwrap();
        let r = voc.find_role("r").unwrap();
        assert_eq!(stats.concept_card(a.0), 2);
        assert_eq!(stats.role_card(r.0), 3);
        assert_eq!(stats.role_distinct_subjects(r.0), 2); // i0, i3
        assert_eq!(stats.role_distinct_objects(r.0), 2); // i1, i2
        assert_eq!(stats.num_individuals, 4); // i0..i3 (i4 unused)
        assert_eq!(stats.total_facts, 5);
    }

    #[test]
    fn fanouts() {
        let (voc, abox) = sample();
        let stats = CatalogStats::from_abox(&abox);
        let r = voc.find_role("r").unwrap();
        assert_eq!(stats.role_fanout_s(r.0), 1.5);
        assert_eq!(stats.role_fanout_o(r.0), 1.5);
        assert_eq!(stats.role_fanout_s(999), 0.0, "missing table");
    }

    #[test]
    fn missing_tables_are_zero() {
        let stats = CatalogStats::default();
        assert_eq!(stats.concept_card(0), 0);
        assert_eq!(stats.role_card(0), 0);
    }

    #[test]
    fn delta_maintenance_is_counter_exact() {
        let (voc, mut abox) = sample();
        let mut stats = CatalogStats::from_abox(&abox);
        let a = voc.find_concept("A").unwrap();
        let r = voc.find_role("r").unwrap();
        let i0 = voc.find_individual("i0").unwrap();
        let i1 = voc.find_individual("i1").unwrap();
        let i4 = voc.find_individual("i4").unwrap();
        let delta = obda_dllite::AboxDelta::new()
            .insert_concept(a, i4)
            .insert_role(r, i4, i0)
            .delete_role(r, i0, i1)
            .delete_concept(a, i0);
        let eff = abox.apply(&delta);
        assert_eq!(eff.len(), 4, "all four changes are effective");
        stats.apply_delta(&eff);
        assert_eq!(
            stats,
            CatalogStats::from_abox(&abox),
            "incremental catalog must equal rebuild-from-scratch"
        );
        assert_eq!(stats.concept_card(a.0), 2); // i1, i4
        assert_eq!(stats.role_distinct_subjects(r.0), 3); // i0, i3, i4
    }

    #[test]
    fn delta_maintenance_canonicalizes_empty_tables() {
        let (voc, mut abox) = sample();
        let mut stats = CatalogStats::from_abox(&abox);
        let r = voc.find_role("r").unwrap();
        // Delete every pair of r: the role's maps must disappear, leaving
        // the catalog structurally equal to one that never saw r.
        let mut delta = obda_dllite::AboxDelta::new();
        for (s, o) in abox.role_pairs(r).collect::<Vec<_>>() {
            delta.delete_roles.push((r, s, o));
        }
        let eff = abox.apply(&delta);
        stats.apply_delta(&eff);
        assert_eq!(stats, CatalogStats::from_abox(&abox));
        assert_eq!(stats.role_card(r.0), 0);
        assert_eq!(stats.role_distinct_subjects(r.0), 0);
        assert_eq!(stats.role_fanout_s(r.0), 0.0);
    }

    #[test]
    fn reflexive_pairs_keep_individual_refs_balanced() {
        let mut voc = Vocabulary::new();
        let r = voc.role("r");
        let x = voc.individual("x");
        let mut abox = ABox::new();
        abox.assert_role(r, x, x);
        let mut stats = CatalogStats::from_abox(&abox);
        assert_eq!(stats.num_individuals, 1);
        let eff = abox.apply(&obda_dllite::AboxDelta::new().delete_role(r, x, x));
        stats.apply_delta(&eff);
        assert_eq!(stats.num_individuals, 0);
        assert_eq!(stats, CatalogStats::from_abox(&abox));
        assert_eq!(stats, CatalogStats::default(), "fully canonical at empty");
    }

    #[test]
    fn build_side_estimates_match_catalog() {
        let (voc, abox) = sample();
        let stats = CatalogStats::from_abox(&abox);
        let a = voc.find_concept("A").unwrap();
        let r = voc.find_role("r").unwrap();
        assert_eq!(stats.concept_build_rows(a.0), stats.concept_card(a.0));
        assert_eq!(stats.role_build_rows(r.0), stats.role_card(r.0));
        assert_eq!(stats.role_distinct_keys(r.0, KeySide::Subject), 2);
        assert_eq!(stats.role_distinct_keys(r.0, KeySide::Object), 2);
        assert_eq!(
            stats.role_matches_per_key(r.0, KeySide::Subject),
            stats.role_fanout_s(r.0)
        );
        assert_eq!(
            stats.role_matches_per_key(r.0, KeySide::Object),
            stats.role_fanout_o(r.0)
        );
    }
}
