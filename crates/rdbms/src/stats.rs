//! Catalog statistics: per-table cardinalities and per-attribute distinct
//! counts, the inputs of both cost models (§6.1: "statistics on the stored
//! data (cardinality and number of distinct values in each stored table
//! attribute)").

use obda_dllite::ABox;

use crate::fxhash::{FxHashMap, FxHashSet};

/// Which role attribute a hash-join build side is keyed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySide {
    Subject,
    Object,
}

/// Statistics over the stored ABox, layout-independent.
#[derive(Debug, Clone, Default)]
pub struct CatalogStats {
    concept_rows: FxHashMap<u32, u64>,
    role_rows: FxHashMap<u32, u64>,
    role_distinct_s: FxHashMap<u32, u64>,
    role_distinct_o: FxHashMap<u32, u64>,
    pub num_individuals: u64,
    pub total_facts: u64,
}

impl CatalogStats {
    /// Compute statistics from an ABox.
    pub fn from_abox(abox: &ABox) -> Self {
        let mut stats = CatalogStats::default();
        let mut individuals: FxHashSet<u32> = FxHashSet::default();
        for &(c, i) in abox.concept_assertions() {
            *stats.concept_rows.entry(c.0).or_insert(0) += 1;
            individuals.insert(i.0);
        }
        let mut subj: FxHashMap<u32, FxHashSet<u32>> = FxHashMap::default();
        let mut obj: FxHashMap<u32, FxHashSet<u32>> = FxHashMap::default();
        for &(r, a, b) in abox.role_assertions() {
            *stats.role_rows.entry(r.0).or_insert(0) += 1;
            subj.entry(r.0).or_default().insert(a.0);
            obj.entry(r.0).or_default().insert(b.0);
            individuals.insert(a.0);
            individuals.insert(b.0);
        }
        for (r, s) in subj {
            stats.role_distinct_s.insert(r, s.len() as u64);
        }
        for (r, s) in obj {
            stats.role_distinct_o.insert(r, s.len() as u64);
        }
        stats.num_individuals = individuals.len() as u64;
        stats.total_facts = (abox.concept_assertions().len() + abox.role_assertions().len()) as u64;
        stats
    }

    /// Rows in concept table `c` (0 if absent).
    pub fn concept_card(&self, c: u32) -> u64 {
        self.concept_rows.get(&c).copied().unwrap_or(0)
    }

    /// Rows in role table `r`.
    pub fn role_card(&self, r: u32) -> u64 {
        self.role_rows.get(&r).copied().unwrap_or(0)
    }

    /// Distinct subjects of role `r`.
    pub fn role_distinct_subjects(&self, r: u32) -> u64 {
        self.role_distinct_s.get(&r).copied().unwrap_or(0)
    }

    /// Distinct objects of role `r`.
    pub fn role_distinct_objects(&self, r: u32) -> u64 {
        self.role_distinct_o.get(&r).copied().unwrap_or(0)
    }

    /// Rows a hash-join build side holds for role `r` (its full
    /// extension — the build scans the table once).
    pub fn role_build_rows(&self, r: u32) -> u64 {
        self.role_card(r)
    }

    /// Rows a hash-join build side holds for concept `c`.
    pub fn concept_build_rows(&self, c: u32) -> u64 {
        self.concept_card(c)
    }

    /// Distinct hash keys when role `r` is keyed on `side`: bounds the
    /// build table's bucket count and drives the expected matches per
    /// probe ([`CatalogStats::role_matches_per_key`]).
    pub fn role_distinct_keys(&self, r: u32, side: KeySide) -> u64 {
        match side {
            KeySide::Subject => self.role_distinct_subjects(r),
            KeySide::Object => self.role_distinct_objects(r),
        }
    }

    /// Expected matches per successful hash probe into role `r` keyed on
    /// `side` — identical to the index fan-out, which is what makes INL
    /// and hash joins directly comparable in the cost model.
    pub fn role_matches_per_key(&self, r: u32, side: KeySide) -> f64 {
        match side {
            KeySide::Subject => self.role_fanout_s(r),
            KeySide::Object => self.role_fanout_o(r),
        }
    }

    /// Average fan-out of role `r` from a bound subject (≥ 0).
    pub fn role_fanout_s(&self, r: u32) -> f64 {
        let d = self.role_distinct_subjects(r);
        if d == 0 {
            0.0
        } else {
            self.role_card(r) as f64 / d as f64
        }
    }

    /// Average fan-in of role `r` from a bound object.
    pub fn role_fanout_o(&self, r: u32) -> f64 {
        let d = self.role_distinct_objects(r);
        if d == 0 {
            0.0
        } else {
            self.role_card(r) as f64 / d as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::Vocabulary;

    fn sample() -> (Vocabulary, ABox) {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let r = voc.role("r");
        let mut abox = ABox::new();
        let i: Vec<_> = (0..5).map(|k| voc.individual(&format!("i{k}"))).collect();
        abox.assert_concept(a, i[0]);
        abox.assert_concept(a, i[1]);
        abox.assert_role(r, i[0], i[1]);
        abox.assert_role(r, i[0], i[2]);
        abox.assert_role(r, i[3], i[2]);
        (voc, abox)
    }

    #[test]
    fn cardinalities() {
        let (voc, abox) = sample();
        let stats = CatalogStats::from_abox(&abox);
        let a = voc.find_concept("A").unwrap();
        let r = voc.find_role("r").unwrap();
        assert_eq!(stats.concept_card(a.0), 2);
        assert_eq!(stats.role_card(r.0), 3);
        assert_eq!(stats.role_distinct_subjects(r.0), 2); // i0, i3
        assert_eq!(stats.role_distinct_objects(r.0), 2); // i1, i2
        assert_eq!(stats.num_individuals, 4); // i0..i3 (i4 unused)
        assert_eq!(stats.total_facts, 5);
    }

    #[test]
    fn fanouts() {
        let (voc, abox) = sample();
        let stats = CatalogStats::from_abox(&abox);
        let r = voc.find_role("r").unwrap();
        assert_eq!(stats.role_fanout_s(r.0), 1.5);
        assert_eq!(stats.role_fanout_o(r.0), 1.5);
        assert_eq!(stats.role_fanout_s(999), 0.0, "missing table");
    }

    #[test]
    fn missing_tables_are_zero() {
        let stats = CatalogStats::default();
        assert_eq!(stats.concept_card(0), 0);
        assert_eq!(stats.role_card(0), 0);
    }

    #[test]
    fn build_side_estimates_match_catalog() {
        let (voc, abox) = sample();
        let stats = CatalogStats::from_abox(&abox);
        let a = voc.find_concept("A").unwrap();
        let r = voc.find_role("r").unwrap();
        assert_eq!(stats.concept_build_rows(a.0), stats.concept_card(a.0));
        assert_eq!(stats.role_build_rows(r.0), stats.role_card(r.0));
        assert_eq!(stats.role_distinct_keys(r.0, KeySide::Subject), 2);
        assert_eq!(stats.role_distinct_keys(r.0, KeySide::Object), 2);
        assert_eq!(
            stats.role_matches_per_key(r.0, KeySide::Subject),
            stats.role_fanout_s(r.0)
        );
        assert_eq!(
            stats.role_matches_per_key(r.0, KeySide::Object),
            stats.role_fanout_o(r.0)
        );
    }
}
