//! The per-statement work meter: accumulates [`ExecMetrics`] and tracks
//! how many times each table was scanned (feeding the profile's
//! repeated-scan discount — DB2's buffer-locality behaviour, \[21\]).

use std::time::Instant;

use crate::fxhash::FxHashMap;
use crate::metrics::ExecMetrics;
use crate::profile::EngineProfile;

/// Identifies a stored table for rescan accounting: `(kind, id)` where
/// kind 0 = concept, 1 = role, 2 = layout-wide structure (triple table,
/// DPH, RPH).
pub type TableKey = (u8, u32);

pub const TK_TRIPLES: TableKey = (2, 0);
pub const TK_DPH: TableKey = (2, 1);
pub const TK_RPH: TableKey = (2, 2);

pub fn tk_concept(c: u32) -> TableKey {
    (0, c)
}

pub fn tk_role(r: u32) -> TableKey {
    (1, r)
}

/// Statement-scoped meter.
pub struct Meter<'p> {
    pub metrics: ExecMetrics,
    /// Per-union-arm metric deltas (one entry per UCQ/USCQ arm executed).
    /// Invariant, asserted by the differential testkit: the arm deltas of
    /// a top-level union sum to the statement totals, because every
    /// metered operation of a union evaluation happens inside an arm.
    pub arm_metrics: Vec<ExecMetrics>,
    profile: &'p EngineProfile,
    scan_counts: FxHashMap<TableKey, u32>,
    arm_start: Option<ExecMetrics>,
    /// Wall clock of the open arm scope. The statement-level `wall` is
    /// only stamped after execution, so arm deltas must time themselves.
    arm_started: Option<Instant>,
}

impl<'p> Meter<'p> {
    pub fn new(profile: &'p EngineProfile) -> Self {
        Meter {
            metrics: ExecMetrics::default(),
            arm_metrics: Vec::new(),
            profile,
            scan_counts: FxHashMap::default(),
            arm_start: None,
            arm_started: None,
        }
    }

    /// Record a full (or filtered-full) scan of `table` touching `tuples`
    /// rows.
    pub fn on_scan(&mut self, table: TableKey, tuples: u64) {
        let prior = *self.scan_counts.get(&table).unwrap_or(&0);
        self.metrics.add_scan(tuples, prior, self.profile);
        self.scan_counts.insert(table, prior + 1);
    }

    /// Record an index probe returning `results` tuples.
    pub fn on_probe(&mut self, results: u64) {
        self.metrics.index_probes += 1;
        self.metrics.scanned += results as f64 * 0.1; // result fetch is cheap
    }

    pub fn on_hash_build(&mut self, tuples: u64) {
        self.metrics.hash_build += tuples;
    }

    pub fn on_hash_probe(&mut self, probes: u64) {
        self.metrics.hash_probe += probes;
    }

    /// Record `tuples` insertions into a conjunction hash-join build side.
    pub fn on_join_build(&mut self, tuples: u64) {
        self.metrics.join_build += tuples;
    }

    /// Record `probes` lookups into a conjunction hash-join table.
    pub fn on_join_probe(&mut self, probes: u64) {
        self.metrics.join_probe += probes;
    }

    pub fn on_materialize(&mut self, tuples: u64) {
        self.metrics.materialized += tuples;
    }

    /// Open a union-arm scope: metrics recorded until [`Meter::end_arm`]
    /// are attributed to this arm. Top-level unions only — the executor
    /// does not open scopes for JUCQ/JUSCQ component arms, whose work
    /// interleaves with materialize/join work that belongs to no arm. If
    /// a scope is already open, nested calls are no-ops (the outer scope
    /// keeps the work).
    pub fn begin_arm(&mut self) {
        if self.arm_start.is_none() {
            self.arm_start = Some(self.metrics);
            self.arm_started = Some(Instant::now());
        }
    }

    /// Close the current arm scope, recording its delta; `rows` is the
    /// arm's own (pre-union-dedup) result size. The arm's `wall` is
    /// measured here — the statement total is stamped after execution,
    /// so a counter delta alone would always read zero.
    pub fn end_arm(&mut self, rows: u64) {
        if let Some(start) = self.arm_start.take() {
            let mut delta = self.metrics.delta_since(&start);
            delta.output = rows;
            if let Some(started) = self.arm_started.take() {
                delta.wall = started.elapsed();
            }
            self.arm_metrics.push(delta);
        }
    }

    pub fn profile(&self) -> &'p EngineProfile {
        self.profile
    }

    /// Merge a worker thread's union-arm delta into this statement meter:
    /// every counter adds into the totals and the delta is recorded as the
    /// next arm's metrics — the parallel-execution counterpart of a
    /// [`Meter::begin_arm`]/[`Meter::end_arm`] scope. Deltas must be
    /// merged in arm-index order so merged totals are deterministic.
    ///
    /// Worker meters never share scan state, so the cross-arm rescan
    /// discount does not apply under the parallel path (each arm prices
    /// its scans as a sequential *first* scan would — identical totals to
    /// sequential execution under discount-free profiles like pg-like).
    pub fn merge_arm(&mut self, delta: ExecMetrics) {
        self.metrics.merge(&delta);
        self.arm_metrics.push(delta);
    }

    /// Merge a worker thread's metrics into the statement totals without
    /// recording an arm (JUCQ/JUSCQ component work belongs to no arm).
    pub fn merge_unattributed(&mut self, delta: &ExecMetrics) {
        self.metrics.merge(delta);
    }

    /// How many times `table` has been scanned so far in this statement.
    pub fn scans_of(&self, table: TableKey) -> u32 {
        *self.scan_counts.get(&table).unwrap_or(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescan_counting_is_per_table() {
        let db2 = EngineProfile::db2_like();
        let mut m = Meter::new(&db2);
        m.on_scan(tk_role(1), 100);
        m.on_scan(tk_role(2), 100);
        m.on_scan(tk_role(1), 100);
        assert_eq!(m.scans_of(tk_role(1)), 2);
        assert_eq!(m.scans_of(tk_role(2)), 1);
        // First two full cost, third discounted.
        assert!(m.metrics.scanned < 300.0);
        assert!(m.metrics.scanned >= 200.0);
    }

    #[test]
    fn arm_scopes_capture_deltas_that_sum_to_totals() {
        let pg = EngineProfile::pg_like();
        let mut m = Meter::new(&pg);
        m.begin_arm();
        m.on_scan(tk_role(0), 50);
        m.on_join_build(10);
        m.end_arm(7);
        m.begin_arm();
        m.on_probe(3);
        m.on_join_probe(4);
        m.end_arm(2);
        assert_eq!(m.arm_metrics.len(), 2);
        assert_eq!(m.arm_metrics[0].scanned, 50.0);
        assert_eq!(m.arm_metrics[0].join_build, 10);
        assert_eq!(m.arm_metrics[0].output, 7);
        assert_eq!(m.arm_metrics[1].index_probes, 1);
        assert_eq!(m.arm_metrics[1].join_probe, 4);
        let mut sum = ExecMetrics::default();
        for a in &m.arm_metrics {
            sum.merge(a);
        }
        assert_eq!(sum.scanned, m.metrics.scanned);
        assert_eq!(sum.index_probes, m.metrics.index_probes);
        assert_eq!(sum.join_build, m.metrics.join_build);
        assert_eq!(sum.join_probe, m.metrics.join_probe);
    }

    #[test]
    fn nested_arm_scopes_do_not_double_count() {
        let pg = EngineProfile::pg_like();
        let mut m = Meter::new(&pg);
        m.begin_arm();
        m.begin_arm(); // nested (e.g. a JUCQ component's union arm)
        m.on_scan(tk_role(0), 10);
        m.end_arm(1); // closes the OUTER scope — only one delta recorded
        m.end_arm(1); // no open scope left: no-op
        assert_eq!(m.arm_metrics.len(), 1);
        assert_eq!(m.arm_metrics[0].scanned, 10.0);
    }

    #[test]
    fn probes_accumulate() {
        let pg = EngineProfile::pg_like();
        let mut m = Meter::new(&pg);
        m.on_probe(10);
        m.on_probe(0);
        assert_eq!(m.metrics.index_probes, 2);
    }
}
