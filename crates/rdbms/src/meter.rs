//! The per-statement work meter: accumulates [`ExecMetrics`] and tracks
//! how many times each table was scanned (feeding the profile's
//! repeated-scan discount — DB2's buffer-locality behaviour, \[21\]).

use crate::fxhash::FxHashMap;
use crate::metrics::ExecMetrics;
use crate::profile::EngineProfile;

/// Identifies a stored table for rescan accounting: `(kind, id)` where
/// kind 0 = concept, 1 = role, 2 = layout-wide structure (triple table,
/// DPH, RPH).
pub type TableKey = (u8, u32);

pub const TK_TRIPLES: TableKey = (2, 0);
pub const TK_DPH: TableKey = (2, 1);
pub const TK_RPH: TableKey = (2, 2);

pub fn tk_concept(c: u32) -> TableKey {
    (0, c)
}

pub fn tk_role(r: u32) -> TableKey {
    (1, r)
}

/// Statement-scoped meter.
pub struct Meter<'p> {
    pub metrics: ExecMetrics,
    profile: &'p EngineProfile,
    scan_counts: FxHashMap<TableKey, u32>,
}

impl<'p> Meter<'p> {
    pub fn new(profile: &'p EngineProfile) -> Self {
        Meter {
            metrics: ExecMetrics::default(),
            profile,
            scan_counts: FxHashMap::default(),
        }
    }

    /// Record a full (or filtered-full) scan of `table` touching `tuples`
    /// rows.
    pub fn on_scan(&mut self, table: TableKey, tuples: u64) {
        let prior = *self.scan_counts.get(&table).unwrap_or(&0);
        self.metrics.add_scan(tuples, prior, self.profile);
        self.scan_counts.insert(table, prior + 1);
    }

    /// Record an index probe returning `results` tuples.
    pub fn on_probe(&mut self, results: u64) {
        self.metrics.index_probes += 1;
        self.metrics.scanned += results as f64 * 0.1; // result fetch is cheap
    }

    pub fn on_hash_build(&mut self, tuples: u64) {
        self.metrics.hash_build += tuples;
    }

    pub fn on_hash_probe(&mut self, probes: u64) {
        self.metrics.hash_probe += probes;
    }

    pub fn on_materialize(&mut self, tuples: u64) {
        self.metrics.materialized += tuples;
    }

    pub fn profile(&self) -> &EngineProfile {
        self.profile
    }

    /// How many times `table` has been scanned so far in this statement.
    pub fn scans_of(&self, table: TableKey) -> u32 {
        *self.scan_counts.get(&table).unwrap_or(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescan_counting_is_per_table() {
        let db2 = EngineProfile::db2_like();
        let mut m = Meter::new(&db2);
        m.on_scan(tk_role(1), 100);
        m.on_scan(tk_role(2), 100);
        m.on_scan(tk_role(1), 100);
        assert_eq!(m.scans_of(tk_role(1)), 2);
        assert_eq!(m.scans_of(tk_role(2)), 1);
        // First two full cost, third discounted.
        assert!(m.metrics.scanned < 300.0);
        assert!(m.metrics.scanned >= 200.0);
    }

    #[test]
    fn probes_accumulate() {
        let pg = EngineProfile::pg_like();
        let mut m = Meter::new(&pg);
        m.on_probe(10);
        m.on_probe(0);
        assert_eq!(m.metrics.index_probes, 2);
    }
}
