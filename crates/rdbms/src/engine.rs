//! The engine facade: storage + profile + SQL front end + explain.
//!
//! Plays the role of "PostgreSQL / DB2 storing the ABox" in the paper's
//! architecture (Figure 1's right side): it receives a FOL reformulation,
//! translates it to SQL (enforcing the profile's statement-size limit),
//! evaluates it, and exposes a cost estimation (`explain`) that the
//! cost-driven search algorithms can consult.

use std::fmt;
use std::time::Instant;

use obda_dllite::{ABox, Vocabulary};
use obda_query::FolQuery;

use crate::cost_model::CostModel;
use crate::executor::{execute, Row};
use crate::layout::dph::DphStorage;
use crate::layout::simple::SimpleStorage;
use crate::layout::triple::TripleStorage;
use crate::layout::{LayoutKind, Storage};
use crate::meter::Meter;
use crate::metrics::ExecMetrics;
use crate::profile::EngineProfile;
use crate::sql::{SqlGenerator, SqlNames};
use crate::stats::CatalogStats;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The SQL translation exceeds the profile's statement-size limit —
    /// DB2's "statement is too long or too complex" (§6.3).
    StatementTooLong { size: usize, limit: usize },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::StatementTooLong { size, limit } => write!(
                f,
                "The statement is too long or too complex. Current SQL statement size is {size} (limit {limit})"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Result of evaluating one statement.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub rows: Vec<Row>,
    pub metrics: ExecMetrics,
    /// Length of the SQL translation shipped to the engine.
    pub sql_bytes: usize,
    /// Simulated execution time under the engine profile (work units ×
    /// profile scale) — comparable across profiles, unlike wall time.
    pub simulated: std::time::Duration,
}

/// An RDBMS instance: one loaded ABox under one layout and profile.
pub struct Engine {
    storage: Box<dyn Storage>,
    profile: EngineProfile,
    sql: SqlGenerator,
}

impl Engine {
    /// Load an ABox under the given layout and profile.
    pub fn load(abox: &ABox, voc: &Vocabulary, layout: LayoutKind, profile: EngineProfile) -> Self {
        let storage: Box<dyn Storage> = match layout {
            LayoutKind::Simple => Box::new(SimpleStorage::load(abox)),
            LayoutKind::Triple => Box::new(TripleStorage::load(abox)),
            LayoutKind::Dph => Box::new(DphStorage::load(abox)),
        };
        let sql = SqlGenerator::new(SqlNames::from_vocabulary(voc), layout);
        Engine {
            storage,
            profile,
            sql,
        }
    }

    pub fn layout(&self) -> LayoutKind {
        self.storage.layout()
    }

    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    pub fn stats(&self) -> &CatalogStats {
        self.storage.stats()
    }

    /// The SQL translation of a query under this engine's layout.
    pub fn sql_for(&self, q: &FolQuery) -> String {
        self.sql.generate(q)
    }

    /// Evaluate a FOL query end to end: SQL translation (with the
    /// statement-size check), execution, metering.
    pub fn evaluate(&self, q: &FolQuery) -> Result<QueryOutcome, EngineError> {
        let sql = self.sql.generate(q);
        if let Some(limit) = self.profile.max_statement_bytes {
            if sql.len() > limit {
                return Err(EngineError::StatementTooLong {
                    size: sql.len(),
                    limit,
                });
            }
        }
        let start = Instant::now();
        let mut meter = Meter::new(&self.profile);
        let rows = execute(self.storage.as_ref(), q, &mut meter);
        let mut metrics = meter.metrics;
        metrics.wall = start.elapsed();
        let simulated = metrics.simulated(&self.profile);
        Ok(QueryOutcome {
            rows,
            metrics,
            sql_bytes: sql.len(),
            simulated,
        })
    }

    /// The engine's own cost estimation ("explain"). Statements over the
    /// size limit estimate to infinity — they cannot run at all.
    pub fn explain(&self, q: &FolQuery) -> f64 {
        if let Some(limit) = self.profile.max_statement_bytes {
            if self.sql.generate(q).len() > limit {
                return f64::INFINITY;
            }
        }
        self.rdbms_cost_model().estimate_fol(q)
    }

    /// The engine-side cost model (profile quirks included).
    pub fn rdbms_cost_model(&self) -> CostModel {
        CostModel::rdbms(
            self.storage.stats().clone(),
            self.storage.layout(),
            &self.profile,
        )
    }

    /// The external (paper-side) cost model over this engine's statistics.
    pub fn ext_cost_model(&self) -> CostModel {
        CostModel::ext(self.storage.stats().clone(), self.storage.layout())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::testutil::small_abox;
    use obda_dllite::{ConceptId, RoleId};
    use obda_query::{Atom, Term, VarId, CQ, UCQ};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn engine(layout: LayoutKind, profile: EngineProfile) -> Engine {
        let (voc, abox) = small_abox();
        Engine::load(&abox, &voc, layout, profile)
    }

    #[test]
    fn evaluate_returns_rows_and_metrics() {
        let e = engine(LayoutKind::Simple, EngineProfile::pg_like());
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(ConceptId(0), v(0))],
        ));
        let out = e.evaluate(&q).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert!(out.metrics.work_units() > 0.0);
        assert!(out.sql_bytes > 0);
    }

    #[test]
    fn all_layouts_agree_on_answers() {
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(0), v(1)),
            ],
        ));
        let mut results = Vec::new();
        for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
            let e = engine(layout, EngineProfile::pg_like());
            let mut rows = e.evaluate(&q).unwrap().rows;
            rows.sort();
            results.push(rows);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn statement_size_limit_fires() {
        let mut profile = EngineProfile::db2_like();
        profile.max_statement_bytes = Some(200); // tiny limit for the test
        let e = engine(LayoutKind::Dph, profile);
        let u = UCQ::from_cqs(
            vec![v(0)],
            (0..3).map(|i| {
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(i % 2), v(0), v(1))])
            }),
        );
        let err = e.evaluate(&FolQuery::Ucq(u.clone())).unwrap_err();
        match err {
            EngineError::StatementTooLong { size, limit } => {
                assert!(size > limit);
            }
        }
        assert!(e.explain(&FolQuery::Ucq(u)).is_infinite());
    }

    #[test]
    fn pg_profile_has_no_statement_limit() {
        let e = engine(LayoutKind::Dph, EngineProfile::pg_like());
        let u = UCQ::from_cqs(
            vec![v(0)],
            (0..20).map(|i| {
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(i % 2), v(0), v(1))])
            }),
        );
        assert!(e.evaluate(&FolQuery::Ucq(u)).is_ok());
    }

    #[test]
    fn explain_is_finite_for_small_queries() {
        let e = engine(LayoutKind::Simple, EngineProfile::db2_like());
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(ConceptId(0), v(0))],
        ));
        let cost = e.explain(&q);
        assert!(cost.is_finite() && cost > 0.0);
    }

    #[test]
    fn simulated_time_is_positive() {
        let e = engine(LayoutKind::Simple, EngineProfile::db2_like());
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Role(RoleId(0), v(0), v(1))],
        ));
        let out = e.evaluate(&q).unwrap();
        assert!(out.simulated.as_nanos() > 0);
    }
}
