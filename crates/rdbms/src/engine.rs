//! The engine facade: storage + profile + SQL front end + explain.
//!
//! Plays the role of "PostgreSQL / DB2 storing the ABox" in the paper's
//! architecture (Figure 1's right side): it receives a FOL reformulation,
//! translates it to SQL (enforcing the profile's statement-size limit),
//! evaluates it, and exposes a cost estimation (`explain`) that the
//! cost-driven search algorithms can consult.

use std::fmt;
use std::time::Instant;

use obda_dllite::{ABox, AboxDelta, ConceptId, Extents, IndividualId, RoleId, Vocabulary};
use obda_query::FolQuery;

use std::collections::BTreeSet;

use obda_query::{Slot, CQ};

use crate::cost_model::CostModel;
use crate::executor::{execute_parallel, prepare_plans_mode, PreparedPlans, Row};
use crate::layout::dph::DphStorage;
use crate::layout::simple::SimpleStorage;
use crate::layout::triple::TripleStorage;
use crate::layout::{LayoutKind, Storage};
use crate::meter::Meter;
use crate::metrics::ExecMetrics;
use crate::planner::{plan_conjunction_mode, ConjunctionPlan, ExecMode, JoinStrategy};
use crate::profile::EngineProfile;
use crate::sql::{SqlGenerator, SqlNames};
use crate::sqlexec::{Backend, SqlError};
use crate::stats::CatalogStats;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The SQL translation exceeds the profile's statement-size limit —
    /// DB2's "statement is too long or too complex" (§6.3).
    StatementTooLong { size: usize, limit: usize },
    /// The SQL backend failed to parse or execute a statement. For
    /// generator-produced SQL this indicates a generator/executor bug
    /// (the differential harness keeps it unreachable); for raw SQL via
    /// [`Engine::run_sql`] it is an ordinary user error.
    Sql(SqlError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::StatementTooLong { size, limit } => write!(
                f,
                "The statement is too long or too complex. Current SQL statement size is {size} (limit {limit})"
            ),
            EngineError::Sql(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Result of evaluating one statement.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub rows: Vec<Row>,
    pub metrics: ExecMetrics,
    /// Per-union-arm metric deltas (empty for non-union shapes). For a
    /// top-level UCQ/USCQ these sum to `metrics` on every work counter —
    /// the invariant the differential testkit asserts.
    pub arm_metrics: Vec<ExecMetrics>,
    /// Length of the SQL translation shipped to the engine.
    pub sql_bytes: usize,
    /// Simulated execution time under the engine profile (work units ×
    /// profile scale) — comparable across profiles, unlike wall time.
    pub simulated: std::time::Duration,
}

/// Evaluation controls for [`Engine::evaluate_opts`]. The default is the
/// classic path: engine-configured strategy, inline planning, sequential
/// execution, SQL regenerated per call.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalOptions<'a> {
    /// Join-strategy override (`None` = the engine's configured one).
    /// Ignored by the SQL backend, which has no physical-operator choice.
    pub strategy: Option<JoinStrategy>,
    /// Stored plans to replay instead of planning inline. Ignored by the
    /// SQL backend (plans describe the native operators).
    pub prepared: Option<&'a PreparedPlans>,
    /// Worker threads for union-arm / component fan-out (`0` or `1` =
    /// sequential). The SQL backend always runs sequentially.
    pub threads: usize,
    /// Precomputed SQL translation size; skips regenerating the SQL text
    /// (the statement-size check still runs against it).
    pub sql_bytes: Option<usize>,
    /// Precomputed SQL translation text — the serving layer's cached
    /// compilation hands it to the SQL backend so the hot path skips
    /// regenerating the statement. Takes precedence over `sql_bytes`.
    pub sql_text: Option<&'a str>,
    /// Execution-backend override (`None` = the engine's configured
    /// one). The serving layer's wire sessions select their backend per
    /// connection, against one shared engine snapshot.
    pub backend: Option<Backend>,
    /// Execution-mode override (`None` = the engine's configured one).
    /// Ignored when `prepared` is set — stored plans replay the mode
    /// they were planned under — and by the SQL backend.
    pub mode: Option<ExecMode>,
}

/// An RDBMS instance: one loaded ABox under one layout and profile.
///
/// `Engine` is `Send + Sync` (storage is immutable after load; every
/// evaluation carries its own [`Meter`]), so one loaded instance can
/// serve many OS threads concurrently — the property the serving layer's
/// `Arc`-shared snapshots build on.
pub struct Engine {
    storage: Box<dyn Storage>,
    profile: EngineProfile,
    join_strategy: JoinStrategy,
    exec_mode: ExecMode,
    sql: SqlGenerator,
    backend: Backend,
}

/// Compile-time enforcement of the thread-safety contract above.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
};

/// Cloning an engine clones the stored tables and indexes behind the
/// trait object (a table memcpy — no re-hashing, no re-statistics). This
/// is the copy-on-write half of the incremental apply path: the serving
/// layer clones the published engine, [`Engine::apply_delta`]s the clone,
/// and swaps it in as the next snapshot generation.
impl Clone for Engine {
    fn clone(&self) -> Self {
        Engine {
            storage: self.storage.boxed_clone(),
            profile: self.profile.clone(),
            join_strategy: self.join_strategy,
            exec_mode: self.exec_mode,
            sql: self.sql.clone(),
            backend: self.backend,
        }
    }
}

impl Engine {
    /// Load an ABox under the given layout and profile. Physical operator
    /// choice defaults to [`JoinStrategy::CostChosen`].
    pub fn load(abox: &ABox, voc: &Vocabulary, layout: LayoutKind, profile: EngineProfile) -> Self {
        let storage: Box<dyn Storage> = match layout {
            LayoutKind::Simple => Box::new(SimpleStorage::load(abox)),
            LayoutKind::Triple => Box::new(TripleStorage::load(abox)),
            LayoutKind::Dph => Box::new(DphStorage::load(abox)),
        };
        let sql = SqlGenerator::new(SqlNames::from_vocabulary(voc), layout);
        Engine {
            storage,
            profile,
            join_strategy: JoinStrategy::CostChosen,
            exec_mode: ExecMode::default(),
            sql,
            backend: Backend::Native,
        }
    }

    /// Maintain the loaded tables, indexes and statistics under one
    /// **effective** [`AboxDelta`] (the sub-delta `ABox::apply` returns),
    /// in place — the incremental alternative to a full [`Engine::load`].
    /// After the call the engine answers exactly as one loaded from the
    /// mutated ABox (the differential mutation suite proves it per layout
    /// and strategy). SQL naming is unaffected: deltas cannot introduce
    /// concept or role names, and individual ids never appear in SQL.
    pub fn apply_delta(&mut self, delta: &AboxDelta) {
        self.storage.apply_delta(delta);
    }

    /// Pin the physical operator strategy (forced modes drive the
    /// differential harness and the benchmarks).
    pub fn with_join_strategy(mut self, strategy: JoinStrategy) -> Self {
        self.join_strategy = strategy;
        self
    }

    pub fn join_strategy(&self) -> JoinStrategy {
        self.join_strategy
    }

    /// Pin the execution mode of the native pipeline. The default is
    /// [`ExecMode::Batched`] — the vectorized columnar pipeline;
    /// [`ExecMode::Row`] keeps the classic tuple-at-a-time pipeline
    /// (both answer identically with identical meter totals; row mode
    /// exists for the differential harness and benchmarks).
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Select which execution engine answers queries:
    /// [`Backend::Native`] runs the planned operator pipeline directly
    /// over the storage access paths; [`Backend::Sql`] generates the SQL
    /// translation, parses it, and executes it through the embedded
    /// relational evaluator ([`crate::sqlexec`]) — the paper's
    /// "delegate to the RDBMS" path, end to end. The differential
    /// harness proves the two agree on every answer set.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    pub fn backend(&self) -> Backend {
        self.backend
    }

    pub fn layout(&self) -> LayoutKind {
        self.storage.layout()
    }

    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    pub fn stats(&self) -> &CatalogStats {
        self.storage.stats()
    }

    /// Point lookup: does the stored ABox assert `c(a)`? Backs the
    /// transaction layer's read-your-own-writes resolution, where a
    /// working-set retraction only becomes a delta deletion if the fact
    /// exists in the pinned snapshot. Metered against a scratch meter —
    /// probes are not part of any query's cost accounting.
    pub fn probe_concept(&self, c: ConceptId, a: IndividualId) -> bool {
        let mut m = Meter::new(&self.profile);
        self.storage.probe_concept(c, a.0, &mut m)
    }

    /// Point lookup: does the stored ABox assert `r(a, b)`? See
    /// [`Engine::probe_concept`].
    pub fn probe_role(&self, r: RoleId, a: IndividualId, b: IndividualId) -> bool {
        let mut m = Meter::new(&self.profile);
        self.storage.probe_role(r, a.0, b.0, &mut m)
    }

    /// Materialize the stored predicate extents for constraint mining
    /// (`ConstraintSet::mine`). Zero-cardinality predicates get **no**
    /// entry — their absence is exactly what mining reads as emptiness.
    /// Metered against a scratch meter: mining is snapshot bookkeeping,
    /// not part of any query's cost accounting.
    pub fn extract_extents(&self, voc: &Vocabulary) -> Extents {
        let mut m = Meter::new(&self.profile);
        let mut ext = Extents::default();
        for c in voc.concept_ids() {
            if self.stats().concept_card(c.0) == 0 {
                continue;
            }
            let set = ext.concepts.entry(c).or_default();
            self.storage.for_each_concept(c, &mut m, &mut |a| {
                set.insert(a);
            });
        }
        for r in voc.role_ids() {
            if self.stats().role_card(r.0) == 0 {
                continue;
            }
            let set = ext.roles.entry(r).or_default();
            self.storage.for_each_role(r, &mut m, &mut |a, b| {
                set.insert((a, b));
            });
        }
        ext
    }

    /// The SQL translation of a query under this engine's layout.
    pub fn sql_for(&self, q: &FolQuery) -> String {
        self.sql.generate(q)
    }

    /// Evaluate a FOL query end to end: SQL translation (with the
    /// statement-size check), execution, metering — under the engine's
    /// configured join strategy.
    pub fn evaluate(&self, q: &FolQuery) -> Result<QueryOutcome, EngineError> {
        self.evaluate_with(q, self.join_strategy)
    }

    /// Evaluate under an explicit [`JoinStrategy`], regardless of the
    /// engine's configured one.
    pub fn evaluate_with(
        &self,
        q: &FolQuery,
        strategy: JoinStrategy,
    ) -> Result<QueryOutcome, EngineError> {
        self.evaluate_opts(
            q,
            &EvalOptions {
                strategy: Some(strategy),
                ..EvalOptions::default()
            },
        )
    }

    /// Plan every conjunction of `q` against this engine's statistics and
    /// layout under the configured join strategy — the cacheable artifact
    /// the serving layer stores per canonical query key.
    pub fn prepare(&self, q: &FolQuery) -> PreparedPlans {
        self.prepare_with(q, self.join_strategy)
    }

    /// [`Engine::prepare`] under an explicit strategy. Plans are priced
    /// for the engine's configured [`ExecMode`] and replay under it.
    pub fn prepare_with(&self, q: &FolQuery, strategy: JoinStrategy) -> PreparedPlans {
        prepare_plans_mode(
            q,
            self.storage.stats(),
            self.storage.layout(),
            strategy,
            self.exec_mode,
        )
    }

    /// Evaluate replaying [`PreparedPlans`] — skips all planning work.
    pub fn evaluate_prepared(
        &self,
        q: &FolQuery,
        prepared: &PreparedPlans,
    ) -> Result<QueryOutcome, EngineError> {
        self.evaluate_opts(
            q,
            &EvalOptions {
                prepared: Some(prepared),
                ..EvalOptions::default()
            },
        )
    }

    /// Evaluate fanning union arms (or JUCQ/JUSCQ components) across up
    /// to `threads` worker threads; see [`execute_parallel`].
    pub fn evaluate_parallel(
        &self,
        q: &FolQuery,
        threads: usize,
    ) -> Result<QueryOutcome, EngineError> {
        self.evaluate_opts(
            q,
            &EvalOptions {
                threads,
                ..EvalOptions::default()
            },
        )
    }

    /// The full-control evaluation entry point: optional strategy
    /// override, optional stored plans, optional intra-query parallelism,
    /// optional precomputed SQL size (the serving layer's hot path skips
    /// regenerating the SQL text of a cached statement).
    pub fn evaluate_opts(
        &self,
        q: &FolQuery,
        opts: &EvalOptions<'_>,
    ) -> Result<QueryOutcome, EngineError> {
        if opts.backend.unwrap_or(self.backend) == Backend::Sql {
            // The delegation path: ship the SQL translation to the
            // embedded relational evaluator. Strategy, stored plans and
            // thread fan-out are native-executor concepts and do not
            // apply; a cached translation (`opts.sql_text`) skips
            // regeneration. A known-oversized statement (§6.3) rejects
            // from its cached length alone, without regenerating the
            // text it could never ship.
            if let (Some(size), Some(limit)) = (opts.sql_bytes, self.profile.max_statement_bytes) {
                if size > limit {
                    return Err(EngineError::StatementTooLong { size, limit });
                }
            }
            let generated;
            let sql = match opts.sql_text {
                Some(t) => t,
                None => {
                    generated = self.sql.generate(q);
                    &generated
                }
            };
            return self.run_sql_statement(sql, q.head().is_empty());
        }
        let sql_bytes = match opts.sql_bytes {
            Some(n) => n,
            None => self.sql.generate(q).len(),
        };
        if let Some(limit) = self.profile.max_statement_bytes {
            if sql_bytes > limit {
                return Err(EngineError::StatementTooLong {
                    size: sql_bytes,
                    limit,
                });
            }
        }
        let strategy = opts.strategy.unwrap_or(self.join_strategy);
        let mode = opts.mode.unwrap_or(self.exec_mode);
        let start = Instant::now();
        let mut meter = Meter::new(&self.profile);
        let rows = execute_parallel(
            self.storage.as_ref(),
            q,
            &mut meter,
            strategy,
            mode,
            opts.prepared,
            opts.threads,
        );
        let mut metrics = meter.metrics;
        metrics.wall = start.elapsed();
        let simulated = metrics.simulated(&self.profile);
        Ok(QueryOutcome {
            rows,
            metrics,
            arm_metrics: meter.arm_metrics,
            sql_bytes,
            simulated,
        })
    }

    /// Run a raw SQL statement against the loaded layout tables through
    /// the embedded evaluator ([`crate::sqlexec`]), regardless of the
    /// configured backend — the engine doubles as a tiny SQL database
    /// over the ABox. The profile's statement-size limit applies; rows
    /// containing `NULL` are dropped (see the `sqlexec` module docs).
    pub fn run_sql(&self, sql: &str) -> Result<QueryOutcome, EngineError> {
        self.run_sql_statement(sql, false)
    }

    /// Shared SQL execution path. `boolean_head` maps the generated
    /// boolean-query marker (`SELECT DISTINCT 1 AS t`) back to the
    /// native dialect's empty-tuple answer.
    fn run_sql_statement(
        &self,
        sql: &str,
        boolean_head: bool,
    ) -> Result<QueryOutcome, EngineError> {
        let sql_bytes = sql.len();
        if let Some(limit) = self.profile.max_statement_bytes {
            if sql_bytes > limit {
                return Err(EngineError::StatementTooLong {
                    size: sql_bytes,
                    limit,
                });
            }
        }
        let start = Instant::now();
        let mut meter = Meter::new(&self.profile);
        let mut rows =
            crate::sqlexec::run(sql, self.storage.as_ref(), self.sql.names(), &mut meter)
                .map_err(EngineError::Sql)?;
        if boolean_head {
            rows = if rows.is_empty() {
                Vec::new()
            } else {
                vec![Vec::new()]
            };
            meter.metrics.output = rows.len() as u64;
        }
        let mut metrics = meter.metrics;
        metrics.wall = start.elapsed();
        let simulated = metrics.simulated(&self.profile);
        Ok(QueryOutcome {
            rows,
            metrics,
            arm_metrics: meter.arm_metrics,
            sql_bytes,
            simulated,
        })
    }

    /// The engine's own cost estimation ("explain"). Statements over the
    /// size limit estimate to infinity — they cannot run at all.
    pub fn explain(&self, q: &FolQuery) -> f64 {
        if let Some(limit) = self.profile.max_statement_bytes {
            if self.sql.generate(q).len() > limit {
                return f64::INFINITY;
            }
        }
        self.rdbms_cost_model().estimate_fol(q)
    }

    /// The structured explain: per conjunction (CQ, SCQ, union arm, JUCQ
    /// component arm), the slot order and the physical operator chosen
    /// for each step, with per-step cost and row estimates — the same
    /// [`crate::planner::plan_conjunction`] the executor will follow, so the printed plan
    /// is the plan that runs.
    pub fn explain_plan(&self, q: &FolQuery) -> ExplainPlan {
        let mut arms = Vec::new();
        let mut add_cq = |label: String, cq: &CQ| {
            let slots: Vec<Slot> = cq.atoms().iter().map(|a| Slot::single(*a)).collect();
            arms.push(self.arm_plan(label, &slots));
        };
        match q {
            FolQuery::Cq(cq) => add_cq("cq".into(), cq),
            FolQuery::Ucq(ucq) => {
                for (i, cq) in ucq.cqs().iter().enumerate() {
                    add_cq(format!("arm{i}"), cq);
                }
            }
            FolQuery::Scq(scq) => arms.push(self.arm_plan("scq".into(), scq.slots())),
            FolQuery::Uscq(uscq) => {
                for (i, scq) in uscq.scqs().iter().enumerate() {
                    arms.push(self.arm_plan(format!("arm{i}"), scq.slots()));
                }
            }
            FolQuery::Jucq(jucq) => {
                for (ci, comp) in jucq.components().iter().enumerate() {
                    for (i, cq) in comp.cqs().iter().enumerate() {
                        add_cq(format!("c{ci}.arm{i}"), cq);
                    }
                }
            }
            FolQuery::Juscq(juscq) => {
                for (ci, comp) in juscq.components().iter().enumerate() {
                    for (i, scq) in comp.scqs().iter().enumerate() {
                        arms.push(self.arm_plan(format!("c{ci}.arm{i}"), scq.slots()));
                    }
                }
            }
        }
        ExplainPlan {
            strategy: self.join_strategy,
            total_cost: self.explain(q),
            arms,
        }
    }

    fn arm_plan(&self, label: String, slots: &[Slot]) -> ArmPlan {
        let plan = plan_conjunction_mode(
            slots,
            &BTreeSet::new(),
            self.storage.stats(),
            self.storage.layout(),
            self.join_strategy,
            self.exec_mode,
        );
        ArmPlan { label, plan }
    }

    /// The engine-side cost model (profile quirks included), pricing
    /// under the engine's join strategy.
    pub fn rdbms_cost_model(&self) -> CostModel {
        CostModel::rdbms(
            self.storage.stats().clone(),
            self.storage.layout(),
            &self.profile,
        )
        .with_strategy(self.join_strategy)
        .with_mode(self.exec_mode)
    }

    /// The external (paper-side) cost model over this engine's statistics.
    pub fn ext_cost_model(&self) -> CostModel {
        CostModel::ext(self.storage.stats().clone(), self.storage.layout())
            .with_strategy(self.join_strategy)
            .with_mode(self.exec_mode)
    }
}

/// One conjunction's plan inside an [`ExplainPlan`].
#[derive(Debug, Clone)]
pub struct ArmPlan {
    pub label: String,
    pub plan: ConjunctionPlan,
}

/// Structured explain output: the operator-annotated plan of every
/// conjunction in the statement.
#[derive(Debug, Clone)]
pub struct ExplainPlan {
    pub strategy: JoinStrategy,
    /// The scalar `explain` estimate for the whole statement (profile
    /// quirks included) — what cost-driven search compares.
    pub total_cost: f64,
    pub arms: Vec<ArmPlan>,
}

impl fmt::Display for ExplainPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "strategy={} cost={:.1}",
            self.strategy.name(),
            self.total_cost
        )?;
        for arm in &self.arms {
            write!(f, "{}:", arm.label)?;
            for step in &arm.plan.steps {
                write!(
                    f,
                    " [slot{} {} cost={:.1} rows={:.1}]",
                    step.slot,
                    step.op.name(),
                    step.est_cost,
                    step.est_rows
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::testutil::small_abox;
    use obda_dllite::{ConceptId, RoleId};
    use obda_query::{Atom, Term, VarId, CQ, UCQ};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn engine(layout: LayoutKind, profile: EngineProfile) -> Engine {
        let (voc, abox) = small_abox();
        Engine::load(&abox, &voc, layout, profile)
    }

    #[test]
    fn evaluate_returns_rows_and_metrics() {
        let e = engine(LayoutKind::Simple, EngineProfile::pg_like());
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(ConceptId(0), v(0))],
        ));
        let out = e.evaluate(&q).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert!(out.metrics.work_units() > 0.0);
        assert!(out.sql_bytes > 0);
    }

    #[test]
    fn all_layouts_agree_on_answers() {
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(0), v(1)),
            ],
        ));
        let mut results = Vec::new();
        for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
            let e = engine(layout, EngineProfile::pg_like());
            let mut rows = e.evaluate(&q).unwrap().rows;
            rows.sort();
            results.push(rows);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn statement_size_limit_fires() {
        let mut profile = EngineProfile::db2_like();
        profile.max_statement_bytes = Some(200); // tiny limit for the test
        let e = engine(LayoutKind::Dph, profile);
        let u = UCQ::from_cqs(
            vec![v(0)],
            (0..3).map(|i| {
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(i % 2), v(0), v(1))])
            }),
        );
        let err = e.evaluate(&FolQuery::Ucq(u.clone())).unwrap_err();
        match err {
            EngineError::StatementTooLong { size, limit } => {
                assert!(size > limit);
            }
            other => panic!("expected StatementTooLong, got {other}"),
        }
        assert!(e.explain(&FolQuery::Ucq(u)).is_infinite());
    }

    #[test]
    fn pg_profile_has_no_statement_limit() {
        let e = engine(LayoutKind::Dph, EngineProfile::pg_like());
        let u = UCQ::from_cqs(
            vec![v(0)],
            (0..20).map(|i| {
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(RoleId(i % 2), v(0), v(1))])
            }),
        );
        assert!(e.evaluate(&FolQuery::Ucq(u)).is_ok());
    }

    #[test]
    fn explain_is_finite_for_small_queries() {
        let e = engine(LayoutKind::Simple, EngineProfile::db2_like());
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(ConceptId(0), v(0))],
        ));
        let cost = e.explain(&q);
        assert!(cost.is_finite() && cost > 0.0);
    }

    #[test]
    fn evaluate_with_agrees_across_strategies_and_explain_shows_ops() {
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(0), v(1)),
                Atom::Concept(ConceptId(1), v(1)),
            ],
        ));
        let e = engine(LayoutKind::Simple, EngineProfile::pg_like());
        let mut base: Option<Vec<crate::executor::Row>> = None;
        for strategy in [
            JoinStrategy::ForcedInl,
            JoinStrategy::ForcedHash,
            JoinStrategy::CostChosen,
        ] {
            let mut rows = e.evaluate_with(&q, strategy).unwrap().rows;
            rows.sort();
            match &base {
                None => base = Some(rows),
                Some(b) => assert_eq!(b, &rows, "{strategy:?}"),
            }
        }
        // Explain output names the strategy and one operator per step.
        let (voc, abox) = small_abox();
        let forced = Engine::load(&abox, &voc, LayoutKind::Simple, EngineProfile::pg_like())
            .with_join_strategy(JoinStrategy::ForcedHash);
        let plan = forced.explain_plan(&q);
        assert_eq!(plan.strategy, JoinStrategy::ForcedHash);
        assert_eq!(plan.arms.len(), 1);
        assert_eq!(plan.arms[0].plan.steps.len(), 3);
        let text = plan.to_string();
        assert!(text.contains("strategy=forced-hash"), "{text}");
        assert!(text.contains("hash"), "{text}");
        // The scalar explain prices the same strategy the engine runs.
        assert!(forced.explain(&q).is_finite());
    }

    #[test]
    fn explain_plan_covers_union_arms() {
        let e = engine(LayoutKind::Simple, EngineProfile::pg_like());
        let u = UCQ::from_cqs(
            vec![v(0)],
            (0..3).map(|i| {
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(i), v(0))])
            }),
        );
        let plan = e.explain_plan(&FolQuery::Ucq(u));
        assert_eq!(plan.arms.len(), 3);
        assert!(plan.arms.iter().all(|a| a.plan.steps.len() == 1));
    }

    #[test]
    fn outcome_reports_arm_metrics_for_unions() {
        let e = engine(LayoutKind::Simple, EngineProfile::pg_like());
        let u = UCQ::from_cqs(
            vec![v(0)],
            (0..2).map(|i| {
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(i), v(0))])
            }),
        );
        let out = e.evaluate(&FolQuery::Ucq(u)).unwrap();
        assert_eq!(out.arm_metrics.len(), 2);
        let scanned: f64 = out.arm_metrics.iter().map(|m| m.scanned).sum();
        assert_eq!(scanned, out.metrics.scanned);
    }

    #[test]
    fn cloned_engine_applies_deltas_without_disturbing_the_original() {
        let (voc, abox) = small_abox();
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(ConceptId(0), v(0))],
        ));
        for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
            let original = Engine::load(&abox, &voc, layout, EngineProfile::pg_like());
            let before = original.evaluate(&q).unwrap().rows.len();

            let mut scratch = abox.clone();
            let delta = obda_dllite::AboxDelta::new()
                .insert_concept(ConceptId(0), obda_dllite::IndividualId(3))
                .delete_concept(ConceptId(0), obda_dllite::IndividualId(0));
            let eff = scratch.apply(&delta);

            let mut next = original.clone();
            next.apply_delta(&eff);

            // The clone sees the mutation; the original is untouched
            // (snapshot isolation at the engine level).
            assert_eq!(original.evaluate(&q).unwrap().rows.len(), before);
            let mut got = next.evaluate(&q).unwrap().rows;
            got.sort();
            let rebuilt = Engine::load(&scratch, &voc, layout, EngineProfile::pg_like());
            let mut want = rebuilt.evaluate(&q).unwrap().rows;
            want.sort();
            assert_eq!(got, want, "{layout:?}");
            assert_eq!(next.stats(), rebuilt.stats(), "{layout:?} stats");
        }
    }

    #[test]
    fn sql_backend_agrees_with_native_on_every_layout() {
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(0), v(1)),
            ],
        ));
        for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
            let native = engine(layout, EngineProfile::pg_like());
            let sql = native.clone().with_backend(crate::sqlexec::Backend::Sql);
            assert_eq!(sql.backend(), crate::sqlexec::Backend::Sql);
            let mut a = native.evaluate(&q).unwrap().rows;
            let out = sql.evaluate(&q).unwrap();
            let mut b = out.rows;
            a.sort();
            b.sort();
            assert_eq!(a, b, "{layout:?}");
            assert!(out.sql_bytes > 0);
            assert!(
                out.metrics.work_units() > 0.0,
                "{layout:?}: SQL work metered"
            );
        }
    }

    #[test]
    fn sql_backend_maps_boolean_queries_to_the_empty_tuple() {
        let e = engine(LayoutKind::Simple, EngineProfile::pg_like());
        let sql = e.clone().with_backend(crate::sqlexec::Backend::Sql);
        let exists = FolQuery::Cq(CQ::with_var_head(
            vec![],
            vec![Atom::Concept(ConceptId(0), v(0))],
        ));
        assert_eq!(e.evaluate(&exists).unwrap().rows, vec![Vec::<u32>::new()]);
        assert_eq!(sql.evaluate(&exists).unwrap().rows, vec![Vec::<u32>::new()]);
        // s = {(1,0)} has no reflexive pair: the boolean answer is empty.
        let empty = FolQuery::Cq(CQ::with_var_head(
            vec![],
            vec![Atom::Role(RoleId(1), v(0), v(0))],
        ));
        assert!(e.evaluate(&empty).unwrap().rows.is_empty());
        assert!(sql.evaluate(&empty).unwrap().rows.is_empty());
    }

    #[test]
    fn ground_disjunctive_slots_are_existence_checks_on_both_backends() {
        use obda_query::{Slot, SCQ};
        // A fully-ground slot: A(i2) ∨ B(i2). i2 ∈ B, so the disjunction
        // holds and the other slot's rows pass through; flipping to a
        // non-member (i3) empties the answer.
        let member = Term::Const(obda_dllite::IndividualId(2));
        let non_member = Term::Const(obda_dllite::IndividualId(3));
        for (ground, expect_rows) in [(member, 2usize), (non_member, 0usize)] {
            let slot = Slot::new(vec![
                Atom::Concept(ConceptId(0), ground),
                Atom::Concept(ConceptId(1), ground),
            ]);
            let q = FolQuery::Scq(SCQ::new(
                vec![v(0)],
                vec![Slot::single(Atom::Concept(ConceptId(0), v(0))), slot],
            ));
            for layout in [LayoutKind::Simple, LayoutKind::Triple, LayoutKind::Dph] {
                let native = engine(layout, EngineProfile::pg_like());
                let sql = native.clone().with_backend(crate::sqlexec::Backend::Sql);
                let mut a = native.evaluate(&q).unwrap().rows;
                let mut b = sql.evaluate(&q).unwrap_or_else(|e| {
                    panic!(
                        "{layout:?}: ground slot SQL failed: {e}\n{}",
                        sql.sql_for(&q)
                    )
                });
                a.sort();
                b.rows.sort();
                assert_eq!(a, b.rows, "{layout:?}");
                assert_eq!(a.len(), expect_rows, "{layout:?}");
            }
        }
    }

    #[test]
    fn run_sql_answers_raw_statements() {
        let e = engine(LayoutKind::Simple, EngineProfile::pg_like());
        let mut rows = e
            .run_sql("SELECT DISTINCT t0.s AS h0 FROM r_r t0 WHERE t0.o = 2")
            .unwrap()
            .rows;
        rows.sort();
        assert_eq!(rows, vec![vec![0], vec![3]]);
        // Errors surface as EngineError::Sql.
        match e.run_sql("SELECT nope FROM nowhere") {
            Err(EngineError::Sql(_)) => {}
            other => panic!("expected a SQL error, got {other:?}"),
        }
    }

    #[test]
    fn sql_backend_enforces_the_statement_limit() {
        let mut profile = EngineProfile::db2_like();
        profile.max_statement_bytes = Some(200);
        let e = engine(LayoutKind::Dph, profile).with_backend(crate::sqlexec::Backend::Sql);
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Role(RoleId(0), v(0), v(1))],
        ));
        match e.evaluate(&q) {
            Err(EngineError::StatementTooLong { .. }) => {}
            other => panic!("expected StatementTooLong, got {other:?}"),
        }
    }

    #[test]
    fn simulated_time_is_positive() {
        let e = engine(LayoutKind::Simple, EngineProfile::db2_like());
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Role(RoleId(0), v(0), v(1))],
        ));
        let out = e.evaluate(&q).unwrap();
        assert!(out.simulated.as_nanos() > 0);
    }
}
