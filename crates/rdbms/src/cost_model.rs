//! Cost estimation — the two `ε` functions of the evaluation (§6.1).
//!
//! Both estimators share the same textbook machinery (uniformity and
//! independence assumptions, linear-time hash joins, index-access
//! comparison — exactly the greedy plans the executor runs). They differ
//! in the engine quirks they model:
//!
//! * [`CostModel::rdbms`] mimics the engine's own `explain`: it honours
//!   the profile's **union collapse limit** (Postgres-like profiles stop
//!   estimating per-arm cardinalities beyond N union arms and fall back to
//!   default selectivities — the §6.3 explanation for GDL/RDBMS's bad
//!   picks on Q9–Q11) and the **repeated-scan discount** (DB2's \[21\]);
//! * [`CostModel::ext`] is the paper's external Java-side model: the same
//!   formulas applied **uniformly to queries of all sizes**, with no
//!   engine quirks.

use std::collections::BTreeSet;

use obda_query::{Atom, FolQuery, Slot, Term, VarId, CQ, JUCQ, JUSCQ, SCQ, UCQ, USCQ};

use crate::fxhash::FxHashMap;
use crate::layout::LayoutKind;
use crate::planner::{
    plan_conjunction_mode, scan_cost, slot_estimate, ExecMode, JoinStrategy, PhysicalOp,
    HASH_BUILD_WEIGHT, HASH_PROBE_WEIGHT, INDEX_PROBE_WEIGHT, MATERIALIZE_WEIGHT,
};
use crate::profile::EngineProfile;
use crate::stats::CatalogStats;

/// A configured cost model over one catalog.
pub struct CostModel {
    stats: CatalogStats,
    layout: LayoutKind,
    /// Which physical operators the priced plans may use. Must match the
    /// executor's strategy for "explain prices the plan that runs".
    strategy: JoinStrategy,
    /// Which pipeline the priced plans run under. Batched mode records
    /// `vhash` operators in place of `hash`; the *estimates* are mode-
    /// invariant (the vectorized pipeline does the same logical work —
    /// the meters prove it), so pricing never drifts between modes.
    mode: ExecMode,
    /// Union arms beyond which default selectivities kick in (engine
    /// shortcut; `None` = always estimate properly).
    collapse_limit: Option<usize>,
    /// Cost multiplier for repeat scans of a table within a statement.
    rescan_discount: f64,
    name: String,
}

impl CostModel {
    /// The engine's own estimator under `profile` ("explain").
    pub fn rdbms(stats: CatalogStats, layout: LayoutKind, profile: &EngineProfile) -> Self {
        CostModel {
            stats,
            layout,
            strategy: JoinStrategy::CostChosen,
            mode: ExecMode::default(),
            collapse_limit: profile.union_collapse_limit,
            rescan_discount: profile.rescan_discount,
            name: format!("rdbms/{}", profile.name()),
        }
    }

    /// The paper's external estimator: uniform treatment of all sizes.
    pub fn ext(stats: CatalogStats, layout: LayoutKind) -> Self {
        CostModel {
            stats,
            layout,
            strategy: JoinStrategy::CostChosen,
            mode: ExecMode::default(),
            collapse_limit: None,
            rescan_discount: 1.0,
            name: "ext".to_owned(),
        }
    }

    /// Price plans under an explicit operator strategy (the engine passes
    /// its own, so forced modes explain what they run).
    pub fn with_strategy(mut self, strategy: JoinStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Price plans for an explicit [`ExecMode`] (the engine passes its
    /// own, so explain describes the pipeline that actually runs).
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    pub fn model_name(&self) -> &str {
        &self.name
    }

    /// Estimate the evaluation cost of a FOL query (work units).
    pub fn estimate_fol(&self, q: &FolQuery) -> f64 {
        let mut scans = ScanTracker::default();
        match q {
            FolQuery::Cq(cq) => self.est_cq(cq, &mut scans, false).cost,
            FolQuery::Ucq(ucq) => self.est_ucq(ucq, &mut scans).cost,
            FolQuery::Scq(scq) => self.est_scq(scq, &mut scans, false).cost,
            FolQuery::Uscq(uscq) => self.est_uscq(uscq, &mut scans).cost,
            FolQuery::Jucq(jucq) => self.est_jucq(jucq, &mut scans),
            FolQuery::Juscq(juscq) => self.est_juscq(juscq, &mut scans),
        }
    }

    /// Estimated output cardinality of a FOL query.
    pub fn cardinality_fol(&self, q: &FolQuery) -> f64 {
        let mut scans = ScanTracker::default();
        match q {
            FolQuery::Cq(cq) => self.est_cq(cq, &mut scans, false).card,
            FolQuery::Ucq(ucq) => self.est_ucq(ucq, &mut scans).card,
            FolQuery::Scq(scq) => self.est_scq(scq, &mut scans, false).card,
            FolQuery::Uscq(uscq) => self.est_uscq(uscq, &mut scans).card,
            FolQuery::Jucq(jucq) => {
                let comps: Vec<Estimate> = jucq
                    .components()
                    .iter()
                    .map(|c| self.est_ucq(c, &mut scans))
                    .collect();
                self.join_card(&comps, jucq)
            }
            FolQuery::Juscq(_) => f64::NAN, // not needed currently
        }
    }

    fn est_cq(&self, cq: &CQ, scans: &mut ScanTracker, degraded: bool) -> Estimate {
        let slots: Vec<Slot> = cq.atoms().iter().map(|a| Slot::single(*a)).collect();
        self.est_conjunction(&slots, cq.head(), scans, degraded)
    }

    fn est_scq(&self, scq: &SCQ, scans: &mut ScanTracker, degraded: bool) -> Estimate {
        self.est_conjunction(scq.slots(), scq.head(), scans, degraded)
    }

    fn est_ucq(&self, ucq: &UCQ, scans: &mut ScanTracker) -> Estimate {
        let degraded = self.collapse_limit.is_some_and(|limit| ucq.len() > limit);
        let mut total = Estimate::default();
        for cq in ucq.cqs() {
            let e = self.est_cq(cq, scans, degraded);
            total.cost += e.cost + HASH_BUILD_WEIGHT * e.card; // union dedup
            total.card += e.card;
        }
        total
    }

    fn est_uscq(&self, uscq: &USCQ, scans: &mut ScanTracker) -> Estimate {
        let degraded = self
            .collapse_limit
            .is_some_and(|limit| uscq.equivalent_cq_count() > limit);
        let mut total = Estimate::default();
        for scq in uscq.scqs() {
            let e = self.est_scq(scq, scans, degraded);
            total.cost += e.cost + HASH_BUILD_WEIGHT * e.card;
            total.card += e.card;
        }
        total
    }

    fn est_jucq(&self, jucq: &JUCQ, scans: &mut ScanTracker) -> f64 {
        let comps: Vec<Estimate> = jucq
            .components()
            .iter()
            .map(|c| self.est_ucq(c, scans))
            .collect();
        let mut cost: f64 = comps
            .iter()
            .map(|e| e.cost + MATERIALIZE_WEIGHT * e.card)
            .sum();
        // Hash-join chain, smallest first: build + probe each relation.
        let mut cards: Vec<f64> = comps.iter().map(|e| e.card).collect();
        cards.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mut acc = 1.0f64;
        for c in cards {
            cost += HASH_BUILD_WEIGHT * c + HASH_PROBE_WEIGHT * acc;
            // Join cardinality: assume joins are selective — the
            // accumulated result cannot exceed either side by much; use
            // the geometric-mean heuristic bounded by the smaller side.
            acc = (acc * c).sqrt().min(acc.max(c));
        }
        cost + self.join_card(&comps, jucq)
    }

    fn est_juscq(&self, juscq: &JUSCQ, scans: &mut ScanTracker) -> f64 {
        let comps: Vec<Estimate> = juscq
            .components()
            .iter()
            .map(|c| self.est_uscq(c, scans))
            .collect();
        let mut cost: f64 = comps
            .iter()
            .map(|e| e.cost + MATERIALIZE_WEIGHT * e.card)
            .sum();
        let mut acc = 1.0f64;
        for e in &comps {
            cost += HASH_BUILD_WEIGHT * e.card + HASH_PROBE_WEIGHT * acc;
            acc = (acc * e.card).sqrt().min(acc.max(e.card));
        }
        cost
    }

    /// Rough join-output cardinality of a JUCQ (for the final DISTINCT).
    fn join_card(&self, comps: &[Estimate], _jucq: &JUCQ) -> f64 {
        comps
            .iter()
            .map(|e| e.card)
            .fold(f64::INFINITY, f64::min)
            .max(0.0)
    }

    /// Cost a conjunction the way the executor runs it: the shared
    /// [`plan_conjunction`] fixes slot order and per-step physical
    /// operators; this prices each step, adding the model's engine quirks
    /// (rescan discounts, degraded flat estimates).
    fn est_conjunction(
        &self,
        slots: &[Slot],
        _head: &[Term],
        scans: &mut ScanTracker,
        degraded: bool,
    ) -> Estimate {
        if slots.is_empty() {
            return Estimate {
                cost: 0.0,
                card: 1.0,
            };
        }
        let plan = plan_conjunction_mode(
            slots,
            &BTreeSet::new(),
            &self.stats,
            self.layout,
            self.strategy,
            self.mode,
        );
        let mut bound: BTreeSet<VarId> = BTreeSet::new();
        let mut cost = 0.0;
        let mut card = 1.0f64;
        for step in &plan.steps {
            let slot = &slots[step.slot];
            let (access, mult) = if degraded {
                // Default-selectivity fallback: the engine shortcut.
                // Every slot looks like a 100-row access with fan-out 1.
                (100.0, 1.0)
            } else {
                slot_estimate(slot, &bound, &self.stats, self.layout)
            };
            match step.op {
                // The engine shortcut never reasons about operators — a
                // degraded estimate prices every step as INL. The batched
                // spelling prices identically to the row one: same scans,
                // same build tuples, same per-row probes.
                PhysicalOp::HashJoin { build_rows }
                | PhysicalOp::BatchHashJoin { build_rows, .. }
                    if !degraded =>
                {
                    // Build: scan each extension once (rescan-discounted)
                    // and insert every tuple; probe once per current row.
                    let mut build_scan = 0.0;
                    for atom in slot.atoms() {
                        let (key, atom_card) = match atom {
                            Atom::Concept(c, _) => ((0u8, c.0), self.stats.concept_card(c.0)),
                            Atom::Role(r, _, _) => ((1u8, r.0), self.stats.role_card(r.0)),
                        };
                        let factor = if scans.count(key) > 0 {
                            self.rescan_discount
                        } else {
                            1.0
                        };
                        build_scan +=
                            scan_cost(atom_card as f64, &self.stats, self.layout) * factor;
                        scans.bump(key);
                    }
                    cost += build_scan + HASH_BUILD_WEIGHT * build_rows + HASH_PROBE_WEIGHT * card;
                    card *= mult.max(1e-9);
                }
                _ if step.scan_stage => {
                    // Scans happen once per conjunction (prescan); apply
                    // the rescan discount per table.
                    let mut scan_work = 0.0;
                    for atom in slot.atoms() {
                        let key = match atom {
                            Atom::Concept(c, _) => (0u8, c.0),
                            Atom::Role(r, _, _) => (1u8, r.0),
                        };
                        let prior = scans.count(key);
                        let factor = if prior > 0 { self.rescan_discount } else { 1.0 };
                        scan_work += access / slot.len() as f64 * factor;
                        scans.bump(key);
                    }
                    cost += scan_work;
                    card *= mult.max(1e-9);
                }
                _ => {
                    // Index-nested-loop: one probe per atom per row.
                    cost += card * (INDEX_PROBE_WEIGHT * slot.len() as f64);
                    card *= mult.max(1e-9);
                }
            }
            for atom in slot.atoms() {
                bound.extend(atom.vars());
            }
        }
        Estimate { cost, card }
    }
}

/// Accumulated (cost, cardinality) estimate.
#[derive(Debug, Clone, Copy, Default)]
struct Estimate {
    cost: f64,
    card: f64,
}

/// Tracks table scan counts across a whole statement (for the rescan
/// discount, shared across union arms like the executor's meter).
#[derive(Default)]
struct ScanTracker {
    counts: FxHashMap<(u8, u32), u32>,
}

impl ScanTracker {
    fn count(&self, key: (u8, u32)) -> u32 {
        *self.counts.get(&key).unwrap_or(&0)
    }

    fn bump(&mut self, key: (u8, u32)) {
        *self.counts.entry(key).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::testutil::small_abox;
    use obda_dllite::{ConceptId, RoleId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn stats() -> CatalogStats {
        let (_, abox) = small_abox();
        CatalogStats::from_abox(&abox)
    }

    #[test]
    fn more_arms_cost_more() {
        let model = CostModel::ext(stats(), LayoutKind::Simple);
        let one = FolQuery::Ucq(UCQ::single(CQ::with_var_head(
            vec![VarId(0)],
            vec![obda_query::Atom::Concept(ConceptId(0), v(0))],
        )));
        let two = FolQuery::Ucq(UCQ::from_cqs(
            vec![v(0)],
            [
                CQ::with_var_head(
                    vec![VarId(0)],
                    vec![obda_query::Atom::Concept(ConceptId(0), v(0))],
                ),
                CQ::with_var_head(
                    vec![VarId(0)],
                    vec![obda_query::Atom::Concept(ConceptId(1), v(0))],
                ),
            ],
        ));
        assert!(model.estimate_fol(&one) < model.estimate_fol(&two));
    }

    #[test]
    fn collapse_limit_degrades_estimation() {
        let mut pg = EngineProfile::pg_like();
        pg.union_collapse_limit = Some(2);
        let rdbms = CostModel::rdbms(stats(), LayoutKind::Simple, &pg);
        let ext = CostModel::ext(stats(), LayoutKind::Simple);
        // Three distinct arms over the same large role table.
        let arms: Vec<CQ> = (0..3)
            .map(|i| {
                CQ::with_var_head(
                    vec![VarId(0)],
                    vec![
                        obda_query::Atom::Role(RoleId(0), v(0), v(1)),
                        obda_query::Atom::Concept(ConceptId(i), v(0)),
                    ],
                )
            })
            .collect();
        let ucq = FolQuery::Ucq(UCQ::from_cqs(vec![v(0)], arms));
        // Degraded estimation gives a *different* (flat-rate) number.
        assert_ne!(rdbms.estimate_fol(&ucq), ext.estimate_fol(&ucq));
    }

    #[test]
    fn rescan_discount_lowers_repeated_scans() {
        let db2 = EngineProfile::db2_like();
        let with = CostModel::rdbms(stats(), LayoutKind::Simple, &db2);
        let without = CostModel::ext(stats(), LayoutKind::Simple);
        // Two arms scanning the same role table.
        let arm = |c: u32| {
            CQ::with_var_head(
                vec![VarId(0)],
                vec![
                    obda_query::Atom::Role(RoleId(0), v(0), v(1)),
                    obda_query::Atom::Concept(ConceptId(c), v(1)),
                ],
            )
        };
        let ucq = FolQuery::Ucq(UCQ::from_cqs(vec![v(0)], [arm(0), arm(1)]));
        assert!(with.estimate_fol(&ucq) <= without.estimate_fol(&ucq));
    }

    #[test]
    fn dph_layout_penalizes_scans() {
        let simple = CostModel::ext(stats(), LayoutKind::Simple);
        let dph = CostModel::ext(stats(), LayoutKind::Dph);
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0)],
            vec![obda_query::Atom::Role(RoleId(1), v(0), v(1))], // tiny table s
        ));
        assert!(dph.estimate_fol(&q) > simple.estimate_fol(&q));
    }

    #[test]
    fn jucq_estimate_includes_materialization() {
        let model = CostModel::ext(stats(), LayoutKind::Simple);
        let comp = UCQ::single(CQ::with_var_head(
            vec![VarId(0)],
            vec![obda_query::Atom::Concept(ConceptId(0), v(0))],
        ));
        let jucq = FolQuery::Jucq(JUCQ::new(vec![v(0)], vec![comp.clone(), comp.clone()]));
        let flat = FolQuery::Ucq(comp);
        assert!(model.estimate_fol(&jucq) > model.estimate_fol(&flat));
    }

    #[test]
    fn cost_chosen_estimate_never_exceeds_forced_inl() {
        use obda_dllite::{ABox, Vocabulary};
        // Chain data where a hash join pays off (cf. the planner tests):
        // C(x) ∧ r1(x, y) ∧ r2(y, z) with |r1| = 100 × 100, |r2| = 1 000.
        let mut voc = Vocabulary::new();
        let c = voc.concept("C");
        let r1 = voc.role("r1");
        let r2 = voc.role("r2");
        let mut abox = ABox::new();
        let xs: Vec<_> = (0..100).map(|i| voc.individual(&format!("x{i}"))).collect();
        let ys: Vec<_> = (0..100).map(|i| voc.individual(&format!("y{i}"))).collect();
        for &x in &xs {
            abox.assert_concept(c, x);
            for &y in &ys {
                abox.assert_role(r1, x, y);
            }
        }
        for (yi, &y) in ys.iter().enumerate() {
            for k in 0..10 {
                let z = voc.individual(&format!("z{yi}_{k}"));
                abox.assert_role(r2, y, z);
            }
        }
        let st = CatalogStats::from_abox(&abox);
        let q = FolQuery::Cq(CQ::with_var_head(
            vec![VarId(0)],
            vec![
                obda_query::Atom::Concept(c, v(0)),
                obda_query::Atom::Role(r1, v(0), v(1)),
                obda_query::Atom::Role(r2, v(1), v(2)),
            ],
        ));
        let chosen = CostModel::ext(st.clone(), LayoutKind::Simple).estimate_fol(&q);
        let inl = CostModel::ext(st.clone(), LayoutKind::Simple)
            .with_strategy(JoinStrategy::ForcedInl)
            .estimate_fol(&q);
        let hash = CostModel::ext(st, LayoutKind::Simple)
            .with_strategy(JoinStrategy::ForcedHash)
            .estimate_fol(&q);
        assert!(chosen <= inl, "chosen {chosen} vs inl {inl}");
        assert!(chosen <= hash, "chosen {chosen} vs hash {hash}");
        // Cost-chosen must strictly beat BOTH pure modes here: the r1
        // expansion favours INL (200 work units vs hashing 10 000 build
        // tuples), the r2 expansion favours hash (≈ 12 500 vs 20 000
        // per-row probes) — only a per-step mix wins overall.
        assert!(chosen < inl, "mix must strictly beat pure INL");
        assert!(chosen < hash, "mix must strictly beat pure hash");
    }

    #[test]
    fn names_distinguish_models() {
        let pg = EngineProfile::pg_like();
        assert_eq!(
            CostModel::rdbms(stats(), LayoutKind::Simple, &pg).model_name(),
            "rdbms/pg-like"
        );
        assert_eq!(
            CostModel::ext(stats(), LayoutKind::Simple).model_name(),
            "ext"
        );
    }
}
