//! PerfectRef: the CQ-to-UCQ reformulation of Calvanese et al. \[13\].
//!
//! §2.2 of the paper: the technique exhaustively applies two operations to
//! the input CQ —
//!
//! 1. **specializing** an atom by a backward application of a negation-free
//!    constraint (Table 3), and
//! 2. **specializing two atoms into their most general unifier** (the
//!    *reduce* step),
//!
//! each producing a CQ contained in its parent w.r.t. the TBox, until a
//! fixpoint. The union of all generated CQs is the UCQ reformulation:
//! `ans(q, ⟨T, A⟩) = ans(qUCQ, ⟨∅, A⟩)` for every `T`-consistent `A`.

use std::collections::HashSet;

use obda_dllite::TBox;
use obda_query::{canonical_key, mgu_preferring, CanonKey, VarId, CQ, UCQ};

use crate::applicability::specializations;

/// Statistics of one reformulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReformStats {
    /// CQs in the result (after canonical dedup).
    pub generated: usize,
    /// Backward axiom applications attempted.
    pub axiom_applications: usize,
    /// Reduce (unification) steps attempted.
    pub reduce_steps: usize,
}

/// Reformulate `q` w.r.t. `tbox` into its UCQ reformulation — the
/// *exhaustive* fixpoint of \[13\], generating every reachable CQ (the form
/// traced in the paper's Example 4 / Table 5).
pub fn perfect_ref(q: &CQ, tbox: &TBox) -> UCQ {
    perfect_ref_with_stats(q, tbox).0
}

/// Like [`perfect_ref`], also returning run statistics.
pub fn perfect_ref_with_stats(q: &CQ, tbox: &TBox) -> (UCQ, ReformStats) {
    run(q, tbox, false)
}

/// Output-subsumed reformulation — the production variant, standing in
/// for optimized rewriters like RAPID \[14\] (what the paper actually runs).
///
/// The fixpoint exploration is **exhaustive** (identical to
/// [`perfect_ref`] — pruning the exploration itself is unsound: a
/// specialized query can enable axiom applications its subsumer cannot),
/// but a generated CQ only enters the *output* union when it is not
/// plainly contained in an already-emitted disjunct. The result is
/// equivalent to the exhaustive UCQ (every dropped disjunct is subsumed by
/// a kept one) and usually orders of magnitude smaller, which keeps
/// downstream minimization cheap. Property tests cross-check it against
/// the chase oracle.
pub fn perfect_ref_pruned(q: &CQ, tbox: &TBox) -> UCQ {
    run(q, tbox, true).0
}

fn run(q: &CQ, tbox: &TBox, prune: bool) -> (UCQ, ReformStats) {
    let mut stats = ReformStats::default();
    let mut ucq = UCQ::single(q.clone());
    let mut seen: HashSet<CanonKey> = HashSet::new();
    seen.insert(canonical_key(q));

    let head_vars: Vec<VarId> = q.head_vars().collect();
    let mut frontier: Vec<CQ> = vec![q.clone()];
    while let Some(current) = frontier.pop() {
        // (a) backward constraint applications.
        for spec in specializations(&current, tbox, current.fresh_var()) {
            stats.axiom_applications += 1;
            let mut atoms = current.atoms().to_vec();
            atoms[spec.atom_idx] = spec.replacement;
            let candidate = CQ::new(current.head().to_vec(), atoms);
            push_new(candidate, &mut ucq, &mut seen, &mut frontier, prune);
        }
        // (b) reduce: unify each pair of atoms.
        let n = current.num_atoms();
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (&current.atoms()[i], &current.atoms()[j]);
                if let Some(sigma) = mgu_preferring(a, b, &head_vars) {
                    stats.reduce_steps += 1;
                    if sigma.is_empty() {
                        continue; // identical atoms — CQ::new dedups anyway
                    }
                    let candidate = current.apply(&sigma);
                    push_new(candidate, &mut ucq, &mut seen, &mut frontier, prune);
                }
            }
        }
    }
    stats.generated = ucq.len();
    (ucq, stats)
}

fn push_new(
    candidate: CQ,
    ucq: &mut UCQ,
    seen: &mut HashSet<CanonKey>,
    frontier: &mut Vec<CQ>,
    prune: bool,
) {
    let key = canonical_key(&candidate);
    if !seen.insert(key) {
        return;
    }
    // Exploration always continues from the candidate — only the *output*
    // is filtered, which preserves completeness.
    frontier.push(candidate.clone());
    if prune
        && ucq
            .cqs()
            .iter()
            .any(|d| obda_query::contained_in(&candidate, d))
    {
        return;
    }
    ucq.push(candidate);
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{example1_tbox, example7_tbox};
    use obda_query::{contained_in, minimize_ucq, same_modulo_renaming, Atom, Term};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// Example 4 / Table 5: the UCQ reformulation of
    /// q(x) ← PhDStudent(x) ∧ worksWith(y, x) has exactly 10 disjuncts.
    #[test]
    fn example4_ten_disjuncts() {
        let (voc, tbox) = example1_tbox();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(phd, v(0)), Atom::Role(works, v(1), v(0))],
        );
        let ucq = perfect_ref(&q, &tbox);
        assert_eq!(ucq.len(), 10, "Table 5 lists q1..q10");

        // Spot-check the named disjuncts of Table 5.
        let expect = [
            // q1(x) ← PhDStudent(x) ∧ worksWith(y, x)
            CQ::with_var_head(
                vec![VarId(0)],
                vec![Atom::Concept(phd, v(0)), Atom::Role(works, v(1), v(0))],
            ),
            // q4(x) ← PhDStudent(x) ∧ supervisedBy(x, y)
            CQ::with_var_head(
                vec![VarId(0)],
                vec![Atom::Concept(phd, v(0)), Atom::Role(sup, v(0), v(1))],
            ),
            // q9(x) ← supervisedBy(x, x)
            CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(sup, v(0), v(0))]),
            // q10(x) ← supervisedBy(x, y)
            CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(sup, v(0), v(1))]),
        ];
        for e in &expect {
            assert!(
                ucq.cqs().iter().any(|c| same_modulo_renaming(c, e)),
                "missing disjunct {e:?}"
            );
        }
    }

    /// §2.3: minimizing Example 4's UCQ leaves q1 ∨ q2 ∨ q3 ∨ q10.
    #[test]
    fn example4_minimal_ucq_has_four_disjuncts() {
        let (voc, tbox) = example1_tbox();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(phd, v(0)), Atom::Role(works, v(1), v(0))],
        );
        let minimal = minimize_ucq(&perfect_ref(&q, &tbox));
        assert_eq!(minimal.len(), 4);
        // q10 is the absorbing disjunct for q4..q9.
        let q10 = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(sup, v(0), v(1))]);
        assert!(minimal.cqs().iter().any(|c| same_modulo_renaming(c, &q10)));
    }

    /// Example 7: the UCQ reformulation of
    /// q(x) ← PhDStudent(x) ∧ worksWith(x, y) ∧ supervisedBy(z, y)
    /// is exactly q1 ∨ q2 ∨ q3 ∨ q4.
    #[test]
    fn example7_four_disjuncts() {
        let (voc, tbox) = example7_tbox();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let grad = voc.find_concept("Graduate").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(phd, v(0)),
                Atom::Role(works, v(0), v(1)),
                Atom::Role(sup, v(2), v(1)),
            ],
        );
        let ucq = perfect_ref(&q, &tbox);
        assert_eq!(ucq.len(), 4);
        let q3 = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(phd, v(0)), Atom::Role(sup, v(0), v(1))],
        );
        let q4 = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(phd, v(0)), Atom::Concept(grad, v(0))],
        );
        assert!(ucq.cqs().iter().any(|c| same_modulo_renaming(c, &q3)));
        assert!(ucq.cqs().iter().any(|c| same_modulo_renaming(c, &q4)));
    }

    /// Every generated disjunct is contained in the original query… w.r.t.
    /// the TBox. Plain containment holds only atom-wise for axiom steps,
    /// but each disjunct must at least keep the head arity; and the first
    /// disjunct is the original query itself.
    #[test]
    fn original_query_is_a_disjunct() {
        let (voc, tbox) = example1_tbox();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(phd, v(0)), Atom::Role(works, v(1), v(0))],
        );
        let ucq = perfect_ref(&q, &tbox);
        assert!(same_modulo_renaming(&ucq.cqs()[0], &q));
    }

    /// With an empty TBox the reformulation adds only reduce-steps, all of
    /// which are contained in the original query.
    #[test]
    fn empty_tbox_reduce_only() {
        let tbox = TBox::new();
        // q(x) ← r(x, y) ∧ r(y, z): unifying the two atoms gives r(x, x).
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(obda_dllite::RoleId(0), v(0), v(1)),
                Atom::Role(obda_dllite::RoleId(0), v(1), v(2)),
            ],
        );
        let ucq = perfect_ref(&q, &tbox);
        for cq in ucq.cqs() {
            assert!(contained_in(cq, &q), "reduce steps specialize");
        }
        assert!(ucq.len() >= 2);
    }

    #[test]
    fn stats_are_populated() {
        let (voc, tbox) = example1_tbox();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(phd, v(0)), Atom::Role(works, v(1), v(0))],
        );
        let (_, stats) = perfect_ref_with_stats(&q, &tbox);
        assert_eq!(stats.generated, 10);
        assert!(stats.axiom_applications > 0);
        assert!(stats.reduce_steps > 0);
    }

    /// Concept hierarchies alone: A ⊑ B means q(x) ← B(x) reformulates to
    /// B(x) ∨ A(x).
    #[test]
    fn simple_hierarchy() {
        let mut b = obda_dllite::TBoxBuilder::new();
        b.sub("A", "B").sub("A2", "A");
        let (voc, tbox) = b.finish();
        let bb = voc.find_concept("B").unwrap();
        let q = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(bb, v(0))]);
        let ucq = perfect_ref(&q, &tbox);
        assert_eq!(ucq.len(), 3, "B ∨ A ∨ A2");
    }

    /// The pruned variant is equivalent to the exhaustive one: same
    /// minimal form on Example 4 (9 raw disjuncts — q10 is forward-
    /// subsumed by the equivalent q8 — but identical after minimization).
    #[test]
    fn pruned_variant_is_equivalent_on_example4() {
        let (voc, tbox) = example1_tbox();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(phd, v(0)), Atom::Role(works, v(1), v(0))],
        );
        let exhaustive = perfect_ref(&q, &tbox);
        let pruned = super::perfect_ref_pruned(&q, &tbox);
        assert!(pruned.len() <= exhaustive.len());
        let m1 = minimize_ucq(&exhaustive);
        let m2 = minimize_ucq(&pruned);
        assert_eq!(m1.len(), m2.len());
        for cq in m1.cqs() {
            assert!(
                m2.cqs().iter().any(|d| obda_query::equivalent(cq, d)),
                "missing equivalent of {cq:?}"
            );
        }
    }

    /// Pruned and exhaustive variants compute the same certain answers on
    /// randomized KBs (cross-checked against the chase oracle).
    #[test]
    fn pruned_variant_is_complete_on_random_kbs() {
        use obda_query::testkit::{random_abox, random_connected_cq, random_tbox, KbShape, Rng};
        use obda_query::{certain_answers, eval_over_abox, FolQuery};
        for seed in 0..60u64 {
            let mut rng = Rng::new(seed);
            let shape = KbShape::default();
            let (mut voc, tbox) = random_tbox(&mut rng, &shape);
            let abox = random_abox(&mut rng, &mut voc, &shape);
            for atoms in 1..=3 {
                let cq = random_connected_cq(&mut rng, &voc, atoms, 2);
                let truth = certain_answers(&tbox, &abox, &cq);
                let pruned = super::perfect_ref_pruned(&cq, &tbox);
                let got = eval_over_abox(&abox, &FolQuery::Ucq(pruned));
                assert_eq!(got, truth, "seed {seed}, atoms {atoms}");
            }
        }
    }
}
