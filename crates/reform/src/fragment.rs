//! Fragment queries of a CQ — Definitions 2 and 7 of the paper.
//!
//! A cover splits a query's atoms into fragments; each fragment induces a
//! *fragment query* whose head exposes exactly the variables the rest of
//! the query needs: the original head variables occurring in the fragment
//! plus the existential variables shared with other fragments.
//!
//! Generalized fragments `f‖g` (Definition 7) carry extra atoms `f ⊇ g`
//! acting as semijoin reducers: the atoms of `f \ g` only filter, so the
//! head is computed from `g` alone.

use std::collections::BTreeSet;

use obda_query::{Term, VarId, CQ};

/// A (generalized) fragment of a query, as atom indices into the query
/// body. Simple fragments have `f == g`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragmentSpec {
    /// Body atoms of the fragment query (`f`).
    pub f: Vec<usize>,
    /// The "exported" atom set (`g ⊆ f`) determining the head.
    pub g: Vec<usize>,
}

impl FragmentSpec {
    /// A simple fragment (`f == g`).
    pub fn simple(atoms: Vec<usize>) -> Self {
        let mut f = atoms;
        f.sort_unstable();
        f.dedup();
        FragmentSpec { g: f.clone(), f }
    }

    /// A generalized fragment `f‖g`; `g` must be a subset of `f`.
    pub fn generalized(f: Vec<usize>, g: Vec<usize>) -> Self {
        let mut f = f;
        f.sort_unstable();
        f.dedup();
        let mut g = g;
        g.sort_unstable();
        g.dedup();
        debug_assert!(g.iter().all(|i| f.contains(i)), "g ⊆ f violated");
        FragmentSpec { f, g }
    }

    pub fn is_simple(&self) -> bool {
        self.f == self.g
    }

    /// Variables of the `g`-atoms of this fragment.
    pub fn g_vars(&self, q: &CQ) -> BTreeSet<VarId> {
        self.g
            .iter()
            .flat_map(|&i| q.atoms()[i].vars().collect::<Vec<_>>())
            .collect()
    }

    /// Variables of the `f`-atoms (whole body).
    pub fn f_vars(&self, q: &CQ) -> BTreeSet<VarId> {
        self.f
            .iter()
            .flat_map(|&i| q.atoms()[i].vars().collect::<Vec<_>>())
            .collect()
    }
}

/// Compute the fragment query `q|f‖g` (Def. 7; Def. 2 when `f == g`).
///
/// Head = original head variables of `q` occurring in `g`'s atoms, plus
/// variables of `g`'s atoms shared with the `g`-atoms of *another*
/// fragment. Head order: original head variables first (in head order),
/// then shared existentials in ascending id — deterministic so downstream
/// joins and SQL are stable.
pub fn fragment_query(q: &CQ, spec: &FragmentSpec, all: &[FragmentSpec]) -> CQ {
    let g_vars = spec.g_vars(q);
    // Vars of other fragments' g-atoms.
    let mut other_vars: BTreeSet<VarId> = BTreeSet::new();
    for other in all {
        if other == spec {
            continue;
        }
        other_vars.extend(other.g_vars(q));
    }

    let mut head: Vec<Term> = Vec::new();
    let mut seen: BTreeSet<VarId> = BTreeSet::new();
    // Original head vars present in g.
    for hv in q.head_vars() {
        if g_vars.contains(&hv) && seen.insert(hv) {
            head.push(Term::Var(hv));
        }
    }
    // Shared existentials.
    for &v in &g_vars {
        if other_vars.contains(&v) && seen.insert(v) {
            head.push(Term::Var(v));
        }
    }

    let atoms = spec.f.iter().map(|&i| q.atoms()[i]).collect();
    CQ::new(head, atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{ConceptId, RoleId};
    use obda_query::Atom;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// Example 6: fragment queries of q(x, y) ← teachesTo(v, x) ∧
    /// teachesTo(v, y) ∧ supervisedBy(x, w) ∧ supervisedBy(y, w) w.r.t.
    /// C = {{teachesTo(v,x), supervisedBy(x,w)}, {teachesTo(v,y),
    /// supervisedBy(y,w)}}.
    #[test]
    fn example6_fragment_queries() {
        let teaches = RoleId(0);
        let sup = RoleId(1);
        // vars: x=0, y=1, v=2, w=3.
        let q = CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![
                Atom::Role(teaches, v(2), v(0)),
                Atom::Role(teaches, v(2), v(1)),
                Atom::Role(sup, v(0), v(3)),
                Atom::Role(sup, v(1), v(3)),
            ],
        );
        let f1 = FragmentSpec::simple(vec![0, 2]);
        let f2 = FragmentSpec::simple(vec![1, 3]);
        let all = [f1.clone(), f2.clone()];
        let q1 = fragment_query(&q, &f1, &all);
        let q2 = fragment_query(&q, &f2, &all);
        // q|f1(x, v, w) — head {x} ∪ shared {v, w}.
        let h1: BTreeSet<VarId> = q1.head_vars().collect();
        assert_eq!(h1, BTreeSet::from([VarId(0), VarId(2), VarId(3)]));
        assert_eq!(q1.num_atoms(), 2);
        // q|f2(y, v, w).
        let h2: BTreeSet<VarId> = q2.head_vars().collect();
        assert_eq!(h2, BTreeSet::from([VarId(1), VarId(2), VarId(3)]));
    }

    /// Example 11: the generalized cover C3 = {f1‖f1, f2‖f0} over
    /// q(x) ← PhDStudent(x) ∧ worksWith(x, y) ∧ supervisedBy(z, y).
    /// Atom order: 0 = PhDStudent(x), 1 = worksWith(x, y),
    /// 2 = supervisedBy(z, y). Vars x=0, y=1, z=2.
    #[test]
    fn example11_generalized_fragment_queries() {
        let phd = ConceptId(0);
        let works = RoleId(0);
        let sup = RoleId(1);
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(phd, v(0)),
                Atom::Role(works, v(0), v(1)),
                Atom::Role(sup, v(2), v(1)),
            ],
        );
        // f0 = {PhDStudent(x)}, f1 = {worksWith, supervisedBy},
        // f2 = {PhDStudent, worksWith}.
        let frag1 = FragmentSpec::generalized(vec![1, 2], vec![1, 2]); // f1‖f1
        let frag2 = FragmentSpec::generalized(vec![0, 1], vec![0]); // f2‖f0
        let all = [frag1.clone(), frag2.clone()];

        // q|f1‖f1(x): y is not exported because the other fragment's g
        // (= f0) does not mention y.
        let q1 = fragment_query(&q, &frag1, &all);
        assert_eq!(q1.head(), &[v(0)]);
        assert_eq!(q1.num_atoms(), 2);

        // q|f2‖f0(x): body = PhDStudent(x) ∧ worksWith(x, y), head (x).
        let q2 = fragment_query(&q, &frag2, &all);
        assert_eq!(q2.head(), &[v(0)]);
        assert_eq!(q2.num_atoms(), 2);
    }

    /// Definition 2 sanity: single-fragment cover exposes exactly the
    /// original head.
    #[test]
    fn trivial_cover_keeps_head() {
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(0), v(1)),
            ],
        );
        let f = FragmentSpec::simple(vec![0, 1]);
        let fq = fragment_query(&q, &f, &[f.clone()]);
        assert_eq!(fq.head(), q.head());
        assert_eq!(fq.atoms(), q.atoms());
    }

    /// Head variables not occurring in a fragment are not exported by it.
    #[test]
    fn head_var_outside_fragment_not_exported() {
        // q(x, y) ← A(x) ∧ r(x, y).
        let q = CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(0), v(1)),
            ],
        );
        let f1 = FragmentSpec::simple(vec![0]);
        let f2 = FragmentSpec::simple(vec![1]);
        let all = [f1.clone(), f2.clone()];
        let q1 = fragment_query(&q, &f1, &all);
        // Fragment {A(x)} exports only x (head var present + shared).
        assert_eq!(q1.head(), &[v(0)]);
        let q2 = fragment_query(&q, &f2, &all);
        // Fragment {r(x, y)} exports x (head+shared) and y (head).
        assert_eq!(q2.head(), &[v(0), v(1)]);
    }

    #[test]
    fn g_subset_invariant() {
        let spec = FragmentSpec::generalized(vec![2, 0, 1], vec![1]);
        assert_eq!(spec.f, vec![0, 1, 2]);
        assert_eq!(spec.g, vec![1]);
        assert!(!spec.is_simple());
        assert!(FragmentSpec::simple(vec![1, 0]).is_simple());
    }
}
