//! The RDF Schema fragment of DL-LiteR.
//!
//! The paper's predecessor work \[10\] handles only four of the twenty-two
//! DL-LiteR constraint forms — the DL fragment of RDF Schema:
//!
//! * (1)  `A ⊑ A'`   (rdfs:subClassOf)
//! * (4)  `∃R ⊑ A`   (rdfs:domain)
//! * (5)  `∃R⁻ ⊑ A`  (rdfs:range)
//! * (11) `R ⊑ R'`   (rdfs:subPropertyOf)
//!
//! Under RDFS-only TBoxes *every* cover is safe (\[10\], recalled in §7),
//! because no constraint can introduce a role atom whose projected position
//! joins elsewhere — unification opportunities never span fragments. This
//! module extracts that fragment (for the ablation comparing the
//! frameworks) and classifies TBoxes.

use obda_dllite::{Axiom, BasicConcept, TBox};

/// Is this axiom expressible in the RDFS fragment?
pub fn is_rdfs_axiom(ax: &Axiom) -> bool {
    match ax {
        Axiom::Concept(ci) => {
            !ci.negated
                && matches!(ci.rhs, BasicConcept::Atomic(_))
                && match ci.lhs {
                    // A ⊑ A'
                    BasicConcept::Atomic(_) => true,
                    // ∃R ⊑ A or ∃R⁻ ⊑ A
                    BasicConcept::Exists(_) => true,
                }
        }
        Axiom::Role(ri) => {
            // R ⊑ R' with both direct (after normalization an inverse pair
            // appears as lhs.inverse == rhs.inverse == false or a flipped
            // lhs — only the plain direct-direct form is RDFS).
            !ri.negated && !ri.lhs.inverse && !ri.rhs.inverse
        }
    }
}

/// Keep only the RDFS-expressible axioms of a TBox.
pub fn rdfs_subset(tbox: &TBox) -> TBox {
    let mut out = TBox::new();
    for ax in tbox.axioms() {
        if is_rdfs_axiom(ax) {
            out.add(*ax);
        }
    }
    out
}

/// Is the whole TBox within the RDFS fragment? If so, every cover is safe
/// and the framework of \[10\] coincides with this one.
pub fn is_rdfs_tbox(tbox: &TBox) -> bool {
    tbox.axioms().iter().all(is_rdfs_axiom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::TBoxBuilder;

    #[test]
    fn classifies_the_four_rdfs_forms() {
        let mut b = TBoxBuilder::new();
        b.sub("A", "B") // form 1
            .sub("exists r", "A") // form 4
            .sub("exists r-", "A") // form 5
            .sub_role("r", "s"); // form 11
        let (_, tbox) = b.finish();
        assert!(is_rdfs_tbox(&tbox));
        assert_eq!(rdfs_subset(&tbox).len(), 4);
    }

    #[test]
    fn rejects_existential_rhs() {
        let mut b = TBoxBuilder::new();
        b.sub("A", "exists r"); // form 2 — not RDFS
        let (_, tbox) = b.finish();
        assert!(!is_rdfs_tbox(&tbox));
        assert!(rdfs_subset(&tbox).is_empty());
    }

    #[test]
    fn rejects_inverse_role_inclusions_and_negation() {
        let mut b = TBoxBuilder::new();
        b.sub_role("r", "s-"); // form 10 — not RDFS
        b.disjoint("A", "B");
        let (_, tbox) = b.finish();
        assert!(!is_rdfs_tbox(&tbox));
        assert!(rdfs_subset(&tbox).is_empty());
    }

    #[test]
    fn example1_is_not_rdfs() {
        let (_, tbox) = obda_dllite::example1_tbox();
        assert!(!is_rdfs_tbox(&tbox));
        // T1, T2, T3 and T5 survive (T5 is a plain role inclusion); T4
        // normalizes to worksWith⁻ ⊑ worksWith (inverse — dropped), T6 is
        // ∃supervisedBy ⊑ PhDStudent (form 4 — kept), T7 is negative.
        assert_eq!(rdfs_subset(&tbox).len(), 5);
    }
}
