//! Cover-based reformulation — Definition 3 (simple covers) and the
//! generalized variant of §5.2.
//!
//! Given a CQ `q`, a TBox `T` and a set of (generalized) fragments, produce
//! the JUCQ `qFOL(x̄) ← ∧ᵢ qFOL|fi` where each `qFOL|fi` is the PerfectRef
//! UCQ reformulation of the fragment query. When the underlying cover is
//! *safe* (Definition 5), this JUCQ is a FOL reformulation of `q`
//! (Theorems 1 and 3); for unsafe covers it may lose answers (Example 7).

use obda_dllite::TBox;
use obda_query::{FolQuery, CQ, JUCQ, JUSCQ, UCQ};

use crate::fragment::{fragment_query, FragmentSpec};
use crate::perfectref::perfect_ref;
use crate::uscq_factorize::factorize_ucq;

/// Reformulate each fragment with PerfectRef and assemble the JUCQ.
pub fn cover_reformulation(q: &CQ, tbox: &TBox, specs: &[FragmentSpec]) -> JUCQ {
    let components: Vec<UCQ> = specs
        .iter()
        .map(|spec| {
            let fq = fragment_query(q, spec, specs);
            perfect_ref(&fq, tbox)
        })
        .collect();
    JUCQ::new(q.head().to_vec(), components)
}

/// Same, but factorize each fragment UCQ into a USCQ, yielding a JUSCQ
/// (the CQ-to-JUSCQ pipeline of §7 / \[33\]).
pub fn cover_reformulation_juscq(q: &CQ, tbox: &TBox, specs: &[FragmentSpec]) -> JUSCQ {
    let components = specs
        .iter()
        .map(|spec| {
            let fq = fragment_query(q, spec, specs);
            factorize_ucq(&perfect_ref(&fq, tbox))
        })
        .collect();
    JUSCQ::new(q.head().to_vec(), components)
}

/// The single-fragment (trivial) cover reformulation: plain PerfectRef.
/// With one fragment, the JUCQ degenerates to the UCQ of the literature.
pub fn trivial_reformulation(q: &CQ, tbox: &TBox) -> FolQuery {
    FolQuery::Ucq(perfect_ref(q, tbox))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{example7_tbox, ABox, KnowledgeBase};
    use obda_query::{certain_answers, eval_over_abox, Atom, Term, VarId};
    use std::collections::HashSet;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// Build the Example-7 KB: TBox {Graduate ⊑ ∃supervisedBy,
    /// supervisedBy ⊑ worksWith}, ABox {PhDStudent(Damian),
    /// Graduate(Damian)}, query q(x) ← PhDStudent(x) ∧ worksWith(x, y) ∧
    /// supervisedBy(z, y).
    fn example7() -> (KnowledgeBase, CQ) {
        let (mut voc, tbox) = example7_tbox();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let grad = voc.find_concept("Graduate").unwrap();
        let damian = voc.individual("Damian");
        let mut abox = ABox::new();
        abox.assert_concept(phd, damian);
        abox.assert_concept(grad, damian);
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(phd, v(0)),
                Atom::Role(works, v(0), v(1)),
                Atom::Role(sup, v(2), v(1)),
            ],
        );
        (KnowledgeBase::new(voc, tbox, abox), q)
    }

    /// Example 7: the *unsafe* cover C1 = {{PhDStudent, worksWith},
    /// {supervisedBy}} loses the answer Damian.
    #[test]
    fn example7_unsafe_cover_loses_answers() {
        let (kb, q) = example7();
        let specs = [
            FragmentSpec::simple(vec![0, 1]),
            FragmentSpec::simple(vec![2]),
        ];
        let jucq = cover_reformulation(&q, kb.tbox(), &specs);
        let got = eval_over_abox(kb.abox(), &FolQuery::Jucq(jucq));
        assert!(got.is_empty(), "C1 misses q3/q4, so no answer");
        // …whereas the certain answer is {Damian}.
        let truth = certain_answers(kb.tbox(), kb.abox(), &q);
        assert_eq!(truth.len(), 1);
    }

    /// Example 9: the safe cover C2 = {{PhDStudent}, {worksWith,
    /// supervisedBy}} computes exactly the certain answers.
    #[test]
    fn example9_safe_cover_is_correct() {
        let (kb, q) = example7();
        let specs = [
            FragmentSpec::simple(vec![0]),
            FragmentSpec::simple(vec![1, 2]),
        ];
        let jucq = cover_reformulation(&q, kb.tbox(), &specs);
        assert_eq!(jucq.num_components(), 2);
        let got = eval_over_abox(kb.abox(), &FolQuery::Jucq(jucq));
        let damian = kb.voc().find_individual("Damian").unwrap();
        assert_eq!(got, HashSet::from([vec![damian]]));
    }

    /// Example 9's component shapes: qUCQ1 has 1 disjunct (nothing rewrites
    /// PhDStudent), qUCQ2 has 4 (worksWith∧supervisedBy, then
    /// supervisedBy∧supervisedBy → supervisedBy → Graduate).
    #[test]
    fn example9_component_sizes() {
        let (kb, q) = example7();
        let specs = [
            FragmentSpec::simple(vec![0]),
            FragmentSpec::simple(vec![1, 2]),
        ];
        let jucq = cover_reformulation(&q, kb.tbox(), &specs);
        assert_eq!(jucq.components()[0].len(), 1);
        assert_eq!(jucq.components()[1].len(), 4);
    }

    /// Example 11: the generalized cover C3 = {f1‖f1, f2‖f0} also computes
    /// {Damian}, with both components unary (semijoin reducers hide y).
    #[test]
    fn example11_generalized_cover_is_correct() {
        let (kb, q) = example7();
        let specs = [
            FragmentSpec::generalized(vec![1, 2], vec![1, 2]),
            FragmentSpec::generalized(vec![0, 1], vec![0]),
        ];
        let jucq = cover_reformulation(&q, kb.tbox(), &specs);
        for c in jucq.components() {
            assert_eq!(c.head().len(), 1, "both components export only x");
        }
        let got = eval_over_abox(kb.abox(), &FolQuery::Jucq(jucq));
        let damian = kb.voc().find_individual("Damian").unwrap();
        assert_eq!(got, HashSet::from([vec![damian]]));
    }

    /// Example 11 component shapes. The paper displays the *minimized*
    /// reformulations: qFOL|f1‖f1 = (wW ∧ sB) ∨ sB ∨ Graduate (3
    /// disjuncts; the raw fixpoint also carries the subsumed
    /// sB(x,y) ∧ sB(z,y)), and qFOL|f2‖f0 = 3 disjuncts.
    #[test]
    fn example11_component_sizes() {
        let (kb, q) = example7();
        let specs = [
            FragmentSpec::generalized(vec![1, 2], vec![1, 2]),
            FragmentSpec::generalized(vec![0, 1], vec![0]),
        ];
        let jucq = cover_reformulation(&q, kb.tbox(), &specs);
        assert_eq!(jucq.components()[0].len(), 4, "raw fixpoint");
        assert_eq!(jucq.components()[1].len(), 3);
        let minimized = obda_query::minimize_ucq(&jucq.components()[0]);
        assert_eq!(minimized.len(), 3, "paper displays the minimal form");
        let minimized1 = obda_query::minimize_ucq(&jucq.components()[1]);
        assert_eq!(minimized1.len(), 3);
    }

    /// The trivial one-fragment cover coincides with plain PerfectRef and
    /// is always correct.
    #[test]
    fn trivial_cover_matches_certain_answers() {
        let (kb, q) = example7();
        let specs = [FragmentSpec::simple(vec![0, 1, 2])];
        let jucq = cover_reformulation(&q, kb.tbox(), &specs);
        let got = eval_over_abox(kb.abox(), &FolQuery::Jucq(jucq));
        let truth = certain_answers(kb.tbox(), kb.abox(), &q);
        assert_eq!(got, truth);
    }

    /// JUSCQ route produces the same answers as the JUCQ route.
    #[test]
    fn juscq_equals_jucq_answers() {
        let (kb, q) = example7();
        let specs = [
            FragmentSpec::simple(vec![0]),
            FragmentSpec::simple(vec![1, 2]),
        ];
        let jucq = cover_reformulation(&q, kb.tbox(), &specs);
        let juscq = cover_reformulation_juscq(&q, kb.tbox(), &specs);
        let a1 = eval_over_abox(kb.abox(), &FolQuery::Jucq(jucq));
        let a2 = eval_over_abox(kb.abox(), &FolQuery::Juscq(juscq));
        assert_eq!(a1, a2);
    }
}
