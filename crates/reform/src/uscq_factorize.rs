//! Factorizing a UCQ into a USCQ.
//!
//! Stands in for the CQ-to-USCQ technique of Thomazo \[33\] (§2.2 item (ii)):
//! union terms that differ in a single atom position — where the differing
//! atoms bind the same variable set — are merged into one semi-conjunctive
//! query with a disjunctive slot. `(A ∧ r1) ∨ (A ∧ r2)` becomes
//! `A ∧ (r1 ∨ r2)`, sharing the scan of `A`.
//!
//! The factorization is purely structural and preserves equivalence: each
//! SCQ expands back to exactly the CQs it absorbed.

use std::collections::HashMap;

use obda_query::{canonicalize, Atom, Slot, SCQ, UCQ, USCQ};

/// Greedily factorize `ucq` into an equivalent USCQ.
///
/// Algorithm: canonicalize every disjunct (aligning variable names), lift
/// each to a trivial SCQ, then repeatedly merge SCQ pairs that share all
/// slots but one, where the differing slots have a common variable set.
/// Terminates because every merge reduces the SCQ count by one.
pub fn factorize_ucq(ucq: &UCQ) -> USCQ {
    let mut scqs: Vec<SCQ> = ucq
        .cqs()
        .iter()
        .map(|cq| SCQ::from_cq(&canonicalize(cq)))
        .collect();

    loop {
        let mut merged: Option<(usize, usize, SCQ)> = None;
        'outer: for i in 0..scqs.len() {
            for j in (i + 1)..scqs.len() {
                if let Some(m) = try_merge(&scqs[i], &scqs[j]) {
                    merged = Some((i, j, m));
                    break 'outer;
                }
            }
        }
        match merged {
            Some((i, j, m)) => {
                scqs.remove(j);
                scqs[i] = m;
            }
            None => break,
        }
    }
    USCQ::new(ucq.head().to_vec(), scqs)
}

/// Merge two SCQs if they differ in exactly one slot and the differing
/// slots share a variable set.
fn try_merge(a: &SCQ, b: &SCQ) -> Option<SCQ> {
    if a.num_slots() != b.num_slots() || a.head() != b.head() {
        return None;
    }
    // Multiset-match slots: count each slot signature of `a`, then remove
    // signatures found in `b`. Exactly one unmatched slot may remain on
    // each side.
    let mut counts: HashMap<Vec<Atom>, (usize, Vec<usize>)> = HashMap::new();
    for (i, slot) in a.slots().iter().enumerate() {
        let mut sig = slot.atoms().to_vec();
        sig.sort_unstable();
        let entry = counts.entry(sig).or_insert((0, Vec::new()));
        entry.0 += 1;
        entry.1.push(i);
    }
    let mut b_unmatched: Vec<usize> = Vec::new();
    for (j, slot) in b.slots().iter().enumerate() {
        let mut sig = slot.atoms().to_vec();
        sig.sort_unstable();
        match counts.get_mut(&sig) {
            Some(entry) if entry.0 > 0 => {
                entry.0 -= 1;
            }
            _ => b_unmatched.push(j),
        }
    }
    if b_unmatched.len() != 1 {
        return None;
    }
    let a_unmatched: Vec<usize> = counts
        .values()
        .flat_map(|(left, idxs)| idxs[idxs.len() - left..].iter().copied())
        .collect();
    if a_unmatched.len() != 1 {
        return None;
    }
    let (ai, bj) = (a_unmatched[0], b_unmatched[0]);
    let slot_a = &a.slots()[ai];
    let slot_b = &b.slots()[bj];
    if slot_a.vars() != slot_b.vars() {
        return None;
    }
    // Build merged slot (dedup atoms).
    let mut merged = slot_a.clone();
    for atom in slot_b.atoms() {
        merged.try_push(*atom);
    }
    let slots: Vec<Slot> = a
        .slots()
        .iter()
        .enumerate()
        .map(|(i, s)| if i == ai { merged.clone() } else { s.clone() })
        .collect();
    Some(SCQ::new(a.head().to_vec(), slots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{ConceptId, RoleId};
    use obda_query::{Term, VarId, CQ};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    #[test]
    fn factorizes_single_atom_difference() {
        // (A(x) ∧ r1(x,y)) ∨ (A(x) ∧ r2(x,y)) → A(x) ∧ (r1 ∨ r2).
        let a = ConceptId(0);
        let cq1 = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(a, v(0)), Atom::Role(RoleId(0), v(0), v(1))],
        );
        let cq2 = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(a, v(0)), Atom::Role(RoleId(1), v(0), v(1))],
        );
        let ucq = UCQ::from_cqs(vec![v(0)], [cq1, cq2]);
        let uscq = factorize_ucq(&ucq);
        assert_eq!(uscq.len(), 1, "merged into one SCQ");
        assert_eq!(uscq.equivalent_cq_count(), 2, "still covers both CQs");
        assert_eq!(uscq.scqs()[0].num_slots(), 2);
    }

    #[test]
    fn respects_variable_sets() {
        // (A(x) ∧ r(x,y)) ∨ (A(x) ∧ B(x)): differing atoms have different
        // var sets → no merge.
        let cq1 = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(0), v(1)),
            ],
        );
        let cq2 = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Concept(ConceptId(1), v(0)),
            ],
        );
        let ucq = UCQ::from_cqs(vec![v(0)], [cq1, cq2]);
        let uscq = factorize_ucq(&ucq);
        assert_eq!(uscq.len(), 2, "not mergeable");
    }

    #[test]
    fn chains_multiple_merges() {
        // Three CQs differing in the same slot collapse into one SCQ with a
        // 3-atom slot.
        let mk = |r: u32| {
            CQ::with_var_head(
                vec![VarId(0)],
                vec![
                    Atom::Concept(ConceptId(0), v(0)),
                    Atom::Role(RoleId(r), v(0), v(1)),
                ],
            )
        };
        let ucq = UCQ::from_cqs(vec![v(0)], [mk(0), mk(1), mk(2)]);
        let uscq = factorize_ucq(&ucq);
        assert_eq!(uscq.len(), 1);
        assert_eq!(uscq.equivalent_cq_count(), 3);
        let widths: Vec<usize> = uscq.scqs()[0].slots().iter().map(|s| s.len()).collect();
        assert!(widths.contains(&3));
    }

    #[test]
    fn canonicalization_aligns_variable_names() {
        // Same structure, different existential names — still merges.
        let cq1 = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(0), v(0), v(9)),
            ],
        );
        let cq2 = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(0), v(0)),
                Atom::Role(RoleId(1), v(0), v(4)),
            ],
        );
        let ucq = UCQ::from_cqs(vec![v(0)], [cq1, cq2]);
        assert_eq!(factorize_ucq(&ucq).len(), 1);
    }

    #[test]
    fn single_cq_is_trivial_uscq() {
        let cq = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(0), v(0))]);
        let uscq = factorize_ucq(&UCQ::single(cq));
        assert_eq!(uscq.len(), 1);
        assert_eq!(uscq.equivalent_cq_count(), 1);
    }

    #[test]
    fn different_sizes_do_not_merge() {
        let cq1 = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(ConceptId(0), v(0))]);
        let cq2 = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(ConceptId(1), v(0)),
                Atom::Role(RoleId(0), v(0), v(1)),
            ],
        );
        let ucq = UCQ::from_cqs(vec![v(0)], [cq1, cq2]);
        assert_eq!(factorize_ucq(&ucq).len(), 2);
    }
}
