//! # obda-reform
//!
//! FOL reformulation for DL-LiteR:
//!
//! * [`perfect_ref`] — the CQ-to-UCQ technique of Calvanese et al. \[13\]
//!   (backward axiom application + reduce/unification fixpoint);
//! * [`factorize_ucq`] — UCQ → USCQ factorization standing in for the
//!   CQ-to-USCQ technique of \[33\];
//! * [`fragment_query`] / [`cover_reformulation`] — fragment queries
//!   (Definitions 2 and 7) and cover-based JUCQ/JUSCQ reformulations
//!   (Definition 3, §5.2);
//! * [`violation_queries`] — consistency checking via reformulation;
//! * [`rdfs_subset`] — the 4-rule RDFS fragment of \[10\], for ablations.

pub mod applicability;
pub mod cover_reform;
pub mod fragment;
pub mod perfectref;
pub mod prune;
pub mod rdfs;
pub mod uscq_factorize;
pub mod violations;

pub use applicability::{specializations, Specialization};
pub use cover_reform::{cover_reformulation, cover_reformulation_juscq, trivial_reformulation};
pub use fragment::{fragment_query, FragmentSpec};
pub use perfectref::{perfect_ref, perfect_ref_pruned, perfect_ref_with_stats, ReformStats};
pub use prune::{arm_provably_empty, data_contained, prune_fol, prune_ucq, PruneStats, PrunedUcq};
pub use rdfs::{is_rdfs_axiom, is_rdfs_tbox, rdfs_subset};
pub use uscq_factorize::factorize_ucq;
pub use violations::{is_consistent_by_reformulation, violation_queries, violation_query};
