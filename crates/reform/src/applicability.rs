//! Backward applicability of DL-LiteR positive inclusions to query atoms,
//! and the atom-specialization function `gr(g, I)` of PerfectRef
//! (Calvanese et al. \[13\]; §2.2 of the paper).
//!
//! An inclusion `I` is applicable to an atom `g` when `g` could hold
//! *because* `I`'s left-hand side held — i.e. `I`'s right-hand side matches
//! `g`'s extension. For role atoms, matching `∃R`-shaped right-hand sides
//! additionally requires the projected-away position to be **unbound**: an
//! existential variable occurring nowhere else (the `_` of the literature).
//! Otherwise the specialization would forget a join.

use obda_dllite::{Axiom, BasicConcept, ConceptId, Role, RoleId, TBox};
use obda_query::{Atom, Term, VarId, CQ};

/// One backward specialization opportunity: applying `axiom` to the atom at
/// `atom_idx` yields `replacement` (which may consume a fresh variable).
#[derive(Debug, Clone)]
pub struct Specialization {
    pub atom_idx: usize,
    pub axiom: Axiom,
    pub replacement: Atom,
}

/// Enumerate every specialization applicable to any atom of `q` under the
/// positive inclusions of `tbox`. `fresh` is the first variable id safe to
/// mint (callers pass `q.fresh_var()`).
pub fn specializations(q: &CQ, tbox: &TBox, fresh: VarId) -> Vec<Specialization> {
    let mut out = Vec::new();
    for (idx, atom) in q.atoms().iter().enumerate() {
        match *atom {
            Atom::Concept(c, t) => concept_atom_specs(tbox, idx, c, t, fresh, &mut out),
            Atom::Role(r, t1, t2) => role_atom_specs(q, tbox, idx, r, t1, t2, fresh, &mut out),
        }
    }
    out
}

/// Specializations of a concept atom `A(t)`: every positive inclusion
/// `X ⊑ A`.
fn concept_atom_specs(
    tbox: &TBox,
    idx: usize,
    concept: ConceptId,
    t: Term,
    fresh: VarId,
    out: &mut Vec<Specialization>,
) {
    for ci in tbox.concept_inclusions_into(BasicConcept::Atomic(concept)) {
        let replacement = lhs_to_atom(ci.lhs, t, fresh);
        out.push(Specialization {
            atom_idx: idx,
            axiom: Axiom::Concept(*ci),
            replacement,
        });
    }
}

/// Specializations of a role atom `R(t1, t2)`:
/// * role inclusions `S ⊑ R` (always applicable);
/// * concept inclusions `X ⊑ ∃R` when `t2` is unbound;
/// * concept inclusions `X ⊑ ∃R⁻` when `t1` is unbound.
#[allow(clippy::too_many_arguments)]
fn role_atom_specs(
    q: &CQ,
    tbox: &TBox,
    idx: usize,
    role: RoleId,
    t1: Term,
    t2: Term,
    fresh: VarId,
    out: &mut Vec<Specialization>,
) {
    // Role inclusions into R (stored normalized: rhs direct).
    for ri in tbox.role_inclusions_into(role) {
        let replacement = role_expr_atom(ri.lhs, t1, t2);
        out.push(Specialization {
            atom_idx: idx,
            axiom: Axiom::Role(*ri),
            replacement,
        });
    }
    // X ⊑ ∃R: applicable when the object position is unbound.
    if is_unbound_term(q, t2) {
        for ci in tbox.concept_inclusions_into(BasicConcept::Exists(Role::direct(role))) {
            let replacement = lhs_to_atom(ci.lhs, t1, fresh);
            out.push(Specialization {
                atom_idx: idx,
                axiom: Axiom::Concept(*ci),
                replacement,
            });
        }
    }
    // X ⊑ ∃R⁻: applicable when the subject position is unbound.
    if is_unbound_term(q, t1) {
        for ci in tbox.concept_inclusions_into(BasicConcept::Exists(Role::inv(role))) {
            let replacement = lhs_to_atom(ci.lhs, t2, fresh);
            out.push(Specialization {
                atom_idx: idx,
                axiom: Axiom::Concept(*ci),
                replacement,
            });
        }
    }
}

/// Is the term an unbound (anonymous-like) variable of `q`?
fn is_unbound_term(q: &CQ, t: Term) -> bool {
    match t {
        Term::Var(v) => q.is_unbound(v),
        Term::Const(_) => false,
    }
}

/// Materialize an inclusion's left-hand side as an atom centred on `t`.
/// `∃P` becomes `P(t, fresh)`; `∃P⁻` becomes `P(fresh, t)` — the fresh
/// variable occurs once, hence stays unbound.
fn lhs_to_atom(lhs: BasicConcept, t: Term, fresh: VarId) -> Atom {
    match lhs {
        BasicConcept::Atomic(c) => Atom::Concept(c, t),
        BasicConcept::Exists(role) => {
            if role.inverse {
                Atom::Role(role.name, Term::Var(fresh), t)
            } else {
                Atom::Role(role.name, t, Term::Var(fresh))
            }
        }
    }
}

/// Materialize a role expression over the pair `(t1, t2)`: `P` keeps the
/// order, `P⁻` swaps it.
fn role_expr_atom(role: Role, t1: Term, t2: Term) -> Atom {
    if role.inverse {
        Atom::Role(role.name, t2, t1)
    } else {
        Atom::Role(role.name, t1, t2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::example1_tbox;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// Example 4's first steps: the specializations of
    /// q(x) ← PhDStudent(x) ∧ worksWith(y, x).
    #[test]
    fn example4_first_level() {
        let (voc, tbox) = example1_tbox();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(phd, v(0)), Atom::Role(works, v(1), v(0))],
        );
        let specs = specializations(&q, &tbox, q.fresh_var());
        let replacements: Vec<Atom> = specs.iter().map(|s| s.replacement).collect();
        // (T4) worksWith ⊑ worksWith⁻ backward on worksWith(y, x) gives
        // worksWith(x, y) (paper: q2's role atom).
        assert!(replacements.contains(&Atom::Role(works, v(0), v(1))));
        // (T5) supervisedBy ⊑ worksWith gives supervisedBy(y, x).
        assert!(replacements.contains(&Atom::Role(sup, v(1), v(0))));
        // (T6) ∃supervisedBy ⊑ PhDStudent gives supervisedBy(x, fresh).
        assert!(replacements.contains(&Atom::Role(sup, v(0), v(2))));
        assert_eq!(specs.len(), 3);
    }

    /// ∃R-shaped inclusions only apply when the projected position is
    /// unbound.
    #[test]
    fn exists_requires_unbound_position() {
        let (voc, tbox) = example1_tbox();
        let sup = voc.find_role("supervisedBy").unwrap();
        let phd = voc.find_concept("PhDStudent").unwrap();
        // q(x) ← supervisedBy(x, y) ∧ PhDStudent(y): y is bound (shared),
        // so (T6) cannot rewrite PhDStudent(y)… (T6) goes *into*
        // PhDStudent so it can; but nothing rewrites supervisedBy.
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Role(sup, v(0), v(1)), Atom::Concept(phd, v(1))],
        );
        let specs = specializations(&q, &tbox, q.fresh_var());
        // Only (T6) on PhDStudent(y) applies: supervisedBy(y, fresh).
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].replacement, Atom::Role(sup, v(1), v(2)));

        // Same query but with y unbound in the role atom:
        // q(x) ← supervisedBy(x, y): still nothing into supervisedBy
        // (no axiom concludes ∃supervisedBy in Example 1 — T6 has it on
        // the left).
        let q2 = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(sup, v(0), v(1))]);
        assert!(specializations(&q2, &tbox, q2.fresh_var()).is_empty());
    }

    #[test]
    fn exists_applies_on_unbound_object() {
        // TBox: Graduate ⊑ ∃supervisedBy (Example 7). Atom
        // supervisedBy(x, y) with y unbound → Graduate(x).
        let (voc, tbox) = obda_dllite::example7_tbox();
        let sup = voc.find_role("supervisedBy").unwrap();
        let grad = voc.find_concept("Graduate").unwrap();
        let q = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(sup, v(0), v(1))]);
        let specs = specializations(&q, &tbox, q.fresh_var());
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].replacement, Atom::Concept(grad, v(0)));
    }

    #[test]
    fn inverse_exists_applies_on_unbound_subject() {
        // A ⊑ ∃r⁻ rewrites r(x, y) with x unbound into A(y).
        let mut b = obda_dllite::TBoxBuilder::new();
        b.sub("A", "exists r-");
        let (voc, tbox) = b.finish();
        let r = voc.find_role("r").unwrap();
        let a = voc.find_concept("A").unwrap();
        // head = y (so x is unbound).
        let q = CQ::with_var_head(vec![VarId(1)], vec![Atom::Role(r, v(0), v(1))]);
        let specs = specializations(&q, &tbox, q.fresh_var());
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].replacement, Atom::Concept(a, v(1)));
        // With x in the head, nothing applies.
        let q2 = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(r, v(0), v(1))]);
        // y is unbound but the axiom is into ∃r⁻, needing x unbound.
        assert!(specializations(&q2, &tbox, q2.fresh_var()).is_empty());
    }

    #[test]
    fn constants_are_never_unbound() {
        let mut b = obda_dllite::TBoxBuilder::new();
        b.sub("A", "exists r");
        let (mut voc, tbox) = b.finish();
        let r = voc.find_role("r").unwrap();
        let c = voc.individual("c");
        // r(x, c): object is a constant — A ⊑ ∃r must not apply.
        let q = CQ::new(
            vec![Term::Var(VarId(0))],
            vec![Atom::Role(r, v(0), Term::Const(c))],
        );
        assert!(specializations(&q, &tbox, q.fresh_var()).is_empty());
    }

    #[test]
    fn inverse_role_inclusion_swaps_arguments() {
        // r ⊑ s⁻ (normalized r⁻ ⊑ s): backward on s(x, y) yields r(y, x).
        let mut b = obda_dllite::TBoxBuilder::new();
        b.sub_role("r", "s-");
        let (voc, tbox) = b.finish();
        let r = voc.find_role("r").unwrap();
        let s = voc.find_role("s").unwrap();
        let q = CQ::with_var_head(vec![VarId(0), VarId(1)], vec![Atom::Role(s, v(0), v(1))]);
        let specs = specializations(&q, &tbox, q.fresh_var());
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].replacement, Atom::Role(r, v(1), v(0)));
    }
}
