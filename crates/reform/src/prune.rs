//! Constraint-driven pruning of reformulations (Hovland et al.,
//! arXiv 1605.04263, adapted to the cover-based pipeline).
//!
//! A UCQ reformulation unions every TBox-entailed specialization of the
//! input CQ, because the data may be incomplete. Given a
//! [`ConstraintSet`] mined from the *actual* snapshot, two kinds of arms
//! are provably redundant on that snapshot:
//!
//! * **provably empty** — an arm mentioning a predicate whose extent is
//!   empty can return no rows;
//! * **data-subsumed** — an arm whose answers are contained in a
//!   retained arm's answers *on any database satisfying the
//!   constraints*, witnessed by a constraint-relaxed homomorphism
//!   ([`data_contained`]).
//!
//! Both checks are per-snapshot facts, so pruned plans are only valid
//! for the generation whose constraints produced them — the serving
//! layer guarantees this by caching plans and constraints under the
//! same generation key.
//!
//! Soundness of [`data_contained`]`(sub, keeper, cons)`: it searches for
//! a map `h` from `keeper`'s variables to `sub`'s terms such that heads
//! agree positionally and every `keeper` atom `a` is *covered* by some
//! `sub` atom `t` — satisfaction of `t` implies satisfaction of `h(a)`
//! under the mined extent inclusions (with inverse-role position swaps,
//! and concept↔role crossings through `∃R`/`∃R⁻` extents). For any row
//! of `sub` with witness assignment `σ`, `σ∘h` (extended with the
//! existential witnesses the `∃`-coverages provide for `keeper`'s
//! unbound variables) then satisfies `keeper` with the same head row —
//! so dropping `sub` loses nothing. With an empty constraint set the
//! relation degenerates to the classic homomorphism containment used by
//! UCQ minimization.

use std::collections::HashMap;

use obda_dllite::constraints::ConstraintSet;
use obda_dllite::{BasicConcept, Role};
use obda_query::{Atom, FolQuery, Term, VarId, CQ, JUCQ, UCQ};

/// Counters from one pruning pass (surfaced by EXPLAIN, the metrics
/// registry, and the benches).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PruneStats {
    /// Union arms examined.
    pub arms_in: usize,
    /// Arms dropped because a predicate's extent is empty.
    pub empty_pruned: usize,
    /// Arms dropped because a retained arm data-subsumes them.
    pub subsumed_pruned: usize,
    /// Arms kept.
    pub kept: usize,
}

impl PruneStats {
    pub fn total_pruned(&self) -> usize {
        self.empty_pruned + self.subsumed_pruned
    }

    fn absorb(&mut self, other: &PruneStats) {
        self.arms_in += other.arms_in;
        self.empty_pruned += other.empty_pruned;
        self.subsumed_pruned += other.subsumed_pruned;
        self.kept += other.kept;
    }
}

/// Result of pruning one UCQ: the survivors plus the dropped arms, kept
/// so harnesses can check every drop against a reference evaluator.
#[derive(Debug, Clone)]
pub struct PrunedUcq {
    pub ucq: UCQ,
    /// Arms dropped by the emptiness check.
    pub empty_arms: Vec<CQ>,
    /// Arms dropped by data-subsumption.
    pub subsumed_arms: Vec<CQ>,
}

impl PrunedUcq {
    pub fn stats(&self) -> PruneStats {
        PruneStats {
            arms_in: self.ucq.len() + self.empty_arms.len() + self.subsumed_arms.len(),
            empty_pruned: self.empty_arms.len(),
            subsumed_pruned: self.subsumed_arms.len(),
            kept: self.ucq.len(),
        }
    }
}

/// Does the arm mention a predicate with a provably empty extent?
pub fn arm_provably_empty(cq: &CQ, cons: &ConstraintSet) -> bool {
    cq.atoms().iter().any(|a| cons.pred_is_empty(a.pred()))
}

/// Prune a UCQ against mined constraints. The union is never emptied
/// completely: if every arm is provably empty, the cheapest one is kept
/// as a representative so downstream SQL generation still has a valid
/// statement (it evaluates over empty extents at negligible cost).
pub fn prune_ucq(ucq: &UCQ, cons: &ConstraintSet) -> PrunedUcq {
    let mut live: Vec<CQ> = Vec::new();
    let mut empty_arms: Vec<CQ> = Vec::new();
    for cq in ucq.cqs() {
        if arm_provably_empty(cq, cons) {
            empty_arms.push(cq.clone());
        } else {
            live.push(cq.clone());
        }
    }
    if live.is_empty() {
        if let Some(pos) = (0..empty_arms.len()).min_by_key(|&i| empty_arms[i].num_atoms()) {
            live.push(empty_arms.remove(pos));
        }
    }

    // Pairwise data-subsumption, mirroring `minimize_ucq`: arm `j` is
    // dropped when a still-kept arm `i` data-contains it; mutual
    // containment keeps the earlier arm (deterministic given the input
    // order, which the reformulation fixes).
    let n = live.len();
    let mut keep = vec![true; n];
    for i in 0..n {
        if !keep[i] {
            continue;
        }
        for j in 0..n {
            if i == j || !keep[j] || !keep[i] {
                continue;
            }
            if data_contained(&live[j], &live[i], cons) {
                if data_contained(&live[i], &live[j], cons) && j < i {
                    keep[i] = false;
                } else {
                    keep[j] = false;
                }
            }
        }
    }
    let mut kept_cqs: Vec<CQ> = Vec::new();
    let mut subsumed_arms: Vec<CQ> = Vec::new();
    for (cq, k) in live.into_iter().zip(&keep) {
        if *k {
            kept_cqs.push(cq);
        } else {
            subsumed_arms.push(cq);
        }
    }
    PrunedUcq {
        ucq: UCQ::from_cqs(ucq.head().to_vec(), kept_cqs),
        empty_arms,
        subsumed_arms,
    }
}

/// Prune any reformulation shape. UCQs are pruned directly; JUCQs are
/// pruned component-wise (sound: each component's answer relation is
/// preserved, hence so is the join). CQ and the factorized SCQ shapes
/// pass through unchanged.
pub fn prune_fol(fol: &FolQuery, cons: &ConstraintSet) -> (FolQuery, PruneStats) {
    match fol {
        FolQuery::Ucq(u) => {
            let p = prune_ucq(u, cons);
            let stats = p.stats();
            (FolQuery::Ucq(p.ucq), stats)
        }
        FolQuery::Jucq(j) => {
            let mut stats = PruneStats::default();
            let comps: Vec<UCQ> = j
                .components()
                .iter()
                .map(|c| {
                    let p = prune_ucq(c, cons);
                    stats.absorb(&p.stats());
                    p.ucq
                })
                .collect();
            (FolQuery::Jucq(JUCQ::new(j.head().to_vec(), comps)), stats)
        }
        other => (other.clone(), PruneStats::default()),
    }
}

/// Is `answers(sub) ⊆ answers(keeper)` on every database satisfying
/// `cons`? Sufficient check via a constraint-relaxed homomorphism from
/// `keeper` into `sub` (see the module docs for the soundness argument).
/// Reflexive over the classic containment: with no mined constraints
/// this is exactly `contained_in(sub, keeper)`.
pub fn data_contained(sub: &CQ, keeper: &CQ, cons: &ConstraintSet) -> bool {
    if keeper.head().len() != sub.head().len() {
        return false;
    }
    let mut bindings: HashMap<VarId, Term> = HashMap::new();
    // Seed the mapping from the heads: position i of keeper must land on
    // position i of sub.
    for (kt, st) in keeper.head().iter().zip(sub.head()) {
        if !bind(&mut bindings, *kt, *st) {
            return false;
        }
    }
    let unbound: Vec<VarId> = keeper
        .all_vars()
        .into_iter()
        .filter(|&v| keeper.is_unbound(v))
        .collect();
    let atoms = keeper.atoms();
    search(atoms, 0, sub, &unbound, &mut bindings, cons)
}

/// Try to extend the mapping with `keeper-term ↦ sub-term`.
fn bind(bindings: &mut HashMap<VarId, Term>, kt: Term, st: Term) -> bool {
    match kt {
        Term::Const(c) => st == Term::Const(c),
        Term::Var(v) => match bindings.get(&v) {
            Some(&prev) => prev == st,
            None => {
                bindings.insert(v, st);
                true
            }
        },
    }
}

/// One way a `sub` atom can cover a `keeper` atom: the list of
/// positional `(keeper-term, sub-term)` pairs that must unify. Pairs
/// omitted by `∃`-coverage correspond to unbound keeper variables whose
/// witness the constraint supplies.
fn coverage_modes(
    a: &Atom,
    t: &Atom,
    unbound: &[VarId],
    cons: &ConstraintSet,
) -> Vec<Vec<(Term, Term)>> {
    let is_unbound = |term: &Term| matches!(term, Term::Var(v) if unbound.contains(v));
    let mut modes = Vec::new();
    match *a {
        Atom::Concept(c, tau) => {
            let target = BasicConcept::Atomic(c);
            match *t {
                Atom::Concept(c2, s1) => {
                    if cons.unary_included(BasicConcept::Atomic(c2), target) {
                        modes.push(vec![(tau, s1)]);
                    }
                }
                Atom::Role(r2, s1, s2) => {
                    if cons.unary_included(BasicConcept::Exists(Role::direct(r2)), target) {
                        modes.push(vec![(tau, s1)]);
                    }
                    if cons.unary_included(BasicConcept::Exists(Role::inv(r2)), target) {
                        modes.push(vec![(tau, s2)]);
                    }
                }
            }
        }
        Atom::Role(r, tau1, tau2) => {
            let direct = Role::direct(r);
            // Exact coverage: both positions map.
            if let Atom::Role(r2, s1, s2) = *t {
                if cons.role_included(Role::direct(r2), direct) {
                    modes.push(vec![(tau1, s1), (tau2, s2)]);
                }
                if cons.role_included(Role::inv(r2), direct) {
                    modes.push(vec![(tau1, s2), (tau2, s1)]);
                }
            }
            // ∃-coverage: an unbound object variable only needs a
            // witness, which membership in ext(∃r) provides.
            if is_unbound(&tau2) {
                let dom = BasicConcept::Exists(direct);
                match *t {
                    Atom::Concept(c2, s1) => {
                        if cons.unary_included(BasicConcept::Atomic(c2), dom) {
                            modes.push(vec![(tau1, s1)]);
                        }
                    }
                    Atom::Role(r2, s1, s2) => {
                        if cons.unary_included(BasicConcept::Exists(Role::direct(r2)), dom) {
                            modes.push(vec![(tau1, s1)]);
                        }
                        if cons.unary_included(BasicConcept::Exists(Role::inv(r2)), dom) {
                            modes.push(vec![(tau1, s2)]);
                        }
                    }
                }
            }
            // Symmetric for an unbound subject variable via ext(∃r⁻).
            if is_unbound(&tau1) {
                let rng = BasicConcept::Exists(direct.inverted());
                match *t {
                    Atom::Concept(c2, s1) => {
                        if cons.unary_included(BasicConcept::Atomic(c2), rng) {
                            modes.push(vec![(tau2, s1)]);
                        }
                    }
                    Atom::Role(r2, s1, s2) => {
                        if cons.unary_included(BasicConcept::Exists(Role::direct(r2)), rng) {
                            modes.push(vec![(tau2, s1)]);
                        }
                        if cons.unary_included(BasicConcept::Exists(Role::inv(r2)), rng) {
                            modes.push(vec![(tau2, s2)]);
                        }
                    }
                }
            }
        }
    }
    modes
}

/// Backtracking search: cover keeper atom `idx` and onwards.
fn search(
    atoms: &[Atom],
    idx: usize,
    sub: &CQ,
    unbound: &[VarId],
    bindings: &mut HashMap<VarId, Term>,
    cons: &ConstraintSet,
) -> bool {
    let Some(a) = atoms.get(idx) else {
        return true;
    };
    for t in sub.atoms() {
        for mode in coverage_modes(a, t, unbound, cons) {
            let mut added: Vec<VarId> = Vec::new();
            let mut ok = true;
            for (kt, st) in mode {
                let newly = matches!(kt, Term::Var(v) if !bindings.contains_key(&v));
                if !bind(bindings, kt, st) {
                    ok = false;
                    break;
                }
                if newly {
                    if let Term::Var(v) = kt {
                        added.push(v);
                    }
                }
            }
            if ok && search(atoms, idx + 1, sub, unbound, bindings, cons) {
                return true;
            }
            for v in added {
                bindings.remove(&v);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{ABox, TBoxBuilder};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// PhDStudent ⊑ Student, data complete for the pair; advises domain
    /// complete for Professor; Lecturer empty.
    fn fixture() -> (obda_dllite::Vocabulary, ConstraintSet) {
        let mut b = TBoxBuilder::new();
        b.sub("PhDStudent", "Student")
            .sub("Lecturer", "Student")
            .sub("exists advises", "Professor")
            .sub("Professor", "exists advises");
        let (mut voc, tbox) = b.finish();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let student = voc.find_concept("Student").unwrap();
        let prof = voc.find_concept("Professor").unwrap();
        let advises = voc.find_role("advises").unwrap();
        let a = voc.individual("a");
        let b_ = voc.individual("b");
        let mut abox = ABox::new();
        abox.assert_concept(phd, a);
        abox.assert_concept(student, a);
        abox.assert_concept(student, b_);
        abox.assert_role(advises, a, b_);
        abox.assert_concept(prof, a);
        let cons = ConstraintSet::mine_from_abox(&tbox, &abox);
        (voc, cons)
    }

    #[test]
    fn empty_arms_are_dropped() {
        let (voc, cons) = fixture();
        let student = voc.find_concept("Student").unwrap();
        let lecturer = voc.find_concept("Lecturer").unwrap();
        let u = UCQ::from_cqs(
            vec![v(0)],
            [
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(student, v(0))]),
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(lecturer, v(0))]),
            ],
        );
        let p = prune_ucq(&u, &cons);
        assert_eq!(p.ucq.len(), 1);
        assert_eq!(p.empty_arms.len(), 1);
        assert_eq!(p.stats().empty_pruned, 1);
    }

    #[test]
    fn complete_specialization_is_subsumed() {
        let (voc, cons) = fixture();
        let student = voc.find_concept("Student").unwrap();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let u = UCQ::from_cqs(
            vec![v(0)],
            [
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(student, v(0))]),
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(phd, v(0))]),
            ],
        );
        let p = prune_ucq(&u, &cons);
        assert_eq!(p.ucq.len(), 1, "PhD arm is covered by the Student arm");
        assert_eq!(p.subsumed_arms.len(), 1);
        assert!(matches!(
            p.ucq.cqs()[0].atoms()[0],
            Atom::Concept(c, _) if c == student
        ));
    }

    #[test]
    fn incomplete_specialization_is_kept() {
        let (voc, cons) = fixture();
        // Student does not data-include PhDStudent in the other
        // direction, so a Student arm is NOT pruned by a PhD arm.
        let student = voc.find_concept("Student").unwrap();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let u = UCQ::from_cqs(
            vec![v(0)],
            [
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(phd, v(0))]),
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(student, v(0))]),
            ],
        );
        // Keeper candidates: the PhD arm cannot absorb the Student arm.
        let p = prune_ucq(&u, &cons);
        assert_eq!(p.ucq.len(), 1, "but PhD is absorbed by Student");
        // The kept arm must be the Student one.
        assert!(matches!(
            p.ucq.cqs()[0].atoms()[0],
            Atom::Concept(c, _) if c == student
        ));
    }

    #[test]
    fn exists_coverage_handles_unbound_object() {
        let (voc, cons) = fixture();
        // keeper: q(x) <- advises(x, y) with y unbound; sub: q(x) <-
        // Professor(x). ext(Professor) ⊆ ext(∃advises) was mined, so the
        // Professor arm is data-contained in the advises arm.
        let prof = voc.find_concept("Professor").unwrap();
        let advises = voc.find_role("advises").unwrap();
        let keeper = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(advises, v(0), v(1))]);
        let sub = CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(prof, v(0))]);
        assert!(data_contained(&sub, &keeper, &cons));
        // A bound object variable must not use the ∃-coverage.
        let keeper_bound = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Role(advises, v(0), v(1)),
                Atom::Concept(voc.find_concept("Student").unwrap(), v(1)),
            ],
        );
        assert!(!data_contained(&sub, &keeper_bound, &cons));
    }

    #[test]
    fn plain_homomorphism_still_works_without_constraints() {
        let cons = ConstraintSet::default();
        let r = obda_dllite::RoleId(0);
        let general = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(r, v(0), v(1))]);
        let special = CQ::with_var_head(vec![VarId(0)], vec![Atom::Role(r, v(0), v(0))]);
        assert!(data_contained(&special, &general, &cons));
        assert!(!data_contained(&general, &special, &cons));
    }

    #[test]
    fn all_empty_union_keeps_a_representative() {
        let (voc, cons) = fixture();
        let lecturer = voc.find_concept("Lecturer").unwrap();
        let u = UCQ::single(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(lecturer, v(0))],
        ));
        let p = prune_ucq(&u, &cons);
        assert_eq!(p.ucq.len(), 1, "never emit an empty union");
        assert!(p.empty_arms.is_empty());
    }

    #[test]
    fn jucq_components_are_pruned_independently() {
        let (voc, cons) = fixture();
        let student = voc.find_concept("Student").unwrap();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let advises = voc.find_role("advises").unwrap();
        let c1 = UCQ::from_cqs(
            vec![v(0)],
            [
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(student, v(0))]),
                CQ::with_var_head(vec![VarId(0)], vec![Atom::Concept(phd, v(0))]),
            ],
        );
        let c2 = UCQ::single(CQ::with_var_head(
            vec![VarId(0), VarId(1)],
            vec![Atom::Role(advises, v(0), v(1))],
        ));
        let j = FolQuery::Jucq(JUCQ::new(vec![v(0), v(1)], vec![c1, c2]));
        let (pruned, stats) = prune_fol(&j, &cons);
        assert_eq!(stats.arms_in, 3);
        assert_eq!(stats.subsumed_pruned, 1);
        assert_eq!(stats.kept, 2);
        match pruned {
            FolQuery::Jucq(j2) => assert_eq!(j2.total_cqs(), 2),
            other => panic!("shape preserved, got {other:?}"),
        }
    }
}
