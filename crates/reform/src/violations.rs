//! Consistency checking through reformulation.
//!
//! §2.1: a KB is consistent iff no (explicit or inferred) fact contradicts
//! a constraint with negation. Each negative inclusion `B1 ⊑ ¬B2` induces
//! a Boolean *violation query* `q() ← B1(x) ∧ B2(x)`; the KB is
//! inconsistent iff some violation query's **UCQ reformulation** (which
//! folds in all positive constraints) evaluates to true on the plain ABox.
//! This is the pure reformulation-based route — used in production paths —
//! and is cross-checked against the chase-based check of `obda-dllite` in
//! tests.

use obda_dllite::{ABox, Axiom, BasicConcept, Role, TBox};
use obda_query::{eval_over_abox, Atom, FolQuery, Term, VarId, CQ};

use crate::perfectref::perfect_ref;

/// Build the Boolean violation query of one negative axiom.
///
/// `B1 ⊑ ¬B2` → `q() ← atoms(B1, x) ∧ atoms(B2, x)`;
/// `R1 ⊑ ¬R2` → `q() ← R1(x, y) ∧ R2(x, y)` (expressions orientated).
pub fn violation_query(ax: &Axiom) -> Option<CQ> {
    let x = VarId(0);
    match ax {
        Axiom::Concept(ci) if ci.negated => {
            let mut fresh = 1u32;
            let a1 = basic_atom(ci.lhs, x, &mut fresh);
            let a2 = basic_atom(ci.rhs, x, &mut fresh);
            Some(CQ::with_var_head(vec![], vec![a1, a2]))
        }
        Axiom::Role(ri) if ri.negated => {
            let y = VarId(1);
            let a1 = role_atom(ri.lhs, x, y);
            let a2 = role_atom(ri.rhs, x, y);
            Some(CQ::with_var_head(vec![], vec![a1, a2]))
        }
        _ => None,
    }
}

fn basic_atom(b: BasicConcept, x: VarId, fresh: &mut u32) -> Atom {
    match b {
        BasicConcept::Atomic(c) => Atom::Concept(c, Term::Var(x)),
        BasicConcept::Exists(role) => {
            let w = VarId(*fresh);
            *fresh += 1;
            if role.inverse {
                Atom::Role(role.name, Term::Var(w), Term::Var(x))
            } else {
                Atom::Role(role.name, Term::Var(x), Term::Var(w))
            }
        }
    }
}

fn role_atom(role: Role, x: VarId, y: VarId) -> Atom {
    if role.inverse {
        Atom::Role(role.name, Term::Var(y), Term::Var(x))
    } else {
        Atom::Role(role.name, Term::Var(x), Term::Var(y))
    }
}

/// All violation queries of a TBox (one per negative axiom).
pub fn violation_queries(tbox: &TBox) -> Vec<CQ> {
    tbox.negative_axioms().filter_map(violation_query).collect()
}

/// Reformulation-based consistency: reformulate every violation query and
/// evaluate over the plain ABox.
pub fn is_consistent_by_reformulation(tbox: &TBox, abox: &ABox) -> bool {
    for vq in violation_queries(tbox) {
        let ucq = perfect_ref(&vq, tbox);
        let ans = eval_over_abox(abox, &FolQuery::Ucq(ucq));
        if !ans.is_empty() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{example1_abox, example1_tbox, is_consistent};
    use obda_query::testkit::{random_abox, Rng};

    #[test]
    fn example1_consistent_by_reformulation() {
        let (mut voc, tbox) = example1_tbox();
        let abox = example1_abox(&mut voc);
        assert!(is_consistent_by_reformulation(&tbox, &abox));
    }

    #[test]
    fn phd_supervisor_detected_by_reformulation() {
        let (mut voc, tbox) = example1_tbox();
        let mut abox = example1_abox(&mut voc);
        let sup = voc.find_role("supervisedBy").unwrap();
        let damian = voc.find_individual("Damian").unwrap();
        let alice = voc.individual("Alice");
        abox.assert_role(sup, alice, damian);
        assert!(!is_consistent_by_reformulation(&tbox, &abox));
    }

    #[test]
    fn violation_query_shape_for_concept_disjointness() {
        let (voc, tbox) = example1_tbox();
        let vqs = violation_queries(&tbox);
        assert_eq!(vqs.len(), 1, "Example 1 has one negative axiom (T7)");
        let vq = &vqs[0];
        assert!(vq.is_boolean());
        // PhDStudent ⊑ ¬∃supervisedBy⁻ → q() ← PhDStudent(x) ∧
        // supervisedBy(w, x).
        assert_eq!(vq.num_atoms(), 2);
        let sup = voc.find_role("supervisedBy").unwrap();
        assert!(vq
            .atoms()
            .iter()
            .any(|a| matches!(a, Atom::Role(r, _, _) if *r == sup)));
    }

    #[test]
    fn role_disjointness_violation_query() {
        let mut b = obda_dllite::TBoxBuilder::new();
        b.disjoint_role("r", "s-");
        let (voc, tbox) = b.finish();
        let vqs = violation_queries(&tbox);
        assert_eq!(vqs.len(), 1);
        let r = voc.find_role("r").unwrap();
        let s = voc.find_role("s").unwrap();
        // r ⊑ ¬s⁻ normalizes to r⁻ ⊑ ¬s, so the violation query is
        // q() ← r(y, x) ∧ s(x, y) — the same constraint modulo renaming.
        let expected = CQ::with_var_head(
            vec![],
            vec![
                Atom::Role(r, Term::Var(VarId(1)), Term::Var(VarId(0))),
                Atom::Role(s, Term::Var(VarId(0)), Term::Var(VarId(1))),
            ],
        );
        assert!(obda_query::same_modulo_renaming(&vqs[0], &expected));
    }

    /// Cross-validation: reformulation-based consistency agrees with the
    /// chase-based check on randomized KBs with disjointness.
    #[test]
    fn agrees_with_chase_based_consistency() {
        for seed in 0..30u64 {
            let mut rng = Rng::new(seed);
            let mut b = obda_dllite::TBoxBuilder::new();
            b.sub("A", "B")
                .sub("exists r", "C")
                .sub("C", "exists s")
                .sub_role("s", "r")
                .disjoint("B", "C");
            let (mut voc, tbox) = b.finish();
            let shape = obda_query::testkit::KbShape {
                num_concepts: voc.num_concepts(),
                num_roles: voc.num_roles(),
                num_individuals: 6,
                num_facts: 10,
                ..Default::default()
            };
            let abox = random_abox(&mut rng, &mut voc, &shape);
            let by_chase = is_consistent(&voc, &tbox, &abox);
            let by_reform = is_consistent_by_reformulation(&tbox, &abox);
            assert_eq!(by_chase, by_reform, "seed {seed}");
        }
    }
}
