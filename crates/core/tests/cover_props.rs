//! Property tests of the cover machinery: root-cover minimality
//! (Proposition 1), lattice structure (Theorem 2), Gq invariants, and GDL
//! termination/monotonicity.

use proptest::prelude::*;

use obda_core::{
    bell_number, enumerate_generalized_covers, enumerate_safe_covers, gdl, is_safe, precedes,
    root_cover, Cover, Fragment, GdlConfig, QueryAnalysis, StructuralEstimator,
};
use obda_dllite::Dependencies;
use obda_query::testkit::{random_connected_cq, random_tbox, KbShape, Rng};

fn fixture(seed: u64, atoms: usize) -> (obda_dllite::TBox, QueryAnalysis, obda_query::CQ) {
    let mut rng = Rng::new(seed);
    let (voc, tbox) = random_tbox(&mut rng, &KbShape::default());
    let cq = random_connected_cq(&mut rng, &voc, atoms, 2);
    let deps = Dependencies::compute(&voc, &tbox);
    let analysis = QueryAnalysis::new(&cq, &deps);
    (tbox, analysis, cq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The root cover is always safe, and its fragment count bounds the
    /// lattice by the Bell number.
    #[test]
    fn root_cover_is_safe_and_bounds_lattice(seed in 0u64..5_000, atoms in 1usize..5) {
        let (_tbox, analysis, _cq) = fixture(seed, atoms);
        let croot = root_cover(&analysis);
        prop_assert!(is_safe(&analysis, &croot));
        let lq = enumerate_safe_covers(&analysis, 0);
        prop_assert!(!lq.is_empty());
        prop_assert!((lq.len() as u64) <= bell_number(croot.num_fragments()));
        // Croot is in the lattice, and precedes every safe cover
        // (Proposition 1 / Theorem 2).
        prop_assert!(lq.contains(&croot));
        for c in &lq {
            prop_assert!(is_safe(&analysis, c));
            prop_assert!(precedes(&croot, c), "Croot is the finest cover");
        }
    }

    /// Every generalized cover's g-part is safe and f-parts are valid.
    #[test]
    fn gq_invariants(seed in 0u64..5_000, atoms in 2usize..5) {
        let (_tbox, analysis, cq) = fixture(seed, atoms);
        let gq = enumerate_generalized_covers(&analysis, 50);
        for cover in &gq.covers {
            prop_assert!(cover.covers_all(cq.num_atoms()));
            prop_assert!(cover.no_inclusion());
            let base = Cover::new(
                cover.fragments().iter().map(|fr| Fragment::simple(fr.g)).collect(),
            );
            prop_assert!(is_safe(&analysis, &base));
        }
    }

    /// GDL terminates, returns a finite cost, and never returns an unsafe
    /// g-part.
    #[test]
    fn gdl_terminates_with_safe_cover(seed in 0u64..5_000, atoms in 1usize..5) {
        let (tbox, analysis, cq) = fixture(seed, atoms);
        let out = gdl(&cq, &tbox, &analysis, &StructuralEstimator, &GdlConfig::default());
        prop_assert!(out.cost.is_finite());
        let base = Cover::new(
            out.cover.fragments().iter().map(|fr| Fragment::simple(fr.g)).collect(),
        );
        prop_assert!(is_safe(&analysis, &base));
        prop_assert!(out.cover.covers_all(cq.num_atoms()));
        // The search visited at least the root cover.
        prop_assert!(out.explored_simple + out.explored_generalized >= 1);
    }

    /// The GDL result never costs more than the root cover (greedy descent
    /// only moves on improvement).
    #[test]
    fn gdl_never_worse_than_start(seed in 0u64..5_000, atoms in 1usize..5) {
        let (tbox, analysis, cq) = fixture(seed, atoms);
        let mut cache = obda_core::ReformCache::new(&cq, &tbox, true);
        let croot = root_cover(&analysis);
        let start = obda_core::CostEstimator::estimate(
            &StructuralEstimator,
            &obda_query::FolQuery::Jucq(cache.jucq_for(&croot)),
        );
        let out = gdl(&cq, &tbox, &analysis, &StructuralEstimator, &GdlConfig::default());
        prop_assert!(out.cost <= start + 1e-9);
    }
}
