//! Cost estimation abstraction — the `ε` of the paper's Problem 1.
//!
//! The framework is parametric in a cost estimation function for FOL
//! queries evaluated through an RDBMS. Two families are used in the
//! evaluation (§6.1): the engine's own estimation (`explain` /
//! `db2expln`), and an external textbook model over data statistics. Both
//! live in `obda-rdbms`; this crate defines the trait plus an instrumented
//! wrapper (for the §6.4 timing breakdown) and a trivial structural
//! estimator used in unit tests.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use obda_query::FolQuery;

/// A cost estimation function `ε` over FOL queries.
pub trait CostEstimator {
    /// Estimated evaluation cost (abstract work units; lower is better).
    fn estimate(&self, q: &FolQuery) -> f64;

    /// Short display name, e.g. `"ext"` or `"rdbms"`.
    fn name(&self) -> &str {
        "est"
    }
}

/// Wraps an estimator, counting calls and accumulated wall time — §6.4
/// reports that "most of GDL's running time is spent estimating costs".
///
/// Counters are atomic (relaxed ordering: they are independent monotone
/// tallies, not synchronization points), so an instrumented pipeline stays
/// `Sync` and cost estimation can run on serving-layer worker threads.
pub struct InstrumentedEstimator<'a, E: CostEstimator + ?Sized> {
    inner: &'a E,
    calls: AtomicUsize,
    elapsed_nanos: AtomicU64,
}

impl<'a, E: CostEstimator + ?Sized> InstrumentedEstimator<'a, E> {
    pub fn new(inner: &'a E) -> Self {
        InstrumentedEstimator {
            inner,
            calls: AtomicUsize::new(0),
            elapsed_nanos: AtomicU64::new(0),
        }
    }

    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_nanos.load(Ordering::Relaxed))
    }
}

impl<E: CostEstimator + ?Sized> CostEstimator for InstrumentedEstimator<'_, E> {
    fn estimate(&self, q: &FolQuery) -> f64 {
        let start = std::time::Instant::now();
        let cost = self.inner.estimate(q);
        self.elapsed_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.calls.fetch_add(1, Ordering::Relaxed);
        cost
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// A deterministic structural estimator for tests: total atom count plus a
/// penalty per union term. It prefers factored reformulations over flat
/// UCQs, which is enough to drive the search algorithms in unit tests
/// without a storage engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct StructuralEstimator;

impl CostEstimator for StructuralEstimator {
    fn estimate(&self, q: &FolQuery) -> f64 {
        let atoms = q.total_atoms() as f64;
        let unions = q.equivalent_cq_count() as f64;
        atoms + 0.1 * unions
    }

    fn name(&self) -> &str {
        "structural"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::ConceptId;
    use obda_query::{Atom, Term, VarId, CQ, UCQ};

    fn tiny_query() -> FolQuery {
        FolQuery::Ucq(UCQ::single(CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(ConceptId(0), Term::Var(VarId(0)))],
        )))
    }

    #[test]
    fn structural_estimator_prefers_fewer_atoms() {
        let small = tiny_query();
        let big = FolQuery::Ucq(UCQ::from_cqs(
            vec![Term::Var(VarId(0))],
            (0..5).map(|i| {
                CQ::with_var_head(
                    vec![VarId(0)],
                    vec![Atom::Concept(ConceptId(i), Term::Var(VarId(0)))],
                )
            }),
        ));
        let e = StructuralEstimator;
        assert!(e.estimate(&small) < e.estimate(&big));
    }

    /// Compile-time contract: estimator pipelines must be shareable across
    /// serving-layer worker threads (this fails to compile, not at
    /// runtime, if interior mutability regresses to `Cell`).
    #[test]
    fn instrumented_estimator_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StructuralEstimator>();
        assert_send_sync::<InstrumentedEstimator<'_, StructuralEstimator>>();
    }

    #[test]
    fn instrumented_counts_calls_from_multiple_threads() {
        let inner = StructuralEstimator;
        let inst = InstrumentedEstimator::new(&inner);
        let q = tiny_query();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        inst.estimate(&q);
                    }
                });
            }
        });
        assert_eq!(inst.calls(), 40);
    }

    #[test]
    fn instrumented_counts_calls_and_time() {
        let inner = StructuralEstimator;
        let inst = InstrumentedEstimator::new(&inner);
        let q = tiny_query();
        for _ in 0..3 {
            inst.estimate(&q);
        }
        assert_eq!(inst.calls(), 3);
        assert_eq!(inst.name(), "structural");
        // elapsed() is monotone, possibly zero on coarse clocks.
        let _ = inst.elapsed();
    }
}
