//! Cover safety (Definition 5) and the root cover (Definition 6).
//!
//! Two atoms whose predicates depend on a common concept or role name
//! w.r.t. the TBox (Definition 4) may beget unifications during CQ-to-UCQ
//! reformulation; separating them across fragments can lose answers
//! (Example 7). A *safe* cover is a partition keeping all such atom pairs
//! together. The *root cover* is the finest safe cover: the connected
//! components of the "shares a dependency" relation. Proposition 1: every
//! safe cover's fragments are unions of root-cover fragments (Theorem 2).

use obda_dllite::Dependencies;
use obda_query::CQ;

use crate::cover::{mask_indices, AtomMask, Cover, Fragment};

/// Pairwise atom relations of a query w.r.t. a TBox, precomputed once per
/// (query, TBox) pair and consulted throughout enumeration and search.
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// `adj[i]` = atoms sharing a variable with atom `i` (join graph).
    pub adjacency: Vec<AtomMask>,
    /// `insep[i]` = atoms whose predicate shares a dependency with atom
    /// `i`'s predicate (the Definition-5 relation).
    pub inseparable: Vec<AtomMask>,
    num_atoms: usize,
}

impl QueryAnalysis {
    pub fn new(q: &CQ, deps: &Dependencies) -> Self {
        let n = q.num_atoms();
        assert!(n <= 64, "queries are limited to 64 atoms");
        let mut adjacency = vec![0u64; n];
        let mut inseparable = vec![0u64; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (ai, aj) = (&q.atoms()[i], &q.atoms()[j]);
                if ai.shares_var(aj) {
                    adjacency[i] |= 1 << j;
                }
                if deps.share_dependency(ai.pred(), aj.pred()) {
                    inseparable[i] |= 1 << j;
                }
            }
        }
        QueryAnalysis {
            adjacency,
            inseparable,
            num_atoms: n,
        }
    }

    pub fn num_atoms(&self) -> usize {
        self.num_atoms
    }

    /// Is the atom set `mask` join-connected (each fragment requirement of
    /// Definition 1 (iii))? Empty and singleton sets are connected.
    pub fn is_connected(&self, mask: AtomMask) -> bool {
        if mask == 0 {
            return true;
        }
        let start = mask.trailing_zeros() as usize;
        let mut reached: AtomMask = 1 << start;
        loop {
            let mut next = reached;
            for i in mask_indices(reached) {
                next |= self.adjacency[i] & mask;
            }
            if next == reached {
                break;
            }
            reached = next;
        }
        reached == mask
    }

    /// Atoms adjacent to the set `mask` (candidates for the GDL `enlarge`
    /// move and for generalized-fragment growth).
    pub fn neighbors(&self, mask: AtomMask) -> AtomMask {
        let mut out = 0;
        for i in mask_indices(mask) {
            out |= self.adjacency[i];
        }
        out & !mask
    }
}

/// Compute the root cover `Croot` (Definition 6): union-find over the
/// inseparability relation.
pub fn root_cover(analysis: &QueryAnalysis) -> Cover {
    let n = analysis.num_atoms();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for i in 0..n {
        for j in mask_indices(analysis.inseparable[i]) {
            let (a, b) = (find(&mut parent, i), find(&mut parent, j));
            if a != b {
                parent[a] = b;
            }
        }
    }
    let mut groups: std::collections::HashMap<usize, AtomMask> = std::collections::HashMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        *groups.entry(r).or_insert(0) |= 1 << i;
    }
    Cover::new(groups.into_values().map(Fragment::simple).collect())
}

/// Is `cover` safe for query answering (Definition 5)? It must be a
/// partition of the atoms whose blocks keep inseparable atoms together.
pub fn is_safe(analysis: &QueryAnalysis, cover: &Cover) -> bool {
    if !cover.g_is_partition(analysis.num_atoms()) {
        return false;
    }
    for fr in cover.fragments() {
        for i in mask_indices(fr.g) {
            // All atoms inseparable from i must be inside the same g.
            if analysis.inseparable[i] & !fr.g != 0 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{example7_tbox, Dependencies};
    use obda_query::{Atom, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// Example 10: on Example 7's query and TBox the root cover is
    /// C2 = {{PhDStudent(x)}, {worksWith(x,y), supervisedBy(z,y)}}.
    fn example7_analysis() -> (QueryAnalysis, CQ) {
        let (voc, tbox) = example7_tbox();
        let deps = Dependencies::compute(&voc, &tbox);
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(phd, v(0)),
                Atom::Role(works, v(0), v(1)),
                Atom::Role(sup, v(2), v(1)),
            ],
        );
        (QueryAnalysis::new(&q, &deps), q)
    }

    #[test]
    fn example10_root_cover() {
        let (analysis, _) = example7_analysis();
        let croot = root_cover(&analysis);
        // {PhDStudent(x)} alone; worksWith + supervisedBy together
        // (worksWith depends on supervisedBy, Example 8).
        assert_eq!(croot.num_fragments(), 2);
        let masks: Vec<AtomMask> = croot.fragments().iter().map(|f| f.f).collect();
        assert!(masks.contains(&0b001), "PhDStudent alone");
        assert!(masks.contains(&0b110), "worksWith+supervisedBy merged");
    }

    #[test]
    fn croot_is_safe_and_unsafe_cover_detected() {
        let (analysis, _) = example7_analysis();
        let croot = root_cover(&analysis);
        assert!(is_safe(&analysis, &croot));
        // Example 7's C1 = {{PhDStudent, worksWith}, {supervisedBy}} is
        // NOT safe: it separates worksWith from supervisedBy.
        let c1 = Cover::new(vec![Fragment::simple(0b011), Fragment::simple(0b100)]);
        assert!(!is_safe(&analysis, &c1));
    }

    #[test]
    fn single_fragment_cover_is_always_safe() {
        let (analysis, q) = example7_analysis();
        let c = Cover::trivial(q.num_atoms());
        assert!(is_safe(&analysis, &c));
    }

    #[test]
    fn overlapping_cover_is_never_safe() {
        let (analysis, _) = example7_analysis();
        let c = Cover::new(vec![Fragment::simple(0b011), Fragment::simple(0b110)]);
        assert!(!is_safe(&analysis, &c), "Definition 5 requires a partition");
    }

    #[test]
    fn connectivity_queries() {
        let (analysis, _) = example7_analysis();
        // PhDStudent(x) and worksWith(x,y) share x.
        assert!(analysis.is_connected(0b011));
        // PhDStudent(x) and supervisedBy(z,y) share nothing.
        assert!(!analysis.is_connected(0b101));
        assert!(analysis.is_connected(0b111));
        assert!(analysis.is_connected(0b100));
        assert!(analysis.is_connected(0));
    }

    #[test]
    fn neighbors_excludes_self() {
        let (analysis, _) = example7_analysis();
        // Neighbors of {PhDStudent(x)}: worksWith(x,y) only.
        assert_eq!(analysis.neighbors(0b001), 0b010);
        // Neighbors of {worksWith}: both others.
        assert_eq!(analysis.neighbors(0b010), 0b101);
    }

    /// Proposition 1: any two atoms together in Croot are together in
    /// every safe cover — verified by enumerating all partitions of the
    /// 3-atom example.
    #[test]
    fn proposition1_croot_minimality() {
        let (analysis, _) = example7_analysis();
        let croot = root_cover(&analysis);
        // All partitions of 3 atoms.
        let partitions: Vec<Vec<AtomMask>> = vec![
            vec![0b111],
            vec![0b001, 0b110],
            vec![0b010, 0b101],
            vec![0b100, 0b011],
            vec![0b001, 0b010, 0b100],
        ];
        for p in partitions {
            let cover = Cover::new(p.into_iter().map(Fragment::simple).collect());
            if is_safe(&analysis, &cover) {
                for rf in croot.fragments() {
                    assert!(
                        cover.fragments().iter().any(|f| f.g & rf.g == rf.g),
                        "safe cover must not split root fragment {rf:?}"
                    );
                }
            }
        }
    }
}
