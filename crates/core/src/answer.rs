//! End-to-end reformulation selection: the strategies compared in the
//! paper's evaluation (Figures 2 and 3).

use std::time::Duration;

use obda_dllite::constraints::ConstraintSet;
use obda_dllite::{Dependencies, TBox};
use obda_query::{minimize_ucq, FolQuery, CQ};
use obda_reform::{perfect_ref_pruned, prune_fol, PruneStats};

use crate::cost::CostEstimator;
use crate::cover::Cover;
use crate::edl::edl;
use crate::gdl::{gdl, GdlConfig, SearchOutcome};
use crate::reform_cache::ReformCache;
use crate::safety::{root_cover, QueryAnalysis};

/// Which reformulation to produce — the four bars of Figure 2 plus EDL
/// and the USCQ route of \[33\].
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// The standard (minimized) UCQ reformulation of the literature.
    Ucq,
    /// The raw, non-minimized PerfectRef output (ablation baseline).
    RawUcq,
    /// The minimized UCQ factorized into a USCQ (Thomazo \[33\]: "USCQ
    /// reformulations are shown to perform overall better than UCQ ones in
    /// an RDBMS", §7).
    Uscq,
    /// The fixed JUCQ derived from the root cover.
    CrootJucq,
    /// Greedy cost-driven search (optionally time-limited).
    Gdl { time_budget: Option<Duration> },
    /// Exhaustive search with a cap on the generalized space.
    Edl { cap: usize },
}

/// A chosen reformulation, ready for SQL translation / evaluation.
#[derive(Debug, Clone)]
pub struct Chosen {
    pub fol: FolQuery,
    /// The underlying cover (None for plain UCQ strategies).
    pub cover: Option<Cover>,
    /// Estimated cost if a cost-driven strategy ran.
    pub est_cost: Option<f64>,
    /// Search statistics if a search ran.
    pub search: Option<SearchStats>,
    /// Constraint-pruning statistics, when a [`ConstraintSet`] was
    /// supplied (see [`choose_reformulation_constrained`]).
    pub pruned: Option<PruneStats>,
}

/// Compact search statistics (mirrors [`SearchOutcome`]).
#[derive(Debug, Clone, Copy)]
pub struct SearchStats {
    pub explored_simple: usize,
    pub explored_generalized: usize,
    pub moves_applied: usize,
    pub elapsed: Duration,
    pub cost_estimation_time: Duration,
    pub cost_estimation_calls: usize,
    pub budget_exhausted: bool,
}

impl From<&SearchOutcome> for SearchStats {
    fn from(o: &SearchOutcome) -> Self {
        SearchStats {
            explored_simple: o.explored_simple,
            explored_generalized: o.explored_generalized,
            moves_applied: o.moves_applied,
            elapsed: o.elapsed,
            cost_estimation_time: o.cost_estimation_time,
            cost_estimation_calls: o.cost_estimation_calls,
            budget_exhausted: o.budget_exhausted,
        }
    }
}

/// Produce the reformulation selected by `strategy`.
///
/// `estimator` is consulted only by the cost-driven strategies.
pub fn choose_reformulation(
    q: &CQ,
    tbox: &TBox,
    deps: &Dependencies,
    estimator: &dyn CostEstimator,
    strategy: &Strategy,
) -> Chosen {
    choose_reformulation_constrained(q, tbox, deps, estimator, strategy, None)
}

/// [`choose_reformulation`] with an optional snapshot [`ConstraintSet`]:
/// when supplied, provably-empty and data-subsumed union arms are pruned
/// from UCQ/JUCQ shapes *after* strategy selection and *before* SQL
/// generation — the Hovland-style statement-size rescue. The pruned plan
/// is only valid for the generation the constraints were mined from;
/// callers cache it under that generation.
pub fn choose_reformulation_constrained(
    q: &CQ,
    tbox: &TBox,
    deps: &Dependencies,
    estimator: &dyn CostEstimator,
    strategy: &Strategy,
    constraints: Option<&ConstraintSet>,
) -> Chosen {
    let mut chosen = choose_unpruned(q, tbox, deps, estimator, strategy);
    if let Some(cons) = constraints {
        let (fol, stats) = prune_fol(&chosen.fol, cons);
        chosen.fol = fol;
        chosen.pruned = Some(stats);
    }
    chosen
}

fn choose_unpruned(
    q: &CQ,
    tbox: &TBox,
    deps: &Dependencies,
    estimator: &dyn CostEstimator,
    strategy: &Strategy,
) -> Chosen {
    match strategy {
        Strategy::Ucq => Chosen {
            fol: FolQuery::Ucq(minimize_ucq(&perfect_ref_pruned(q, tbox))),
            cover: None,
            est_cost: None,
            search: None,
            pruned: None,
        },
        Strategy::RawUcq => Chosen {
            fol: FolQuery::Ucq(perfect_ref_pruned(q, tbox)),
            cover: None,
            est_cost: None,
            search: None,
            pruned: None,
        },
        Strategy::Uscq => Chosen {
            fol: FolQuery::Uscq(obda_reform::factorize_ucq(&minimize_ucq(
                &perfect_ref_pruned(q, tbox),
            ))),
            cover: None,
            est_cost: None,
            search: None,
            pruned: None,
        },
        Strategy::CrootJucq => {
            let analysis = QueryAnalysis::new(q, deps);
            let croot = root_cover(&analysis);
            let mut cache = ReformCache::new(q, tbox, true);
            let jucq = cache.jucq_for(&croot);
            Chosen {
                fol: FolQuery::Jucq(jucq),
                cover: Some(croot),
                est_cost: None,
                search: None,
                pruned: None,
            }
        }
        Strategy::Gdl { time_budget } => {
            let analysis = QueryAnalysis::new(q, deps);
            let config = GdlConfig {
                time_budget: *time_budget,
                ..Default::default()
            };
            let out = gdl(q, tbox, &analysis, estimator, &config);
            Chosen {
                fol: FolQuery::Jucq(out.jucq.clone()),
                cover: Some(out.cover.clone()),
                est_cost: Some(out.cost),
                search: Some(SearchStats::from(&out)),
                pruned: None,
            }
        }
        Strategy::Edl { cap } => {
            let analysis = QueryAnalysis::new(q, deps);
            let out = edl(q, tbox, &analysis, estimator, *cap, true);
            Chosen {
                fol: FolQuery::Jucq(out.jucq.clone()),
                cover: Some(out.cover.clone()),
                est_cost: Some(out.cost),
                search: Some(SearchStats::from(&out)),
                pruned: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StructuralEstimator;
    use obda_dllite::{example7_tbox, ABox, KnowledgeBase};
    use obda_query::{certain_answers, eval_over_abox, Atom, Term, VarId};

    /// All strategies compute the same (certain) answers on the Example-7
    /// KB — the headline correctness claim (Theorems 1 and 3) across the
    /// strategy surface.
    #[test]
    fn all_strategies_agree_with_certain_answers() {
        let (mut voc, tbox) = example7_tbox();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let grad = voc.find_concept("Graduate").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let damian = voc.individual("Damian");
        let ioana = voc.individual("Ioana");
        let mut abox = ABox::new();
        abox.assert_concept(phd, damian);
        abox.assert_concept(grad, damian);
        abox.assert_concept(phd, ioana);
        abox.assert_role(works, ioana, damian);
        abox.assert_role(sup, damian, ioana);
        let kb = KnowledgeBase::new(voc, tbox, abox);
        let deps = kb.compute_deps();

        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(phd, Term::Var(VarId(0))),
                Atom::Role(works, Term::Var(VarId(0)), Term::Var(VarId(1))),
                Atom::Role(sup, Term::Var(VarId(2)), Term::Var(VarId(1))),
            ],
        );
        let truth = certain_answers(kb.tbox(), kb.abox(), &q);
        assert!(!truth.is_empty(), "fixture must have answers");

        let strategies = [
            Strategy::Ucq,
            Strategy::RawUcq,
            Strategy::Uscq,
            Strategy::CrootJucq,
            Strategy::Gdl { time_budget: None },
            Strategy::Gdl {
                time_budget: Some(Duration::from_millis(20)),
            },
            Strategy::Edl { cap: 0 },
        ];
        for s in &strategies {
            let chosen = choose_reformulation(&q, kb.tbox(), &deps, &StructuralEstimator, s);
            let got = eval_over_abox(kb.abox(), &chosen.fol);
            assert_eq!(got, truth, "strategy {s:?}");
        }
    }

    #[test]
    fn ucq_strategy_is_minimized() {
        let (voc, tbox) = example7_tbox();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let works = voc.find_role("worksWith").unwrap();
        let sup = voc.find_role("supervisedBy").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![
                Atom::Concept(phd, Term::Var(VarId(0))),
                Atom::Role(works, Term::Var(VarId(0)), Term::Var(VarId(1))),
                Atom::Role(sup, Term::Var(VarId(2)), Term::Var(VarId(1))),
            ],
        );
        let deps = Dependencies::compute(&voc, &tbox);
        let min = choose_reformulation(&q, &tbox, &deps, &StructuralEstimator, &Strategy::Ucq);
        let raw = choose_reformulation(&q, &tbox, &deps, &StructuralEstimator, &Strategy::RawUcq);
        assert!(min.fol.equivalent_cq_count() <= raw.fol.equivalent_cq_count());
    }

    #[test]
    fn gdl_reports_stats_and_cover() {
        let (voc, tbox) = example7_tbox();
        let phd = voc.find_concept("PhDStudent").unwrap();
        let q = CQ::with_var_head(
            vec![VarId(0)],
            vec![Atom::Concept(phd, Term::Var(VarId(0)))],
        );
        let deps = Dependencies::compute(&voc, &tbox);
        let chosen = choose_reformulation(
            &q,
            &tbox,
            &deps,
            &StructuralEstimator,
            &Strategy::Gdl { time_budget: None },
        );
        assert!(chosen.cover.is_some());
        assert!(chosen.est_cost.is_some());
        assert!(chosen.search.is_some());
    }
}
